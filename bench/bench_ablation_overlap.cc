// Ablation: the geometric quality claims behind RD-GBG (§IV-B). For each
// dataset (clean and at 20% noise) we granulate with the classic
// purity-threshold GBG (GGBS's) and with RD-GBG, and report:
//   * heterogeneous overlap depth  — boundary blur (RD-GBG: exactly 0)
//   * out-of-ball member fraction  — samples outside their ball's radius
//     (classic average-radius balls leave many outside; RD-GBG: 0)
//   * ball count and covered-sample ratio — granulation compactness.
#include <cstdio>

#include "bench_util.h"
#include "core/rd_gbg.h"
#include "data/noise.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "sampling/purity_gbg.h"

namespace gbx {
namespace {

double OutOfBallFraction(const GranularBallSet& balls) {
  const Matrix& x = balls.scaled_features();
  int outside = 0;
  int total = 0;
  for (const GranularBall& ball : balls.balls()) {
    for (int idx : ball.members) {
      ++total;
      if (!ball.Contains(x.Row(idx), x.cols(), 1e-9)) ++outside;
    }
  }
  return total > 0 ? static_cast<double>(outside) / total : 0.0;
}

}  // namespace
}  // namespace gbx

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Ablation: classic purity-GBG vs RD-GBG ball geometry",
               config);

  for (double noise : {0.0, 0.2}) {
    PrintBanner("Noise ratio " + TablePrinter::Num(noise * 100, 0) + "%");
    TablePrinter table({8, 10, 10, 12, 12, 12, 12});
    table.PrintRow({"dataset", "balls_cls", "balls_rd", "overlap_cls",
                    "overlap_rd", "outside_cls", "outside_rd"});
    table.PrintSeparator();

    struct Row {
      int balls_classic = 0;
      int balls_rd = 0;
      double overlap_classic = 0.0;
      double overlap_rd = 0.0;
      double outside_classic = 0.0;
      double outside_rd = 0.0;
    };
    std::vector<Row> rows(13);
    ParallelFor(13, config.num_threads, [&](int d) {
      Dataset ds = MakePaperDataset(d, config.max_samples, config.seed);
      if (noise > 0.0) {
        Pcg32 rng(config.seed + d, /*stream=*/5);
        InjectClassNoise(&ds, noise, &rng);
      }
      PurityGbgConfig classic_cfg;
      classic_cfg.seed = config.seed + d;
      const PurityGbgResult classic = GeneratePurityGbg(ds, classic_cfg);
      RdGbgConfig rd_cfg;
      rd_cfg.seed = config.seed + d;
      const RdGbgResult rd = GenerateRdGbg(ds, rd_cfg);
      rows[d] = Row{classic.balls.size(),
                    rd.balls.size(),
                    classic.balls.HeterogeneousOverlapDepth(),
                    rd.balls.HeterogeneousOverlapDepth(),
                    OutOfBallFraction(classic.balls),
                    OutOfBallFraction(rd.balls)};
    });

    for (int d = 0; d < 13; ++d) {
      table.PrintRow({PaperDatasetSpecs()[d].id,
                      std::to_string(rows[d].balls_classic),
                      std::to_string(rows[d].balls_rd),
                      TablePrinter::Num(rows[d].overlap_classic, 4),
                      TablePrinter::Num(rows[d].overlap_rd, 4),
                      TablePrinter::Num(rows[d].outside_classic, 4),
                      TablePrinter::Num(rows[d].outside_rd, 4)});
    }
  }
  std::printf(
      "RD-GBG columns must be exactly 0 (no overlap, full containment) — "
      "the redefined-GB claim of §IV-B.\n");
  return 0;
}
