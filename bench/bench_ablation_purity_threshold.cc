// Ablation for the paper's second contribution: "RD-GBG incorporates
// noise detection without searching for an optimal [purity] threshold".
// GGBS's quality depends on its purity threshold — we sweep it over
// {0.85, 0.90, 0.95, 1.00} on noisy data and compare the *best* GGBS
// column against threshold-free GBABS (DT accuracy, 20% class noise).
#include <cstdio>

#include "bench_util.h"
#include "data/noise.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "sampling/gbabs_sampler.h"
#include "sampling/ggbs.h"
#include "stats/descriptive.h"

namespace gbx {
namespace {

/// Mean CV accuracy of DT trained on `sampler`'s output over noisy data.
template <typename SamplerT>
double CvAccuracy(const Dataset& noisy, const SamplerT& sampler,
                  int folds, Pcg32* rng) {
  std::vector<double> accs;
  for (const auto& test_idx : StratifiedKFold(noisy, folds, rng)) {
    const Dataset train =
        noisy.Subset(FoldComplement(test_idx, noisy.size()));
    const Dataset test = noisy.Subset(test_idx);
    Dataset sampled = sampler.Sample(train, rng);
    if (sampled.size() < 2) sampled = train;
    DecisionTreeClassifier dt;
    dt.Fit(sampled, rng);
    accs.push_back(Accuracy(test.y(), dt.PredictBatch(test.x())));
  }
  return Mean(accs);
}

}  // namespace
}  // namespace gbx

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode(
      "Ablation: GGBS purity-threshold sensitivity vs threshold-free GBABS "
      "(DT accuracy, 20% class noise)",
      config);

  const std::vector<double> thresholds = {0.85, 0.90, 0.95, 1.00};
  TablePrinter table({8, 9, 9, 9, 9, 10, 10});
  std::vector<std::string> header = {"dataset"};
  for (double t : thresholds) {
    header.push_back("GGBS@" + TablePrinter::Num(t, 2));
  }
  header.push_back("GGBS_best");
  header.push_back("GBABS");
  table.PrintRow(header);
  table.PrintSeparator();

  struct Row {
    std::vector<double> ggbs;
    double gbabs = 0.0;
  };
  std::vector<Row> rows(13);
  ParallelFor(13, config.num_threads, [&](int d) {
    Pcg32 rng(config.seed + d, /*stream=*/21);
    Dataset noisy = MakePaperDataset(d, config.max_samples, config.seed);
    InjectClassNoise(&noisy, 0.20, &rng);
    Row row;
    for (double t : thresholds) {
      PurityGbgConfig gbg;
      gbg.purity_threshold = t;
      row.ggbs.push_back(CvAccuracy(noisy, GgbsSampler(gbg), 3, &rng));
    }
    row.gbabs = CvAccuracy(noisy, GbabsSampler(), 3, &rng);
    rows[d] = std::move(row);
  });

  int gbabs_beats_best = 0;
  for (int d = 0; d < 13; ++d) {
    std::vector<std::string> cells = {PaperDatasetSpecs()[d].id};
    double best = 0.0;
    for (double acc : rows[d].ggbs) {
      cells.push_back(TablePrinter::Num(acc));
      best = std::max(best, acc);
    }
    cells.push_back(TablePrinter::Num(best));
    cells.push_back(TablePrinter::Num(rows[d].gbabs));
    if (rows[d].gbabs >= best) ++gbabs_beats_best;
    table.PrintRow(cells);
  }
  table.PrintSeparator();
  std::printf(
      "GBABS (no threshold) matches or beats the best GGBS threshold on "
      "%d/13 datasets — and GGBS's best threshold varies per dataset, so "
      "picking it requires exactly the search the paper eliminates.\n",
      gbabs_beats_best);
  return 0;
}
