// Ablation for the future-work extension (§VI): restricting the GBABS
// borderline scan to the k highest-variance center dimensions on the
// high-dimensional datasets (S7: 85, S12: 128, S13: 256 features).
// Reports sampling time, ratio and downstream DT accuracy per k — the
// claim to check is that a small k keeps accuracy while cutting the
// O(p·m·log m) scan cost.
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/gbabs.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Ablation: GBABS scan-dimension budget on high-dim datasets",
               config);

  const std::vector<std::string> ids = {"S7", "S12", "S13"};
  const std::vector<int> budgets = {0, 32, 16, 8};  // 0 = all dims

  TablePrinter table({8, 8, 10, 10, 10});
  table.PrintRow({"dataset", "k", "scan_ms", "ratio", "dt_acc"});
  table.PrintSeparator();
  for (const std::string& id : ids) {
    const Dataset ds = MakePaperDataset(id, config.max_samples, config.seed);
    // One shared granulation per dataset so only the scan varies.
    RdGbgConfig gbg_cfg;
    gbg_cfg.seed = config.seed;
    const RdGbgResult gbg = GenerateRdGbg(ds, gbg_cfg);

    for (int k : budgets) {
      Stopwatch watch;
      const std::vector<int> sampled_idx =
          SampleBorderlineIndices(gbg.balls, nullptr, k);
      const double scan_ms = watch.ElapsedMillis();
      Dataset sampled = ds.Subset(sampled_idx);
      if (sampled.size() < 2) sampled = ds;

      // 3-fold CV of a DT trained on the (re-sampled per fold would be
      // fairer but slower; the granulation is the expensive part and is
      // shared) sampled subset, evaluated on held-out folds.
      Pcg32 rng(config.seed + k);
      std::vector<double> accs;
      for (const auto& fold : StratifiedKFold(ds, 3, &rng)) {
        const Dataset test = ds.Subset(fold);
        DecisionTreeClassifier dt;
        dt.Fit(sampled, &rng);
        accs.push_back(Accuracy(test.y(), dt.PredictBatch(test.x())));
      }
      table.PrintRow({id, k == 0 ? "all" : std::to_string(k),
                      TablePrinter::Num(scan_ms, 1),
                      TablePrinter::Num(
                          static_cast<double>(sampled_idx.size()) / ds.size(),
                          2),
                      TablePrinter::Num(Mean(accs))});
    }
    table.PrintSeparator();
  }
  return 0;
}
