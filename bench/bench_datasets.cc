// Table I: the 13 evaluation datasets. Prints the paper's published
// statistics next to the realized statistics of the synthetic stand-ins
// (size cap applies in scaled mode).
#include <cstdio>

#include "bench_util.h"
#include "data/paper_suite.h"
#include "exp/table_printer.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Table I: dataset suite", config);

  TablePrinter table({4, 16, 9, 9, 8, 9, 10, 10, 8});
  table.PrintRow({"id", "name", "paper_N", "gen_N", "feats", "classes",
                  "paper_IR", "gen_IR", "source"});
  table.PrintSeparator();
  const auto& specs = PaperDatasetSpecs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Dataset ds = MakePaperDataset(static_cast<int>(i),
                                        config.max_samples, config.seed);
    table.PrintRow({specs[i].id, specs[i].name,
                    std::to_string(specs[i].samples),
                    std::to_string(ds.size()),
                    std::to_string(specs[i].features),
                    std::to_string(specs[i].classes),
                    TablePrinter::Num(specs[i].imbalance_ratio, 2),
                    TablePrinter::Num(ds.ImbalanceRatio(), 2),
                    specs[i].source});
  }
  return 0;
}
