// Fig. 10: sensitivity of the GBABS sampling ratio to the density
// tolerance rho in {3, 5, ..., 19}, per dataset. Paper shape: curves
// flatten — the method is insensitive to its only hyperparameter.
#include <cstdio>

#include "bench_util.h"
#include "core/gbabs.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Fig. 10: sampling ratio vs density tolerance rho", config);

  const std::vector<int> rhos = {3, 5, 7, 9, 11, 13, 15, 17, 19};
  std::vector<std::vector<double>> ratio(13,
                                         std::vector<double>(rhos.size()));
  const int jobs = 13 * static_cast<int>(rhos.size());
  ParallelFor(jobs, config.num_threads, [&](int job) {
    const int d = job / static_cast<int>(rhos.size());
    const int ri = job % static_cast<int>(rhos.size());
    const Dataset ds = MakePaperDataset(d, config.max_samples, config.seed);
    GbabsConfig gb;
    gb.gbg.density_tolerance = rhos[ri];
    gb.gbg.seed = config.seed + d;
    ratio[d][ri] = RunGbabs(ds, gb).sampling_ratio;
  });

  TablePrinter table({8, 7, 7, 7, 7, 7, 7, 7, 7, 7, 8});
  std::vector<std::string> header = {"dataset"};
  for (int rho : rhos) header.push_back("rho=" + std::to_string(rho));
  header.push_back("spread");
  table.PrintRow(header);
  table.PrintSeparator();
  for (int d = 0; d < 13; ++d) {
    std::vector<std::string> row = {PaperDatasetSpecs()[d].id};
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
      row.push_back(TablePrinter::Num(ratio[d][ri], 2));
      lo = std::min(lo, ratio[d][ri]);
      hi = std::max(hi, ratio[d][ri]);
    }
    row.push_back(TablePrinter::Num(hi - lo, 2));
    table.PrintRow(row);
  }
  return 0;
}
