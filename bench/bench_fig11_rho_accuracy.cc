// Fig. 11: sensitivity of GBABS-DT testing accuracy to the density
// tolerance rho in {3, 5, ..., 19}. Paper shape: no significant variation
// with rho, especially on the larger / higher-dimensional datasets.
#include <cstdio>

#include "bench_util.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "sampling/gbabs_sampler.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Fig. 11: GBABS-DT accuracy vs density tolerance rho",
               config);

  const std::vector<int> rhos = {3, 5, 7, 9, 11, 13, 15, 17, 19};
  std::vector<std::vector<double>> acc(13, std::vector<double>(rhos.size()));
  const int jobs = 13 * static_cast<int>(rhos.size());
  ParallelFor(jobs, config.num_threads, [&](int job) {
    const int d = job / static_cast<int>(rhos.size());
    const int ri = job % static_cast<int>(rhos.size());
    const Dataset ds = MakePaperDataset(d, config.max_samples, config.seed);
    Pcg32 rng(config.seed + job, /*stream=*/11);
    GbabsConfig gb;
    gb.gbg.density_tolerance = rhos[ri];
    const GbabsSampler sampler(gb);

    std::vector<double> fold_accs;
    const auto folds = StratifiedKFold(ds, config.cv_folds, &rng);
    for (const auto& test_idx : folds) {
      const Dataset train =
          ds.Subset(FoldComplement(test_idx, ds.size()));
      const Dataset test = ds.Subset(test_idx);
      Dataset sampled = sampler.Sample(train, &rng);
      if (sampled.size() < 2) sampled = train;
      DecisionTreeClassifier dt;
      dt.Fit(sampled, &rng);
      fold_accs.push_back(Accuracy(test.y(), dt.PredictBatch(test.x())));
    }
    acc[d][ri] = Mean(fold_accs);
  });

  TablePrinter table({8, 7, 7, 7, 7, 7, 7, 7, 7, 7, 8});
  std::vector<std::string> header = {"dataset"};
  for (int rho : rhos) header.push_back("rho=" + std::to_string(rho));
  header.push_back("spread");
  table.PrintRow(header);
  table.PrintSeparator();
  for (int d = 0; d < 13; ++d) {
    std::vector<std::string> row = {PaperDatasetSpecs()[d].id};
    double lo = 1.0;
    double hi = 0.0;
    for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
      row.push_back(TablePrinter::Num(acc[d][ri], 2));
      lo = std::min(lo, acc[d][ri]);
      hi = std::max(hi, acc[d][ri]);
    }
    row.push_back(TablePrinter::Num(hi - lo, 2));
    table.PrintRow(row);
  }
  return 0;
}
