// Fig. 5: t-SNE visualization of datasets S5, S1, S3 and S6. Embeds a
// subsample of each dataset to 2-D, writes the embeddings to CSV
// (fig5_<id>_embedding.csv next to the binary's CWD) and prints a
// class-separation summary: the paper's qualitative claims are that S5 has
// a simple boundary, S1 a complex one, S3 heavily overlapping classes and
// S6 clear multi-class structure.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "data/csv.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "viz/tsne.h"

namespace gbx {
namespace {

/// Mean intra-class over mean inter-class pairwise distance in the
/// embedding: lower = better visual separation.
double SeparationScore(const Matrix& y, const std::vector<int>& labels) {
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (int i = 0; i < y.rows(); ++i) {
    for (int j = i + 1; j < y.rows(); ++j) {
      const double d = EuclideanDistance(y.Row(i), y.Row(j), y.cols());
      if (labels[i] == labels[j]) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  if (intra_n == 0 || inter_n == 0) return 1.0;
  return (intra / intra_n) / (inter / inter_n);
}

}  // namespace
}  // namespace gbx

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Fig. 5: t-SNE visualization of S5, S1, S3, S6", config);

  const std::vector<std::string> ids = {"S5", "S1", "S3", "S6"};
  const int subsample = config.full ? 2000 : 600;

  TablePrinter table({8, 8, 10, 12, 24});
  table.PrintRow({"dataset", "points", "classes", "separation",
                  "embedding csv"});
  table.PrintSeparator();
  for (const std::string& id : ids) {
    Dataset ds = MakePaperDataset(id, config.max_samples, config.seed);
    if (ds.size() > subsample) {
      Pcg32 rng(config.seed, /*stream=*/3);
      std::vector<int> idx =
          rng.SampleWithoutReplacement(ds.size(), subsample);
      std::sort(idx.begin(), idx.end());
      ds = ds.Subset(idx);
    }
    TsneConfig tsne_cfg;
    tsne_cfg.iterations = config.full ? 500 : 300;
    tsne_cfg.seed = config.seed;
    const Matrix embedding = RunTsne(ds.x(), tsne_cfg);

    const std::string path = "fig5_" + id + "_embedding.csv";
    const Dataset out(embedding, ds.y());
    const Status status = SaveCsv(out, path);
    table.PrintRow({id, std::to_string(ds.size()),
                    std::to_string(ds.num_classes()),
                    TablePrinter::Num(SeparationScore(embedding, ds.y()), 3),
                    status.ok() ? path : status.ToString()});
  }
  std::printf(
      "separation < 1 means classes form visible clusters; S3 should score "
      "closest to 1 (overlapping classes), S6 lowest (clear boundaries).\n");
  return 0;
}
