// Fig. 6(a)-(f): sampling ratio of GBABS vs GGBS on every dataset at class
// noise ratios 0/5/10/20/30/40%. Paper shape: GBABS always compresses;
// GGBS's ratio collapses to ~1.0 as noise rises (its purity-threshold GBG
// cannot stop splitting).
#include <cstdio>

#include "bench_util.h"
#include "core/gbabs.h"
#include "data/noise.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "sampling/ggbs.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Fig. 6: sampling ratio, GBABS vs GGBS, per noise ratio",
               config);

  const auto noise_grid = NoiseGridWithClean();
  const int num_datasets = 13;

  struct Cell {
    double gbabs = 0.0;
    double ggbs = 0.0;
  };
  std::vector<std::vector<Cell>> cells(
      noise_grid.size(), std::vector<Cell>(num_datasets));

  const int jobs = static_cast<int>(noise_grid.size()) * num_datasets;
  ParallelFor(jobs, config.num_threads, [&](int job) {
    const int noise_idx = job / num_datasets;
    const int ds_idx = job % num_datasets;
    Pcg32 rng(config.seed + job, /*stream=*/77);
    Dataset ds = MakePaperDataset(ds_idx, config.max_samples, config.seed);
    if (noise_grid[noise_idx] > 0.0) {
      InjectClassNoise(&ds, noise_grid[noise_idx], &rng);
    }
    GbabsConfig gb;
    gb.gbg.seed = config.seed + job;
    cells[noise_idx][ds_idx].gbabs = RunGbabs(ds, gb).sampling_ratio;
    GgbsSampler ggbs;
    cells[noise_idx][ds_idx].ggbs =
        static_cast<double>(ggbs.SampleIndices(ds, &rng).size()) / ds.size();
  });

  for (std::size_t ni = 0; ni < noise_grid.size(); ++ni) {
    PrintBanner("Fig. 6(" + std::string(1, static_cast<char>('a' + ni)) +
                "): noise ratio " +
                TablePrinter::Num(noise_grid[ni] * 100, 0) + "%");
    TablePrinter table({8, 8, 8});
    table.PrintRow({"dataset", "GBABS", "GGBS"});
    table.PrintSeparator();
    double gbabs_wins = 0;
    for (int d = 0; d < num_datasets; ++d) {
      table.PrintRow({PaperDatasetSpecs()[d].id,
                      TablePrinter::Num(cells[ni][d].gbabs, 2),
                      TablePrinter::Num(cells[ni][d].ggbs, 2)});
      if (cells[ni][d].gbabs < cells[ni][d].ggbs) ++gbabs_wins;
    }
    table.PrintSeparator();
    std::printf("GBABS lower ratio on %.0f/13 datasets\n", gbabs_wins);
  }
  return 0;
}
