// Fig. 7: distribution (ridge plot) of testing accuracy for XGBoost under
// GBABS / GGBS / SRS / raw training at noise ratios 10% and 30%. Paper
// shape: the GBABS curve is shifted right and more concentrated.
#include "bench_util.h"
#include "ml/classifier.h"

int main(int argc, char** argv) {
  return gbx::RunAccuracyDistributionFigure(
      "Fig. 7: XGBoost accuracy distributions",
      static_cast<int>(gbx::ClassifierKind::kXgBoost), {0.10, 0.30}, argc,
      argv);
}
