// Fig. 8: distribution (ridge plot) of testing accuracy for Random Forest
// under GBABS / GGBS / SRS / raw training at noise ratios 20% and 40%.
// Paper shape: at 40% the GBABS-RF density peaks around 0.55-0.6, clearly
// right of the others.
#include "bench_util.h"
#include "ml/classifier.h"

int main(int argc, char** argv) {
  return gbx::RunAccuracyDistributionFigure(
      "Fig. 8: Random Forest accuracy distributions",
      static_cast<int>(gbx::ClassifierKind::kRandomForest), {0.20, 0.40},
      argc, argv);
}
