// Fig. 9(a)-(f): per-dataset ranking (1 = best) of testing G-mean for a
// decision tree under the eight sampling regimes {GBABS, GGBS, IGBS,
// SMNC, Tomek, SM, BSM, Ori} at noise ratios 0-40%. Paper shape: GBABS
// holds rank 1 on most datasets once noise is present.
#include <cstdio>

#include "bench_util.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "stats/ranking.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Fig. 9: G-mean rankings of DT under 8 sampling methods",
               config);
  const ExperimentRunner runner(config);

  // Row order matches the figure.
  const std::vector<SamplerKind> samplers = {
      SamplerKind::kGbabs,          SamplerKind::kGgbs,
      SamplerKind::kIgbs,           SamplerKind::kSmotenc,
      SamplerKind::kTomek,          SamplerKind::kSmote,
      SamplerKind::kBorderlineSmote, SamplerKind::kNone};
  const std::vector<double> noise_grid = NoiseGridWithClean();

  std::vector<EvalRequest> requests;
  for (double noise : noise_grid) {
    for (int d = 0; d < 13; ++d) {
      for (SamplerKind s : samplers) {
        EvalRequest r;
        r.dataset_index = d;
        r.noise_ratio = noise;
        r.sampler = s;
        r.classifier = ClassifierKind::kDecisionTree;
        requests.push_back(r);
      }
    }
  }
  const std::vector<EvalResult> results = runner.EvaluateAll(requests);

  std::size_t idx = 0;
  for (std::size_t ni = 0; ni < noise_grid.size(); ++ni) {
    PrintBanner("Fig. 9(" + std::string(1, static_cast<char>('a' + ni)) +
                "): noise ratio " +
                TablePrinter::Num(noise_grid[ni] * 100, 0) + "% (ranks)");
    // ranks[s][d]
    std::vector<std::vector<int>> ranks(samplers.size(),
                                        std::vector<int>(13));
    double gbabs_rank_sum = 0.0;
    int gbabs_firsts = 0;
    for (int d = 0; d < 13; ++d) {
      std::vector<double> gmeans(samplers.size());
      for (std::size_t s = 0; s < samplers.size(); ++s) {
        gmeans[s] = results[idx++].mean_gmean;
      }
      const std::vector<int> dataset_ranks =
          CompetitionRankDescending(gmeans);
      for (std::size_t s = 0; s < samplers.size(); ++s) {
        ranks[s][d] = dataset_ranks[s];
      }
      gbabs_rank_sum += dataset_ranks[0];
      if (dataset_ranks[0] == 1) ++gbabs_firsts;
    }

    TablePrinter table({8, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5});
    std::vector<std::string> header = {"method"};
    for (const auto& spec : PaperDatasetSpecs()) header.push_back(spec.id);
    table.PrintRow(header);
    table.PrintSeparator();
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      std::vector<std::string> row = {SamplerKindName(samplers[s])};
      for (int d = 0; d < 13; ++d) row.push_back(std::to_string(ranks[s][d]));
      table.PrintRow(row);
    }
    std::printf("GBABS: mean rank %.2f, rank-1 on %d/13 datasets\n",
                gbabs_rank_sum / 13, gbabs_firsts);
  }
  return 0;
}
