// Granular-ball acceleration of density-peaks clustering (related work
// [29] of the paper): plain DPC is O(n^2); GB-DPC granulates first and
// clusters ball centroids. Reports wall time and Adjusted Rand Index vs
// ground truth for both, across dataset sizes. Expected shape: GB-DPC
// keeps the ARI while its runtime grows far slower.
#include <cstdio>

#include "bench_util.h"
#include "cluster/dpc.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "exp/table_printer.h"
#include "stats/ranking.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("GB-accelerated density-peaks clustering vs plain DPC",
               config);

  const std::vector<int> sizes = config.full
                                     ? std::vector<int>{2000, 8000}
                                     : std::vector<int>{500, 1000, 2000};
  TablePrinter table({8, 10, 10, 10, 10, 8});
  table.PrintRow({"N", "dpc_ms", "dpc_ARI", "gbdpc_ms", "gbdpc_ARI",
                  "balls"});
  table.PrintSeparator();
  for (int n : sizes) {
    BlobsConfig data_cfg;
    data_cfg.num_samples = n;
    data_cfg.num_classes = 4;
    data_cfg.num_features = 2;
    data_cfg.center_spread = 10.0;
    data_cfg.cluster_std = 0.7;
    Pcg32 gen(config.seed + n);
    const Dataset ds = MakeGaussianBlobs(data_cfg, &gen);

    DpcConfig dpc_cfg;
    dpc_cfg.num_clusters = 4;

    Stopwatch plain_watch;
    const DpcResult plain = RunDpc(ds.x(), dpc_cfg);
    const double plain_ms = plain_watch.ElapsedMillis();

    Stopwatch gb_watch;
    const GbDpcResult gb = RunGbDpc(ds.x(), dpc_cfg);
    const double gb_ms = gb_watch.ElapsedMillis();

    table.PrintRow({std::to_string(n), TablePrinter::Num(plain_ms, 1),
                    TablePrinter::Num(
                        AdjustedRandIndex(ds.y(), plain.assignments), 3),
                    TablePrinter::Num(gb_ms, 1),
                    TablePrinter::Num(
                        AdjustedRandIndex(ds.y(), gb.assignments), 3),
                    std::to_string(gb.granulation.balls.size())});
  }
  return 0;
}
