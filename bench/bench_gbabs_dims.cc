// Sweep of GbabsConfig::max_scan_dimensions (ROADMAP open item, the
// paper's §VI future-work direction): n × d × k on S-suite-shaped
// synthetic data (imbalanced informative-subspace blobs in the style of
// the high-dimensional Table I entries). For each (n, d) the granulation
// is generated once and timed; then the borderline scan runs per
// dimension budget k, reporting scan time and the sampling ratio — the
// quantity to watch is how quickly scan_ms falls with k while the ratio
// (and therefore the boundary coverage) stays put.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/gbabs.h"
#include "data/synthetic.h"
#include "exp/table_printer.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("GBABS scan-dimension budget sweep (n x d x k)", config);

  const std::vector<int> sizes =
      config.full ? std::vector<int>{2000, 8000} : std::vector<int>{600, 1200};
  const std::vector<int> dims = {16, 64, 256};
  const std::vector<int> budgets = {0, 4, 8, 16, 32};  // 0 = all dims

  TablePrinter table({8, 6, 6, 10, 10, 8});
  table.PrintRow({"n", "d", "k", "gran_ms", "scan_ms", "ratio"});
  table.PrintSeparator();
  for (int size : sizes) {
    const int n = config.max_samples > 0 ? std::min(size, config.max_samples)
                                         : size;
    for (int d : dims) {
      HighDimConfig data_cfg;
      data_cfg.num_samples = n;
      data_cfg.num_features = d;
      data_cfg.num_informative = std::min(d, 12);
      data_cfg.num_classes = 2;
      data_cfg.class_weights = GeometricWeights(2, 5.0);
      data_cfg.clusters_per_class = 2;
      data_cfg.class_sep = 1.5;
      Pcg32 data_rng(config.seed + d);
      const Dataset ds = MakeInformativeHighDim(data_cfg, &data_rng);

      RdGbgConfig gbg_cfg;
      gbg_cfg.seed = config.seed;
      Stopwatch gran_watch;
      const RdGbgResult gbg = GenerateRdGbg(ds, gbg_cfg);
      const double gran_ms = gran_watch.ElapsedMillis();

      for (int k : budgets) {
        Stopwatch scan_watch;
        const std::vector<int> sampled =
            SampleBorderlineIndices(gbg.balls, nullptr, k);
        const double scan_ms = scan_watch.ElapsedMillis();
        table.PrintRow(
            {std::to_string(n), std::to_string(d),
             k == 0 ? "all" : std::to_string(k),
             TablePrinter::Num(gran_ms, 1), TablePrinter::Num(scan_ms, 2),
             TablePrinter::Num(static_cast<double>(sampled.size()) / ds.size(),
                               2)});
      }
      table.PrintSeparator();
    }
  }
  return 0;
}
