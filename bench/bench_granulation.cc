// Granulation hot-path microbenchmark (google-benchmark): wall-clock for
// GenerateRdGbg across dataset size x thread count x geometry, backing the
// parallel RD-GBG rewrite. Two regimes:
//   overlap:0 — well-separated blobs: few rounds, cost dominated by the
//               per-candidate distance scans;
//   overlap:1 — heavily overlapping blobs: thousands of rounds and balls,
//               the seed implementation's worst case (full O(n log n)
//               neighbor sort per candidate).
// threads:0 resolves to GBX_THREADS / hardware concurrency; threads:1 is
// the serial baseline. Granulation output is bit-identical across thread
// counts, so the rows differ only in wall time.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "common/rng.h"
#include "core/gbabs.h"
#include "core/rd_gbg.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

const Dataset& CachedBlobs(int n, bool overlapping) {
  static std::map<std::pair<int, bool>, Dataset> cache;
  const auto key = std::make_pair(n, overlapping);
  auto it = cache.find(key);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    if (overlapping) {
      cfg.num_classes = 4;
      cfg.num_features = 10;
      cfg.clusters_per_class = 3;
      cfg.center_spread = 4.0;
      cfg.cluster_std = 1.2;
    } else {
      cfg.num_classes = 3;
      cfg.num_features = 8;
      cfg.clusters_per_class = 2;
      cfg.center_spread = 6.0;
      cfg.cluster_std = 1.0;
    }
    Pcg32 rng(123);
    it = cache.emplace(key, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

void BM_RdGbg(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool overlapping = state.range(2) != 0;
  const Dataset& ds = CachedBlobs(n, overlapping);
  RdGbgConfig cfg;
  cfg.seed = 42;
  cfg.num_threads = threads;
  int balls = 0;
  for (auto _ : state) {
    RdGbgResult result = GenerateRdGbg(ds, cfg);
    balls = result.balls.size();
    benchmark::DoNotOptimize(balls);
  }
  state.counters["balls"] = balls;
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_RdGbg)
    ->ArgNames({"n", "threads", "overlap"})
    ->ArgsProduct({{1000, 5000, 20000}, {1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end GBABS (granulation + borderline sampling) for the pipeline
// view; sampling is O(p*m log m) over balls, so granulation dominates.
void BM_Gbabs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Dataset& ds = CachedBlobs(n, /*overlapping=*/true);
  GbabsConfig cfg;
  cfg.gbg.seed = 42;
  cfg.gbg.num_threads = threads;
  for (auto _ : state) {
    GbabsResult result = RunGbabs(ds, cfg);
    benchmark::DoNotOptimize(result.sampled_indices.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_Gbabs)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{1000, 5000}, {1, 0}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// main() comes from benchmark::benchmark_main, as for bench_micro.
}  // namespace
}  // namespace gbx
