// Granulation hot-path microbenchmark (google-benchmark): wall-clock for
// GenerateRdGbg across dataset size x thread count x geometry, backing the
// parallel RD-GBG rewrite. Two regimes:
//   overlap:0 — well-separated blobs: few rounds, cost dominated by the
//               per-candidate distance scans;
//   overlap:1 — heavily overlapping blobs: thousands of rounds and balls,
//               the seed implementation's worst case (full O(n log n)
//               neighbor sort per candidate).
// threads:0 resolves to GBX_THREADS / hardware concurrency; threads:1 is
// the serial baseline. Granulation output is bit-identical across thread
// counts, so the rows differ only in wall time.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "common/rng.h"
#include "core/gbabs.h"
#include "core/rd_gbg.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

const Dataset& CachedBlobs(int n, bool overlapping) {
  static std::map<std::pair<int, bool>, Dataset> cache;
  const auto key = std::make_pair(n, overlapping);
  auto it = cache.find(key);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    if (overlapping) {
      cfg.num_classes = 4;
      cfg.num_features = 10;
      cfg.clusters_per_class = 3;
      cfg.center_spread = 4.0;
      cfg.cluster_std = 1.2;
    } else {
      cfg.num_classes = 3;
      cfg.num_features = 8;
      cfg.clusters_per_class = 2;
      cfg.center_spread = 6.0;
      cfg.cluster_std = 1.0;
    }
    Pcg32 rng(123);
    it = cache.emplace(key, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

void BM_RdGbg(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool overlapping = state.range(2) != 0;
  const Dataset& ds = CachedBlobs(n, overlapping);
  RdGbgConfig cfg;
  cfg.seed = 42;
  cfg.num_threads = threads;
  int balls = 0;
  for (auto _ : state) {
    RdGbgResult result = GenerateRdGbg(ds, cfg);
    balls = result.balls.size();
    benchmark::DoNotOptimize(balls);
  }
  state.counters["balls"] = balls;
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_RdGbg)
    ->ArgNames({"n", "threads", "overlap"})
    ->ArgsProduct({{1000, 5000, 20000}, {1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The IndexStrategy axis: the same granulation under the flat parallel
// scan vs the DynamicKdTree that follows the shrinking U-set. Output is
// bit-identical (thread_determinism_test), so the rows differ only in
// wall time; these curves are the measured crossover behind kAuto's
// thresholds (index/index_strategy.cc). Dimensionality is the deciding
// axis — overlapping blobs at n=20k: tree 8.8x ahead at d=2, 3.5x at
// d=4, 1.6x at d=6, break-even by d=8; at n=2k it is 2.9x ahead at
// d=2, within noise at d=4 and behind at d=8, which is why kAuto
// stays flat below 4k points. (The well-separated regime is harsher
// on the tree — candidates consume whole clusters from the neighbor
// stream — which is why kAuto's d-threshold is stricter than this
// regime alone would justify.)
const Dataset& CachedBlobsDim(int n, int d) {
  static std::map<std::pair<int, int>, Dataset> cache;
  const auto key = std::make_pair(n, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    cfg.num_classes = 4;
    cfg.num_features = d;
    cfg.clusters_per_class = 3;
    cfg.center_spread = 4.0;
    cfg.cluster_std = 1.2;
    Pcg32 rng(123);
    it = cache.emplace(key, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

void BM_RdGbgStrategy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const bool tree = state.range(2) != 0;
  const Dataset& ds = CachedBlobsDim(n, d);
  RdGbgConfig cfg;
  cfg.seed = 42;
  cfg.num_threads = 0;
  cfg.index_strategy = tree ? IndexStrategy::kTree : IndexStrategy::kFlat;
  int balls = 0;
  for (auto _ : state) {
    RdGbgResult result = GenerateRdGbg(ds, cfg);
    balls = result.balls.size();
    benchmark::DoNotOptimize(balls);
  }
  state.counters["balls"] = balls;
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_RdGbgStrategy)
    ->ArgNames({"n", "d", "tree"})
    ->ArgsProduct({{2000, 20000}, {2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end GBABS (granulation + borderline sampling) for the pipeline
// view; sampling is O(p*m log m) over balls, so granulation dominates.
void BM_Gbabs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Dataset& ds = CachedBlobs(n, /*overlapping=*/true);
  GbabsConfig cfg;
  cfg.gbg.seed = 42;
  cfg.gbg.num_threads = threads;
  for (auto _ : state) {
    GbabsResult result = RunGbabs(ds, cfg);
    benchmark::DoNotOptimize(result.sampled_indices.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_Gbabs)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{1000, 5000}, {1, 0}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// main() comes from benchmark::benchmark_main, as for bench_micro.
}  // namespace
}  // namespace gbx
