// Granulation hot-path microbenchmark (google-benchmark): wall-clock for
// GenerateRdGbg across dataset size x thread count x geometry, backing the
// parallel RD-GBG rewrite. Two regimes:
//   overlap:0 — well-separated blobs: few rounds, cost dominated by the
//               per-candidate distance scans;
//   overlap:1 — heavily overlapping blobs: thousands of rounds and balls,
//               the seed implementation's worst case (full O(n log n)
//               neighbor sort per candidate).
// threads:0 resolves to GBX_THREADS / hardware concurrency; threads:1 is
// the serial baseline. Granulation output is bit-identical across thread
// counts, so the rows differ only in wall time.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "bench_json.h"
#include "common/rng.h"
#include "core/gbabs.h"
#include "core/rd_gbg.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

const Dataset& CachedBlobs(int n, bool overlapping) {
  static std::map<std::pair<int, bool>, Dataset> cache;
  const auto key = std::make_pair(n, overlapping);
  auto it = cache.find(key);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    if (overlapping) {
      cfg.num_classes = 4;
      cfg.num_features = 10;
      cfg.clusters_per_class = 3;
      cfg.center_spread = 4.0;
      cfg.cluster_std = 1.2;
    } else {
      cfg.num_classes = 3;
      cfg.num_features = 8;
      cfg.clusters_per_class = 2;
      cfg.center_spread = 6.0;
      cfg.cluster_std = 1.0;
    }
    Pcg32 rng(123);
    it = cache.emplace(key, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

void BM_RdGbg(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool overlapping = state.range(2) != 0;
  const Dataset& ds = CachedBlobs(n, overlapping);
  RdGbgConfig cfg;
  cfg.seed = 42;
  cfg.num_threads = threads;
  int balls = 0;
  for (auto _ : state) {
    RdGbgResult result = GenerateRdGbg(ds, cfg);
    balls = result.balls.size();
    benchmark::DoNotOptimize(balls);
  }
  state.counters["balls"] = balls;
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_RdGbg)
    ->ArgNames({"n", "threads", "overlap"})
    ->ArgsProduct({{1000, 5000, 20000}, {1, 0}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The IndexStrategy axis: the same granulation under the flat parallel
// scan (strategy:0) vs the DynamicKdTree (strategy:1) vs the metric
// BallTree (strategy:2), each also flipping the r_conf pass to the
// BallSurfaceIndex when a tree strategy is selected. Output is
// bit-identical (thread_determinism_test), so the rows differ only in
// wall time; these curves are the measured crossover behind kAuto's
// thresholds (index/index_strategy.cc). Dimensionality is the deciding
// axis — the KD-tree owns d<=4 at scale, the ball-tree extends tree
// wins to d~8 where box pruning has concentrated away, and past that
// the flat parallel scan wins again.
const Dataset& CachedBlobsDim(int n, int d) {
  static std::map<std::pair<int, int>, Dataset> cache;
  const auto key = std::make_pair(n, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    cfg.num_classes = 4;
    cfg.num_features = d;
    cfg.clusters_per_class = 3;
    cfg.center_spread = 4.0;
    cfg.cluster_std = 1.2;
    Pcg32 rng(123);
    it = cache.emplace(key, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

void BM_RdGbgStrategy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Dataset& ds = CachedBlobsDim(n, d);
  RdGbgConfig cfg;
  cfg.seed = 42;
  cfg.num_threads = 0;
  cfg.index_strategy = benchjson::StrategyFromAxis(static_cast<int>(state.range(2)));
  int balls = 0;
  for (auto _ : state) {
    RdGbgResult result = GenerateRdGbg(ds, cfg);
    balls = result.balls.size();
    benchmark::DoNotOptimize(balls);
  }
  state.counters["balls"] = balls;
  state.SetItemsProcessed(state.iterations() * n);
}

// strategy:4 is kAuto — the row that must never lose to the best of the
// forced strategies by more than noise, and must beat forced-flat
// wherever a tree or the surface index is ahead.
BENCHMARK(BM_RdGbgStrategy)
    ->ArgNames({"n", "d", "strategy"})
    ->ArgsProduct({{2000, 20000}, {2, 4, 8, 12}, {0, 1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The structured regime: rotated informative-subspace data — low
// intrinsic dimensionality (EffectiveDimension ≈ 3.5) at any ambient d,
// the geometry real tabular data occupies. Here tree pruning survives
// past the isotropic d~6 wall (KD-tree 1.6× ahead of flat at d=8), and
// kAuto's d_eff gate must detect it and pick the tree where forced-flat
// loses.
const Dataset& CachedStructured(int n, int d) {
  static std::map<std::pair<int, int>, Dataset> cache;
  const auto key = std::make_pair(n, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    HighDimConfig cfg;
    cfg.num_samples = n;
    cfg.num_features = d;
    cfg.num_informative = 4;
    cfg.num_classes = 4;
    cfg.clusters_per_class = 3;
    cfg.class_sep = 2.0;
    cfg.noise_std = 0.25;
    Pcg32 rng(7);
    Dataset ds = MakeInformativeHighDim(cfg, &rng);
    Matrix x = ds.x();
    Pcg32 rot_rng(99 + d);
    RotateFeatures(&x, &rot_rng);
    it = cache
             .emplace(key, Dataset(std::move(x), std::vector<int>(ds.y()),
                                   ds.num_classes()))
             .first;
  }
  return it->second;
}

void BM_RdGbgStructured(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Dataset& ds = CachedStructured(n, d);
  RdGbgConfig cfg;
  cfg.seed = 42;
  cfg.num_threads = 0;
  cfg.index_strategy = benchjson::StrategyFromAxis(static_cast<int>(state.range(2)));
  int balls = 0;
  for (auto _ : state) {
    RdGbgResult result = GenerateRdGbg(ds, cfg);
    balls = result.balls.size();
    benchmark::DoNotOptimize(balls);
  }
  state.counters["balls"] = balls;
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_RdGbgStructured)
    ->ArgNames({"n", "d", "strategy"})
    ->ArgsProduct({{2000, 20000}, {8, 16}, {0, 1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end GBABS (granulation + borderline sampling) for the pipeline
// view; sampling is O(p*m log m) over balls, so granulation dominates.
void BM_Gbabs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Dataset& ds = CachedBlobs(n, /*overlapping=*/true);
  GbabsConfig cfg;
  cfg.gbg.seed = 42;
  cfg.gbg.num_threads = threads;
  for (auto _ : state) {
    GbabsResult result = RunGbabs(ds, cfg);
    benchmark::DoNotOptimize(result.sampled_indices.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_Gbabs)
    ->ArgNames({"n", "threads"})
    ->ArgsProduct({{1000, 5000}, {1, 0}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace gbx

// Custom main (instead of benchmark::benchmark_main) for the --json
// machine-readable report mode; see bench_json.h.
int main(int argc, char** argv) {
  return gbx::benchjson::BenchMain(argc, argv);
}
