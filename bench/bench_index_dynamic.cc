// Dynamic-index microbenchmark (google-benchmark): the strategy
// crossovers behind the IndexStrategy knob, on the index workloads the
// granulation and GB-kNN hot paths are built from.
//
//   BM_DrainKnn         — RD-GBG's neighbor shape: k-NN queries against a
//                         point set that shrinks as queried points are
//                         removed (strategy:0 flat rescan, strategy:1
//                         DynamicKdTree, strategy:2 metric BallTree, both
//                         trees with tombstones + amortized rebuild).
//                         Flat is O(n·d) per query; a tree pays O(log n)
//                         amortized while its pruning holds, so the gap
//                         widens with n and closes with d — the ball-tree
//                         closes later than the KD-tree.
//   BM_SurfaceGapDrain  — RD-GBG's conflict-radius shape: ball i is
//                         queried for min_j<i (dist − r_j), then
//                         inserted — exactly the r_conf pass's
//                         interleaving. strategy:0 is the flat gap scan
//                         (O(B²) total), strategy:3 the incremental
//                         BallSurfaceIndex (sublinear per query).
//   BM_CenterSurfaceKnn — GB-kNN's center shape: KNearestSurface over a
//                         fixed clustered center set (strategy 0/1/2),
//                         isolating the center-scan crossover out to the
//                         dimensionalities where box pruning has died.
//   BM_GbKnnPredict     — end-to-end GB-kNN inference: a fitted model
//                         serving a query batch under each strategy.
//   BM_CenterScanPairwise / BM_CenterScanKernel — the surface-score
//                         scan itself: the per-pair EuclideanDistance
//                         loop GB-kNN used through PR 5 vs the batched
//                         SoA kernel (src/simd/) per dispatch level
//                         (simd axis: 0 scalar, 1 neon, 2 avx2,
//                         3 avx512; unsupported levels skip). The
//                         kernel speedup table in README comes from
//                         these rows.
//   BM_GbKnnPredictSampled — the approximate tier's recall/speed curve:
//                         kSampled at recall ∈ {0.5, 0.9, 0.99, 1.0}.
//
// kAuto's thresholds in index/index_strategy.cc are picked from these
// curves. Every strategy produces bit-identical results, so rows differ
// only in wall time. --json=FILE additionally writes the rows as a flat
// JSON array (bench_json.h) — the BENCH_pr5.json perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "index/ball_surface_index.h"
#include "index/ball_tree.h"
#include "index/dynamic_kd_tree.h"
#include "ml/gb_knn.h"
#include "simd/simd.h"

namespace gbx {
namespace {

const Matrix& CachedPoints(int n, int d) {
  static std::map<std::pair<int, int>, Matrix> cache;
  const auto key = std::make_pair(n, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Pcg32 rng(99 + n + d);
    Matrix m(n, d);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) m.At(i, j) = rng.NextGaussian();
    }
    it = cache.emplace(key, std::move(m)).first;
  }
  return it->second;
}

// One drain step under the flat strategy: scan every live point except
// the query point itself (matching the tree path's `exclude`),
// partial-select the k nearest by (dist2, index) — the same work
// RD-GBG's flat per-candidate pass performs (serially, so the
// strategies compare algorithmically rather than by thread count).
void FlatKnnStep(const Matrix& pts, const std::vector<int>& live,
                 const double* q, int exclude, int k,
                 std::vector<SquaredNeighbor>* scratch) {
  scratch->clear();
  for (int id : live) {
    if (id == exclude) continue;
    scratch->push_back(
        SquaredNeighbor{SquaredDistance(q, pts.Row(id), pts.cols()), id});
  }
  const std::size_t kk = std::min<std::size_t>(k, scratch->size());
  std::nth_element(scratch->begin(), scratch->begin() + kk, scratch->end());
  std::sort(scratch->begin(), scratch->begin() + kk);
  benchmark::DoNotOptimize(scratch->data());
}

template <typename Tree>
void DrainWithTree(const Matrix& pts, int n, int k) {
  Pcg32 rng(7);
  Tree tree(&pts);
  const int kQueries = std::min(2000, n);
  for (int step = 0; step < kQueries; ++step) {
    // Query at a random live point, then remove it — the shrinking
    // U-set access pattern.
    int id;
    do {
      id = static_cast<int>(rng.NextBounded(n));
    } while (!tree.alive(id));
    const auto nns = tree.KNearestSquared(pts.Row(id), k, /*exclude=*/id);
    benchmark::DoNotOptimize(nns.data());
    tree.Remove(id);
  }
}

void BM_DrainKnn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int strategy = static_cast<int>(state.range(2));
  const int kQueries = std::min(2000, n);  // query+remove steps per iteration
  const int kNeighbors = 16;
  const Matrix& pts = CachedPoints(n, d);

  for (auto _ : state) {
    if (strategy == 1) {
      DrainWithTree<DynamicKdTree>(pts, n, kNeighbors);
    } else if (strategy == 2) {
      DrainWithTree<BallTree>(pts, n, kNeighbors);
    } else {
      Pcg32 rng(7);
      std::vector<int> live(n);
      std::vector<int> pos(n);  // O(1) swap-removal from the live list
      for (int i = 0; i < n; ++i) live[i] = pos[i] = i;
      std::vector<char> alive(n, 1);
      std::vector<SquaredNeighbor> scratch;
      scratch.reserve(n);
      for (int step = 0; step < kQueries; ++step) {
        int id;
        do {
          id = static_cast<int>(rng.NextBounded(n));
        } while (!alive[id]);
        FlatKnnStep(pts, live, pts.Row(id), id, kNeighbors, &scratch);
        alive[id] = 0;
        const int last = live.back();
        live[pos[id]] = last;
        pos[last] = pos[id];
        live.pop_back();
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}

BENCHMARK(BM_DrainKnn)
    ->ArgNames({"n", "d", "strategy"})
    ->ArgsProduct({{2000, 8000, 20000, 50000}, {8, 16}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Granulation-shaped balls for the surface workloads: clustered centers
// (balls live where the data lives) with small radii, so the index sees
// the geometry the r_conf pass actually produces. Two regimes:
// isotropic Gaussian blobs (every dimension carries independent signal —
// distance concentration at its worst), and rotated
// informative-subspace data (low intrinsic dimensionality at any
// ambient d, EffectiveDimension ≈ 3.5 — the structure real tabular
// data carries, and the regime kAuto's d_eff gate detects).
struct BallSet {
  Matrix centers;
  std::vector<double> radii;
};

const BallSet& CachedBalls(int m, int d, bool structured = false) {
  static std::map<std::tuple<int, int, bool>, BallSet> cache;
  const auto key = std::make_tuple(m, d, structured);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Pcg32 rng(321 + m + d);
    Matrix centers(0, 0);
    if (structured) {
      HighDimConfig cfg;
      cfg.num_samples = m;
      cfg.num_features = d;
      cfg.num_informative = 4;
      cfg.num_classes = 4;
      cfg.clusters_per_class = 3;
      cfg.class_sep = 2.0;
      cfg.noise_std = 0.25;
      centers = MakeInformativeHighDim(cfg, &rng).x();
      Pcg32 rot_rng(99 + d);
      RotateFeatures(&centers, &rot_rng);
    } else {
      BlobsConfig cfg;
      cfg.num_samples = m;
      cfg.num_classes = 4;
      cfg.num_features = d;
      cfg.clusters_per_class = 3;
      cfg.center_spread = 4.0;
      cfg.cluster_std = 1.2;
      centers = MakeGaussianBlobs(cfg, &rng).x();
    }
    BallSet set{std::move(centers), {}};
    set.radii.resize(m);
    for (int i = 0; i < m; ++i) set.radii[i] = rng.NextDouble() * 0.3;
    it = cache.emplace(key, std::move(set)).first;
  }
  return it->second;
}

// The r_conf interleaving, isolated: for every ball, query the minimum
// surface gap against the balls generated before it, then insert it.
void BM_SurfaceGapDrain(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const bool use_index = state.range(2) != 0;
  const BallSet& balls = CachedBalls(m, d);

  for (auto _ : state) {
    double sink = 0.0;
    if (use_index) {
      BallSurfaceIndex index(d);
      for (int i = 0; i < m; ++i) {
        sink += index.MinSurfaceGap(balls.centers.Row(i));
        index.Insert(balls.centers.Row(i), balls.radii[i]);
      }
    } else {
      // The flat gap scan, serial (the strategies compare
      // algorithmically; the real pass parallelizes the flat fill).
      for (int i = 0; i < m; ++i) {
        const double* q = balls.centers.Row(i);
        double best = std::numeric_limits<double>::infinity();
        for (int j = 0; j < i; ++j) {
          best = std::min(best,
                          EuclideanDistance(q, balls.centers.Row(j), d) -
                              balls.radii[j]);
        }
        sink += best;
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * m);
}

BENCHMARK(BM_SurfaceGapDrain)
    ->ArgNames({"n", "d", "strategy"})
    ->ArgsProduct({{2000, 8000, 32000}, {2, 10}, {0, 3}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// GB-kNN's center scan in isolation: KNearestSurface (k=3) over a fixed
// clustered center set, per strategy, out to dimensionalities where the
// KD-tree's box pruning has concentrated away. On the isotropic
// geometry the flat scan retakes the lead past d~10 — distance
// concentration is physics — while on the structured (low intrinsic
// dimension) geometry both trees keep multiplying, with the ball-tree's
// metric pruning ahead of the boxes from d>=16.
void CenterSurfaceKnnImpl(benchmark::State& state, bool structured) {
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int strategy = static_cast<int>(state.range(2));
  const int kQueries = 2000;
  const int kNeighbors = 3;
  const BallSet& balls = CachedBalls(m, d, structured);
  const Matrix& queries = CachedBalls(kQueries, d, structured).centers;

  std::unique_ptr<DynamicKdTree> kd;
  std::unique_ptr<BallTree> ball;
  if (strategy == 1) {
    kd = std::make_unique<DynamicKdTree>(&balls.centers, balls.radii.data());
  } else if (strategy == 2) {
    ball = std::make_unique<BallTree>(&balls.centers, balls.radii.data());
  }

  std::vector<std::pair<double, int>> dists(m);
  for (auto _ : state) {
    for (int qi = 0; qi < kQueries; ++qi) {
      const double* q = queries.Row(qi);
      if (kd != nullptr) {
        const auto top = kd->KNearestSurface(q, kNeighbors);
        benchmark::DoNotOptimize(top.data());
      } else if (ball != nullptr) {
        const auto top = ball->KNearestSurface(q, kNeighbors);
        benchmark::DoNotOptimize(top.data());
      } else {
        // The flat center scan, as GbKnnClassifier::Predict performs it
        // (serially — one query's scan; the pool parallelism lives a
        // level up).
        for (int i = 0; i < m; ++i) {
          const double dist =
              EuclideanDistance(q, balls.centers.Row(i), d);
          const double r = balls.radii[i];
          dists[i] = {dist <= r ? dist - r : dist, i};
        }
        std::partial_sort(dists.begin(), dists.begin() + kNeighbors,
                          dists.end());
        benchmark::DoNotOptimize(dists.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}

void BM_CenterSurfaceKnn(benchmark::State& state) {
  CenterSurfaceKnnImpl(state, /*structured=*/false);
}

void BM_CenterSurfaceKnnStructured(benchmark::State& state) {
  CenterSurfaceKnnImpl(state, /*structured=*/true);
}

BENCHMARK(BM_CenterSurfaceKnn)
    ->ArgNames({"n", "d", "strategy"})
    ->ArgsProduct({{2000, 16000}, {8, 16, 24, 32}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_CenterSurfaceKnnStructured)
    ->ArgNames({"n", "d", "strategy"})
    ->ArgsProduct({{2000, 16000}, {16, 24, 32}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The surface-score scan isolated from selection: score every ball
// against every query, no partial_sort — a pure distance-kernel
// apples-to-apples. Pairwise is the loop shape GbKnnClassifier::Predict
// and the r_conf pass used through PR 5 (per-pair EuclideanDistance
// over row-major centers); Kernel is the batched SoA scan per forced
// dispatch level. Both serial: the pool parallelism lives a level up
// either way.
constexpr int kScanQueries = 200;

void BM_CenterScanPairwise(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const BallSet& balls = CachedBalls(m, d);
  const Matrix& queries = CachedBalls(kScanQueries, d).centers;
  std::vector<double> scores(m);
  for (auto _ : state) {
    for (int qi = 0; qi < kScanQueries; ++qi) {
      const double* q = queries.Row(qi);
      for (int i = 0; i < m; ++i) {
        const double dist = EuclideanDistance(q, balls.centers.Row(i), d);
        const double r = balls.radii[i];
        scores[i] = dist <= r ? dist - r : dist;
      }
      benchmark::DoNotOptimize(scores.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kScanQueries);
}

void BM_CenterScanKernel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const auto level = static_cast<simd::Level>(state.range(2));
  if (!simd::Supported(level)) {
    state.SkipWithError("simd level unsupported on this host");
    return;
  }
  simd::SetLevelForTest(level);
  const BallSet& balls = CachedBalls(m, d);
  const SoaMatrix soa = SoaMatrix::FromMatrix(balls.centers);
  const Matrix& queries = CachedBalls(kScanQueries, d).centers;
  std::vector<double> scores(m);
  for (auto _ : state) {
    for (int qi = 0; qi < kScanQueries; ++qi) {
      simd::SurfaceScores(queries.Row(qi), soa, balls.radii.data(), 0, m,
                          scores.data());
      benchmark::DoNotOptimize(scores.data());
    }
  }
  simd::ReresolveFromEnvForTest();  // restore the process-wide level
  state.SetItemsProcessed(state.iterations() * kScanQueries);
}

BENCHMARK(BM_CenterScanPairwise)
    ->ArgNames({"n", "d"})
    ->ArgsProduct({{16000}, {2, 10, 32, 128}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_CenterScanKernel)
    ->ArgNames({"n", "d", "simd"})
    ->ArgsProduct({{16000}, {2, 10, 32, 128}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

const Dataset& CachedBlobs(int n) {
  static std::map<int, Dataset> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    cfg.num_classes = 4;
    cfg.num_features = 10;
    cfg.clusters_per_class = 3;
    cfg.center_spread = 4.0;
    cfg.cluster_std = 1.2;
    Pcg32 rng(123);
    it = cache.emplace(n, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

const GbKnnClassifier& CachedModel(int n, IndexStrategy strategy) {
  static std::map<std::pair<int, int>, GbKnnClassifier> cache;
  const auto key = std::make_pair(n, static_cast<int>(strategy));
  auto it = cache.find(key);
  if (it == cache.end()) {
    RdGbgConfig gbg;
    gbg.seed = 42;
    gbg.index_strategy = strategy;
    GbKnnClassifier model(gbg, /*k=*/3);
    Pcg32 rng(5);
    model.Fit(CachedBlobs(n), &rng);
    it = cache.emplace(key, std::move(model)).first;
  }
  return it->second;
}

void BM_GbKnnPredict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GbKnnClassifier& model =
      CachedModel(n, benchjson::StrategyFromAxis(static_cast<int>(state.range(1))));
  const Dataset& queries = CachedBlobs(2000);
  for (auto _ : state) {
    const std::vector<int> out = model.PredictBatch(queries.x());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["balls"] = model.num_balls();
  state.SetItemsProcessed(state.iterations() * queries.size());
}

// strategy:4 is kAuto, strategy:5 kSampled at its default recall 1.0
// (the bit-identical configuration — the speed curve below recall 1 is
// BM_GbKnnPredictSampled's). Re-measured under GBX_THREADS ∈ {1, 4, 8},
// the strategy margins (and therefore kAuto's pick) are
// thread-invariant — batch prediction parallelizes over queries for
// every strategy — which is exactly why ResolveCenterIndexStrategy
// keeps its bars independent of the worker count (rationale in
// index_strategy.cc).
BENCHMARK(BM_GbKnnPredict)
    ->ArgNames({"n", "strategy"})
    ->ArgsProduct({{1000, 5000, 20000}, {0, 1, 2, 4, 5}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The approximate tier's speed side (tests/recall_test.cc measures the
// recall side): kSampled at recall ∈ {0.5, 0.9, 0.99, 1.0} — the
// `recall` axis is percent.
void BM_GbKnnPredictSampled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int recall_pct = static_cast<int>(state.range(1));
  GbKnnClassifier model = CachedModel(n, IndexStrategy::kSampled);
  model.set_recall_target(recall_pct / 100.0);
  const Dataset& queries = CachedBlobs(2000);
  for (auto _ : state) {
    const std::vector<int> out = model.PredictBatch(queries.x());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["balls"] = model.num_balls();
  state.SetItemsProcessed(state.iterations() * queries.size());
}

BENCHMARK(BM_GbKnnPredictSampled)
    ->ArgNames({"n", "recall"})
    ->ArgsProduct({{20000}, {50, 90, 99, 100}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace gbx

// Custom main (instead of benchmark::benchmark_main) for the --json
// machine-readable report mode; see bench_json.h.
int main(int argc, char** argv) {
  return gbx::benchjson::BenchMain(argc, argv);
}
