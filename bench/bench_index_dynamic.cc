// Dynamic-index microbenchmark (google-benchmark): the flat-vs-tree
// crossover behind the IndexStrategy knob, on the two workloads the
// DynamicKdTree was built for.
//
//   BM_DrainKnn        — RD-GBG's shape: k-NN queries against a point set
//                        that shrinks as queried points are removed
//                        (strategy:0 flat rescan, strategy:1 tree with
//                        tombstones + amortized rebuild). Flat is
//                        O(n·d) per query; the tree pays O(log n)
//                        amortized, so the gap widens with n.
//   BM_GbKnnPredict    — GB-kNN inference over ball centers: a fitted
//                        model serving a query batch with the flat scan
//                        vs the center KD-tree built at Fit.
//
// kAuto's thresholds in index/index_strategy.cc are picked from these
// curves: within noise at small n, clear tree win from ~8k points
// (drain) / ~512 balls (centers) in indexable dimensionality.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "index/dynamic_kd_tree.h"
#include "ml/gb_knn.h"

namespace gbx {
namespace {

const Matrix& CachedPoints(int n, int d) {
  static std::map<std::pair<int, int>, Matrix> cache;
  const auto key = std::make_pair(n, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Pcg32 rng(99 + n + d);
    Matrix m(n, d);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) m.At(i, j) = rng.NextGaussian();
    }
    it = cache.emplace(key, std::move(m)).first;
  }
  return it->second;
}

// One drain step under the flat strategy: scan every live point except
// the query point itself (matching the tree path's `exclude`),
// partial-select the k nearest by (dist2, index) — the same work
// RD-GBG's flat per-candidate pass performs (serially, so the two
// strategies compare algorithmically rather than by thread count).
void FlatKnnStep(const Matrix& pts, const std::vector<int>& live,
                 const double* q, int exclude, int k,
                 std::vector<SquaredNeighbor>* scratch) {
  scratch->clear();
  for (int id : live) {
    if (id == exclude) continue;
    scratch->push_back(
        SquaredNeighbor{SquaredDistance(q, pts.Row(id), pts.cols()), id});
  }
  const std::size_t kk = std::min<std::size_t>(k, scratch->size());
  std::nth_element(scratch->begin(), scratch->begin() + kk, scratch->end());
  std::sort(scratch->begin(), scratch->begin() + kk);
  benchmark::DoNotOptimize(scratch->data());
}

void BM_DrainKnn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const bool tree_strategy = state.range(2) != 0;
  const int kQueries = 2000;  // query+remove steps per iteration
  const int kNeighbors = 16;
  const Matrix& pts = CachedPoints(n, d);

  for (auto _ : state) {
    Pcg32 rng(7);
    if (tree_strategy) {
      DynamicKdTree tree(&pts);
      for (int step = 0; step < kQueries; ++step) {
        // Query at a random live point, then remove it — the shrinking
        // U-set access pattern.
        int id;
        do {
          id = static_cast<int>(rng.NextBounded(n));
        } while (!tree.alive(id));
        const auto nns =
            tree.KNearestSquared(pts.Row(id), kNeighbors, /*exclude=*/id);
        benchmark::DoNotOptimize(nns.data());
        tree.Remove(id);
      }
    } else {
      std::vector<int> live(n);
      std::vector<int> pos(n);  // O(1) swap-removal from the live list
      for (int i = 0; i < n; ++i) live[i] = pos[i] = i;
      std::vector<char> alive(n, 1);
      std::vector<SquaredNeighbor> scratch;
      scratch.reserve(n);
      for (int step = 0; step < kQueries; ++step) {
        int id;
        do {
          id = static_cast<int>(rng.NextBounded(n));
        } while (!alive[id]);
        FlatKnnStep(pts, live, pts.Row(id), id, kNeighbors, &scratch);
        alive[id] = 0;
        const int last = live.back();
        live[pos[id]] = last;
        pos[last] = pos[id];
        live.pop_back();
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}

BENCHMARK(BM_DrainKnn)
    ->ArgNames({"n", "d", "tree"})
    ->ArgsProduct({{2000, 8000, 20000, 50000}, {8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

const Dataset& CachedBlobs(int n) {
  static std::map<int, Dataset> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    BlobsConfig cfg;
    cfg.num_samples = n;
    cfg.num_classes = 4;
    cfg.num_features = 10;
    cfg.clusters_per_class = 3;
    cfg.center_spread = 4.0;
    cfg.cluster_std = 1.2;
    Pcg32 rng(123);
    it = cache.emplace(n, MakeGaussianBlobs(cfg, &rng)).first;
  }
  return it->second;
}

const GbKnnClassifier& CachedModel(int n, IndexStrategy strategy) {
  static std::map<std::pair<int, int>, GbKnnClassifier> cache;
  const auto key = std::make_pair(n, static_cast<int>(strategy));
  auto it = cache.find(key);
  if (it == cache.end()) {
    RdGbgConfig gbg;
    gbg.seed = 42;
    gbg.index_strategy = strategy;
    GbKnnClassifier model(gbg, /*k=*/3);
    Pcg32 rng(5);
    model.Fit(CachedBlobs(n), &rng);
    it = cache.emplace(key, std::move(model)).first;
  }
  return it->second;
}

void BM_GbKnnPredict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool tree_strategy = state.range(1) != 0;
  const GbKnnClassifier& model = CachedModel(
      n, tree_strategy ? IndexStrategy::kTree : IndexStrategy::kFlat);
  const Dataset& queries = CachedBlobs(2000);
  for (auto _ : state) {
    const std::vector<int> out = model.PredictBatch(queries.x());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["balls"] = model.num_balls();
  state.SetItemsProcessed(state.iterations() * queries.size());
}

BENCHMARK(BM_GbKnnPredict)
    ->ArgNames({"n", "tree"})
    ->ArgsProduct({{1000, 5000, 20000}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// main() comes from benchmark::benchmark_main, as for bench_micro.
}  // namespace
}  // namespace gbx
