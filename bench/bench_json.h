// --json=FILE support for the google-benchmark suites
// (bench_granulation, bench_index_dynamic): a reporter that keeps the
// normal console output and additionally tees every measured run into a
// flat JSON array of rows
//     {"op": "RdGbgStrategy", "n": 20000, "d": 8, "strategy": "balltree",
//      "simd": "avx512", "ms": 123.4}
// — the machine-readable perf trajectory committed as BENCH_pr5.json /
// BENCH_pr9.json and uploaded as a CI artifact. Rows carry the
// benchmark's ArgNames verbatim (n, d, threads, ...) plus the adjusted
// real time in the benchmark's declared unit (every suite here uses
// milliseconds); the `strategy` and `simd` arguments are translated
// through the IndexStrategy / simd::Level naming so downstream tooling
// never has to know the enum encodings. Every row carries a `simd`
// field: the benchmark's own axis when it sweeps dispatch levels
// explicitly, else the process-wide active level (GBX_SIMD-resolved) —
// so a perf row is never ambiguous about which kernels produced it.
#ifndef GBX_BENCH_BENCH_JSON_H_
#define GBX_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "index/index_strategy.h"
#include "simd/simd.h"

namespace gbx {
namespace benchjson {

/// The one strategy-axis encoding shared by every suite and by the JSON
/// reporter's name mapping below: 0 flat, 1 tree (KD), 2 balltree,
/// 3 surface (BallSurfaceIndex vs flat gap scan), 4 auto, 5 sampled.
inline IndexStrategy StrategyFromAxis(int value) {
  switch (value) {
    case 1:
      return IndexStrategy::kTree;
    case 2:
      return IndexStrategy::kBallTree;
    case 4:
      return IndexStrategy::kAuto;
    case 5:
      return IndexStrategy::kSampled;
    default:
      return IndexStrategy::kFlat;
  }
}

/// Removes a `--json=FILE` flag from argv (benchmark::Initialize would
/// reject it) and returns FILE, or "" when absent.
inline std::string ExtractJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(std::string path) : path_(std::move(path)) {}

  ~JsonRowReporter() override {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      rows_.push_back(RowJson(run));
    }
  }

 private:
  static const char* StrategyName(long long value) {
    switch (value) {
      case 0:
        return "flat";
      case 1:
        return "tree";
      case 2:
        return "balltree";
      case 3:
        return "surface";
      case 4:
        return "auto";
      case 5:
        return "sampled";
    }
    return "unknown";
  }

  // "BM_DrainKnn/n:2000/d:8/strategy:1/real_time" -> one flat row. Name
  // segments that are not key:value pairs (the op, /real_time, repeat
  // suffixes) are skipped.
  static std::string RowJson(const Run& run) {
    const std::string name = run.benchmark_name();
    std::string op;
    std::string fields;
    std::size_t start = 0;
    bool first_segment = true;
    bool has_simd = false;
    while (start <= name.size()) {
      std::size_t slash = name.find('/', start);
      if (slash == std::string::npos) slash = name.size();
      const std::string segment = name.substr(start, slash - start);
      start = slash + 1;
      if (first_segment) {
        first_segment = false;
        op = segment.rfind("BM_", 0) == 0 ? segment.substr(3) : segment;
        continue;
      }
      const std::size_t colon = segment.find(':');
      if (colon == std::string::npos) continue;
      const std::string key = segment.substr(0, colon);
      const std::string value = segment.substr(colon + 1);
      if (value.empty() ||
          value.find_first_not_of("-0123456789") != std::string::npos) {
        continue;
      }
      char buf[128];
      if (key == "strategy") {
        std::snprintf(buf, sizeof(buf), ", \"strategy\": \"%s\"",
                      StrategyName(std::stoll(value)));
      } else if (key == "simd") {
        // Explicit dispatch-level axis (simd::Level enum ints).
        has_simd = true;
        std::snprintf(buf, sizeof(buf), ", \"simd\": \"%s\"",
                      simd::LevelName(
                          static_cast<simd::Level>(std::stoll(value))));
      } else {
        std::snprintf(buf, sizeof(buf), ", \"%s\": %s", key.c_str(),
                      value.c_str());
      }
      fields += buf;
    }
    if (!has_simd) {
      fields += ", \"simd\": \"";
      fields += simd::ActiveName();
      fields += "\"";
    }
    char row[512];
    std::snprintf(row, sizeof(row), "{\"op\": \"%s\"%s, \"ms\": %.4f}",
                  op.c_str(), fields.c_str(), run.GetAdjustedRealTime());
    return row;
  }

  std::string path_;
  std::vector<std::string> rows_;
};

/// The shared main(): plain google-benchmark flags plus --json=FILE.
inline int BenchMain(int argc, char** argv) {
  const std::string json_path = ExtractJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonRowReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace benchjson
}  // namespace gbx

#endif  // GBX_BENCH_BENCH_JSON_H_
