// Microbenchmarks (google-benchmark): the §IV-B3 linear-time claim of
// RD-GBG (runtime vs N), GBABS end-to-end throughput, the classic
// purity-GBG baseline, neighbor search, and classifier training costs.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/gbabs.h"
#include "core/rd_gbg.h"
#include "data/synthetic.h"
#include "index/brute_force.h"
#include "index/kd_tree.h"
#include "ml/decision_tree.h"
#include "ml/lgbm.h"
#include "ml/xgb.h"
#include "sampling/purity_gbg.h"

namespace gbx {
namespace {

Dataset BenchBlobs(int n, int classes = 3, int features = 8) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = features;
  // Keep the point density constant as n grows so scaling benchmarks
  // measure algorithmic complexity, not a geometry that gets denser (and
  // therefore harder) with n.
  cfg.center_spread = 5.0 * std::sqrt(n / 1000.0);
  cfg.cluster_std = 0.8;
  Pcg32 rng(1234);
  return MakeGaussianBlobs(cfg, &rng);
}

void BM_RdGbg(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  RdGbgConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRdGbg(ds, cfg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RdGbg)->RangeMultiplier(2)->Range(1000, 16000)->Complexity();

void BM_Gbabs(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  GbabsConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunGbabs(ds, cfg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gbabs)->RangeMultiplier(2)->Range(1000, 16000)->Complexity();

void BM_PurityGbg(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  PurityGbgConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeneratePurityGbg(ds, cfg));
  }
}
BENCHMARK(BM_PurityGbg)->RangeMultiplier(2)->Range(1000, 8000);

void BM_KdTreeBuild(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    KdTree tree(&ds.x());
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_KdTreeBuild)->Range(1000, 16000);

void BM_KdTreeKnnQuery(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  KdTree tree(&ds.x());
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KNearest(ds.row(i), 5));
    i = (i + 1) % ds.size();
  }
}
BENCHMARK(BM_KdTreeKnnQuery)->Range(1000, 16000);

void BM_BruteForceKnnQuery(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  BruteForceIndex index(&ds.x());
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.KNearest(ds.row(i), 5));
    i = (i + 1) % ds.size();
  }
}
BENCHMARK(BM_BruteForceKnnQuery)->Range(1000, 16000);

void BM_DecisionTreeFit(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DecisionTreeClassifier dt;
    Pcg32 rng(7);
    dt.Fit(ds, &rng);
    benchmark::DoNotOptimize(dt.node_count());
  }
}
BENCHMARK(BM_DecisionTreeFit)->Range(1000, 8000);

void BM_XgBoostFit(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)), 2);
  XgBoostConfig cfg;
  cfg.num_rounds = 10;
  for (auto _ : state) {
    XgBoostClassifier xgb(cfg);
    Pcg32 rng(8);
    xgb.Fit(ds, &rng);
    benchmark::DoNotOptimize(xgb.Predict(ds.row(0)));
  }
}
BENCHMARK(BM_XgBoostFit)->Range(1000, 4000);

void BM_LightGbmFit(benchmark::State& state) {
  const Dataset ds = BenchBlobs(static_cast<int>(state.range(0)), 2);
  LightGbmConfig cfg;
  cfg.num_rounds = 10;
  for (auto _ : state) {
    LightGbmClassifier lgbm(cfg);
    Pcg32 rng(9);
    lgbm.Fit(ds, &rng);
    benchmark::DoNotOptimize(lgbm.Predict(ds.row(0)));
  }
}
BENCHMARK(BM_LightGbmFit)->Range(1000, 4000);

}  // namespace
}  // namespace gbx
