// Runtime study backing the paper's efficiency claims (§IV-B3 / §IV-C):
// wall-clock sampling time for every method as N grows, and the
// downstream classifier speedup from training on the sampled set. GBABS
// is expected to scale near-linearly, while sample-level borderline
// methods (Tomek) and oversamplers pay neighbor searches over all N.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "exp/table_printer.h"
#include "ml/decision_tree.h"
#include "sampling/sampler.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Runtime scaling: sampler cost and DT speedup vs N", config);

  const std::vector<int> sizes =
      config.full ? std::vector<int>{2000, 8000, 32000}
                  : std::vector<int>{1000, 2000, 4000, 8000};
  const std::vector<SamplerKind> kinds = {
      SamplerKind::kGbabs,          SamplerKind::kGgbs,
      SamplerKind::kIgbs,           SamplerKind::kSrs,
      SamplerKind::kSmote,          SamplerKind::kBorderlineSmote,
      SamplerKind::kSmotenc,        SamplerKind::kTomek};

  TablePrinter table({8, 8, 12, 10, 12, 12});
  table.PrintRow({"N", "sampler", "sample_ms", "ratio", "dt_fit_ms",
                  "dt_full_ms"});
  table.PrintSeparator();
  for (int n : sizes) {
    BlobsConfig data_cfg;
    data_cfg.num_samples = n;
    data_cfg.num_classes = 3;
    data_cfg.num_features = 8;
    data_cfg.class_weights = {4, 2, 1};
    data_cfg.center_spread = 5.0 * std::sqrt(n / 1000.0);
    data_cfg.cluster_std = 0.9;
    Pcg32 gen(config.seed + n);
    const Dataset ds = MakeGaussianBlobs(data_cfg, &gen);

    // Baseline: DT on the full data.
    Stopwatch full_watch;
    {
      DecisionTreeClassifier dt;
      Pcg32 rng(1);
      dt.Fit(ds, &rng);
    }
    const double dt_full_ms = full_watch.ElapsedMillis();

    for (SamplerKind kind : kinds) {
      const std::unique_ptr<Sampler> sampler = MakeSampler(kind);
      Pcg32 rng(config.seed);
      Stopwatch sample_watch;
      const Dataset sampled = sampler->Sample(ds, &rng);
      const double sample_ms = sample_watch.ElapsedMillis();

      Stopwatch fit_watch;
      DecisionTreeClassifier dt;
      Pcg32 fit_rng(2);
      dt.Fit(sampled, &fit_rng);
      const double fit_ms = fit_watch.ElapsedMillis();

      table.PrintRow({std::to_string(n), sampler->name(),
                      TablePrinter::Num(sample_ms, 1),
                      TablePrinter::Num(
                          static_cast<double>(sampled.size()) / ds.size(), 2),
                      TablePrinter::Num(fit_ms, 1),
                      TablePrinter::Num(dt_full_ms, 1)});
    }
    table.PrintSeparator();
  }
  return 0;
}
