// Table II: testing accuracy of a decision tree trained on GBABS / GGBS /
// SRS samples and on the raw data, over the 13 standard (clean) datasets.
// Paper shape: GBABS-DT has the best column average and wins on most rows.
#include <cstdio>

#include "bench_util.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Table II: DT accuracy per sampling method (clean datasets)",
               config);
  const ExperimentRunner runner(config);

  const std::vector<SamplerKind> samplers = {
      SamplerKind::kGbabs, SamplerKind::kGgbs, SamplerKind::kSrs,
      SamplerKind::kNone};

  std::vector<EvalRequest> requests;
  for (int d = 0; d < 13; ++d) {
    for (SamplerKind s : samplers) {
      EvalRequest r;
      r.dataset_index = d;
      r.sampler = s;
      r.classifier = ClassifierKind::kDecisionTree;
      requests.push_back(r);
    }
  }
  const std::vector<EvalResult> results = runner.EvaluateAll(requests);

  TablePrinter table({8, 10, 10, 10, 10});
  table.PrintRow({"dataset", "GBABS-DT", "GGBS-DT", "SRS-DT", "DT"});
  table.PrintSeparator();
  std::vector<double> column_sums(samplers.size(), 0.0);
  int gbabs_wins = 0;
  for (int d = 0; d < 13; ++d) {
    std::vector<std::string> row = {PaperDatasetSpecs()[d].id};
    double best = -1.0;
    int best_col = -1;
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      const double acc = results[d * samplers.size() + s].mean_accuracy;
      column_sums[s] += acc;
      row.push_back(TablePrinter::Num(acc));
      if (acc > best) {
        best = acc;
        best_col = static_cast<int>(s);
      }
    }
    if (best_col == 0) ++gbabs_wins;
    table.PrintRow(row);
  }
  table.PrintSeparator();
  std::vector<std::string> avg_row = {"Average"};
  for (double sum : column_sums) avg_row.push_back(TablePrinter::Num(sum / 13));
  table.PrintRow(avg_row);
  std::printf("GBABS-DT best on %d/13 datasets\n", gbabs_wins);
  return 0;
}
