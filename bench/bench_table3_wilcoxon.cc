// Table III: Wilcoxon signed-rank tests comparing GBABS-DT against
// GGBS-DT, SRS-DT and plain DT over the 13 per-dataset accuracies of
// Table II. Paper shape: all three comparisons significant at alpha=0.05.
#include <cstdio>

#include "bench_util.h"
#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "stats/wilcoxon.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Table III: Wilcoxon signed-rank on Table II accuracies",
               config);
  const ExperimentRunner runner(config);

  const std::vector<SamplerKind> samplers = {
      SamplerKind::kGbabs, SamplerKind::kGgbs, SamplerKind::kSrs,
      SamplerKind::kNone};
  std::vector<EvalRequest> requests;
  for (int d = 0; d < 13; ++d) {
    for (SamplerKind s : samplers) {
      EvalRequest r;
      r.dataset_index = d;
      r.sampler = s;
      r.classifier = ClassifierKind::kDecisionTree;
      requests.push_back(r);
    }
  }
  const std::vector<EvalResult> results = runner.EvaluateAll(requests);

  std::vector<std::vector<double>> accs(samplers.size(),
                                        std::vector<double>(13));
  for (int d = 0; d < 13; ++d) {
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      accs[s][d] = results[d * samplers.size() + s].mean_accuracy;
    }
  }

  TablePrinter table({26, 12, 14, 8});
  table.PrintRow({"Comparison", "p-value", "Significant?", "mode"});
  table.PrintSeparator();
  const std::vector<std::string> names = {"GGBS-DT", "SRS-DT", "DT"};
  for (std::size_t s = 1; s < samplers.size(); ++s) {
    const WilcoxonResult w = WilcoxonSignedRank(accs[0], accs[s]);
    table.PrintRow({"GBABS-DT vs. " + names[s - 1],
                    TablePrinter::Num(w.p_value, 6),
                    w.p_value < 0.05 ? "Significant" : "n.s.",
                    w.exact ? "exact" : "normal"});
  }
  return 0;
}
