// Table IV: average testing accuracy across the 13 datasets for the five
// classifiers (DT, XGBoost, LightGBM, kNN, RF) trained on GBABS / GGBS /
// SRS samples and on the raw data, at class noise ratios 5-40%. Paper
// shape: the GBABS-based classifier leads every (classifier, noise) row
// group, with the margin growing as noise rises.
#include <cstdio>

#include "bench_util.h"
#include "exp/runner.h"
#include "exp/table_printer.h"

int main(int argc, char** argv) {
  using namespace gbx;
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode("Table IV: average accuracy on class-noise datasets", config);
  const ExperimentRunner runner(config);

  const std::vector<double> noise_grid = NoiseGridNoisyOnly();
  const std::vector<SamplerKind> samplers = {
      SamplerKind::kGbabs, SamplerKind::kGgbs, SamplerKind::kSrs,
      SamplerKind::kNone};
  const std::vector<ClassifierKind> classifiers = AllClassifierKinds();

  std::vector<EvalRequest> requests;
  for (ClassifierKind clf : classifiers) {
    for (SamplerKind s : samplers) {
      for (double noise : noise_grid) {
        for (int d = 0; d < 13; ++d) {
          EvalRequest r;
          r.dataset_index = d;
          r.noise_ratio = noise;
          r.sampler = s;
          r.classifier = clf;
          requests.push_back(r);
        }
      }
    }
  }
  const std::vector<EvalResult> results = runner.EvaluateAll(requests);

  TablePrinter table({20, 8, 8, 8, 8, 8});
  std::vector<std::string> header = {"method"};
  for (double noise : noise_grid) {
    header.push_back(TablePrinter::Num(noise * 100, 0) + "%");
  }
  table.PrintRow(header);
  table.PrintSeparator();

  std::size_t idx = 0;
  for (ClassifierKind clf : classifiers) {
    for (SamplerKind s : samplers) {
      std::vector<std::string> row;
      const std::string clf_name = ClassifierKindName(clf);
      row.push_back(s == SamplerKind::kNone
                        ? clf_name
                        : SamplerKindName(s) + "-" + clf_name);
      for (std::size_t n = 0; n < noise_grid.size(); ++n) {
        double sum = 0.0;
        for (int d = 0; d < 13; ++d) sum += results[idx++].mean_accuracy;
        row.push_back(TablePrinter::Num(sum / 13));
      }
      table.PrintRow(row);
    }
    table.PrintSeparator();
  }
  return 0;
}
