#include "bench_util.h"

#include <cstdio>

#include "data/paper_suite.h"
#include "exp/runner.h"
#include "exp/table_printer.h"
#include "stats/kde.h"

namespace gbx {

void PrintRunMode(const std::string& experiment_name,
                  const ExperimentConfig& config) {
  std::printf("### %s\n", experiment_name.c_str());
  if (config.full) {
    std::printf("mode: FULL (paper scale; %d-fold CV x %d repeats)\n",
                config.cv_folds, config.cv_repeats);
  } else {
    std::printf(
        "mode: SCALED (datasets capped at %d samples, %d-fold CV x %d "
        "repeat(s), trimmed ensembles; pass --full or GBX_FULL=1 for paper "
        "scale)\n",
        config.max_samples, config.cv_folds, config.cv_repeats);
  }
  std::printf("seed: %llu\n",
              static_cast<unsigned long long>(config.seed));
}

std::vector<std::string> AllDatasetIds() {
  std::vector<std::string> ids;
  for (const auto& spec : PaperDatasetSpecs()) ids.push_back(spec.id);
  return ids;
}

std::vector<double> NoiseGridWithClean() {
  return {0.0, 0.05, 0.10, 0.20, 0.30, 0.40};
}

std::vector<double> NoiseGridNoisyOnly() {
  return {0.05, 0.10, 0.20, 0.30, 0.40};
}

int RunAccuracyDistributionFigure(const std::string& figure_name,
                                  int classifier_kind_int,
                                  const std::vector<double>& noise_ratios,
                                  int argc, char** argv) {
  const ExperimentConfig config = ExperimentConfig::FromArgs(argc, argv);
  PrintRunMode(figure_name, config);
  const ExperimentRunner runner(config);
  const auto classifier = static_cast<ClassifierKind>(classifier_kind_int);

  const std::vector<SamplerKind> samplers = {
      SamplerKind::kGbabs, SamplerKind::kGgbs, SamplerKind::kSrs,
      SamplerKind::kNone};

  std::vector<EvalRequest> requests;
  for (double noise : noise_ratios) {
    for (SamplerKind s : samplers) {
      for (int d = 0; d < 13; ++d) {
        EvalRequest r;
        r.dataset_index = d;
        r.noise_ratio = noise;
        r.sampler = s;
        r.classifier = classifier;
        requests.push_back(r);
      }
    }
  }
  const std::vector<EvalResult> results = runner.EvaluateAll(requests);

  std::size_t idx = 0;
  for (double noise : noise_ratios) {
    PrintBanner("Noise ratio " + TablePrinter::Num(noise * 100, 0) +
                "%: per-dataset accuracy");
    TablePrinter table({8, 8, 8, 8, 8});
    std::vector<std::string> header = {"dataset"};
    const std::string clf_name = ClassifierKindName(classifier);
    for (SamplerKind s : samplers) {
      header.push_back(s == SamplerKind::kNone ? "Ori" : SamplerKindName(s));
    }
    table.PrintRow(header);
    table.PrintSeparator();

    // accs[s] = 13 per-dataset accuracies for sampler s at this noise.
    std::vector<std::vector<double>> accs(samplers.size(),
                                          std::vector<double>(13));
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      for (int d = 0; d < 13; ++d) {
        accs[s][d] = results[idx++].mean_accuracy;
      }
    }
    for (int d = 0; d < 13; ++d) {
      std::vector<std::string> row = {PaperDatasetSpecs()[d].id};
      for (std::size_t s = 0; s < samplers.size(); ++s) {
        row.push_back(TablePrinter::Num(accs[s][d]));
      }
      table.PrintRow(row);
    }

    // KDE ridge series over accuracy in [0.3, 1.0] (matches the figure's
    // x-axis span) — 15 sample points per method.
    PrintBanner("Noise ratio " + TablePrinter::Num(noise * 100, 0) +
                "%: KDE density series (ridge plot curves)");
    const int kde_points = 15;
    TablePrinter kde_table({12, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7});
    std::vector<std::string> kde_header = {"method"};
    for (int i = 0; i < kde_points; ++i) {
      const double x = 0.3 + 0.7 * i / (kde_points - 1);
      kde_header.push_back(TablePrinter::Num(x, 2));
    }
    kde_table.PrintRow(kde_header);
    kde_table.PrintSeparator();
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      const std::vector<double> curve =
          KdeCurve(accs[s], 0.3, 1.0, kde_points);
      std::vector<std::string> row = {
          (samplers[s] == SamplerKind::kNone
               ? clf_name
               : SamplerKindName(samplers[s]) + "-" + clf_name)};
      for (double v : curve) row.push_back(TablePrinter::Num(v, 2));
      kde_table.PrintRow(row);
    }
    // Headline statistic of the figure: mean accuracy per method.
    std::printf("means:");
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      double sum = 0.0;
      for (double a : accs[s]) sum += a;
      std::printf(" %s=%.4f",
                  (samplers[s] == SamplerKind::kNone
                       ? clf_name
                       : SamplerKindName(samplers[s]) + "-" + clf_name)
                      .c_str(),
                  sum / accs[s].size());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace gbx
