// Shared helpers for the table/figure harness binaries.
#ifndef GBX_BENCH_BENCH_UTIL_H_
#define GBX_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "exp/experiment_config.h"

namespace gbx {

/// Prints the standard harness preamble: mode (scaled/full), dataset cap,
/// CV protocol.
void PrintRunMode(const std::string& experiment_name,
                  const ExperimentConfig& config);

/// "S1".."S13".
std::vector<std::string> AllDatasetIds();

/// Per-figure noise grids: Fig. 6/9 include the clean case.
std::vector<double> NoiseGridWithClean();
std::vector<double> NoiseGridNoisyOnly();

/// Shared implementation of the ridge-plot figures (Figs. 7 and 8):
/// evaluates one classifier under GBABS/GGBS/SRS/none sampling at two
/// noise ratios, prints the per-dataset accuracies and a Gaussian-KDE
/// density series per method.
int RunAccuracyDistributionFigure(const std::string& figure_name,
                                  int classifier_kind_int,
                                  const std::vector<double>& noise_ratios,
                                  int argc, char** argv);

}  // namespace gbx

#endif  // GBX_BENCH_BENCH_UTIL_H_
