// Recreates the Fig. 1 / Fig. 4 illustration pipeline on a 2-D dataset:
// runs RD-GBG, flags borderline balls, extracts borderline samples, and
// writes three plot-ready CSVs:
//   borderline_points.csv  — x0, x1, label, sampled flag per sample
//   borderline_balls.csv   — center, radius, label, borderline flag per ball
//   borderline_model.gb    — the serialized granular-ball set
//
//   $ ./borderline_viz [rings|banana]
#include <cstdio>
#include <cstring>
#include <fstream>

#include "gbx/gbx.h"

int main(int argc, char** argv) {
  using namespace gbx;

  Pcg32 data_rng(11);
  Dataset ds;
  if (argc > 1 && std::strcmp(argv[1], "rings") == 0) {
    RingsConfig cfg;
    cfg.num_samples = 1200;
    cfg.num_classes = 3;
    cfg.noise_std = 0.08;
    ds = MakeConcentricRings(cfg, &data_rng);
  } else {
    BananaConfig cfg;
    cfg.num_samples = 1200;
    cfg.noise_std = 0.2;
    ds = MakeBanana(cfg, &data_rng);
  }

  const GbabsResult result = RunGbabs(ds, GbabsConfig{});
  std::printf("%d samples -> %d balls (%zu borderline) -> %d borderline "
              "samples (ratio %.2f)\n",
              ds.size(), result.gbg.balls.size(),
              result.borderline_ball_ids.size(), result.sampled.size(),
              result.sampling_ratio);

  // Points with sampled flags.
  {
    std::ofstream out("borderline_points.csv");
    out << "x0,x1,label,sampled\n";
    std::vector<char> sampled(ds.size(), 0);
    for (int idx : result.sampled_indices) sampled[idx] = 1;
    for (int i = 0; i < ds.size(); ++i) {
      out << ds.feature(i, 0) << "," << ds.feature(i, 1) << ","
          << ds.label(i) << "," << static_cast<int>(sampled[i]) << "\n";
    }
  }
  // Balls (in the scaled space RD-GBG works in).
  {
    std::ofstream out("borderline_balls.csv");
    out << "c0,c1,radius,label,members,borderline\n";
    std::vector<char> borderline(result.gbg.balls.size(), 0);
    for (int id : result.borderline_ball_ids) borderline[id] = 1;
    for (int i = 0; i < result.gbg.balls.size(); ++i) {
      const GranularBall& ball = result.gbg.balls.ball(i);
      out << ball.center[0] << "," << ball.center[1] << "," << ball.radius
          << "," << ball.label << "," << ball.size() << ","
          << static_cast<int>(borderline[i]) << "\n";
    }
  }
  // Reusable model artifact.
  const Status saved =
      SaveGranularBalls(result.gbg.balls, "borderline_model.gb");
  std::printf("wrote borderline_points.csv, borderline_balls.csv, %s\n",
              saved.ok() ? "borderline_model.gb" : saved.ToString().c_str());
  return 0;
}
