// Scenario: handwritten-digit recognition (a USPS-like 256-dimensional
// 10-class problem, dataset S13 of the paper). Pipeline: PCA compresses
// the pixels, GBABS compresses the samples, kNN classifies. Shows how the
// pieces of the library compose, and how much of the data borderline
// sampling can drop in a many-class problem.
//
//   $ ./digit_pipeline
#include <cstdio>

#include "gbx/gbx.h"

int main() {
  using namespace gbx;

  const Dataset all = MakePaperDataset("S13", /*max_samples=*/3000,
                                       /*seed=*/99);
  Pcg32 split_rng(1);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  std::printf("USPS-like digits: %d train / %d test, %d features, %d "
              "classes\n",
              split.train.size(), split.test.size(), all.num_features(),
              all.num_classes());

  // 1. PCA to 32 components (fit on train only).
  Pcg32 pca_rng(2);
  const PcaResult pca = FitPca(split.train.x(), 32, &pca_rng);
  const Dataset train_small(PcaTransform(pca, split.train.x()),
                            split.train.y(), all.num_classes());
  const Dataset test_small(PcaTransform(pca, split.test.x()), split.test.y(),
                           all.num_classes());
  std::printf("PCA: 256 -> 32 dimensions\n");

  // 2. GBABS borderline sampling in the reduced space.
  const Stopwatch sample_watch;
  const GbabsResult gbabs = RunGbabs(train_small, GbabsConfig{});
  std::printf("GBABS: kept %d/%d samples (ratio %.2f) in %.0f ms\n",
              gbabs.sampled.size(), train_small.size(),
              gbabs.sampling_ratio, sample_watch.ElapsedMillis());

  // 3. kNN on the full vs the sampled training set.
  Pcg32 rng(3);
  KnnClassifier knn_full;
  knn_full.Fit(train_small, &rng);
  KnnClassifier knn_sampled;
  knn_sampled.Fit(gbabs.sampled, &rng);

  Stopwatch predict_watch;
  const std::vector<int> pred_full = knn_full.PredictBatch(test_small.x());
  const double full_ms = predict_watch.ElapsedMillis();
  predict_watch.Restart();
  const std::vector<int> pred_sampled =
      knn_sampled.PredictBatch(test_small.x());
  const double sampled_ms = predict_watch.ElapsedMillis();

  std::printf("kNN on full train:   accuracy %.4f (%.0f ms predict)\n",
              Accuracy(test_small.y(), pred_full), full_ms);
  std::printf("kNN on GBABS sample: accuracy %.4f (%.0f ms predict)\n",
              Accuracy(test_small.y(), pred_sampled), sampled_ms);
  // 4. GB-kNN: classify against ball surfaces instead of samples.
  GbKnnClassifier gbknn;
  Pcg32 gb_rng(4);
  gbknn.Fit(train_small, &gb_rng);
  predict_watch.Restart();
  const std::vector<int> pred_gb = gbknn.PredictBatch(test_small.x());
  std::printf("GB-kNN (%d balls):    accuracy %.4f (%.0f ms predict)\n",
              gbknn.num_balls(), Accuracy(test_small.y(), pred_gb),
              predict_watch.ElapsedMillis());
  std::printf(
      "Borderline sampling trades a sliver of accuracy for a smaller "
      "training set and faster neighbor queries; GB-kNN replaces the "
      "sample set with the granular-ball model entirely.\n");
  return 0;
}
