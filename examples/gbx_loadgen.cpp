// gbx_loadgen: load generator and socket client for the gbx_serve
// network front-end (serve/server.h, gbx-wire v1).
//
// Three modes against a running server (--host/--port):
//
//   --ping                  liveness probe: "!ping" -> "ok pong".
//                           Exit 0 iff the server answered; CI polls
//                           this while the server boots.
//
//   --queries FILE          replay: send every line of FILE (the
//     [--out FILE]          gbx_serve predict stdin format) as predict
//     [--model NAME]        frames — pipelined, answered in order — and
//                           write one label per line. Diffing --out
//                           against `gbx_serve predict` output proves
//                           socket serving is bit-identical to the
//                           stdin path (the CI socket smoke).
//
//   --qps N --seconds X     open-loop sustained load: requests are
//     [--connections C]     scheduled at fixed arrival times i/qps
//     [--model NAME]        across C connections and latency is
//     [--deadline-ms T]     measured FROM THE SCHEDULED TIME (so queue
//     [--retries R]         delay when the server falls behind is
//     [--backoff-ms B]      charged to it — no coordinated omission).
//                           Reports achieved QPS and p50/p99/max, plus
//                           a failure breakdown: ok / shed (UNAVAILABLE
//                           overload replies) / deadline_expired
//                           (DEADLINE_EXCEEDED) / transport / other.
//                           "ok" replies tagged "degraded recall=F" by
//                           the server's degradation ladder are counted
//                           as a `degraded` outcome class and bucketed
//                           into a served-quality histogram (count per
//                           recall level) printed next to the latency
//                           report — an overload run shows quality
//                           shifting down the ladder before sheds start.
//                           --deadline-ms attaches "timeout_ms=T" to
//                           every request; --retries R retries shed,
//                           deadline-expired, and transport failures up
//                           to R times with full-jitter exponential
//                           backoff (base --backoff-ms, default 5) —
//                           the well-behaved-client loop the server's
//                           overload replies are designed for.
//
//   --admin CMD             one-shot admin client: send CMD (e.g.
//                           "!stat default", "!metrics prom",
//                           "!trace slow") as a single frame and print
//                           the reply payload verbatim. The clean way
//                           to scrape a server — gbx-wire frames are
//                           length-prefixed, so raw nc needs hand-built
//                           length bytes.
//
// --print-server-metrics (open-loop mode) scrapes "!metrics json"
// before and after the run and prints the server-side delta — counter
// increments and histogram count/sum growth attributable to this load —
// next to the client-observed latency report.
//
// --self replaces --host/--port with an in-process server over a
// freshly trained GB-kNN model — the self-contained form the BENCH
// ctest smoke runs so serving regressions are measured like index
// regressions.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "ml/gb_knn.h"
#include "serve/model_io.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

using namespace gbx;

struct Args {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string model;  // "" = the server's default route
  std::string queries;
  std::string out;
  double qps = 1000.0;
  double seconds = 2.0;
  int connections = 4;
  double deadline_ms = 0.0;  // 0 = no per-request deadline
  int retries = 0;           // retry budget for shed/deadline/transport
  double backoff_ms = 5.0;   // full-jitter exponential backoff base
  bool ping = false;
  bool self = false;
  std::string admin;  // one-shot admin command, e.g. "!metrics prom"
  bool print_server_metrics = false;
  std::string dataset = "S5";
  int max_samples = 400;
  std::uint64_t seed = 7;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gbx_loadgen (--port N [--host H] | --self) --ping\n"
      "  gbx_loadgen (--port N [--host H] | --self) --queries FILE\n"
      "              [--out FILE] [--model NAME]\n"
      "  gbx_loadgen (--port N [--host H] | --self) --qps N --seconds X\n"
      "              [--connections C] [--model NAME] [--deadline-ms T]\n"
      "              [--retries R] [--backoff-ms B]\n"
      "              [--print-server-metrics]\n"
      "  gbx_loadgen (--port N [--host H] | --self) --admin CMD\n"
      "self-mode:    [--dataset S1..S13] [--max-samples N] [--seed N]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--ping") {
      args->ping = true;
    } else if (flag == "--self") {
      args->self = true;
    } else if (flag == "--print-server-metrics") {
      args->print_server_metrics = true;
    } else if (!(v = next())) {
      std::fprintf(stderr, "gbx_loadgen: %s needs a value\n", flag.c_str());
      return false;
    } else if (flag == "--host") {
      args->host = v;
    } else if (flag == "--port") {
      args->port = std::atoi(v);
    } else if (flag == "--model") {
      args->model = v;
    } else if (flag == "--queries") {
      args->queries = v;
    } else if (flag == "--out") {
      args->out = v;
    } else if (flag == "--qps") {
      args->qps = std::atof(v);
    } else if (flag == "--seconds") {
      args->seconds = std::atof(v);
    } else if (flag == "--connections") {
      args->connections = std::atoi(v);
    } else if (flag == "--deadline-ms") {
      args->deadline_ms = std::atof(v);
    } else if (flag == "--retries") {
      args->retries = std::atoi(v);
    } else if (flag == "--backoff-ms") {
      args->backoff_ms = std::atof(v);
    } else if (flag == "--dataset") {
      args->dataset = v;
    } else if (flag == "--max-samples") {
      args->max_samples = std::atoi(v);
    } else if (flag == "--seed") {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--admin") {
      args->admin = v;
    } else {
      std::fprintf(stderr, "gbx_loadgen: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// "ok LABEL ..." -> LABEL; anything else is an error.
StatusOr<int> LabelFromReply(const std::string& payload) {
  int label = 0;
  if (std::sscanf(payload.c_str(), "ok %d", &label) != 1) {
    return Status::Internal("server answered: " + payload);
  }
  return label;
}

/// One round trip on a fresh connection: CMD frame out, reply frame in.
StatusOr<std::string> FetchAdminReply(const Args& args,
                                      const std::string& cmd) {
  StatusOr<int> fd = ConnectTcp(args.host, args.port, 2.0);
  if (!fd.ok()) return fd.status();
  const Status sent = SendFrame(*fd, cmd);
  const StatusOr<std::string> reply =
      sent.ok() ? RecvFrame(*fd) : StatusOr<std::string>(sent);
  ::close(*fd);
  return reply;
}

int RunAdmin(const Args& args) {
  const StatusOr<std::string> reply = FetchAdminReply(args, args.admin);
  if (!reply.ok()) {
    std::fprintf(stderr, "gbx_loadgen: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", reply->c_str());
  return reply->rfind("error ", 0) == 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// --print-server-metrics: scrape "!metrics json" and diff two scrapes.
//
// The parser below reads ONLY the exposition common/metrics.h emits
// (flat {"metrics":[...]} array, known field order, no nesting beyond
// the labels object) — it is a scraper for our own stable wire format,
// not a general JSON parser.

struct MetricSample {
  std::string type;       // counter | gauge | histogram
  double value = 0.0;     // counter/gauge
  long long count = 0;    // histogram observations
  double sum = 0.0;       // histogram total (ms for latency families)
};

/// Extracts `"field":<number>` from one metric object.
bool JsonNumber(const std::string& obj, const std::string& field,
                double* out) {
  const std::string key = "\"" + field + "\":";
  const std::size_t at = obj.find(key);
  if (at == std::string::npos) return false;
  *out = std::atof(obj.c_str() + at + key.size());
  return true;
}

/// Extracts `"field":"<text>"` (no unescaping: our names/labels/types
/// never contain escapes).
bool JsonString(const std::string& obj, const std::string& field,
                std::string* out) {
  const std::string key = "\"" + field + "\":\"";
  const std::size_t at = obj.find(key);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + key.size();
  const std::size_t end = obj.find('"', begin);
  if (end == std::string::npos) return false;
  *out = obj.substr(begin, end - begin);
  return true;
}

/// "ok metrics json\n{...}" -> map from "name{labels}" to sample.
std::map<std::string, MetricSample> ParseMetricsJson(
    const std::string& reply) {
  std::map<std::string, MetricSample> out;
  const std::size_t body_at = reply.find('\n');
  if (body_at == std::string::npos) return out;
  const std::string body = reply.substr(body_at + 1);
  // Walk the top-level array, slicing one {...} object per metric by
  // brace depth (label objects nest one deep).
  std::size_t i = body.find('[');
  if (i == std::string::npos) return out;
  while (++i < body.size()) {
    if (body[i] != '{') continue;
    int depth = 0;
    std::size_t j = i;
    for (; j < body.size(); ++j) {
      if (body[j] == '{') ++depth;
      if (body[j] == '}' && --depth == 0) break;
    }
    if (j >= body.size()) break;
    const std::string obj = body.substr(i, j - i + 1);
    i = j;
    std::string name, type;
    if (!JsonString(obj, "name", &name) || !JsonString(obj, "type", &type)) {
      continue;
    }
    std::string key = name;
    const std::size_t labels_at = obj.find("\"labels\":{");
    if (labels_at != std::string::npos) {
      const std::size_t lbegin = labels_at + 9;
      const std::size_t lend = obj.find('}', lbegin);
      if (lend != std::string::npos) {
        key += obj.substr(lbegin, lend - lbegin + 1);
      }
    }
    MetricSample s;
    s.type = type;
    if (type == "histogram") {
      double count = 0.0;
      JsonNumber(obj, "count", &count);
      s.count = static_cast<long long>(count);
      JsonNumber(obj, "sum", &s.sum);
    } else {
      JsonNumber(obj, "value", &s.value);
    }
    out[key] = s;
  }
  return out;
}

/// Prints what the server observed between the two scrapes: counter
/// increments and histogram growth, skipping series the run never
/// touched (and gauges, which are instantaneous, not cumulative).
void PrintMetricsDelta(const std::map<std::string, MetricSample>& before,
                       const std::map<std::string, MetricSample>& after) {
  std::printf("server metrics delta (!metrics json, before -> after):\n");
  int printed = 0;
  for (const auto& [key, b] : after) {
    const auto prev = before.find(key);
    const MetricSample zero;
    const MetricSample& a = prev == before.end() ? zero : prev->second;
    if (b.type == "counter") {
      const long long delta =
          static_cast<long long>(b.value) - static_cast<long long>(a.value);
      if (delta == 0) continue;
      std::printf("  %-46s +%lld\n", key.c_str(), delta);
      ++printed;
    } else if (b.type == "histogram") {
      const long long dcount = b.count - a.count;
      if (dcount == 0) continue;
      const double dsum = b.sum - a.sum;
      std::printf("  %-46s +%lld obs, mean %.3f\n", key.c_str(), dcount,
                  dcount > 0 ? dsum / dcount : 0.0);
      ++printed;
    }
  }
  if (printed == 0) {
    std::printf("  (no deltas — metrics sites compiled out?)\n");
  }
}

int RunPing(const Args& args) {
  StatusOr<int> fd = ConnectTcp(args.host, args.port, 2.0);
  if (!fd.ok()) return 1;
  const Status sent = SendFrame(*fd, "!ping");
  const StatusOr<std::string> reply =
      sent.ok() ? RecvFrame(*fd) : StatusOr<std::string>(sent);
  ::close(*fd);
  if (!reply.ok() || *reply != "ok pong") return 1;
  std::printf("pong\n");
  return 0;
}

int RunReplay(const Args& args) {
  std::ifstream in(args.queries);
  if (!in) {
    std::fprintf(stderr, "gbx_loadgen: cannot read %s\n",
                 args.queries.c_str());
    return 1;
  }
  std::vector<std::string> payloads;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    payloads.push_back(args.model.empty() ? line
                                          : "@" + args.model + " " + line);
  }

  StatusOr<int> fd = ConnectTcp(args.host, args.port);
  if (!fd.ok()) {
    std::fprintf(stderr, "gbx_loadgen: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  std::FILE* out = stdout;
  if (!args.out.empty()) {
    out = std::fopen(args.out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "gbx_loadgen: cannot write %s\n",
                   args.out.c_str());
      ::close(*fd);
      return 1;
    }
  }

  // Pipeline with a bounded window: responses come back in request
  // order (a server guarantee), so a sliding window keeps both
  // directions busy without deadlocking on full kernel buffers.
  constexpr std::size_t kWindow = 128;
  std::size_t sent = 0, received = 0;
  int rc = 0;
  while (received < payloads.size()) {
    while (sent < payloads.size() && sent - received < kWindow) {
      const Status st = SendFrame(*fd, payloads[sent]);
      if (!st.ok()) {
        std::fprintf(stderr, "gbx_loadgen: %s\n", st.ToString().c_str());
        rc = 1;
        break;
      }
      ++sent;
    }
    if (rc != 0) break;
    const StatusOr<std::string> reply = RecvFrame(*fd);
    const StatusOr<int> label =
        reply.ok() ? LabelFromReply(*reply) : StatusOr<int>(reply.status());
    if (!label.ok()) {
      std::fprintf(stderr, "gbx_loadgen: query %zu: %s\n", received,
                   label.status().ToString().c_str());
      rc = 1;
      break;
    }
    std::fprintf(out, "%d\n", *label);
    ++received;
  }
  ::close(*fd);
  if (out != stdout) std::fclose(out);
  if (rc == 0) {
    std::fprintf(stderr, "replayed %zu queries\n", received);
  }
  return rc;
}

int RunOpenLoop(const Args& args) {
  const int total =
      std::max(1, static_cast<int>(args.qps * args.seconds));
  const int connections = std::max(1, args.connections);

  // In-distribution queries need the model's feature ranges: ask !list
  // for dims... simpler and always right: pull one model's metadata via
  // !stat? The wire protocol doesn't ship ranges, so synthesize queries
  // from the unit cube and rely on the scaler (GB-kNN scales queries
  // into the training range; arbitrary finite values are valid input).
  // Dims come from the "!list" reply for the routed model.
  StatusOr<int> probe = ConnectTcp(args.host, args.port);
  if (!probe.ok()) {
    std::fprintf(stderr, "gbx_loadgen: %s\n",
                 probe.status().ToString().c_str());
    return 1;
  }
  int dims = -1;
  {
    const std::string want =
        args.model.empty() ? std::string("default") : args.model;
    if (!SendFrame(*probe, "!list").ok()) {
      ::close(*probe);
      return 1;
    }
    const StatusOr<std::string> reply = RecvFrame(*probe);
    ::close(*probe);
    if (!reply.ok()) {
      std::fprintf(stderr, "gbx_loadgen: !list: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    std::istringstream in(*reply);
    std::string tok;
    while (in >> tok) {
      if (tok == want) {
        std::string v, fnv, cs, kind, dimskw;
        if (in >> v >> fnv >> cs >> kind >> dimskw >> dims) break;
      }
    }
    if (dims <= 0) {
      std::fprintf(stderr, "gbx_loadgen: no model '%s' on the server\n",
                   want.c_str());
      return 1;
    }
  }

  std::vector<int> fds(connections, -1);
  for (int c = 0; c < connections; ++c) {
    StatusOr<int> fd = ConnectTcp(args.host, args.port);
    if (!fd.ok()) {
      std::fprintf(stderr, "gbx_loadgen: %s\n",
                   fd.status().ToString().c_str());
      for (int f : fds) {
        if (f >= 0) ::close(f);
      }
      return 1;
    }
    fds[c] = *fd;
  }

  std::printf("loadgen: target %.0f qps x %.1f s on %d connections "
              "(%d requests, %d features, model '%s')\n",
              args.qps, args.seconds, connections, total, dims,
              args.model.empty() ? "default" : args.model.c_str());

  std::map<std::string, MetricSample> metrics_before;
  if (args.print_server_metrics) {
    const StatusOr<std::string> scrape =
        FetchAdminReply(args, "!metrics json");
    if (scrape.ok()) metrics_before = ParseMetricsJson(*scrape);
  }

  std::atomic<int> next_index{0};
  // Failure taxonomy mirroring the server's typed replies: retryable
  // classes (shed, deadline, transport) are distinguished from
  // everything else so an overload experiment can tell "the server
  // protected itself" apart from "something broke".
  std::atomic<long long> shed{0}, deadline_expired{0}, transport{0},
      other_errors{0}, retries_spent{0}, degraded{0};
  std::vector<std::vector<double>> latencies_ms(connections);
  // Served-quality histogram: recall level (the server's wire tag text,
  // "1.00" for full-quality replies) -> count. Per-connection maps are
  // merged after the join, so no lock on the hot path.
  std::vector<std::map<std::string, long long>> quality(connections);
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Pcg32 rng(args.seed + 100 + static_cast<std::uint64_t>(c));
      std::vector<double> q(dims);
      latencies_ms[c].reserve(total / connections + 1);
      for (;;) {
        const int i = next_index.fetch_add(1);
        if (i >= total) return;
        // Open loop: request i is due at start + i/qps regardless of
        // how long earlier requests took.
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(i / args.qps));
        std::this_thread::sleep_until(due);
        for (int j = 0; j < dims; ++j) q[j] = rng.NextDouble();
        const std::string payload = FormatPredictPayload(
            args.model, q.data(), dims, args.deadline_ms);
        for (int attempt = 0;; ++attempt) {
          if (attempt > 0) {
            retries_spent.fetch_add(1);
            // Full-jitter exponential backoff: uniform in
            // [0, base * 2^(attempt-1)] — retries from many clients
            // decorrelate instead of re-stampeding the server.
            const double cap_ms =
                args.backoff_ms *
                static_cast<double>(1 << std::min(attempt - 1, 10));
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(cap_ms *
                                                          rng.NextDouble()));
          }
          const bool budget_left = attempt < args.retries;
          const Status sent = SendFrame(fds[c], payload);
          const StatusOr<std::string> reply =
              sent.ok() ? RecvFrame(fds[c]) : StatusOr<std::string>(sent);
          if (!reply.ok()) {
            // Transport failure poisons the connection; reconnect
            // before any retry.
            ::close(fds[c]);
            fds[c] = -1;
            const StatusOr<int> fresh = ConnectTcp(args.host, args.port);
            if (fresh.ok()) fds[c] = *fresh;
            if (budget_left && fds[c] >= 0) continue;
            transport.fetch_add(1);
            if (fds[c] < 0) return;  // server unreachable: stop this lane
            break;
          }
          const std::string& r = *reply;
          if (r.rfind("ok ", 0) == 0) {
            // Latency from the *scheduled* time: queueing delay counts.
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - due)
                    .count();
            latencies_ms[c].push_back(ms);
            // A reduced-quality answer is still an answer: it records
            // latency like any ok reply, and additionally lands in the
            // degraded class + the served-quality histogram.
            const std::size_t tag = r.find(" degraded recall=");
            if (tag != std::string::npos) {
              degraded.fetch_add(1);
              std::string level = r.substr(tag + std::strlen(" degraded recall="));
              const std::size_t sp = level.find(' ');
              if (sp != std::string::npos) level.resize(sp);
              ++quality[c][level];
            } else {
              ++quality[c]["1.00"];
            }
            break;
          }
          if (r.rfind("error UNAVAILABLE", 0) == 0) {
            if (budget_left) continue;
            shed.fetch_add(1);
            break;
          }
          if (r.rfind("error DEADLINE_EXCEEDED", 0) == 0) {
            if (budget_left) continue;
            deadline_expired.fetch_add(1);
            break;
          }
          other_errors.fetch_add(1);  // non-retryable (bad query etc.)
          break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (int f : fds) ::close(f);

  std::vector<double> all;
  for (const auto& v : latencies_ms) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const long long ok_count = static_cast<long long>(all.size());
  const auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    const std::size_t rank = static_cast<std::size_t>(q * (all.size() - 1));
    return all[rank];
  };
  const long long failures = shed.load() + deadline_expired.load() +
                             transport.load() + other_errors.load();
  std::printf("completed %lld requests in %.3f s (achieved %.0f qps)\n",
              ok_count, elapsed_s,
              elapsed_s > 0 ? ok_count / elapsed_s : 0.0);
  std::printf("outcomes: ok %lld (degraded %lld), shed %lld, "
              "deadline_expired %lld, transport %lld, other %lld "
              "(retries %lld)\n",
              ok_count, degraded.load(), shed.load(), deadline_expired.load(),
              transport.load(), other_errors.load(), retries_spent.load());
  std::printf("latency (from scheduled send): p50 %.3f ms, p99 %.3f ms, "
              "max %.3f ms\n",
              pct(0.50), pct(0.99), all.empty() ? 0.0 : all.back());
  // Quality histogram: how many answers were served at each recall
  // level. A healthy run is one "recall 1.00" line; an overload run
  // shows mass shifting toward the ladder floor.
  std::map<std::string, long long> quality_all;
  for (const auto& m : quality) {
    for (const auto& [level, n] : m) quality_all[level] += n;
  }
  std::printf("served quality:");
  for (auto it = quality_all.rbegin(); it != quality_all.rend(); ++it) {
    std::printf(" recall %s x %lld", it->first.c_str(), it->second);
  }
  std::printf("%s\n", quality_all.empty() ? " (no ok replies)" : "");
  if (args.print_server_metrics) {
    const StatusOr<std::string> scrape =
        FetchAdminReply(args, "!metrics json");
    if (scrape.ok()) {
      PrintMetricsDelta(metrics_before, ParseMetricsJson(*scrape));
    } else {
      std::fprintf(stderr, "gbx_loadgen: !metrics scrape failed: %s\n",
                   scrape.status().ToString().c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

/// --self: train a small GB-kNN, publish it as "default" (and under the
/// dataset id), serve it in-process, and point the requested mode at it.
int RunSelfHosted(Args args) {
  const Dataset ds = MakePaperDataset(args.dataset, args.max_samples, 9);
  Pcg32 split_rng(11);
  const TrainTestSplitResult split = TrainTestSplit(ds, 0.3, &split_rng);
  RdGbgConfig gbg;
  gbg.seed = args.seed;
  GbKnnClassifier model(gbg, 3);
  Pcg32 fit_rng(5);
  model.Fit(split.train, &fit_rng);

  StatusOr<LoadedModel> loaded = ModelFromString(ModelToString(model));
  if (!loaded.ok()) {
    std::fprintf(stderr, "gbx_loadgen --self: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto registry = std::make_shared<ModelRegistry>();
  const auto published =
      registry->Publish("default", std::move(loaded).value());
  if (!published.ok()) {
    std::fprintf(stderr, "gbx_loadgen --self: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  Server server(registry);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "gbx_loadgen --self: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("self-hosted %s model on 127.0.0.1:%d (%d balls)\n",
              args.dataset.c_str(), server.port(), model.num_balls());
  args.host = "127.0.0.1";
  args.port = server.port();
  const int rc = args.ping                ? RunPing(args)
                 : !args.admin.empty()    ? RunAdmin(args)
                 : !args.queries.empty()  ? RunReplay(args)
                                          : RunOpenLoop(args);
  server.Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.self) return RunSelfHosted(args);
  if (args.port < 0) {
    std::fprintf(stderr, "gbx_loadgen: --port (or --self) is required\n");
    return Usage();
  }
  if (args.ping) return RunPing(args);
  if (!args.admin.empty()) return RunAdmin(args);
  if (!args.queries.empty()) return RunReplay(args);
  return RunOpenLoop(args);
}
