// gbx_serve: the serving front-end over the train-once / serve-forever
// boundary (src/serve/). Three subcommands exercise the full
// save -> load -> serve path offline:
//
//   train    fit GB-kNN (or kNN) on a dataset and write a gbx-model
//            artifact:
//              gbx_serve train --dataset S5 --out model.gbx
//              gbx_serve train --csv data.csv --model knn --k 5 --out m.gbx
//            --dump-queries/--dump-predictions write the holdout features
//            and the fitted model's labels for them, so a fresh process
//            can verify the artifact reproduces them bit-for-bit.
//
//   predict  load an artifact and serve a streaming line protocol:
//            one query per stdin line (comma- or space-separated
//            features), one predicted label per stdout line:
//              gbx_serve predict --model-file model.gbx < queries.csv
//            With --csv FILE, scores a labeled CSV in one batch and
//            reports accuracy to stderr instead.
//
//   bench    sustained-load self-test: N caller threads fire random
//            in-distribution queries through the batching engine for a
//            few seconds, then the engine stats (requests, batches,
//            p50/p99 latency, QPS) are printed:
//              gbx_serve bench --model-file model.gbx --callers 8
//
//   serve    network front-end (serve/server.h): bind a TCP port and
//            speak gbx-wire v1 (length-prefixed frames reusing the
//            predict line format), serving one or more named models
//            from a hot-swappable registry:
//              gbx_serve serve --port 7411 --model-file model.gbx
//              gbx_serve serve --port 7411 --register a=a.gbx
//                              --register b=b.gbx
//            Prints "ready" once listening; SIGINT/SIGTERM shut down
//            cleanly (in-flight requests drain first). Drive it with
//            gbx_loadgen.
//
//   info     print an artifact's metadata line.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "data/csv.h"
#include "data/paper_suite.h"
#include "index/index_strategy.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "serve/engine.h"
#include "serve/model_io.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

using namespace gbx;

struct Args {
  std::string model = "gb-knn";
  std::string out;
  std::string model_file;
  std::string csv;
  std::string dataset = "S5";
  std::string dump_queries;
  std::string dump_predictions;
  int max_samples = 1200;
  int k = -1;  // -1 = per-model default (1 for gb-knn, 5 for knn)
  int rho = 5;
  std::uint64_t seed = 7;
  double holdout = 0.3;
  int batch = 64;
  double delay_ms = 0.2;
  double seconds = 2.0;
  int callers = 8;
  bool stats = false;
  // serve subcommand.
  int port = -1;
  std::string host = "127.0.0.1";
  int workers = 0;  // <= 0: GBX_THREADS / hardware
  std::vector<std::string> registers;  // repeated --register name=path
  bool poll = false;
  double idle_timeout_ms = 0.0;
  long max_queue = -1;     // < 0: ServerOptions default; 0 disables
  long max_inflight = -1;  // per-connection cap; same convention
  int metrics_dump_sec = 0;  // > 0: periodic Prometheus dump to stderr
  double slow_trace_ms = -1.0;  // < 0: ServerOptions default
  // Runtime-only ball-center scan strategy for GB-kNN (never persisted
  // in the artifact): auto | flat | tree | balltree | sampled.
  IndexStrategy index_strategy = IndexStrategy::kAuto;
  // Target recall of the sampled strategy, in (0, 1]; 1.0 = exact.
  double recall = 1.0;
  // Graceful degradation (serve subcommand): "off" (default) or "auto".
  std::string degrade = "off";
  // Ladder floor for per-request recall under --degrade auto.
  double min_recall = 0.5;
  // Controller tick period; < 0 keeps the DegradeOptions default.
  double degrade_tick_ms = -1.0;
  // > 0 arms the worker watchdog (stall deadline in ms).
  double worker_stall_ms = 0.0;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gbx_serve train   --out FILE [--model gb-knn|knn] [--dataset S1..S13]\n"
      "                    [--csv FILE] [--max-samples N] [--k N] [--rho N]\n"
      "                    [--seed N] [--holdout F] [--dump-queries FILE]\n"
      "                    [--dump-predictions FILE]\n"
      "  gbx_serve predict --model-file FILE [--csv FILE] [--batch N]\n"
      "                    [--delay-ms X] [--stats]   (queries on stdin)\n"
      "  gbx_serve bench   --model-file FILE [--seconds X] [--callers N]\n"
      "                    [--batch N] [--delay-ms X] [--seed N]\n"
      "  gbx_serve serve   --port N [--host H] [--model-file FILE]\n"
      "                    [--register NAME=PATH]... [--workers N]\n"
      "                    [--batch N] [--delay-ms X] [--poll]\n"
      "                    [--idle-timeout-ms X] [--max-queue N]\n"
      "                    [--max-inflight N]   (overload shed caps; 0 = off)\n"
      "                    [--metrics-dump-sec N]  (periodic Prometheus dump\n"
      "                    to stderr) [--slow-trace-ms X]  (span-tree log\n"
      "                    threshold; 0 = off)\n"
      "                    [--degrade auto|off]  (overload recall ladder;\n"
      "                    default off) [--min-recall F]  (ladder floor,\n"
      "                    (0,1], default 0.5) [--degrade-tick-ms X]\n"
      "                    [--worker-stall-ms X]  (watchdog deadline;\n"
      "                    0 = off)\n"
      "  gbx_serve info    --model-file FILE\n"
      "common: --index-strategy auto|flat|tree|balltree|sampled\n"
      "        (GB-kNN center scan; runtime-only, artifacts never\n"
      "        persist it)\n"
      "        --recall F   (sampled strategy's target recall in (0,1];\n"
      "        default 1.0 = exact; ignored by the other strategies)\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--poll") {
      args->poll = true;
    } else if (!(v = next())) {
      std::fprintf(stderr, "gbx_serve: %s needs a value\n", flag.c_str());
      return false;
    } else if (flag == "--model") {
      args->model = v;
    } else if (flag == "--out") {
      args->out = v;
    } else if (flag == "--model-file") {
      args->model_file = v;
    } else if (flag == "--csv") {
      args->csv = v;
    } else if (flag == "--dataset") {
      args->dataset = v;
    } else if (flag == "--dump-queries") {
      args->dump_queries = v;
    } else if (flag == "--dump-predictions") {
      args->dump_predictions = v;
    } else if (flag == "--max-samples") {
      args->max_samples = std::atoi(v);
    } else if (flag == "--k") {
      args->k = std::atoi(v);
    } else if (flag == "--rho") {
      args->rho = std::atoi(v);
    } else if (flag == "--seed") {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--holdout") {
      args->holdout = std::atof(v);
    } else if (flag == "--batch") {
      args->batch = std::atoi(v);
    } else if (flag == "--delay-ms") {
      args->delay_ms = std::atof(v);
    } else if (flag == "--seconds") {
      args->seconds = std::atof(v);
    } else if (flag == "--callers") {
      args->callers = std::atoi(v);
    } else if (flag == "--port") {
      args->port = std::atoi(v);
    } else if (flag == "--host") {
      args->host = v;
    } else if (flag == "--workers") {
      args->workers = std::atoi(v);
    } else if (flag == "--register") {
      args->registers.emplace_back(v);
    } else if (flag == "--idle-timeout-ms") {
      args->idle_timeout_ms = std::atof(v);
    } else if (flag == "--max-queue") {
      args->max_queue = std::atol(v);
    } else if (flag == "--max-inflight") {
      args->max_inflight = std::atol(v);
    } else if (flag == "--metrics-dump-sec") {
      args->metrics_dump_sec = std::atoi(v);
    } else if (flag == "--slow-trace-ms") {
      args->slow_trace_ms = std::atof(v);
    } else if (flag == "--index-strategy") {
      if (!ParseIndexStrategy(v, &args->index_strategy)) {
        std::fprintf(stderr,
                     "gbx_serve: --index-strategy wants "
                     "auto|flat|tree|balltree|sampled, got '%s'\n",
                     v);
        return false;
      }
    } else if (flag == "--recall") {
      args->recall = std::atof(v);
      // Typed rejection, not clamping: shared with Server::Start()'s
      // option validation so CLI and embedded callers agree.
      if (const Status s = ValidateRecall(args->recall, "--recall");
          !s.ok()) {
        std::fprintf(stderr, "gbx_serve: %s\n", s.ToString().c_str());
        return false;
      }
    } else if (flag == "--min-recall") {
      args->min_recall = std::atof(v);
      if (const Status s = ValidateRecall(args->min_recall, "--min-recall");
          !s.ok()) {
        std::fprintf(stderr, "gbx_serve: %s\n", s.ToString().c_str());
        return false;
      }
    } else if (flag == "--degrade") {
      args->degrade = v;
      if (args->degrade != "auto" && args->degrade != "off") {
        std::fprintf(stderr, "gbx_serve: --degrade wants auto|off, got '%s'\n",
                     v);
        return false;
      }
    } else if (flag == "--degrade-tick-ms") {
      args->degrade_tick_ms = std::atof(v);
    } else if (flag == "--worker-stall-ms") {
      args->worker_stall_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "gbx_serve: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

StatusOr<Dataset> LoadTrainingData(const Args& args) {
  if (!args.csv.empty()) return LoadCsv(args.csv);
  return MakePaperDataset(args.dataset, args.max_samples, args.seed);
}

int RunTrain(const Args& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "gbx_serve train: --out is required\n");
    return 2;
  }
  StatusOr<Dataset> data = LoadTrainingData(args);
  if (!data.ok()) {
    std::fprintf(stderr, "gbx_serve train: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  Pcg32 split_rng(args.seed);
  const TrainTestSplitResult split =
      TrainTestSplit(*data, args.holdout, &split_rng);
  std::printf("train: %d samples, holdout: %d samples, %d features, "
              "%d classes\n",
              split.train.size(), split.test.size(), data->num_features(),
              data->num_classes());

  std::unique_ptr<Classifier> model;
  Pcg32 fit_rng(args.seed + 1);
  if (args.model == "gb-knn") {
    RdGbgConfig gbg;
    gbg.density_tolerance = args.rho;
    gbg.seed = args.seed;
    gbg.index_strategy = args.index_strategy;
    auto gbknn = std::make_unique<GbKnnClassifier>(
        gbg, args.k > 0 ? args.k : 1);
    gbknn->Fit(split.train, &fit_rng);
    std::printf("fitted GB-kNN: %d balls over %d training samples\n",
                gbknn->num_balls(), split.train.size());
    model = std::move(gbknn);
  } else if (args.model == "knn") {
    auto knn = std::make_unique<KnnClassifier>(args.k > 0 ? args.k : 5);
    knn->Fit(split.train, &fit_rng);
    std::printf("fitted kNN: k=%d over %d training samples\n", knn->k(),
                split.train.size());
    model = std::move(knn);
  } else {
    std::fprintf(stderr, "gbx_serve train: unknown --model '%s'\n",
                 args.model.c_str());
    return 2;
  }

  const std::vector<int> holdout_pred = model->PredictBatch(split.test.x());
  std::printf("holdout accuracy: %.4f\n",
              Accuracy(split.test.y(), holdout_pred));

  const Status saved = SaveModel(*model, args.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "gbx_serve train: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved gbx-model artifact: %s\n", args.out.c_str());

  if (!args.dump_queries.empty()) {
    std::FILE* f = std::fopen(args.dump_queries.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "gbx_serve train: cannot write %s\n",
                   args.dump_queries.c_str());
      return 1;
    }
    for (int i = 0; i < split.test.size(); ++i) {
      for (int j = 0; j < split.test.num_features(); ++j) {
        std::fprintf(f, "%s%.17g", j > 0 ? "," : "",
                     split.test.feature(i, j));
      }
      std::fprintf(f, "\n");
    }
    std::fclose(f);
  }
  if (!args.dump_predictions.empty()) {
    std::FILE* f = std::fopen(args.dump_predictions.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "gbx_serve train: cannot write %s\n",
                   args.dump_predictions.c_str());
      return 1;
    }
    for (int label : holdout_pred) std::fprintf(f, "%d\n", label);
    std::fclose(f);
  }
  return 0;
}

void PrintStats(const InferenceEngine& engine, std::FILE* to) {
  const InferenceEngineStats s = engine.Stats();
  std::fprintf(to,
               "engine stats: %lld requests in %lld batches "
               "(%.1f mean batch)\n"
               "latency: p50 %.3f ms, p99 %.3f ms, max %.3f ms\n"
               "throughput: %.0f predictions/s\n",
               static_cast<long long>(s.requests),
               static_cast<long long>(s.batches), s.mean_batch_size,
               s.p50_ms, s.p99_ms, s.max_ms, s.qps);
}

StatusOr<LoadedModel> LoadModelAt(const std::string& path, const Args& args) {
  StatusOr<LoadedModel> model = LoadModel(path);
  if (model.ok()) {
    // The scan strategy is serving-process state, not artifact state:
    // apply this process's choice to the restored model.
    if (auto* gbknn =
            dynamic_cast<GbKnnClassifier*>(model->classifier.get())) {
      IndexStrategy strategy = args.index_strategy;
      if (args.degrade == "auto" && strategy != IndexStrategy::kSampled) {
        // The degradation ladder lowers per-request recall through the
        // sampled tier; other strategies would silently ignore it. At
        // recall 1.0 the sampled tier scans every center, so this
        // substitution costs nothing while the server is healthy.
        strategy = IndexStrategy::kSampled;
        std::fprintf(stderr,
                     "gbx_serve: --degrade auto forces "
                     "--index-strategy sampled for %s\n",
                     path.c_str());
      }
      gbknn->set_index_strategy(strategy);
      gbknn->set_recall_target(args.recall);
    }
  }
  return model;
}

StatusOr<LoadedModel> LoadModelArg(const Args& args, const char* cmd) {
  if (args.model_file.empty()) {
    return Status::InvalidArgument(std::string("gbx_serve ") + cmd +
                                   ": --model-file is required");
  }
  return LoadModelAt(args.model_file, args);
}

int RunPredict(const Args& args) {
  StatusOr<LoadedModel> model = LoadModelArg(args, "predict");
  if (!model.ok()) {
    std::fprintf(stderr, "gbx_serve predict: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  InferenceEngineOptions opts;
  opts.max_batch_size = args.batch;
  // The stdin line protocol has exactly one synchronous caller, so no
  // follower can ever join a batch — waiting out the coalescing window
  // would only add idle latency per line.
  opts.max_batch_delay_ms = args.csv.empty() ? 0.0 : args.delay_ms;
  InferenceEngine engine(std::move(model).value(), opts);

  if (!args.csv.empty()) {
    const StatusOr<Dataset> data = LoadCsv(args.csv);
    if (!data.ok()) {
      std::fprintf(stderr, "gbx_serve predict: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    const StatusOr<std::vector<int>> labels = engine.PredictBatch(data->x());
    if (!labels.ok()) {
      std::fprintf(stderr, "gbx_serve predict: %s\n",
                   labels.status().ToString().c_str());
      return 1;
    }
    for (int label : *labels) std::printf("%d\n", label);
    std::fprintf(stderr, "accuracy vs CSV labels: %.4f\n",
                 Accuracy(data->y(), *labels));
    if (args.stats) PrintStats(engine, stderr);
    return 0;
  }

  // Streaming line protocol: one query per line, one label per line.
  std::string line;
  std::vector<double> query;
  int lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    for (char& c : line) {
      if (c == ',' || c == '\t') c = ' ';
    }
    query.clear();
    std::istringstream fields(line);
    double v = 0.0;
    while (fields >> v) query.push_back(v);
    std::string rest;
    if (fields.bad() || (fields.clear(), fields >> rest)) {
      std::fprintf(stderr, "gbx_serve predict: unparseable line %d\n",
                   lineno);
      return 1;
    }
    const StatusOr<int> label = engine.Predict(query);
    if (!label.ok()) {
      std::fprintf(stderr, "gbx_serve predict: line %d: %s\n", lineno,
                   label.status().ToString().c_str());
      return 1;
    }
    std::printf("%d\n", *label);
  }
  if (args.stats) PrintStats(engine, stderr);
  return 0;
}

int RunBench(const Args& args) {
  StatusOr<LoadedModel> model = LoadModelArg(args, "bench");
  if (!model.ok()) {
    std::fprintf(stderr, "gbx_serve bench: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  InferenceEngineOptions opts;
  opts.max_batch_size = args.batch;
  opts.max_batch_delay_ms = args.delay_ms;
  InferenceEngine engine(std::move(model).value(), opts);

  const int dims = engine.dims();
  std::vector<double> lo(dims, 0.0), hi(dims, 1.0);
  if (static_cast<int>(engine.model().feature_mins.size()) == dims) {
    lo = engine.model().feature_mins;
    hi = engine.model().feature_maxs;
  }
  std::printf("bench: %s model, %d features, %d classes, %d callers, "
              "%.1f s, batch %d / %.2f ms window\n",
              engine.model().kind.c_str(), dims, engine.num_classes(),
              args.callers, args.seconds, opts.max_batch_size,
              opts.max_batch_delay_ms);

  std::atomic<long long> errors{0};
  std::vector<std::thread> callers;
  callers.reserve(args.callers);
  for (int t = 0; t < args.callers; ++t) {
    callers.emplace_back([&, t] {
      Pcg32 rng(args.seed + 1000 + t);
      std::vector<double> q(dims);
      Stopwatch watch;
      while (watch.ElapsedSeconds() < args.seconds) {
        for (int j = 0; j < dims; ++j) {
          q[j] = lo[j] + (hi[j] - lo[j]) * rng.NextDouble();
        }
        if (!engine.Predict(q).ok()) ++errors;
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  if (errors.load() != 0) {
    std::fprintf(stderr, "gbx_serve bench: %lld failed predictions\n",
                 errors.load());
    return 1;
  }
  PrintStats(engine, stdout);
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void HandleStopSignal(int) { g_serve_stop.store(true); }

int RunServe(const Args& args) {
  if (args.port < 0) {
    std::fprintf(stderr, "gbx_serve serve: --port is required\n");
    return 2;
  }
  InferenceEngineOptions engine_opts;
  engine_opts.max_batch_size = args.batch;
  engine_opts.max_batch_delay_ms = args.delay_ms;
  auto registry = std::make_shared<ModelRegistry>(engine_opts);

  // --model-file publishes as the default route; --register NAME=PATH
  // adds named tenants.
  std::vector<std::pair<std::string, std::string>> to_load;
  if (!args.model_file.empty()) to_load.emplace_back("default", args.model_file);
  for (const std::string& spec : args.registers) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      std::fprintf(stderr,
                   "gbx_serve serve: --register wants NAME=PATH, got '%s'\n",
                   spec.c_str());
      return 2;
    }
    to_load.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
  }
  if (to_load.empty()) {
    std::fprintf(stderr,
                 "gbx_serve serve: need --model-file and/or --register\n");
    return 2;
  }
  for (const auto& [name, path] : to_load) {
    StatusOr<LoadedModel> model = LoadModelAt(path, args);
    if (!model.ok()) {
      std::fprintf(stderr, "gbx_serve serve: %s: %s\n", path.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    const auto published = registry->Publish(name, std::move(model).value());
    if (!published.ok()) {
      std::fprintf(stderr, "gbx_serve serve: %s\n",
                   published.status().ToString().c_str());
      return 1;
    }
    const LoadedModel& lm = (*published)->engine->model();
    std::printf("registered %s v%d (%s, %d features, %d classes)\n",
                name.c_str(), (*published)->version, lm.kind.c_str(), lm.dims,
                lm.num_classes);
  }

  ServerOptions sopts;
  sopts.host = args.host;
  sopts.port = args.port;
  sopts.num_workers = args.workers;
  sopts.force_poll = args.poll;
  sopts.idle_timeout_ms = args.idle_timeout_ms;
  if (args.max_queue >= 0) {
    sopts.max_queue_depth = static_cast<std::size_t>(args.max_queue);
  }
  if (args.max_inflight >= 0) {
    sopts.max_inflight_per_conn =
        static_cast<std::uint64_t>(args.max_inflight);
  }
  if (args.slow_trace_ms >= 0.0) sopts.slow_trace_ms = args.slow_trace_ms;
  sopts.degrade_auto = args.degrade == "auto";
  sopts.degrade.min_recall = args.min_recall;
  if (args.degrade_tick_ms > 0.0) {
    sopts.degrade.tick_interval_ms = args.degrade_tick_ms;
  }
  sopts.worker_stall_ms = args.worker_stall_ms;
  Server server(registry, sopts);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "gbx_serve serve: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving %d model(s) on %s:%d\n", registry->size(),
              args.host.c_str(), server.port());
  std::printf("ready\n");
  std::fflush(stdout);

  g_serve_stop.store(false);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  // --metrics-dump-sec N: a poor operator's scraper — dump the full
  // Prometheus exposition to stderr every N seconds, so a plain
  // `gbx_serve serve ... 2>metrics.log` run leaves a time series behind
  // without any client wired to "!metrics".
  Stopwatch dump_watch;
  int dumps = 0;
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (args.metrics_dump_sec > 0 &&
        dump_watch.ElapsedSeconds() >=
            static_cast<double>(args.metrics_dump_sec) * (dumps + 1)) {
      ++dumps;
      const std::string text =
          metrics::MetricsRegistry::Default().PrometheusText();
      std::fprintf(stderr, "# gbx metrics dump %d (t=%.1fs)\n%s",
                   dumps, dump_watch.ElapsedSeconds(), text.c_str());
      std::fflush(stderr);
    }
  }
  std::printf("draining...\n");
  server.Stop();
  const ServerStats s = server.Stats();
  std::printf("server stats: %lld connections (%lld closed), "
              "%lld frames in, %lld frames out, %lld protocol errors\n",
              static_cast<long long>(s.connections_accepted),
              static_cast<long long>(s.connections_closed),
              static_cast<long long>(s.frames_received),
              static_cast<long long>(s.frames_sent),
              static_cast<long long>(s.protocol_errors));
  std::printf("overload stats: %lld shed, %lld degraded, "
              "%lld ladder transitions, %lld worker stalls\n",
              static_cast<long long>(s.requests_shed),
              static_cast<long long>(s.requests_degraded),
              static_cast<long long>(s.degrade_transitions),
              static_cast<long long>(s.worker_stalls));
  for (const auto& m : registry->List()) {
    std::printf("model %s v%d:\n", m->name.c_str(), m->version);
    PrintStats(*m->engine, stdout);
  }
  return 0;
}

int RunInfo(const Args& args) {
  const StatusOr<LoadedModel> model = LoadModelArg(args, "info");
  if (!model.ok()) {
    std::fprintf(stderr, "gbx_serve info: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("gbx-model v1: classifier %s, %d features, %d classes\n%s\n",
              model->kind.c_str(), model->dims, model->num_classes,
              model->config.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "train") return RunTrain(args);
  if (cmd == "predict") return RunPredict(args);
  if (cmd == "bench") return RunBench(args);
  if (cmd == "serve") return RunServe(args);
  if (cmd == "info") return RunInfo(args);
  return Usage();
}
