// Scenario: credit-risk screening with mislabeled records. The dataset is
// imbalanced (few defaults) and 20% of the training labels are wrong —
// exactly the regime §V-E of the paper targets. We compare every sampler
// in the library by the G-mean of a random-forest screener.
//
//   $ ./noisy_credit_scoring
#include <cstdio>

#include "gbx/gbx.h"

int main() {
  using namespace gbx;

  // Credit-approval-like data: 15 features, IR ~8, blurred boundary.
  HighDimConfig data_cfg;
  data_cfg.num_samples = 3000;
  data_cfg.num_features = 15;
  data_cfg.num_informative = 6;
  data_cfg.num_classes = 2;
  data_cfg.class_weights = {8.0, 1.0};  // defaults are rare
  data_cfg.class_sep = 1.2;
  data_cfg.clusters_per_class = 2;
  Pcg32 data_rng(2024);
  const Dataset all = MakeInformativeHighDim(data_cfg, &data_rng);

  Pcg32 split_rng(3);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);

  // Corrupt 20% of the *training* labels (mislabeled credit outcomes).
  Dataset train = split.train;
  Pcg32 noise_rng(4);
  InjectClassNoise(&train, 0.20, &noise_rng);
  std::printf(
      "train: %d samples (IR %.1f), 20%% labels corrupted; test: %d clean "
      "samples\n",
      train.size(), train.ImbalanceRatio(), split.test.size());

  std::printf("\n%-8s %10s %10s %10s %10s\n", "sampler", "kept", "ratio",
              "accuracy", "g-mean");
  for (SamplerKind kind :
       {SamplerKind::kNone, SamplerKind::kGbabs, SamplerKind::kGgbs,
        SamplerKind::kIgbs, SamplerKind::kSmote,
        SamplerKind::kBorderlineSmote, SamplerKind::kSmotenc,
        SamplerKind::kTomek}) {
    const std::unique_ptr<Sampler> sampler = MakeSampler(kind);
    Pcg32 rng(5);
    const Dataset sampled = sampler->Sample(train, &rng);

    RandomForestConfig rf_cfg;
    rf_cfg.num_trees = 60;
    RandomForestClassifier rf(rf_cfg);
    Pcg32 fit_rng(6);
    rf.Fit(sampled, &fit_rng);
    const std::vector<int> pred = rf.PredictBatch(split.test.x());
    std::printf("%-8s %10d %10.2f %10.4f %10.4f\n", sampler->name().c_str(),
                sampled.size(),
                static_cast<double>(sampled.size()) / train.size(),
                Accuracy(split.test.y(), pred),
                GMean(split.test.y(), pred, all.num_classes()));
  }
  std::printf(
      "\nGBABS shrinks the noisy training set while keeping the screening "
      "G-mean competitive — the paper's §V-D/§V-E behaviour.\n");

  // Detailed per-class report for the GBABS-trained screener.
  {
    Pcg32 rng(5);
    const Dataset sampled =
        MakeSampler(SamplerKind::kGbabs)->Sample(train, &rng);
    RandomForestConfig rf_cfg;
    rf_cfg.num_trees = 60;
    RandomForestClassifier rf(rf_cfg);
    Pcg32 fit_rng(6);
    rf.Fit(sampled, &fit_rng);
    const ClassificationReport report = BuildClassificationReport(
        split.test.y(), rf.PredictBatch(split.test.x()), all.num_classes());
    std::printf("\nGBABS-RF classification report (class 1 = default):\n%s",
                report.ToString().c_str());
  }
  return 0;
}
