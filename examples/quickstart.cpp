// Quickstart: generate a 2-D banana dataset, granulate it with RD-GBG,
// sample the borderline points with GBABS, and compare a decision tree
// trained on the sample against one trained on all the data.
//
//   $ ./quickstart
#include <cstdio>

#include "gbx/gbx.h"

int main() {
  using namespace gbx;

  // 1. Make a dataset (two interleaved "banana" classes).
  BananaConfig data_cfg;
  data_cfg.num_samples = 2000;
  data_cfg.noise_std = 0.15;
  Pcg32 data_rng(42);
  const Dataset all = MakeBanana(data_cfg, &data_rng);

  Pcg32 split_rng(1);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  std::printf("dataset: %d train / %d test samples, %d features\n",
              split.train.size(), split.test.size(), all.num_features());

  // 2. Run GBABS (RD-GBG granulation + borderline sampling).
  GbabsConfig cfg;                    // density tolerance rho = 5
  const GbabsResult result = RunGbabs(split.train, cfg);
  std::printf("RD-GBG: %d granular balls (%d non-singleton), %zu noise "
              "samples removed\n",
              result.gbg.balls.size(),
              result.gbg.balls.NonSingletonCount(),
              result.gbg.noise_indices.size());
  std::printf("GBABS: kept %d/%d samples (ratio %.2f), %zu borderline "
              "balls\n",
              result.sampled.size(), split.train.size(),
              result.sampling_ratio, result.borderline_ball_ids.size());

  // 3. Train a decision tree on the borderline sample vs on everything.
  Pcg32 rng(7);
  DecisionTreeClassifier dt_full;
  dt_full.Fit(split.train, &rng);
  DecisionTreeClassifier dt_sampled;
  dt_sampled.Fit(result.sampled, &rng);

  const double full_acc =
      Accuracy(split.test.y(), dt_full.PredictBatch(split.test.x()));
  const double sampled_acc =
      Accuracy(split.test.y(), dt_sampled.PredictBatch(split.test.x()));
  std::printf("DT on full train:    accuracy %.4f\n", full_acc);
  std::printf("DT on GBABS sample:  accuracy %.4f  (%.0f%% of the data)\n",
              sampled_acc, 100.0 * result.sampling_ratio);
  return 0;
}
