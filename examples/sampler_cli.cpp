// Command-line sampler: applies any of the library's sampling methods to a
// CSV dataset (numeric features, integer label in the last column) and
// writes the sampled CSV.
//
//   $ ./sampler_cli gbabs in.csv out.csv [--rho N] [--seed N]
//   $ ./sampler_cli tomek in.csv out.csv
//
// Methods: gbabs ggbs igbs srs smote bsm smnc tomek
#include <cstdio>
#include <cstring>
#include <string>

#include "gbx/gbx.h"

namespace {

bool ParseKind(const std::string& name, gbx::SamplerKind* kind) {
  using gbx::SamplerKind;
  if (name == "gbabs") *kind = SamplerKind::kGbabs;
  else if (name == "ggbs") *kind = SamplerKind::kGgbs;
  else if (name == "igbs") *kind = SamplerKind::kIgbs;
  else if (name == "srs") *kind = SamplerKind::kSrs;
  else if (name == "smote") *kind = SamplerKind::kSmote;
  else if (name == "bsm") *kind = SamplerKind::kBorderlineSmote;
  else if (name == "smnc") *kind = SamplerKind::kSmotenc;
  else if (name == "tomek") *kind = SamplerKind::kTomek;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbx;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <gbabs|ggbs|igbs|srs|smote|bsm|smnc|tomek> "
                 "<in.csv> <out.csv> [--rho N] [--seed N] [--ratio R]\n",
                 argv[0]);
    return 2;
  }
  SamplerKind kind;
  if (!ParseKind(argv[1], &kind)) {
    std::fprintf(stderr, "unknown sampler '%s'\n", argv[1]);
    return 2;
  }
  int rho = 5;
  std::uint64_t seed = 42;
  double ratio = 0.5;
  for (int i = 4; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--rho") == 0) rho = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--seed") == 0) seed = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--ratio") == 0) ratio = std::atof(argv[i + 1]);
  }

  const StatusOr<Dataset> loaded = LoadCsv(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", argv[2],
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %d samples, %d features, %d classes (IR %.2f)\n",
              argv[2], loaded->size(), loaded->num_features(),
              loaded->num_classes(), loaded->ImbalanceRatio());

  std::unique_ptr<Sampler> sampler;
  if (kind == SamplerKind::kGbabs) {
    GbabsConfig cfg;
    cfg.gbg.density_tolerance = rho;
    sampler = std::make_unique<GbabsSampler>(cfg);
  } else if (kind == SamplerKind::kSrs) {
    sampler = std::make_unique<SrsSampler>(ratio);
  } else {
    sampler = MakeSampler(kind);
  }

  Pcg32 rng(seed);
  const Stopwatch watch;
  const Dataset sampled = sampler->Sample(*loaded, &rng);
  std::printf("%s: %d -> %d samples (ratio %.3f) in %.0f ms\n",
              sampler->name().c_str(), loaded->size(), sampled.size(),
              static_cast<double>(sampled.size()) / loaded->size(),
              watch.ElapsedMillis());

  const Status status = SaveCsv(sampled, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", argv[3],
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", argv[3]);
  return 0;
}
