// Scenario: training-set reduction for a max-margin classifier. The
// paper's introduction motivates borderline sampling via SVMs ([24]-[26]):
// a linear SVM's solution depends only on boundary samples, so GBABS's
// borderline set should preserve SVM accuracy far better than an unbiased
// random sample of the *same size*.
//
//   $ ./svm_borderline
#include <cstdio>

#include "gbx/gbx.h"

int main() {
  using namespace gbx;

  // Two nearly-touching Gaussian classes: linearly separable up to a thin
  // margin band, so the SVM solution is carried by the boundary samples.
  BlobsConfig data_cfg;
  data_cfg.num_samples = 4000;
  data_cfg.num_features = 3;
  data_cfg.num_classes = 2;
  data_cfg.center_spread = 4.0;
  data_cfg.cluster_std = 1.35;
  Pcg32 data_rng(7);
  const Dataset all = MakeGaussianBlobs(data_cfg, &data_rng);
  Pcg32 split_rng(8);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);

  // GBABS borderline sample.
  const GbabsResult gbabs = RunGbabs(split.train, GbabsConfig{});
  // SRS with exactly the same budget (the paper's fairness rule).
  Pcg32 srs_rng(9);
  const Dataset srs =
      SrsSampler(std::max(1e-3, gbabs.sampling_ratio)).Sample(split.train,
                                                              &srs_rng);

  std::printf("train %d, GBABS kept %d (ratio %.2f), SRS kept %d\n",
              split.train.size(), gbabs.sampled.size(),
              gbabs.sampling_ratio, srs.size());

  auto evaluate = [&](const Dataset& train, const char* label) {
    LinearSvmClassifier svm;
    Pcg32 rng(10);
    svm.Fit(train, &rng);
    const std::vector<int> pred = svm.PredictBatch(split.test.x());
    std::vector<double> scores(split.test.size());
    for (int i = 0; i < split.test.size(); ++i) {
      scores[i] = svm.DecisionValue(split.test.row(i), 1);
    }
    std::printf("%-22s accuracy %.4f  g-mean %.4f  auc %.4f\n", label,
                Accuracy(split.test.y(), pred),
                GMean(split.test.y(), pred, all.num_classes()),
                BinaryAuc(split.test.y(), scores, 1));
  };
  evaluate(split.train, "SVM on full train");
  evaluate(gbabs.sampled, "SVM on GBABS sample");
  evaluate(srs, "SVM on SRS (same size)");
  std::printf(
      "\nAt the same sample budget the borderline set should track the "
      "full-data SVM much closer than random sampling.\n");
  return 0;
}
