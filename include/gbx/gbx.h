// Umbrella header for the gbx library: a from-scratch C++20 reproduction
// of "Approximate Borderline Sampling using Granular-Ball for
// Classification Tasks" (Xie, Zhang, Xia — ICDE 2025).
//
// Quickstart:
//
//   #include "gbx/gbx.h"
//
//   gbx::Dataset data = ...;                 // features + labels
//   gbx::GbabsConfig cfg;                    // rho = 5 by default
//   gbx::GbabsResult res = gbx::RunGbabs(data, cfg);
//   // res.sampled is the borderline training set; res.gbg.balls the
//   // non-overlapping pure granular balls RD-GBG generated.
//
// Subsystem headers can also be included individually (src/<lib>/*.h).
#ifndef GBX_GBX_H_
#define GBX_GBX_H_

// common/ — foundations: dense Matrix, PCG32 RNG, Status/StatusOr, CHECK
// macros, wall-clock Stopwatch, failpoint fault injection, and the
// shared thread pool behind every parallel loop in the library.
#include "common/check.h"       // IWYU pragma: export
#include "common/failpoint.h"   // IWYU pragma: export
#include "common/matrix.h"      // IWYU pragma: export
#include "common/parallel.h"    // IWYU pragma: export
#include "common/rng.h"         // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "common/stopwatch.h"   // IWYU pragma: export

// data/ — dataset currency and I/O: Dataset, CSV/ARFF loaders, min-max
// scaling, stratified splits, synthetic generators, noise injection,
// validation, and the Table I paper suite registry.
#include "data/arff.h"          // IWYU pragma: export
#include "data/csv.h"           // IWYU pragma: export
#include "data/dataset.h"       // IWYU pragma: export
#include "data/noise.h"         // IWYU pragma: export
#include "data/paper_suite.h"   // IWYU pragma: export
#include "data/scaler.h"        // IWYU pragma: export
#include "data/split.h"         // IWYU pragma: export
#include "data/synthetic.h"     // IWYU pragma: export
#include "data/validate.h"      // IWYU pragma: export

// index/ — exact nearest-neighbor search behind every distance-based
// component: brute-force scan, static KD-tree, and a deletion-capable
// dynamic KD-tree, one NeighborIndex interface plus the flat/tree
// strategy knob.
#include "index/ball_surface_index.h"  // IWYU pragma: export
#include "index/ball_tree.h"       // IWYU pragma: export
#include "index/brute_force.h"     // IWYU pragma: export
#include "index/dynamic_kd_tree.h" // IWYU pragma: export
#include "index/index_strategy.h"  // IWYU pragma: export
#include "index/kd_tree.h"         // IWYU pragma: export

// simd/ — batched flat-scan distance kernels behind runtime dispatch
// (GBX_SIMD: scalar|neon|avx2|avx512|auto); bit-exact across levels.
#include "simd/simd.h"          // IWYU pragma: export

// core/ — the paper's algorithms: granular balls, RD-GBG generation
// (Alg. 1), GBABS borderline sampling (Alg. 2), and ball-set persistence.
#include "core/gb_io.h"         // IWYU pragma: export
#include "core/gbabs.h"         // IWYU pragma: export
#include "core/granular_ball.h" // IWYU pragma: export
#include "core/rd_gbg.h"        // IWYU pragma: export

// sampling/ — the comparison samplers of §V (SRS, SMOTE family, Tomek,
// GGBS/IGBS, purity-threshold GBG, k-means) behind one Sampler interface.
#include "sampling/borderline_smote.h"  // IWYU pragma: export
#include "sampling/gbabs_sampler.h"     // IWYU pragma: export
#include "sampling/ggbs.h"              // IWYU pragma: export
#include "sampling/igbs.h"              // IWYU pragma: export
#include "sampling/kmeans.h"            // IWYU pragma: export
#include "sampling/purity_gbg.h"        // IWYU pragma: export
#include "sampling/sampler.h"           // IWYU pragma: export
#include "sampling/smote.h"             // IWYU pragma: export
#include "sampling/smotenc.h"           // IWYU pragma: export
#include "sampling/srs.h"               // IWYU pragma: export
#include "sampling/tomek.h"             // IWYU pragma: export

// ml/ — downstream classifiers (kNN, CART, RF, XGB/LGBM-style boosting,
// SVM, naive Bayes, GB-kNN), metrics, and classification reports.
#include "ml/classifier.h"      // IWYU pragma: export
#include "ml/decision_tree.h"   // IWYU pragma: export
#include "ml/gb_knn.h"          // IWYU pragma: export
#include "ml/linear_svm.h"      // IWYU pragma: export
#include "ml/knn.h"             // IWYU pragma: export
#include "ml/lgbm.h"            // IWYU pragma: export
#include "ml/metrics.h"         // IWYU pragma: export
#include "ml/naive_bayes.h"     // IWYU pragma: export
#include "ml/report.h"          // IWYU pragma: export
#include "ml/random_forest.h"   // IWYU pragma: export
#include "ml/xgb.h"             // IWYU pragma: export

// stats/ — evaluation statistics: descriptive summaries, Gaussian KDE,
// competition ranking, Wilcoxon signed-rank (Table III).
#include "stats/descriptive.h"  // IWYU pragma: export
#include "stats/kde.h"          // IWYU pragma: export
#include "stats/ranking.h"      // IWYU pragma: export
#include "stats/wilcoxon.h"     // IWYU pragma: export

// viz/ — 2-D embeddings for the figures: PCA and exact t-SNE.
#include "viz/pca.h"            // IWYU pragma: export
#include "viz/tsne.h"           // IWYU pragma: export

// cluster/ — clustering workloads: density-peaks clustering and its
// granular-ball acceleration, plus unsupervised (label-free) GBG.
#include "cluster/dpc.h"              // IWYU pragma: export
#include "cluster/unsupervised_gbg.h" // IWYU pragma: export

// exp/ — the experiment harness: scaling config, cross-validated
// sampler x classifier runner, CSV result export, table printing.
#include "exp/experiment_config.h"  // IWYU pragma: export
#include "exp/result_io.h"          // IWYU pragma: export
#include "exp/runner.h"             // IWYU pragma: export
#include "exp/table_printer.h"      // IWYU pragma: export

// serve/ — model serving: versioned trained-model artifacts (gbx-model
// v1 save/load with bit-identical predictions), the micro-batching
// InferenceEngine, and the network front-end — gbx-wire framing, the
// hot-swappable ModelRegistry, and the epoll/poll Server behind
// `gbx_serve serve` and gbx_loadgen.
#include "serve/engine.h"     // IWYU pragma: export
#include "serve/model_io.h"   // IWYU pragma: export
#include "serve/protocol.h"   // IWYU pragma: export
#include "serve/registry.h"   // IWYU pragma: export
#include "serve/server.h"     // IWYU pragma: export

#endif  // GBX_GBX_H_
