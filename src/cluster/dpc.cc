#include "cluster/dpc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/parallel.h"

namespace gbx {

namespace {

/// Shared DPC core over a point set with per-point mass weights.
DpcResult DpcCore(const Matrix& points, const std::vector<double>& weights,
                  const DpcConfig& config) {
  const int n = points.rows();
  const int d = points.cols();
  const int k = std::min(config.num_clusters, n);
  GBX_CHECK_GE(k, 1);

  DpcResult result;
  result.density.assign(n, 0.0);
  result.delta.assign(n, 0.0);
  result.assignments.assign(n, -1);

  const int threads = ResolveNumThreads(config.num_threads);
  // Every pass costs O(n) per row (d-dim distances, exp() kernel, or a
  // row min), so gate on n rows of ~n-unit work.
  const int row_threads =
      ParallelThreads(n, static_cast<std::int64_t>(n), threads);

  // Pairwise distances. Parallel over rows: iteration i writes dist[i][j]
  // and the mirror dist[j][i] for j > i only, and no other iteration
  // touches either cell, so rows can be filled concurrently.
  std::vector<double> dist(static_cast<std::size_t>(n) * n, 0.0);
  ParallelForRange(n, /*grain=*/1, row_threads, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double v = EuclideanDistance(points.Row(i), points.Row(j), d);
        dist[static_cast<std::size_t>(i) * n + j] = v;
        dist[static_cast<std::size_t>(j) * n + i] = v;
      }
    }
  });
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      all.push_back(dist[static_cast<std::size_t>(i) * n + j]);
    }
  }

  // Cutoff distance: dc_quantile of pairwise distances (>= tiny epsilon).
  double dc = 1e-9;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    const std::size_t pos = static_cast<std::size_t>(
        std::min<double>(all.size() - 1, config.dc_quantile * all.size()));
    dc = std::max(all[pos], 1e-9);
  }

  // Gaussian-kernel density, weighted by point mass. Row-parallel; the
  // inner summation order per row is unchanged, so densities are
  // bit-identical at every thread count.
  ParallelForRange(n, /*grain=*/1, row_threads, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      double rho = weights[i];  // self-mass
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double r = dist[static_cast<std::size_t>(i) * n + j] / dc;
        rho += weights[j] * std::exp(-r * r);
      }
      result.density[i] = rho;
    }
  });

  // delta: distance to the nearest point of strictly higher density
  // (ties broken by index so delta is well defined on plateaus).
  std::vector<int> nearest_denser(n, -1);
  ParallelForRange(n, /*grain=*/1, row_threads, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_j = -1;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const bool denser = result.density[j] > result.density[i] ||
                            (result.density[j] == result.density[i] && j < i);
        if (!denser) continue;
        const double v = dist[static_cast<std::size_t>(i) * n + j];
        if (v < best) {
          best = v;
          best_j = j;
        }
      }
      nearest_denser[i] = best_j;
      result.delta[i] = best_j < 0 ? 0.0 : best;
    }
  });
  double max_delta = 0.0;
  for (int i = 0; i < n; ++i) max_delta = std::max(max_delta, result.delta[i]);
  // The global density maximum gets the largest delta by convention.
  for (int i = 0; i < n; ++i) {
    if (nearest_denser[i] < 0) result.delta[i] = std::max(max_delta, 1.0);
  }

  // Peaks: top-k by gamma = rho * delta.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return result.density[a] * result.delta[a] >
           result.density[b] * result.delta[b];
  });
  result.peaks.assign(order.begin(), order.begin() + k);
  for (int c = 0; c < k; ++c) result.assignments[result.peaks[c]] = c;

  // Assignment pass in decreasing density order: follow nearest-denser.
  std::vector<int> by_density(n);
  std::iota(by_density.begin(), by_density.end(), 0);
  std::stable_sort(by_density.begin(), by_density.end(), [&](int a, int b) {
    return result.density[a] > result.density[b];
  });
  for (int idx : by_density) {
    if (result.assignments[idx] >= 0) continue;
    const int up = nearest_denser[idx];
    GBX_CHECK_GE(up, 0);
    result.assignments[idx] = result.assignments[up];
    GBX_CHECK_GE(result.assignments[idx], 0);
  }
  return result;
}

}  // namespace

DpcResult RunDpc(const Matrix& points, const DpcConfig& config) {
  GBX_CHECK_GT(points.rows(), 0);
  return DpcCore(points, std::vector<double>(points.rows(), 1.0), config);
}

GbDpcResult RunGbDpc(const Matrix& points, const DpcConfig& config,
                     const UnsupervisedGbgConfig& gbg_config) {
  GbDpcResult result;
  result.granulation = GenerateUnsupervisedGbg(points, gbg_config);
  const auto& balls = result.granulation.balls;
  Matrix centers(static_cast<int>(balls.size()), points.cols());
  std::vector<double> weights(balls.size());
  for (std::size_t b = 0; b < balls.size(); ++b) {
    double* dst = centers.Row(static_cast<int>(b));
    for (int j = 0; j < points.cols(); ++j) dst[j] = balls[b].center[j];
    weights[b] = balls[b].size();
  }
  result.ball_dpc = DpcCore(centers, weights, config);
  result.assignments.resize(points.rows());
  for (int i = 0; i < points.rows(); ++i) {
    result.assignments[i] =
        result.ball_dpc.assignments[result.granulation.ball_of_point[i]];
  }
  return result;
}

}  // namespace gbx
