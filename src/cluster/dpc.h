// Density-peaks clustering (Rodriguez & Laio, Science 2014) and its
// granular-ball acceleration (after [29] in the paper's related work).
//
// Plain DPC is O(n^2): Gaussian-kernel local density rho_i, then
// delta_i = distance to the nearest higher-density point; the
// num_clusters points with the highest gamma = rho * delta become peaks
// and every point follows its nearest-denser neighbor to a peak.
//
// GB-DPC first granulates the data without labels (unsupervised_gbg) and
// runs DPC over ball centroids with density weighted by ball size: the
// O(m^2) core makes clustering large datasets cheap, and every sample
// inherits its ball's cluster.
#ifndef GBX_CLUSTER_DPC_H_
#define GBX_CLUSTER_DPC_H_

#include "cluster/unsupervised_gbg.h"
#include "common/matrix.h"

namespace gbx {

struct DpcConfig {
  int num_clusters = 2;
  /// Cutoff distance d_c as a quantile of pairwise distances (the paper's
  /// 1-2% rule of thumb).
  double dc_quantile = 0.02;
  /// Worker threads for the O(n^2) distance/density/delta passes (<= 0 =
  /// GBX_THREADS or hardware concurrency; see common/parallel.h). Each
  /// row's reductions keep their sequential summation order, so results
  /// are bit-identical at every thread count.
  int num_threads = 0;
};

struct DpcResult {
  /// Cluster id per input row, in [0, num_clusters).
  std::vector<int> assignments;
  /// Row ids of the chosen density peaks, one per cluster.
  std::vector<int> peaks;
  std::vector<double> density;  // rho per row
  std::vector<double> delta;    // delta per row
};

/// Plain O(n^2) density-peaks clustering over the rows of `points`.
DpcResult RunDpc(const Matrix& points, const DpcConfig& config);

struct GbDpcResult {
  /// Cluster id per input row.
  std::vector<int> assignments;
  /// The granulation used.
  UnsupervisedGbgResult granulation;
  /// DPC result over ball centroids (peaks index balls, not rows).
  DpcResult ball_dpc;
};

/// Granular-ball accelerated DPC.
GbDpcResult RunGbDpc(const Matrix& points, const DpcConfig& config,
                     const UnsupervisedGbgConfig& gbg_config = {});

}  // namespace gbx

#endif  // GBX_CLUSTER_DPC_H_
