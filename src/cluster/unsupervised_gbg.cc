#include "cluster/unsupervised_gbg.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/rng.h"
#include "sampling/kmeans.h"

namespace gbx {

namespace {

UnsupervisedBall Finalize(const std::vector<int>& members,
                          const Matrix& points) {
  const int d = points.cols();
  UnsupervisedBall ball;
  ball.members = members;
  std::sort(ball.members.begin(), ball.members.end());
  ball.center.assign(d, 0.0);
  for (int idx : ball.members) {
    const double* row = points.Row(idx);
    for (int j = 0; j < d; ++j) ball.center[j] += row[j];
  }
  for (int j = 0; j < d; ++j) ball.center[j] /= ball.members.size();
  double sum = 0.0;
  for (int idx : ball.members) {
    sum += EuclideanDistance(points.Row(idx), ball.center.data(), d);
  }
  ball.radius = sum / ball.members.size();
  return ball;
}

}  // namespace

UnsupervisedGbgResult GenerateUnsupervisedGbg(
    const Matrix& points, const UnsupervisedGbgConfig& config) {
  GBX_CHECK_GT(points.rows(), 0);
  const int n = points.rows();
  int max_size = config.max_ball_size;
  if (max_size <= 0) {
    max_size = std::max(2, static_cast<int>(std::sqrt(
                               static_cast<double>(n))));
  }
  Pcg32 rng(config.seed);

  std::deque<std::vector<int>> queue;
  {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    queue.push_back(std::move(all));
  }

  UnsupervisedGbgResult result;
  result.ball_of_point.assign(n, -1);
  while (!queue.empty()) {
    std::vector<int> members = std::move(queue.front());
    queue.pop_front();
    if (static_cast<int>(members.size()) <= max_size) {
      const int ball_id = static_cast<int>(result.balls.size());
      for (int idx : members) result.ball_of_point[idx] = ball_id;
      result.balls.push_back(Finalize(members, points));
      continue;
    }
    // 2-means split.
    Matrix sub(static_cast<int>(members.size()), points.cols());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const double* src = points.Row(members[i]);
      double* dst = sub.Row(static_cast<int>(i));
      for (int j = 0; j < points.cols(); ++j) dst[j] = src[j];
    }
    KMeansConfig km;
    km.num_clusters = 2;
    km.max_iterations = 8;
    const KMeansResult split = RunKMeans(sub, km, &rng);
    std::vector<int> left;
    std::vector<int> right;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (split.assignments[i] == 0 ? left : right).push_back(members[i]);
    }
    if (left.empty() || right.empty()) {
      // Duplicate-point degenerate split: finalize as-is.
      const int ball_id = static_cast<int>(result.balls.size());
      for (int idx : members) result.ball_of_point[idx] = ball_id;
      result.balls.push_back(Finalize(members, points));
      continue;
    }
    queue.push_back(std::move(left));
    queue.push_back(std::move(right));
  }
  return result;
}

}  // namespace gbx
