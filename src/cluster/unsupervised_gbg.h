// Unsupervised granular-ball generation: recursive 2-means splitting until
// every ball is small enough. This is the label-free granulation used by
// the granular-ball clustering line of work the paper's related-work cites
// ([29] GB density-peaks, [30] GB spectral clustering): the ball set is a
// compressed sketch of the data on which O(n^2) clustering algorithms
// become O(m^2), m << n.
#ifndef GBX_CLUSTER_UNSUPERVISED_GBG_H_
#define GBX_CLUSTER_UNSUPERVISED_GBG_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace gbx {

struct UnsupervisedBall {
  std::vector<int> members;     // row ids, sorted
  std::vector<double> center;   // centroid
  double radius = 0.0;          // average distance to centroid
  int size() const { return static_cast<int>(members.size()); }
};

struct UnsupervisedGbgConfig {
  /// Split a ball while it holds more than this many points; <= 0 selects
  /// the common sqrt(n) heuristic.
  int max_ball_size = -1;
  std::uint64_t seed = 42;
};

struct UnsupervisedGbgResult {
  std::vector<UnsupervisedBall> balls;
  /// ball id of each input row.
  std::vector<int> ball_of_point;
};

/// Granulates `points` without labels. Every row belongs to exactly one
/// ball.
UnsupervisedGbgResult GenerateUnsupervisedGbg(
    const Matrix& points, const UnsupervisedGbgConfig& config = {});

}  // namespace gbx

#endif  // GBX_CLUSTER_UNSUPERVISED_GBG_H_
