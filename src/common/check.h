// Lightweight CHECK macros in the spirit of glog/absl, used for internal
// invariants. A failed check prints the condition and location and aborts.
//
// GBX_CHECK(cond)           — always evaluated.
// GBX_CHECK_MSG(cond, msg)  — like GBX_CHECK, with an explanation for the
//                             human reading the abort (API-contract checks).
// GBX_DCHECK(cond)          — evaluated only in debug builds (NDEBUG off).
#ifndef GBX_COMMON_CHECK_H_
#define GBX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace gbx::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line) {
  std::fprintf(stderr, "GBX_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

[[noreturn]] inline void CheckFailedMsg(const char* cond, const char* msg,
                                        const char* file, int line) {
  std::fprintf(stderr, "GBX_CHECK failed: %s (%s) at %s:%d\n", cond, msg,
               file, line);
  std::abort();
}

}  // namespace gbx::internal

#define GBX_CHECK(cond)                                       \
  do {                                                        \
    if (!(cond)) {                                            \
      ::gbx::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                         \
  } while (0)

#define GBX_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gbx::internal::CheckFailedMsg(#cond, (msg), __FILE__, __LINE__); \
    }                                                                    \
  } while (0)

#define GBX_CHECK_OP(a, op, b) GBX_CHECK((a)op(b))
#define GBX_CHECK_EQ(a, b) GBX_CHECK_OP(a, ==, b)
#define GBX_CHECK_NE(a, b) GBX_CHECK_OP(a, !=, b)
#define GBX_CHECK_LT(a, b) GBX_CHECK_OP(a, <, b)
#define GBX_CHECK_LE(a, b) GBX_CHECK_OP(a, <=, b)
#define GBX_CHECK_GT(a, b) GBX_CHECK_OP(a, >, b)
#define GBX_CHECK_GE(a, b) GBX_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define GBX_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define GBX_DCHECK(cond) GBX_CHECK(cond)
#endif

#endif  // GBX_COMMON_CHECK_H_
