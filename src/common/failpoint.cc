#include "common/failpoint.h"

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/metrics.h"

namespace gbx {

namespace {

/// Parses "action" or "action(ARG)" into *hit. Returns false on
/// malformed input.
bool ParseAction(const std::string& text, FailpointHit* hit) {
  std::string word = text;
  int arg = 0;
  bool has_arg = false;
  const std::size_t paren = text.find('(');
  if (paren != std::string::npos) {
    if (text.back() != ')') return false;
    word = text.substr(0, paren);
    const std::string digits =
        text.substr(paren + 1, text.size() - paren - 2);
    if (digits.empty()) return false;
    for (const char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    arg = std::atoi(digits.c_str());
    has_arg = true;
  }
  using Action = FailpointHit::Action;
  if (word == "off" && !has_arg) {
    hit->action = Action::kOff;
  } else if (word == "error" && !has_arg) {
    hit->action = Action::kError;
  } else if (word == "delay" && has_arg) {
    hit->action = Action::kDelay;
  } else if (word == "partial_write" && has_arg) {
    hit->action = Action::kPartialWrite;
  } else if (word == "crash" && !has_arg) {
    hit->action = Action::kCrash;
  } else {
    return false;
  }
  hit->arg = arg;
  return true;
}

/// Parses ":once" / ":every(K)" (the text after the colon).
bool ParseModifier(const std::string& text, bool* once, int* every_k) {
  if (text == "once") {
    *once = true;
    return true;
  }
  if (text.rfind("every(", 0) == 0 && text.back() == ')') {
    const std::string digits = text.substr(6, text.size() - 7);
    if (digits.empty()) return false;
    for (const char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    *every_k = std::atoi(digits.c_str());
    return *every_k >= 1;
  }
  return false;
}

bool ValidPointName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '.' || c == '-')) return false;
  }
  return true;
}

}  // namespace

Failpoints::Failpoints() {
  if (const char* env = std::getenv("GBX_FAILPOINTS")) {
    // A malformed env spec must not be silently half-applied in a
    // production process; report and keep whatever parsed.
    const Status status = Configure(env);
    if (!status.ok()) {
      std::fprintf(stderr, "gbx: GBX_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
  }
}

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // never destroyed
  return *instance;
}

Status Failpoints::Set(const std::string& name, const std::string& spec) {
  if (!ValidPointName(name)) {
    return Status::InvalidArgument("bad failpoint name '" + name + "'");
  }
  Entry entry;
  entry.spec = spec;
  std::string action_text = spec;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    action_text = spec.substr(0, colon);
    if (!ParseModifier(spec.substr(colon + 1), &entry.once,
                       &entry.every_k)) {
      return Status::InvalidArgument("bad failpoint modifier in '" + spec +
                                     "' (want :once or :every(K))");
    }
  }
  if (!ParseAction(action_text, &entry.hit)) {
    return Status::InvalidArgument(
        "bad failpoint action '" + action_text +
        "' (want off, error, delay(MS), partial_write(N), or crash)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (entry.hit.action == FailpointHit::Action::kOff) {
    if (it != points_.end()) {
      points_.erase(it);
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    return Status::Ok();
  }
  if (it == points_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  points_[name] = std::move(entry);
  return Status::Ok();
}

Status Failpoints::Clear(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(name) == 0) {
    return Status::NotFound("failpoint '" + name + "' is not armed");
  }
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

void Failpoints::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

Status Failpoints::Configure(const std::string& config) {
  std::size_t begin = 0;
  while (begin <= config.size()) {
    std::size_t end = config.find_first_of(",;", begin);
    if (end == std::string::npos) end = config.size();
    std::string item = config.substr(begin, end - begin);
    begin = end + 1;
    // Tolerate whitespace padding and stray separators.
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.front()))) {
      item.erase(item.begin());
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.pop_back();
    }
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry '" + item +
                                     "' is not name=action");
    }
    GBX_RETURN_IF_ERROR(Set(item.substr(0, eq), item.substr(eq + 1)));
  }
  return Status::Ok();
}

std::vector<Failpoints::Info> Failpoints::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(points_.size());
  for (const auto& [name, entry] : points_) {
    Info info;
    info.name = name;
    info.spec = entry.spec;
    info.evals = entry.evals;
    info.hits = entry.hits;
    out.push_back(std::move(info));
  }
  return out;
}

std::int64_t Failpoints::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = lifetime_hits_.find(name);
  return it == lifetime_hits_.end() ? 0 : it->second;
}

FailpointHit Failpoints::Eval(const char* name) {
  FailpointHit hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(name);
    if (it == points_.end()) return hit;
    Entry& entry = it->second;
    ++entry.evals;
    if (entry.evals % entry.every_k != 0) return hit;
    ++entry.hits;
    ++lifetime_hits_[name];
    hit = entry.hit;
    // Mirror the fire into the metrics registry so "!metrics" shows
    // which faults a chaos run actually exercised. Fires are rare and
    // we already hold mu_, so the registry lookup cost is irrelevant.
    metrics::MetricsRegistry::Default()
        .GetCounter("gbx_failpoint_hits_total", {{"name", name}},
                    "Failpoint fires by site")
        ->Inc();
    if (entry.once) {
      points_.erase(it);
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Common actions execute here, outside the lock, so a delay never
  // serializes unrelated failpoints.
  if (hit.action == FailpointHit::Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
  } else if (hit.action == FailpointHit::Action::kCrash) {
    // A crash must look like a power cut: no stream flush, no atexit,
    // no stack unwinding.
    ::_exit(kFailpointCrashExitCode);
  }
  return hit;
}

Status FailpointError(const char* name) {
  return Status::Internal(std::string("failpoint '") + name +
                          "': injected error");
}

}  // namespace gbx
