// Failpoint injection: deterministic fault injection for the chaos test
// battery (tests/chaos_test.cc) and for poking a live server over the
// wire ("!fail", serve/protocol.h).
//
// A *failpoint* is a named site in production code where a test (or an
// operator) can inject a failure. Sites are spelled with the
// GBX_FAILPOINT* macros below; each site is identified by a
// dotted-path name ("model_io.save.write", "server.recv.eintr").
// What happens when an armed site is evaluated is an *action*:
//
//   off                disarmed (same as clearing the failpoint)
//   error              the site fails; how is site-specific (a typed
//                      Status at I/O sites, a simulated EINTR at
//                      syscall-wrapper sites — see the site's docs)
//   delay(MS)          sleep MS milliseconds, then continue normally
//   partial_write(N)   write sites persist only the first N bytes of
//                      the attempt, then fail — the torn-write fault
//   crash              _exit(kCrashExitCode) immediately: no atexit
//                      handlers, no buffer flush — a hard kill
//
// with an optional firing modifier:
//
//   :once              fire on the first evaluation, then disarm
//   :every(K)          fire on every Kth evaluation (K >= 1; beware
//                      every(1) on EINTR-simulation sites, whose retry
//                      loops re-evaluate until the site stops firing)
//
// Activation channels, all sharing the "name=action[:modifier]" spec
// grammar (comma- or semicolon-separated lists):
//
//   * env var  GBX_FAILPOINTS="model_io.save.write=error:once,..."
//     read once, at the first failpoint evaluation in the process;
//   * in-process  Failpoints::Instance().Set(name, spec) from tests;
//   * over the wire  "!fail set name=spec" / "!fail clear name|*" /
//     "!fail list" on a serving front-end (serve/server.h).
//
// Site inventory (grep GBX_FAILPOINT for ground truth):
//
//   model_io.save.{open,write,fsync,rename}   artifact I/O failures
//   model_io.save.crash_before_rename         torn-write crash window
//   registry.publish.validate                 hot-swap probe failure
//   server.{accept,poll,recv,send}.eintr      EINTR storms (every(K>=2))
//   server.worker.delay                       slow worker -> queue
//                                             pressure (overload and
//                                             degradation-ladder tests)
//   engine.predict                            typed failure out of the
//                                             inference engine
//   engine.predict.stall                      delay *inside* the predict
//                                             path while the worker is
//                                             marked busy — the watchdog
//                                             battery's stuck-worker
//                                             trigger (serve/server.h)
//
// Cost model: the registry below always compiles (so the spec grammar,
// "!fail", and tests of either work in every build), but the *sites*
// are compiled only when GBX_FAILPOINTS_ENABLED is defined (CMake
// option GBX_FAILPOINTS, default AUTO = on everywhere except plain
// Release). Compiled out, every macro is literally `(void)0` — zero
// overhead, the Release serving path carries no trace of the
// framework. Compiled in but disarmed, a site costs one relaxed atomic
// load.
#ifndef GBX_COMMON_FAILPOINT_H_
#define GBX_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace gbx {

/// Exit code of the `crash` action (distinguishable from asan aborts
/// and GBX_CHECK failures in death tests and CI logs).
inline constexpr int kFailpointCrashExitCode = 86;

/// The outcome of evaluating one failpoint site. `delay` and `crash`
/// actions are executed inside Eval() itself (the site just proceeds /
/// dies); `error` and `partial_write` are returned for the site to
/// interpret.
struct FailpointHit {
  enum class Action {
    kOff = 0,
    kError,
    kDelay,
    kPartialWrite,
    kCrash,
  };
  Action action = Action::kOff;
  /// delay(ms) / partial_write(n) argument.
  int arg = 0;

  bool fired() const { return action != Action::kOff; }
  bool error() const { return action == Action::kError; }
  bool partial_write() const { return action == Action::kPartialWrite; }
};

/// Process-wide failpoint registry. Thread-safe; Eval() is lock-free
/// when no failpoint is armed.
class Failpoints {
 public:
  /// True when GBX_FAILPOINT sites are compiled into this build. When
  /// false, Set()/Configure() still parse and record specs (the grammar
  /// stays testable) but no site will ever evaluate them.
  static constexpr bool kCompiledIn =
#ifdef GBX_FAILPOINTS_ENABLED
      true;
#else
      false;
#endif

  /// The singleton. First call applies the GBX_FAILPOINTS env var.
  static Failpoints& Instance();

  /// Arms `name` with `spec` = "action[:modifier]" (grammar above).
  /// "off" disarms. InvalidArgument on a malformed spec.
  Status Set(const std::string& name, const std::string& spec);

  /// Disarms `name`; NotFound if it was not armed.
  Status Clear(const std::string& name);

  /// Disarms everything (test teardown).
  void ClearAll();

  /// Applies a comma/semicolon-separated "name=spec" list. Stops at the
  /// first malformed entry (already-applied entries stay armed).
  Status Configure(const std::string& config);

  struct Info {
    std::string name;
    std::string spec;        // the spec text Set() was given
    std::int64_t evals = 0;  // evaluations since armed
    std::int64_t hits = 0;   // evaluations that fired
  };
  /// Currently-armed failpoints, name-ordered.
  std::vector<Info> List() const;

  /// Lifetime fired-count for `name` (survives Clear/re-Set; 0 if the
  /// name never fired). How chaos tests assert a fault was actually
  /// exercised.
  std::int64_t HitCount(const std::string& name) const;

  /// Evaluates the site `name`: applies firing modifiers, executes
  /// delay/crash actions inline, and returns the hit (kOff when
  /// disarmed or the modifier suppressed this evaluation).
  FailpointHit Eval(const char* name);

  /// True when any failpoint is armed — the macro fast path.
  bool armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  Failpoints();

  struct Entry {
    FailpointHit hit;       // action + arg to deliver when firing
    std::string spec;       // original spec text (for List)
    bool once = false;      // disarm after the first fire
    int every_k = 1;        // fire on every Kth evaluation
    std::int64_t evals = 0; // evaluations since armed
    std::int64_t hits = 0;  // fires since armed
  };

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::map<std::string, Entry> points_;
  std::map<std::string, std::int64_t> lifetime_hits_;
};

/// The Status an `error`-action hit conventionally maps to at Status
/// sites: Internal("failpoint 'NAME': injected error").
Status FailpointError(const char* name);

}  // namespace gbx

#ifdef GBX_FAILPOINTS_ENABLED
/// Evaluates the failpoint `name` as an expression yielding a
/// FailpointHit. delay/crash actions happen inside; error/partial_write
/// come back for the site to interpret.
#define GBX_FAILPOINT_EVAL(name)                  \
  (::gbx::Failpoints::Instance().armed()          \
       ? ::gbx::Failpoints::Instance().Eval(name) \
       : ::gbx::FailpointHit{})
/// Fire-and-forget site: honors delay/crash, ignores error actions.
#define GBX_FAILPOINT(name) ((void)GBX_FAILPOINT_EVAL(name))
/// Status-returning site: `return FailpointError(name)` on an
/// error-action hit (delay/crash still apply).
#define GBX_FAILPOINT_RETURN_ERROR(name)                          \
  do {                                                            \
    const ::gbx::FailpointHit _gbx_fp = GBX_FAILPOINT_EVAL(name); \
    if (_gbx_fp.error()) return ::gbx::FailpointError(name);      \
  } while (0)
#else
#define GBX_FAILPOINT_EVAL(name) (::gbx::FailpointHit{})
#define GBX_FAILPOINT(name) ((void)0)
#define GBX_FAILPOINT_RETURN_ERROR(name) ((void)0)
#endif

#endif  // GBX_COMMON_FAILPOINT_H_
