#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace gbx {
namespace logging {

namespace {

LogLevel ParseLevel(const char* s) {
  if (s == nullptr) return LogLevel::kInfo;
  const std::string v(s);
  if (v == "debug" || v == "DEBUG") return LogLevel::kDebug;
  if (v == "info" || v == "INFO") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "WARN") return LogLevel::kWarn;
  if (v == "error" || v == "ERROR") return LogLevel::kError;
  if (v == "off" || v == "OFF" || v == "none" || v == "0") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& MinLevel() {
  static std::atomic<int> level(
      static_cast<int>(ParseLevel(std::getenv("GBX_LOG"))));
  return level;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& Sink() {
  static LogSink sink;  // empty = stderr
  return sink;
}

bool NeedsQuoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void AppendValue(std::string& line, std::string_view v) {
  if (!NeedsQuoting(v)) {
    line.append(v);
    return;
  }
  line.push_back('"');
  for (char c : v) {
    switch (c) {
      case '\\': line += "\\\\"; break;
      case '"': line += "\\\""; break;
      case '\n': line += "\\n"; break;
      case '\t': line += "\\t"; break;
      default: line.push_back(c);
    }
  }
  line.push_back('"');
}

void AppendTimestamp(std::string& line) {
  // Wall-clock ISO-8601 UTC with millisecond precision.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  // Sized for the worst case snprintf can prove (full INT_MIN fields),
  // not the 24 bytes a sane clock produces — keeps -Wformat-truncation
  // quiet under -Werror.
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms));
  line += buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         MinLevel().load(std::memory_order_relaxed);
}

void SetMinLogLevel(LogLevel level) {
  MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSinkForTest(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sink() = std::move(sink);
}

LogLine::LogLine(LogLevel level, std::string_view event) {
  line_.reserve(96);
  line_ += "ts=";
  AppendTimestamp(line_);
  line_ += " level=";
  line_ += LogLevelName(level);
  line_ += " event=";
  AppendValue(line_, event);
}

LogLine& LogLine::Kv(std::string_view key, std::string_view value) {
  line_.push_back(' ');
  line_.append(key);
  line_.push_back('=');
  AppendValue(line_, value);
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, bool value) {
  return Kv(key, std::string_view(value ? "true" : "false"));
}

LogLine& LogLine::Kv(std::string_view key, std::int64_t value) {
  return Kv(key, std::string_view(std::to_string(value)));
}

LogLine& LogLine::Kv(std::string_view key, std::uint64_t value) {
  return Kv(key, std::string_view(std::to_string(value)));
}

LogLine& LogLine::Kv(std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Kv(key, std::string_view(buf));
}

LogLine::~LogLine() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (Sink()) {
    Sink()(line_);
  } else {
    std::fprintf(stderr, "%s\n", line_.c_str());
  }
}

}  // namespace logging
}  // namespace gbx
