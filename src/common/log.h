// Structured, leveled, thread-safe logging: machine-parseable key=value
// lines on stderr (or a test-injected sink).
//
//   GBX_SLOG(kInfo, "server.start").Kv("port", 7171).Kv("workers", 4);
//
// emits one line:
//
//   ts=2026-08-08T12:34:56.789Z level=info event=server.start port=7171 workers=4
//
// Values containing spaces, quotes or '=' are double-quoted with
// backslash escaping, so a line splits unambiguously on spaces outside
// quotes. The minimum level comes from the GBX_LOG env var
// (debug|info|warn|error|off; default info) and can be overridden by
// tests. The level check is the macro's fast path: a suppressed line
// costs one relaxed atomic load and builds nothing.
#ifndef GBX_COMMON_LOG_H_
#define GBX_COMMON_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace gbx {
namespace logging {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

/// True when a line at `level` would be emitted. One relaxed atomic
/// load; the first call reads the GBX_LOG env var.
bool LogEnabled(LogLevel level);

/// Overrides the minimum level (tests / --metrics-dump-sec plumbing).
void SetMinLogLevel(LogLevel level);

/// Redirects emitted lines (newline not included) to `sink`; pass
/// nullptr to restore stderr. Returns the previous sink. Test-only.
using LogSink = std::function<void(const std::string&)>;
void SetLogSinkForTest(LogSink sink);

/// One log line under construction. Emits on destruction. Not meant to
/// outlive the statement it is built in.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view event);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& Kv(std::string_view key, std::string_view value);
  LogLine& Kv(std::string_view key, const char* value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, const std::string& value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, bool value);
  LogLine& Kv(std::string_view key, std::int64_t value);
  LogLine& Kv(std::string_view key, std::uint64_t value);
  LogLine& Kv(std::string_view key, int value) {
    return Kv(key, static_cast<std::int64_t>(value));
  }
  LogLine& Kv(std::string_view key, unsigned value) {
    return Kv(key, static_cast<std::uint64_t>(value));
  }
  LogLine& Kv(std::string_view key, double value);

 private:
  std::string line_;
};

}  // namespace logging
}  // namespace gbx

/// Builds a LogLine only when `level` clears the filter; otherwise the
/// whole statement (including every Kv argument) is skipped.
#define GBX_SLOG(level, event)                                \
  if (!::gbx::logging::LogEnabled(::gbx::logging::LogLevel::level)) \
    ;                                                         \
  else                                                        \
    ::gbx::logging::LogLine(::gbx::logging::LogLevel::level, (event))

#endif  // GBX_COMMON_LOG_H_
