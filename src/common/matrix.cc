#include "common/matrix.h"

namespace gbx {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  Matrix m;
  for (const auto& row : rows) {
    std::vector<double> tmp(row);
    m.AppendRow(tmp.data(), static_cast<int>(tmp.size()));
  }
  return m;
}

Matrix Matrix::SelectRows(const std::vector<int>& indices) const {
  Matrix out(static_cast<int>(indices.size()), cols_);
  for (int i = 0; i < out.rows(); ++i) {
    const int src = indices[i];
    GBX_CHECK(src >= 0 && src < rows_);
    const double* s = Row(src);
    double* d = out.Row(i);
    for (int c = 0; c < cols_; ++c) d[c] = s[c];
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.rows() == 0) return;
  if (rows_ == 0 && cols_ == 0) {
    cols_ = other.cols();
  }
  GBX_CHECK_EQ(cols_, other.cols());
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows();
}

void Matrix::AppendRow(const double* row, int n) {
  if (rows_ == 0 && cols_ == 0) cols_ = n;
  GBX_CHECK_EQ(cols_, n);
  data_.insert(data_.end(), row, row + n);
  ++rows_;
}

}  // namespace gbx
