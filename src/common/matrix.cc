#include "common/matrix.h"

namespace gbx {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  Matrix m;
  for (const auto& row : rows) {
    std::vector<double> tmp(row);
    m.AppendRow(tmp.data(), static_cast<int>(tmp.size()));
  }
  return m;
}

Matrix Matrix::SelectRows(const std::vector<int>& indices) const {
  Matrix out(static_cast<int>(indices.size()), cols_);
  for (int i = 0; i < out.rows(); ++i) {
    const int src = indices[i];
    GBX_CHECK(src >= 0 && src < rows_);
    const double* s = Row(src);
    double* d = out.Row(i);
    for (int c = 0; c < cols_; ++c) d[c] = s[c];
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.rows() == 0) return;
  if (rows_ == 0 && cols_ == 0) {
    cols_ = other.cols();
  }
  GBX_CHECK_EQ(cols_, other.cols());
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows();
}

void Matrix::AppendRow(const double* row, int n) {
  if (rows_ == 0 && cols_ == 0) cols_ = n;
  GBX_CHECK_EQ(cols_, n);
  data_.insert(data_.end(), row, row + n);
  ++rows_;
}

void SoaMatrix::AppendRow(const double* row) {
  if (rows_ % kSoaBlock == 0) {
    // Open a fresh zero-padded block.
    data_.resize(data_.size() + static_cast<std::size_t>(cols_) * kSoaBlock,
                 0.0);
  }
  const int lane = rows_ % kSoaBlock;
  double* block = data_.data() + static_cast<std::size_t>(rows_ / kSoaBlock) *
                                     cols_ * kSoaBlock;
  for (int c = 0; c < cols_; ++c) {
    block[static_cast<std::size_t>(c) * kSoaBlock + lane] = row[c];
  }
  ++rows_;
}

void SoaMatrix::GatherRows(const Matrix& m, const int* indices, int count) {
  Clear();
  cols_ = m.cols();
  Reserve(count);
  for (int i = 0; i < count; ++i) {
    GBX_DCHECK(indices[i] >= 0 && indices[i] < m.rows());
    AppendRow(m.Row(indices[i]));
  }
}

SoaMatrix SoaMatrix::FromMatrix(const Matrix& m) {
  SoaMatrix out(m.cols());
  out.Reserve(m.rows());
  for (int r = 0; r < m.rows(); ++r) out.AppendRow(m.Row(r));
  return out;
}

}  // namespace gbx
