// Dense row-major matrix of doubles. The numeric workhorse for datasets,
// distance computation, and the linear algebra used by PCA/t-SNE. Kept
// deliberately small: rows are contiguous so distance kernels can work on
// raw pointers.
#ifndef GBX_COMMON_MATRIX_H_
#define GBX_COMMON_MATRIX_H_

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace gbx {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    GBX_CHECK_GE(rows, 0);
    GBX_CHECK_GE(cols, 0);
  }

  /// Builds a matrix from nested braces: Matrix::FromRows({{1,2},{3,4}}).
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(int r, int c) {
    GBX_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
    GBX_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Pointer to the contiguous row r (cols() doubles).
  double* Row(int r) {
    GBX_DCHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }
  const double* Row(int r) const {
    GBX_DCHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  /// New matrix containing the given rows, in order.
  Matrix SelectRows(const std::vector<int>& indices) const;

  /// Appends all rows of `other` (must have matching cols, or this empty).
  void AppendRows(const Matrix& other);

  /// Appends one row given as a span of cols() doubles.
  void AppendRow(const double* row, int n);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two length-d vectors. Defined
/// inline so the per-element loop can vectorize at every call site
/// instead of paying a cross-TU call per pair; distance-heavy hot loops
/// (granulation, k-means, DPC) compare squared values and defer the
/// sqrt to the moment an actual radius is needed.
inline double SquaredDistance(const double* a, const double* b, int d) {
  double s = 0.0;
  for (int i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

/// Euclidean distance between two length-d vectors.
inline double EuclideanDistance(const double* a, const double* b, int d) {
  return std::sqrt(SquaredDistance(a, b, d));
}

}  // namespace gbx

#endif  // GBX_COMMON_MATRIX_H_
