// Dense row-major matrix of doubles. The numeric workhorse for datasets,
// distance computation, and the linear algebra used by PCA/t-SNE. Kept
// deliberately small: rows are contiguous so distance kernels can work on
// raw pointers.
#ifndef GBX_COMMON_MATRIX_H_
#define GBX_COMMON_MATRIX_H_

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace gbx {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    GBX_CHECK_GE(rows, 0);
    GBX_CHECK_GE(cols, 0);
  }

  /// Builds a matrix from nested braces: Matrix::FromRows({{1,2},{3,4}}).
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(int r, int c) {
    GBX_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
    GBX_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Pointer to the contiguous row r (cols() doubles).
  double* Row(int r) {
    GBX_DCHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }
  const double* Row(int r) const {
    GBX_DCHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  /// New matrix containing the given rows, in order.
  Matrix SelectRows(const std::vector<int>& indices) const;

  /// Appends all rows of `other` (must have matching cols, or this empty).
  void AppendRows(const Matrix& other);

  /// Appends one row given as a span of cols() doubles.
  void AppendRow(const double* row, int n);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Lane width of the SoA blocked layout below. Fixed at 8 on every
/// architecture — the layout is part of the numeric contract (a model
/// packed on an AVX-512 host must stream identically through the NEON
/// and scalar kernels), so it never tracks the native vector width.
/// 8 doubles is one AVX-512 register, two AVX2 registers, four NEON
/// registers, and a 64-byte cache line either way.
inline constexpr int kSoaBlock = 8;

/// Structure-of-arrays blocked matrix: rows are grouped into blocks of
/// kSoaBlock, and within a block the storage is column-major — element
/// (r, c) lives at data()[((r/8)*cols + c)*8 + r%8]. A batched distance
/// kernel walking dimension c therefore loads 8 rows' c-th coordinates
/// as one contiguous vector, which is what lets src/simd/ vectorize
/// *across rows* while keeping each row's accumulation order identical
/// to the scalar SquaredDistance loop (the bit-exactness contract).
/// The final partial block is zero-padded; kernels never read padding
/// (partial blocks take the per-lane scalar path).
class SoaMatrix {
 public:
  SoaMatrix() = default;
  explicit SoaMatrix(int cols) : cols_(cols) { GBX_CHECK_GE(cols, 0); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Drops all rows but keeps the allocation (tile-buffer reuse in hot
  /// loops) and the column count.
  void Clear() {
    rows_ = 0;
    data_.clear();
  }

  void Reserve(int rows) {
    GBX_CHECK_GE(rows, 0);
    data_.reserve(BlocksFor(rows) * static_cast<std::size_t>(cols_) *
                  kSoaBlock);
  }

  /// Appends one row given as cols() contiguous doubles.
  void AppendRow(const double* row);

  /// Clear() + append rows `indices[0..count)` of `m` in order — the
  /// gather-pack used to tile scattered candidate rows into a reusable
  /// SoA scratch buffer. Adopts m's column count.
  void GatherRows(const Matrix& m, const int* indices, int count);

  static SoaMatrix FromMatrix(const Matrix& m);

  /// Strided single-element read (tests / cold paths).
  double At(int r, int c) const {
    GBX_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[BlockOffset(r, c)];
  }

  const double* data() const { return data_.data(); }

 private:
  static std::size_t BlocksFor(int rows) {
    return (static_cast<std::size_t>(rows) + kSoaBlock - 1) / kSoaBlock;
  }
  std::size_t BlockOffset(int r, int c) const {
    return (static_cast<std::size_t>(r / kSoaBlock) * cols_ + c) * kSoaBlock +
           r % kSoaBlock;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two length-d vectors. Defined
/// inline so the per-element loop can vectorize at every call site
/// instead of paying a cross-TU call per pair; distance-heavy hot loops
/// (granulation, k-means, DPC) compare squared values and defer the
/// sqrt to the moment an actual radius is needed.
inline double SquaredDistance(const double* a, const double* b, int d) {
  double s = 0.0;
  for (int i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

/// Euclidean distance between two length-d vectors.
inline double EuclideanDistance(const double* a, const double* b, int d) {
  return std::sqrt(SquaredDistance(a, b, d));
}

}  // namespace gbx

#endif  // GBX_COMMON_MATRIX_H_
