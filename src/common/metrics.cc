#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace gbx {
namespace metrics {

bool Enabled() {
  static const bool enabled = [] {
    if (!kCompiledIn) return false;
    const char* env = std::getenv("GBX_METRICS");
    if (env == nullptr) return true;
    const std::string v(env);
    return !(v == "0" || v == "off" || v == "OFF" || v == "false");
  }();
  return enabled;
}

// ---------------------------------------------------------------------------
// Histogram

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  // 0.001 ms .. ~33.6 s, doubling: covers sub-microsecond kernel work
  // through multi-second fits in one fixed layout.
  return ExponentialBounds(0.001, 2.0, 26);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::int64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::size_t Histogram::BucketIndex(double v) const {
  // Prometheus convention: bucket i counts v <= bounds[i]; index
  // bounds_.size() is the +Inf bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  s.min = std::isfinite(mn) ? mn : 0.0;
  s.max = std::isfinite(mx) ? mx : 0.0;
  return s;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil as quantile
  // convention; rank 0 maps to the minimum).
  const double rank = q * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      const double lo = (i == 0) ? std::min(min, bounds.empty() ? min : bounds[0])
                                 : bounds[i - 1];
      const double hi = (i < bounds.size()) ? bounds[i] : max;
      const double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
      const double est = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      // The bucket estimate can stray outside the exact observed range
      // (e.g. max mid-bucket); clamp so p99 <= max and p0 >= min hold.
      return std::clamp(est, min, max);
    }
  }
  return max;
}

bool HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.count > 0) {
    min = (count > 0) ? std::min(min, other.min) : other.min;
    max = (count > 0) ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  sum += other.sum;
  return true;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

std::string CanonicalKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  key.push_back('{');
  for (const auto& [k, v] : labels) {
    key += k;
    key.push_back('=');
    key += v;
    key.push_back(',');
  }
  key.push_back('}');
  return key;
}

std::string EscapePromLabel(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Shortest-round-trip-ish float formatting for exposition: trims the
// trailing zeros %g leaves alone while keeping integers integral.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string PromLabelBlock(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += EscapePromLabel(v);
    out += "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    Kind kind, const std::string& name, const Labels& labels,
    const std::string& help, std::vector<double> bounds) {
  Labels canonical = labels;
  std::sort(canonical.begin(), canonical.end());
  const std::string key = CanonicalKey(name, canonical);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind == kind) return &it->second;
    // Kind clash: a caller bug. Hand back a detached metric of the
    // requested kind so the write path stays safe and the registered
    // family keeps a consistent type for exposition.
    auto detached = std::make_unique<Entry>();
    detached->kind = kind;
    detached->name = name;
    detached->labels = canonical;
    switch (kind) {
      case Kind::kCounter:
        detached->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        detached->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        detached->histogram = std::make_unique<Histogram>(
            bounds.empty() ? Histogram::DefaultLatencyBoundsMs()
                           : std::move(bounds));
        break;
    }
    detached_.push_back(std::move(detached));
    return detached_.back().get();
  }

  Entry& e = entries_[key];
  e.kind = kind;
  e.name = name;
  e.labels = std::move(canonical);
  e.help = help;
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>(
          bounds.empty() ? Histogram::DefaultLatencyBoundsMs()
                         : std::move(bounds));
      break;
  }
  return &e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  return FindOrCreate(Kind::kCounter, name, labels, help, {})->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  return FindOrCreate(Kind::kGauge, name, labels, help, {})->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  return FindOrCreate(Kind::kHistogram, name, labels, help, std::move(bounds))
      ->histogram.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const std::string* prev_name = nullptr;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (prev_name == nullptr || *prev_name != e.name) {
      if (!e.help.empty()) {
        out += "# HELP " + e.name + " " + e.help + "\n";
      }
      out += "# TYPE " + e.name + " ";
      switch (e.kind) {
        case Kind::kCounter: out += "counter"; break;
        case Kind::kGauge: out += "gauge"; break;
        case Kind::kHistogram: out += "histogram"; break;
      }
      out.push_back('\n');
      prev_name = &e.name;
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += e.name + PromLabelBlock(e.labels) + " " +
               std::to_string(e.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += e.name + PromLabelBlock(e.labels) + " " +
               std::to_string(e.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = e.histogram->Snapshot();
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < s.counts.size(); ++i) {
          cumulative += s.counts[i];
          const std::string le =
              (i < s.bounds.size()) ? FormatDouble(s.bounds[i]) : "+Inf";
          out += e.name + "_bucket" +
                 PromLabelBlock(e.labels, "le=\"" + le + "\"") + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += e.name + "_sum" + PromLabelBlock(e.labels) + " " +
               FormatDouble(s.sum) + "\n";
        out += e.name + "_count" + PromLabelBlock(e.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + EscapeJson(e.name) + "\"";
    if (!e.labels.empty()) {
      out += ",\"labels\":{";
      bool lfirst = true;
      for (const auto& [k, v] : e.labels) {
        if (!lfirst) out.push_back(',');
        lfirst = false;
        // Plain appends: the `const char* + string&&` operator+ chain
        // trips a gcc-12 -Wrestrict false positive under -Werror.
        out.push_back('"');
        out += EscapeJson(k);
        out += "\":\"";
        out += EscapeJson(v);
        out.push_back('"');
      }
      out.push_back('}');
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":" +
               std::to_string(e.counter->Value());
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" +
               std::to_string(e.gauge->Value());
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = e.histogram->Snapshot();
        out += ",\"type\":\"histogram\",\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + FormatDouble(s.sum) +
               ",\"min\":" + FormatDouble(s.min) +
               ",\"max\":" + FormatDouble(s.max) +
               ",\"mean\":" + FormatDouble(s.Mean()) +
               ",\"p50\":" + FormatDouble(s.Quantile(0.50)) +
               ",\"p90\":" + FormatDouble(s.Quantile(0.90)) +
               ",\"p99\":" + FormatDouble(s.Quantile(0.99));
        break;
      }
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// ScopedTimerMs

namespace {
std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ScopedTimerMs::ScopedTimerMs(Histogram* h)
    : h_(h), start_ns_(h != nullptr ? NowNs() : 0) {}

void ScopedTimerMs::StopAndRecord() {
  if (h_ != nullptr) {
    h_->Observe(static_cast<double>(NowNs() - start_ns_) * 1e-6);
    h_ = nullptr;
  }
}

ScopedTimerMs::~ScopedTimerMs() { StopAndRecord(); }

}  // namespace metrics
}  // namespace gbx
