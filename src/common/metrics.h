// Process-wide metrics: lock-light counters, gauges and fixed-bucket
// exponential histograms, registered by name + label set, with
// Prometheus-text and JSON exposition.
//
// Design goals (mirrors common/failpoint.h's cost model):
//
//   * An unscraped counter costs one relaxed atomic increment. A
//     histogram observation costs a bucket-index computation plus a
//     handful of relaxed atomic RMWs. No locks on the observation path.
//   * Registration (GetCounter / GetGauge / GetHistogram) takes a mutex
//     and is meant for setup time; callers cache the returned pointer,
//     which stays valid for the registry's lifetime.
//   * Exposition (PrometheusText / JsonText) reads every atomic with
//     relaxed loads; scrapes never block writers.
//
// Build-time escape hatch: the CMake option GBX_METRICS (default ON)
// defines GBX_METRICS_ENABLED. Compiled out, every observation method
// is an empty inline function (Metrics::kCompiledIn == false) so the
// serving hot path carries no trace of the subsystem; registration and
// exposition still compile (values read as zero). The runtime guard
// metrics::Enabled() (GBX_METRICS env var, "0"/"off" disables) is for
// call sites whose *measurement* is the cost — e.g. phase stopwatches
// inside fit loops — not for plain counter bumps.
#ifndef GBX_COMMON_METRICS_H_
#define GBX_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gbx {
namespace metrics {

/// True when observation methods are compiled in (CMake option
/// GBX_METRICS, default ON).
inline constexpr bool kCompiledIn =
#ifdef GBX_METRICS_ENABLED
    true;
#else
    false;
#endif

/// Runtime guard for call sites where taking the measurement itself is
/// the cost (phase timers around fit loops). One relaxed atomic load;
/// first call reads the GBX_METRICS env var ("0" or "off" disables).
bool Enabled();

/// Label set attached to a metric at registration: key/value pairs,
/// canonicalised (sorted by key) by the registry.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// C++20 has std::atomic<double>::fetch_add but CAS loops keep us
// independent of libstdc++'s lowering; these are not on any p50 path
// that matters beyond a few RMWs per request.
inline void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic counter. Inc() is one relaxed fetch_add.
class Counter {
 public:
  void Inc(std::int64_t n = 1) {
    if constexpr (kCompiledIn) {
      v_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time integer gauge (queue depths, sizes, high-water marks).
class Gauge {
 public:
  void Set(std::int64_t v) {
    if constexpr (kCompiledIn) {
      v_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void Add(std::int64_t n) {
    if constexpr (kCompiledIn) {
      v_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  void Sub(std::int64_t n) { Add(-n); }
  /// Raises the gauge to `v` if it is currently below it (high-water
  /// marks such as queue_peak).
  void SetMax(std::int64_t v) {
    if constexpr (kCompiledIn) {
      std::int64_t cur = v_.load(std::memory_order_relaxed);
      while (cur < v && !v_.compare_exchange_weak(
                            cur, v, std::memory_order_relaxed)) {
      }
    } else {
      (void)v;
    }
  }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// A consistent-enough point-in-time copy of a histogram (per-bucket
/// loads are individually relaxed). Mergeable; quantiles are estimated
/// by linear interpolation inside the landing bucket and clamped to the
/// exact observed [min, max].
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< upper bounds, ascending; +Inf implied
  std::vector<std::int64_t> counts;  ///< size bounds.size()+1 (last = +Inf)
  std::int64_t count = 0;            ///< exact number of observations
  double sum = 0.0;                  ///< exact sum of observations
  double min = 0.0;                  ///< exact smallest observation (0 if empty)
  double max = 0.0;                  ///< exact largest observation (0 if empty)

  double Quantile(double q) const;  ///< q in [0,1]; 0 when empty
  double Mean() const { return count > 0 ? sum / count : 0.0; }
  /// Merges `other` into this (bounds must match; returns false if not).
  bool Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram. Observe() computes the bucket index and does
/// a handful of relaxed RMWs; count and sum are exact, quantiles are
/// bucket estimates. Bucket bounds are fixed at construction.
class Histogram {
 public:
  /// Default latency buckets (milliseconds): 1 us .. ~33.6 s, x2 per
  /// bucket, 26 finite buckets (+Inf implied).
  static std::vector<double> DefaultLatencyBoundsMs();
  /// Exponential bounds: start, start*factor, ... (`n` finite buckets).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int n);

  explicit Histogram(std::vector<double> bounds = DefaultLatencyBoundsMs());

  void Observe(double v) {
    if constexpr (kCompiledIn) {
      counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      detail::AtomicAdd(sum_, v);
      detail::AtomicMin(min_, v);
      detail::AtomicMax(max_, v);
    } else {
      (void)v;
    }
  }

  std::int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::size_t BucketIndex(double v) const;

  std::vector<double> bounds_;
  // One extra slot for the +Inf bucket. unique_ptr<[]> keeps Histogram
  // movable at construction time while the atomics stay address-stable.
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Registry of named metrics. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime; repeated calls
/// with the same (name, labels) return the same object. The same name
/// must keep the same kind (a kind clash returns a process-lifetime
/// detached metric so the caller bug cannot corrupt exposition).
class MetricsRegistry {
 public:
  /// The process-wide default instance (what the serving path uses).
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "",
                          std::vector<double> bounds = {});

  /// Prometheus text exposition format: # HELP / # TYPE headers, one
  /// series per label set, histograms as cumulative _bucket{le=}/_sum/
  /// _count. Families sorted by name, series by label set.
  std::string PrometheusText() const;

  /// JSON exposition: {"metrics":[{"name":...,"labels":{...},
  /// "type":"counter"|"gauge"|"histogram", ...}]}. Counters/gauges
  /// carry "value"; histograms carry count/sum/min/max/mean/p50/p90/
  /// p99. Stable field order for line-oriented consumers.
  std::string JsonText() const;

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;  // canonical (key-sorted)
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(Kind kind, const std::string& name, const Labels& labels,
                      const std::string& help, std::vector<double> bounds);

  mutable std::mutex mu_;
  // Key = name + canonical label serialisation; map iteration order is
  // exposition order (series of one family are contiguous).
  std::map<std::string, Entry> entries_;
  // Kind-clash fallbacks; never exposed.
  std::vector<std::unique_ptr<Entry>> detached_;
};

/// RAII timer observing elapsed milliseconds into a histogram on
/// destruction (no-op when `h` is null). Uses the steady clock.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* h);
  ~ScopedTimerMs();
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;
  /// Stops the timer early and records; destruction then does nothing.
  void StopAndRecord();

 private:
  Histogram* h_;
  std::int64_t start_ns_;
};

}  // namespace metrics
}  // namespace gbx

#endif  // GBX_COMMON_METRICS_H_
