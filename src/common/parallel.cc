#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace gbx {

namespace {

// Depth of pool tasks on the current thread; > 0 means a nested parallel
// loop must run serially.
thread_local int g_parallel_depth = 0;

}  // namespace

int HardwareThreads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

int DefaultNumThreads() {
  const char* env = std::getenv("GBX_THREADS");
  if (env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, ThreadPool::kMaxWorkers + 1);
  }
  return HardwareThreads();
}

int ResolveNumThreads(int num_threads) {
  return num_threads > 0 ? num_threads : DefaultNumThreads();
}

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool& ThreadPool::Global() {
  // The caller always participates, so DefaultNumThreads()-1 workers give
  // the default thread count. Grows later if a caller asks for more.
  static ThreadPool pool(DefaultNumThreads() - 1);
  return pool;
}

bool ThreadPool::InParallelRegion() { return g_parallel_depth > 0; }

void ThreadPool::EnsureWorkers(int target) {
  target = std::min(target, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::RunChunks(Job* job) {
  ++g_parallel_depth;
  for (;;) {
    const int chunk = job->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) break;
    const int begin = chunk * job->grain;
    const int end = std::min(job->count, begin + job->grain);
    job->fn(begin, end);
    if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk: wake the owner. The lock pairs with the owner's
      // predicate check so the notification cannot be missed.
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->done_cv.notify_all();
    }
  }
  --g_parallel_depth;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      job = job_;  // keep the job alive while running its chunks
    }
    RunChunks(job.get());
  }
}

void ThreadPool::ParallelForRange(int count, int grain, int max_threads,
                                  const std::function<void(int, int)>& fn) {
  if (count <= 0) return;
  grain = std::max(grain, 1);
  const int num_chunks = (count + grain - 1) / grain;
  const int threads = std::clamp(max_threads, 1, num_chunks);
  if (threads == 1 || InParallelRegion()) {
    fn(0, count);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->count = count;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->remaining.store(num_chunks, std::memory_order_relaxed);
  EnsureWorkers(threads - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();

  RunChunks(job.get());  // the caller is always an executor

  {
    // Workers may still be finishing chunks they claimed before the
    // caller drained the queue.
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(
        lock, [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job_ == job) job_ = nullptr;
  }
}

void ParallelFor(int count, int num_threads,
                 const std::function<void(int)>& fn) {
  ThreadPool::Global().ParallelForRange(
      count, /*grain=*/1, ResolveNumThreads(num_threads),
      [&fn](int begin, int end) {
        for (int i = begin; i < end; ++i) fn(i);
      });
}

void ParallelForRange(int count, int grain, int num_threads,
                      const std::function<void(int, int)>& fn) {
  ThreadPool::Global().ParallelForRange(count, grain,
                                        ResolveNumThreads(num_threads), fn);
}

namespace {
constexpr std::int64_t kMinParallelWork = 16384;
constexpr std::int64_t kTargetChunkWork = 8192;
}  // namespace

int ParallelThreads(std::int64_t items, std::int64_t unit_cost, int threads) {
  const std::int64_t work = items * std::max<std::int64_t>(unit_cost, 1);
  return work >= kMinParallelWork ? threads : 1;
}

int ParallelGrain(std::int64_t unit_cost) {
  return static_cast<int>(std::max<std::int64_t>(
      16, kTargetChunkWork / std::max<std::int64_t>(unit_cost, 1)));
}

}  // namespace gbx
