// Persistent thread pool and deterministic parallel-for primitives.
//
// Every parallel loop in the library funnels through the process-wide
// ThreadPool::Global() instance, so worker threads are created once and
// reused across granulation rounds, benchmark iterations, and experiment
// cells instead of being spawned per call. Determinism contract: both
// ParallelFor and ParallelForRange only change *which thread* executes an
// index, never the work done for it — callers that write to disjoint
// per-index slots (the pattern used throughout gbx) get bit-identical
// results at any thread count.
//
// Thread-count resolution, everywhere a `num_threads` knob appears:
//   > 0  use exactly that many threads (the pool grows on demand);
//   <= 0 use the GBX_THREADS environment variable if set to a positive
//        integer, otherwise std::thread::hardware_concurrency().
//
// Nested parallelism is safe: a parallel loop issued from inside a pool
// task runs serially on the issuing thread, so granulation running under
// the experiment runner's per-cell parallelism cannot deadlock or
// oversubscribe.
#ifndef GBX_COMMON_PARALLEL_H_
#define GBX_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gbx {

/// std::thread::hardware_concurrency(), never less than 1.
int HardwareThreads();

/// The default worker count: GBX_THREADS when set to a positive integer,
/// otherwise HardwareThreads(). Re-read on every call so tests can adjust
/// the environment.
int DefaultNumThreads();

/// `num_threads > 0` wins; otherwise DefaultNumThreads().
int ResolveNumThreads(int num_threads);

class ThreadPool {
 public:
  /// Spawns `num_workers` persistent workers (clamped to [0, kMaxWorkers]).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const;

  /// Runs fn(begin, end) over chunks of ~`grain` indices covering
  /// [0, count), using up to `max_threads` executors (workers plus the
  /// calling thread, which always participates). Blocks until every chunk
  /// has finished. fn must be safe to invoke concurrently and must not
  /// throw. Runs serially inline when one executor suffices or when
  /// called from inside a pool task.
  void ParallelForRange(int count, int grain, int max_threads,
                        const std::function<void(int, int)>& fn);

  /// Process-wide pool shared by the whole library. Sized so that the
  /// default thread count (GBX_THREADS or hardware concurrency) is
  /// available; grows on demand when a caller asks for more.
  static ThreadPool& Global();

  /// True when the current thread is executing a pool task (used to
  /// serialize nested parallel loops).
  static bool InParallelRegion();

  /// Hard cap on pool size, a safety bound for absurd GBX_THREADS values.
  static constexpr int kMaxWorkers = 256;

 private:
  struct Job {
    std::function<void(int, int)> fn;
    int count = 0;
    int grain = 1;
    int num_chunks = 0;
    std::atomic<int> next{0};       // next chunk to claim
    std::atomic<int> remaining{0};  // chunks not yet finished
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  void EnsureWorkers(int target);
  void WorkerLoop();
  static void RunChunks(Job* job);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;       // currently published job, if any
  std::uint64_t generation_ = 0;   // bumped on every publish
  bool stop_ = false;
};

/// Parallel map over [0, count): fn(i) on the global pool, dynamically
/// scheduled one index at a time (best for heavyweight per-index work).
/// `num_threads` as per ResolveNumThreads.
void ParallelFor(int count, int num_threads,
                 const std::function<void(int)>& fn);

/// Chunked parallel map over [0, count): fn(begin, end) on the global
/// pool with a minimum chunk size of `grain` (best for cheap per-index
/// work where scheduling overhead matters).
void ParallelForRange(int count, int grain, int num_threads,
                      const std::function<void(int, int)>& fn);

/// Shared dispatch policy for the distance-heavy hot loops (granulation,
/// k-means, DPC): `unit_cost` approximates the inner-loop length per item
/// (e.g. the dimensionality, or k*d). Loops carrying less than ~16k total
/// units are not worth a pool handoff and run serially; chunks target
/// ~8k units so per-chunk scheduling overhead stays negligible.
int ParallelThreads(std::int64_t items, std::int64_t unit_cost, int threads);
int ParallelGrain(std::int64_t unit_cost);

}  // namespace gbx

#endif  // GBX_COMMON_PARALLEL_H_
