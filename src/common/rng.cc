#include "common/rng.h"

#include <cmath>

namespace gbx {

namespace {
constexpr std::uint64_t kPcgMultiplier = 6364136223846793005ULL;
}  // namespace

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextU32();
  state_ += seed;
  NextU32();
}

std::uint32_t Pcg32::NextU32() {
  std::uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
}

std::uint32_t Pcg32::NextBounded(std::uint32_t bound) {
  GBX_CHECK_GT(bound, 0u);
  // Lemire-style rejection: threshold = 2^32 mod bound.
  std::uint32_t threshold = (~bound + 1u) % bound;
  for (;;) {
    std::uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextDouble() {
  return NextU32() * (1.0 / 4294967296.0);
}

int Pcg32::NextInt(int lo, int hi) {
  GBX_CHECK_LE(lo, hi);
  auto span = static_cast<std::uint32_t>(static_cast<std::int64_t>(hi) -
                                         static_cast<std::int64_t>(lo) + 1);
  return lo + static_cast<int>(NextBounded(span));
}

double Pcg32::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return z0;
}

std::vector<int> Pcg32::SampleWithoutReplacement(int n, int k) {
  GBX_CHECK_GE(n, 0);
  GBX_CHECK_GE(k, 0);
  GBX_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(NextBounded(static_cast<std::uint32_t>(n - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace gbx
