// Deterministic pseudo-random number generation.
//
// Pcg32 implements the PCG-XSH-RR 64/32 generator (O'Neill, 2014): small
// state, excellent statistical quality, and — critical for reproducing the
// paper's experiments — identical streams across platforms and compilers,
// unlike std::mt19937 paired with unspecified std distributions.
#ifndef GBX_COMMON_RNG_H_
#define GBX_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace gbx {

class Pcg32 {
 public:
  /// `seed` selects the stream position, `stream` selects one of 2^63
  /// independent sequences.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t NextU32();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t NextBounded(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Standard normal via Box-Muller (caches the second variate).
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = NextBounded(static_cast<std::uint32_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (order unspecified but
  /// deterministic). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // UniformRandomBitGenerator interface so Pcg32 can drive std algorithms.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return NextU32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gbx

#endif  // GBX_COMMON_RNG_H_
