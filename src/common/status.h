// Minimal Status / StatusOr error-handling vocabulary (exception-free, in
// the spirit of absl::Status). Fallible APIs (I/O, parsing, user-facing
// configuration) return Status or StatusOr<T>; internal invariants use
// GBX_CHECK instead.
#ifndef GBX_COMMON_STATUS_H_
#define GBX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace gbx {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  /// A finite resource (disk space, a bounded queue) is exhausted.
  /// Retrying later may succeed; retrying immediately will not.
  kResourceExhausted,
  /// The caller-supplied deadline expired before the work finished.
  kDeadlineExceeded,
  /// Stored data is unrecoverably lost or corrupted (checksum mismatch,
  /// truncated artifact) — distinct from kInvalidArgument, which means
  /// intact-but-malformed input.
  kDataLoss,
  /// The service is temporarily unable to take the request (overload
  /// shedding); safe to retry with backoff.
  kUnavailable,
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a message. The default
/// constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Accessing the value of a non-OK
/// StatusOr is a checked failure.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    GBX_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GBX_CHECK(ok());
    return *value_;
  }
  T& value() & {
    GBX_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    GBX_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define GBX_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::gbx::Status _gbx_status = (expr);    \
    if (!_gbx_status.ok()) return _gbx_status; \
  } while (0)

}  // namespace gbx

#endif  // GBX_COMMON_STATUS_H_
