// Wall-clock stopwatch for experiment timing.
#ifndef GBX_COMMON_STOPWATCH_H_
#define GBX_COMMON_STOPWATCH_H_

#include <chrono>

namespace gbx {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gbx

#endif  // GBX_COMMON_STOPWATCH_H_
