#include "common/trace.h"

#include <cstdio>
#include <utility>

#include "common/log.h"

namespace gbx {
namespace trace {

Trace::Trace(std::uint64_t id, std::string name)
    : id_(id), name_(std::move(name)) {
  TraceSpan root;
  root.id = 0;
  root.parent = -1;
  root.name = name_;
  spans_.push_back(std::move(root));
}

int Trace::AddSpan(std::string name, double start_ms, double duration_ms,
                   int parent, std::string note) {
  TraceSpan s;
  s.id = static_cast<int>(spans_.size());
  s.parent = parent;
  s.name = std::move(name);
  s.start_ms = start_ms;
  s.duration_ms = duration_ms;
  s.note = std::move(note);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Trace::Annotate(int id, const std::string& note) {
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  std::string& n = spans_[static_cast<std::size_t>(id)].note;
  if (!n.empty()) n.push_back(' ');
  n += note;
}

void Trace::Finish(double total_ms) {
  if (!spans_.empty()) spans_[0].duration_ms = total_ms;
}

namespace {

void FormatSpanTree(const Trace& t, int id, int depth, std::string& out) {
  const auto& spans = t.spans();
  const TraceSpan& s = spans[static_cast<std::size_t>(id)];
  char buf[64];
  for (int i = 0; i < depth; ++i) out += "  ";
  out += s.name;
  std::snprintf(buf, sizeof(buf), " @%.3fms +%.3fms", s.start_ms,
                s.duration_ms);
  out += buf;
  if (!s.note.empty()) {
    out += " [";
    out += s.note;
    out.push_back(']');
  }
  out.push_back('\n');
  for (const TraceSpan& child : spans) {
    if (child.parent == id) FormatSpanTree(t, child.id, depth + 1, out);
  }
}

}  // namespace

std::string FormatTrace(const Trace& t) {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "trace id=%llu name=%s total_ms=%.3f",
                static_cast<unsigned long long>(t.id()), t.name().c_str(),
                t.total_ms());
  out += buf;
  // The root span's annotation ("model=default", "deadline_expired")
  // rides on the header line.
  if (!t.spans().empty() && !t.spans()[0].note.empty()) {
    out += " [";
    out += t.spans()[0].note;
    out.push_back(']');
  }
  out.push_back('\n');
  if (!t.spans().empty()) {
    // Children of the root, in insertion (chronological) order.
    for (const TraceSpan& s : t.spans()) {
      if (s.parent == 0) FormatSpanTree(t, s.id, 1, out);
    }
  }
  return out;
}

TraceRing& TraceRing::Default() {
  static TraceRing* instance = new TraceRing();
  return *instance;
}

TraceRing::TraceRing(std::size_t recent_capacity, std::size_t slow_capacity)
    : recent_capacity_(recent_capacity), slow_capacity_(slow_capacity) {}

void TraceRing::set_slow_threshold_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ms_ = ms;
}

double TraceRing::slow_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_threshold_ms_;
}

void TraceRing::Record(Trace&& t) {
  bool slow = false;
  double threshold = 0.0;
  std::string slow_tree;
  std::uint64_t slow_id = 0;
  double slow_total = 0.0;
  std::string slow_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++recorded_;
    threshold = slow_threshold_ms_;
    slow = threshold > 0.0 && t.total_ms() >= threshold;
    if (slow) {
      slow_id = t.id();
      slow_total = t.total_ms();
      slow_name = t.name();
      slow_tree = FormatTrace(t);
      slow_.push_back(t);  // copy: the same trace also goes to recent_
      if (slow_.size() > slow_capacity_) slow_.pop_front();
    }
    recent_.push_back(std::move(t));
    if (recent_.size() > recent_capacity_) recent_.pop_front();
  }
  if (slow) {
    // Emit outside the ring lock; the logger serialises on its own.
    GBX_SLOG(kWarn, "trace.slow")
        .Kv("trace_id", slow_id)
        .Kv("name", slow_name)
        .Kv("total_ms", slow_total)
        .Kv("threshold_ms", threshold)
        .Kv("spans", slow_tree);
  }
}

std::vector<Trace> TraceRing::Recent(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Trace> out;
  for (auto it = recent_.rbegin(); it != recent_.rend() && out.size() < n;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<Trace> TraceRing::Slow(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Trace> out;
  for (auto it = slow_.rbegin(); it != slow_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::int64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
  slow_.clear();
  recorded_ = 0;
}

}  // namespace trace
}  // namespace gbx
