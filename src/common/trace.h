// Per-request tracing: a Trace is a small tree of named spans with
// start offsets and durations (milliseconds, relative to the trace
// origin), carried alongside a request through the serving path so a
// reply's latency can be attributed stage by stage (queue wait, decode,
// batch assembly, compute, encode).
//
// A Trace is built by one thread at a time (the serving path hands it
// off through its request queue, which orders the accesses), so the
// object itself is unsynchronised. Finished traces go into the
// process-wide TraceRing: a bounded ring of recent traces plus a
// second ring of slow ones (total duration >= the slow threshold).
// Crossing the threshold also emits the span tree through the
// structured logger (common/log.h) at warn level.
#ifndef GBX_COMMON_TRACE_H_
#define GBX_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace gbx {
namespace trace {

struct TraceSpan {
  int id = 0;            ///< index in Trace::spans(); 0 is the root
  int parent = -1;       ///< parent span id; -1 for the root
  std::string name;
  double start_ms = 0;   ///< offset from the trace origin
  double duration_ms = 0;
  std::string note;      ///< free-form annotation ("batch=7", "model=m1")
};

class Trace {
 public:
  Trace() = default;
  Trace(std::uint64_t id, std::string name);

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  /// Total duration: the root span's duration.
  double total_ms() const {
    return spans_.empty() ? 0.0 : spans_[0].duration_ms;
  }

  /// Adds a span with explicit timing; returns its id. The root span
  /// (id 0) is created by the constructor with zero duration — set it
  /// via Finish().
  int AddSpan(std::string name, double start_ms, double duration_ms,
              int parent = 0, std::string note = "");

  /// Appends to span `id`'s annotation.
  void Annotate(int id, const std::string& note);

  /// Sets the root span's duration (the request's total latency).
  void Finish(double total_ms);

  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  std::uint64_t id_ = 0;
  std::string name_;
  std::vector<TraceSpan> spans_;
};

/// One trace as an indented span tree, one span per line:
///   trace id=42 name=predict total_ms=1.234
///     queue_wait 0.000ms +0.514ms
///     ...
std::string FormatTrace(const Trace& t);

/// Process-wide bounded ring of finished traces. Record() takes a
/// short mutex (the serving path calls it once per request, after the
/// reply bytes are already queued).
class TraceRing {
 public:
  static TraceRing& Default();

  explicit TraceRing(std::size_t recent_capacity = 256,
                     std::size_t slow_capacity = 64);

  /// Slow threshold in ms; traces at or above it land in the slow ring
  /// and are logged. <= 0 disables slow capture. Default 100 ms.
  void set_slow_threshold_ms(double ms);
  double slow_threshold_ms() const;

  void Record(Trace&& t);

  /// Most recent / slowest-ring traces, newest first, at most `n`.
  std::vector<Trace> Recent(std::size_t n) const;
  std::vector<Trace> Slow(std::size_t n) const;

  std::int64_t recorded() const;  ///< lifetime Record() count
  void Clear();                   ///< test teardown

 private:
  const std::size_t recent_capacity_;
  const std::size_t slow_capacity_;
  mutable std::mutex mu_;
  std::deque<Trace> recent_;
  std::deque<Trace> slow_;
  double slow_threshold_ms_ = 100.0;
  std::int64_t recorded_ = 0;
};

}  // namespace trace
}  // namespace gbx

#endif  // GBX_COMMON_TRACE_H_
