#include "core/gb_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace gbx {

std::string GranularBallsToString(const GranularBallSet& balls) {
  std::ostringstream out;
  out.precision(17);
  const Matrix& x = balls.scaled_features();
  out << "gbx-granular-balls v1\n";
  out << "dims " << x.cols() << " classes " << balls.num_classes()
      << " balls " << balls.size() << " samples " << x.rows() << "\n";
  for (const GranularBall& ball : balls.balls()) {
    out << "ball " << ball.label << " " << ball.radius << " "
        << ball.center_index;
    for (double c : ball.center) out << " " << c;
    out << " members " << ball.members.size();
    for (int m : ball.members) out << " " << m;
    out << "\n";
  }
  out << "features\n";
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (int j = 0; j < x.cols(); ++j) {
      if (j > 0) out << " ";
      out << row[j];
    }
    out << "\n";
  }
  return out.str();
}

StatusOr<GranularBallSet> GranularBallsFromString(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "gbx-granular-balls v1") {
    return Status::InvalidArgument("bad magic line");
  }
  std::string tok;
  int dims = 0;
  int classes = 0;
  int num_balls = 0;
  int samples = 0;
  {
    std::string k1, k2, k3, k4;
    if (!(in >> k1 >> dims >> k2 >> classes >> k3 >> num_balls >> k4 >>
          samples) ||
        k1 != "dims" || k2 != "classes" || k3 != "balls" || k4 != "samples") {
      return Status::InvalidArgument("bad header line");
    }
  }
  if (dims <= 0 || classes <= 0 || num_balls < 0 || samples < 0) {
    return Status::InvalidArgument("non-positive header values");
  }
  // Every declared number needs at least two input bytes ("0 "), so a
  // header promising more data than the input holds is corrupt — reject
  // it before allocating (a crafted header must not trigger a
  // multi-gigabyte allocation).
  const long long budget = static_cast<long long>(text.size()) / 2;
  if (static_cast<long long>(samples) * dims > budget ||
      static_cast<long long>(num_balls) * dims > budget) {
    return Status::InvalidArgument("header declares more data than input");
  }

  std::vector<GranularBall> balls;
  balls.reserve(num_balls);
  for (int b = 0; b < num_balls; ++b) {
    if (!(in >> tok) || tok != "ball") {
      return Status::InvalidArgument("expected 'ball' record " +
                                     std::to_string(b));
    }
    GranularBall ball;
    if (!(in >> ball.label >> ball.radius >> ball.center_index)) {
      return Status::InvalidArgument("truncated ball header");
    }
    if (!std::isfinite(ball.radius) || ball.radius < 0.0) {
      return Status::InvalidArgument("ball " + std::to_string(b) +
                                     " has a negative or non-finite radius");
    }
    if (ball.center_index < -1 || ball.center_index >= samples) {
      return Status::OutOfRange("ball " + std::to_string(b) +
                                " center index out of range");
    }
    ball.center.resize(dims);
    for (int j = 0; j < dims; ++j) {
      if (!(in >> ball.center[j])) {
        return Status::InvalidArgument("truncated ball center");
      }
      if (!std::isfinite(ball.center[j])) {
        return Status::InvalidArgument("ball " + std::to_string(b) +
                                       " has a non-finite center coordinate");
      }
    }
    std::size_t member_count = 0;
    if (!(in >> tok >> member_count) || tok != "members") {
      return Status::InvalidArgument("expected member list");
    }
    if (member_count > static_cast<std::size_t>(budget)) {
      return Status::InvalidArgument("member count exceeds input size");
    }
    ball.members.resize(member_count);
    for (std::size_t m = 0; m < member_count; ++m) {
      if (!(in >> ball.members[m])) {
        return Status::InvalidArgument("truncated member list");
      }
      if (ball.members[m] < 0 || ball.members[m] >= samples) {
        return Status::OutOfRange("member id out of range");
      }
    }
    if (ball.label < 0 || ball.label >= classes) {
      return Status::OutOfRange("ball label out of range");
    }
    balls.push_back(std::move(ball));
  }

  if (!(in >> tok) || tok != "features") {
    return Status::InvalidArgument("expected 'features' section");
  }
  Matrix x(samples, dims);
  for (int i = 0; i < samples; ++i) {
    for (int j = 0; j < dims; ++j) {
      if (!(in >> x.At(i, j))) {
        return Status::InvalidArgument("truncated feature matrix");
      }
      if (!std::isfinite(x.At(i, j))) {
        return Status::InvalidArgument("non-finite feature at row " +
                                       std::to_string(i));
      }
    }
  }
  if (in >> tok) {
    return Status::InvalidArgument("trailing data after feature matrix");
  }
  return GranularBallSet(std::move(balls), std::move(x), classes);
}

Status SaveGranularBalls(const GranularBallSet& balls,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << GranularBallsToString(balls);
  if (!out) return Status::Internal("write failure on " + path);
  return Status::Ok();
}

StatusOr<GranularBallSet> LoadGranularBalls(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return GranularBallsFromString(buffer.str());
}

}  // namespace gbx
