// Persistence for granular-ball sets. A fitted granulation is a model
// artifact (GB-kNN inference, offline analysis, plotting); this module
// round-trips it through a self-describing text format:
//
//   gbx-granular-balls v1
//   dims <p> classes <q> balls <m> samples <n>
//   ball <label> <radius> <center_index> <center j=0..p-1> members <k> <ids...>
//   ...
//   features            # n rows of the scaled feature matrix
//   <p doubles per row>
#ifndef GBX_CORE_GB_IO_H_
#define GBX_CORE_GB_IO_H_

#include <string>

#include "common/status.h"
#include "core/granular_ball.h"

namespace gbx {

/// Writes the ball set (including its scaled feature matrix) to `path`.
Status SaveGranularBalls(const GranularBallSet& balls,
                         const std::string& path);

/// Reads a ball set written by SaveGranularBalls. Input is untrusted:
/// truncation, non-finite radii/centers/features, negative radii, and
/// member/center indices outside [0, samples) all yield a descriptive
/// error Status (never UB).
StatusOr<GranularBallSet> LoadGranularBalls(const std::string& path);

/// Serializes to / parses from a string (used by the file functions and
/// handy in tests).
std::string GranularBallsToString(const GranularBallSet& balls);
StatusOr<GranularBallSet> GranularBallsFromString(const std::string& text);

}  // namespace gbx

#endif  // GBX_CORE_GB_IO_H_
