#include "core/gbabs.h"

#include <algorithm>
#include <set>
#include <vector>

namespace gbx {

namespace {

/// Member of `ball` with the extreme coordinate along dimension `dim`.
/// `want_max` selects the largest coordinate, otherwise the smallest.
int ExtremeMember(const GranularBall& ball, const Matrix& x, int dim,
                  bool want_max) {
  GBX_CHECK_GT(ball.size(), 0);
  int best = ball.members[0];
  double best_v = x.At(best, dim);
  for (int idx : ball.members) {
    const double v = x.At(idx, dim);
    if (want_max ? (v > best_v) : (v < best_v)) {
      best = idx;
      best_v = v;
    }
  }
  return best;
}

}  // namespace

std::vector<int> BorderlineScanDimensions(const GranularBallSet& balls,
                                          int max_scan_dimensions) {
  const int p = balls.scaled_features().cols();
  std::vector<int> dims(p);
  for (int j = 0; j < p; ++j) dims[j] = j;
  if (max_scan_dimensions <= 0 || max_scan_dimensions >= p ||
      balls.empty()) {
    return dims;
  }
  // Variance of ball centers per dimension: high-variance dimensions are
  // where class structure (and therefore boundaries) spreads out.
  const int m = balls.size();
  std::vector<double> variance(p, 0.0);
  std::vector<double> mean(p, 0.0);
  for (int i = 0; i < m; ++i) {
    const auto& center = balls.ball(i).center;
    for (int j = 0; j < p; ++j) mean[j] += center[j];
  }
  for (int j = 0; j < p; ++j) mean[j] /= m;
  for (int i = 0; i < m; ++i) {
    const auto& center = balls.ball(i).center;
    for (int j = 0; j < p; ++j) {
      const double d = center[j] - mean[j];
      variance[j] += d * d;
    }
  }
  std::stable_sort(dims.begin(), dims.end(), [&](int a, int b) {
    return variance[a] > variance[b];
  });
  dims.resize(max_scan_dimensions);
  std::sort(dims.begin(), dims.end());
  return dims;
}

std::vector<int> SampleBorderlineIndices(
    const GranularBallSet& balls, std::vector<int>* borderline_ball_ids,
    int max_scan_dimensions) {
  const int m = balls.size();
  const Matrix& x = balls.scaled_features();
  std::set<int> sampled;
  std::set<int> borderline;

  std::vector<int> order(m);
  for (int i = 0; i < m; ++i) order[i] = i;

  const std::vector<int> dims =
      BorderlineScanDimensions(balls, max_scan_dimensions);
  for (int dim : dims) {
    // Step 1: sort centers along this dimension (ties by ball id so the
    // scan is deterministic).
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double va = balls.ball(a).center[dim];
      const double vb = balls.ball(b).center[dim];
      if (va != vb) return va < vb;
      return a < b;
    });
    // Step 2: adjacent heterogeneous centers flag both balls as borderline
    // and contribute the two members facing the boundary.
    for (int i = 0; i + 1 < m; ++i) {
      const int left = order[i];
      const int right = order[i + 1];
      if (balls.ball(left).label == balls.ball(right).label) continue;
      borderline.insert(left);
      borderline.insert(right);
      sampled.insert(ExtremeMember(balls.ball(left), x, dim,
                                   /*want_max=*/true));
      sampled.insert(ExtremeMember(balls.ball(right), x, dim,
                                   /*want_max=*/false));
    }
  }

  if (borderline_ball_ids != nullptr) {
    borderline_ball_ids->assign(borderline.begin(), borderline.end());
  }
  return std::vector<int>(sampled.begin(), sampled.end());
}

GbabsResult RunGbabs(const Dataset& dataset, const GbabsConfig& config) {
  GbabsResult result;
  result.gbg = GenerateRdGbg(dataset, config.gbg);
  result.sampled_indices =
      SampleBorderlineIndices(result.gbg.balls, &result.borderline_ball_ids,
                              config.max_scan_dimensions);
  // Degenerate single-class datasets have no boundary: keep the centers so
  // the sampled set is non-empty and representative.
  if (result.sampled_indices.empty()) {
    for (const GranularBall& ball : result.gbg.balls.balls()) {
      if (ball.center_index >= 0) {
        result.sampled_indices.push_back(ball.center_index);
      }
    }
    std::sort(result.sampled_indices.begin(), result.sampled_indices.end());
  }
  result.sampled = dataset.Subset(result.sampled_indices);
  result.sampling_ratio =
      dataset.size() > 0
          ? static_cast<double>(result.sampled_indices.size()) / dataset.size()
          : 0.0;
  return result;
}

Dataset GbabsSample(const Dataset& dataset, const GbabsConfig& config) {
  return RunGbabs(dataset, config).sampled;
}

}  // namespace gbx
