// GBABS: Granular-Ball-based Approximate Borderline Sampling (Algorithm 2
// of the paper).
//
// After RD-GBG granulation, ball centers are scanned along every feature
// dimension in sorted order. Whenever two adjacent centers are
// heterogeneous, both balls are borderline; the facing extreme members of
// the pair (largest coordinate from the left ball, smallest from the right
// ball) are the approximate borderline samples. The union over all
// dimensions — deduplicated — is the sampled dataset. Complexity is
// O(p·m·log m) over m balls, keeping the whole pipeline linear in the
// dataset size.
#ifndef GBX_CORE_GBABS_H_
#define GBX_CORE_GBABS_H_

#include "core/rd_gbg.h"
#include "data/dataset.h"

namespace gbx {

struct GbabsConfig {
  /// Granulation settings, including RdGbgConfig::num_threads — the whole
  /// GBABS pipeline inherits the granulation thread pool through it.
  RdGbgConfig gbg;
  /// Future-work extension (§VI of the paper: "the time complexity of the
  /// GBABS is not ideal when facing high-dimensional feature spaces").
  /// When > 0, the borderline scan runs only over this many dimensions —
  /// the ones with the highest variance across ball centers — cutting the
  /// sampling stage from O(p·m·log m) to O(k·m·log m). 0 scans all
  /// dimensions (the paper's algorithm).
  int max_scan_dimensions = 0;
};

struct GbabsResult {
  /// The sampled dataset (original, unscaled features).
  Dataset sampled;
  /// Indices of sampled points in the input dataset, sorted ascending.
  std::vector<int> sampled_indices;
  /// Ids (into gbg.balls) of balls flagged as borderline.
  std::vector<int> borderline_ball_ids;
  /// The underlying granulation.
  RdGbgResult gbg;
  /// |sampled| / |input|.
  double sampling_ratio = 0.0;
};

/// Runs RD-GBG then borderline sampling on `dataset`.
GbabsResult RunGbabs(const Dataset& dataset, const GbabsConfig& config);

/// Borderline sampling over an existing granulation (exposed for tests and
/// for reusing one granulation across analyses). Returns sampled indices
/// sorted ascending and fills `borderline_ball_ids` when non-null.
/// `max_scan_dimensions` as in GbabsConfig.
std::vector<int> SampleBorderlineIndices(
    const GranularBallSet& balls, std::vector<int>* borderline_ball_ids,
    int max_scan_dimensions = 0);

/// The dimensions the borderline scan visits for this granulation: all of
/// them when max_scan_dimensions <= 0 or >= p, otherwise the
/// max_scan_dimensions dimensions with the largest center variance.
std::vector<int> BorderlineScanDimensions(const GranularBallSet& balls,
                                          int max_scan_dimensions);

/// Convenience: the sampled dataset only.
Dataset GbabsSample(const Dataset& dataset, const GbabsConfig& config = {});

}  // namespace gbx

#endif  // GBX_CORE_GBABS_H_
