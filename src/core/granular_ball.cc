#include "core/granular_ball.h"

#include <algorithm>

namespace gbx {

bool GranularBall::Contains(const double* point, int dims, double eps) const {
  GBX_CHECK_EQ(dims, static_cast<int>(center.size()));
  const double dist = EuclideanDistance(point, center.data(), dims);
  return dist <= radius + eps;
}

GranularBallSet::GranularBallSet(std::vector<GranularBall> balls,
                                 Matrix scaled_features, int num_classes)
    : balls_(std::move(balls)),
      scaled_features_(std::move(scaled_features)),
      num_classes_(num_classes) {
  for (auto& ball : balls_) {
    std::sort(ball.members.begin(), ball.members.end());
    GBX_CHECK_GE(ball.label, 0);
    GBX_CHECK_LT(ball.label, num_classes_);
    GBX_CHECK_EQ(static_cast<int>(ball.center.size()),
                 scaled_features_.cols());
  }
}

int GranularBallSet::TotalCoveredSamples() const {
  int total = 0;
  for (const auto& ball : balls_) total += ball.size();
  return total;
}

int GranularBallSet::NonSingletonCount() const {
  int count = 0;
  for (const auto& ball : balls_) {
    if (ball.size() > 1) ++count;
  }
  return count;
}

bool GranularBallSet::CheckContainment(double eps) const {
  const int d = scaled_features_.cols();
  for (const auto& ball : balls_) {
    for (int idx : ball.members) {
      if (idx < 0 || idx >= scaled_features_.rows()) return false;
      if (!ball.Contains(scaled_features_.Row(idx), d, eps)) return false;
    }
  }
  return true;
}

bool GranularBallSet::CheckPurity(const std::vector<int>& labels) const {
  for (const auto& ball : balls_) {
    for (int idx : ball.members) {
      if (idx < 0 || idx >= static_cast<int>(labels.size())) return false;
      if (labels[idx] != ball.label) return false;
    }
  }
  return true;
}

bool GranularBallSet::CheckNonOverlap(double eps) const {
  const int d = scaled_features_.cols();
  for (int i = 0; i < size(); ++i) {
    if (balls_[i].radius <= 0.0) continue;
    for (int j = i + 1; j < size(); ++j) {
      if (balls_[j].radius <= 0.0) continue;
      const double dist = EuclideanDistance(balls_[i].center.data(),
                                            balls_[j].center.data(), d);
      if (dist + eps < balls_[i].radius + balls_[j].radius) return false;
    }
  }
  return true;
}

bool GranularBallSet::CheckDisjointMembership(int num_samples) const {
  std::vector<char> seen(num_samples, 0);
  for (const auto& ball : balls_) {
    for (int idx : ball.members) {
      if (idx < 0 || idx >= num_samples) return false;
      if (seen[idx]) return false;
      seen[idx] = 1;
    }
  }
  return true;
}

double GranularBallSet::HeterogeneousOverlapDepth() const {
  const int d = scaled_features_.cols();
  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      if (balls_[i].label == balls_[j].label) continue;
      ++pairs;
      const double dist = EuclideanDistance(balls_[i].center.data(),
                                            balls_[j].center.data(), d);
      total += std::max(0.0, balls_[i].radius + balls_[j].radius - dist);
    }
  }
  return pairs == 0 ? 0.0 : total / pairs;
}

}  // namespace gbx
