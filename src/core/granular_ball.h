// Granular balls (GBs): the information granules of granular-ball
// computing. A ball is (O, (c, r, l)) — member samples O, center c,
// radius r, label l. Under RD-GBG's redefinition (§IV-B2 of the paper) the
// center is an actual sample, every member lies within r of the center
// (geometric containment), all members share the ball's label (purity 1.0),
// and distinct balls never overlap.
#ifndef GBX_CORE_GRANULAR_BALL_H_
#define GBX_CORE_GRANULAR_BALL_H_

#include <vector>

#include "data/dataset.h"

namespace gbx {

struct GranularBall {
  /// Sample indices (into the source dataset) covered by this ball,
  /// including the center sample. Sorted ascending.
  std::vector<int> members;
  /// Center coordinates in the (scaled) feature space used for generation.
  std::vector<double> center;
  /// Index of the center sample; -1 when the center is a computed centroid
  /// (classic k-division GBG baseline) rather than a sample.
  int center_index = -1;
  double radius = 0.0;
  int label = -1;

  int size() const { return static_cast<int>(members.size()); }

  /// True if `point` lies within the ball (distance <= radius + eps).
  bool Contains(const double* point, int dims, double eps = 1e-12) const;
};

/// A set of granular balls generated over one dataset. Holds the scaled
/// feature matrix the balls were generated in, so geometric invariants can
/// be checked and downstream consumers (GBABS) can query member
/// coordinates consistently.
class GranularBallSet {
 public:
  GranularBallSet() = default;
  GranularBallSet(std::vector<GranularBall> balls, Matrix scaled_features,
                  int num_classes);

  int size() const { return static_cast<int>(balls_.size()); }
  bool empty() const { return balls_.empty(); }
  const GranularBall& ball(int i) const {
    GBX_DCHECK(i >= 0 && i < size());
    return balls_[i];
  }
  const std::vector<GranularBall>& balls() const { return balls_; }
  const Matrix& scaled_features() const { return scaled_features_; }
  int num_classes() const { return num_classes_; }

  /// Total number of samples covered by all balls.
  int TotalCoveredSamples() const;

  /// Count of balls with more than one member.
  int NonSingletonCount() const;

  /// --- Invariant checks (used by tests and debug validation) ---

  /// Every member of every ball is within its radius of the center.
  bool CheckContainment(double eps = 1e-9) const;

  /// All members of a ball share its label.
  bool CheckPurity(const std::vector<int>& labels) const;

  /// No two distinct non-degenerate balls overlap:
  /// dist(c_i, c_j) + eps >= r_i + r_j for all i != j.
  bool CheckNonOverlap(double eps = 1e-9) const;

  /// Each sample index covered by at most one ball.
  bool CheckDisjointMembership(int num_samples) const;

  /// Mean pairwise overlap depth max(0, r_i + r_j - dist(c_i,c_j)) over
  /// heterogeneous ball pairs — the "boundary blur" metric used by the
  /// overlap ablation bench (0 for RD-GBG by construction).
  double HeterogeneousOverlapDepth() const;

 private:
  std::vector<GranularBall> balls_;
  Matrix scaled_features_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_CORE_GRANULAR_BALL_H_
