#include "core/rd_gbg.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/scaler.h"
#include "index/ball_surface_index.h"
#include "index/ball_tree.h"
#include "index/dynamic_kd_tree.h"
#include "simd/simd.h"

namespace gbx {

namespace {

// Tile size of the flat candidate fill's gather-pack: scattered U-rows
// are packed into a thread-local SoA scratch this many at a time, so
// the batched distance kernel streams L1-resident blocks. 256 rows ×
// typical dims keeps the scratch well under 32 KiB.
constexpr int kCandidateTile = 256;

// Lifecycle of a sample during granulation.
enum class SampleState : std::uint8_t {
  kUndivided,   // in U, potential center (in T)
  kLowDensity,  // in U and in L: not a center, may still be absorbed
  kNoise,       // eliminated as class noise
  kCovered,     // member of a generated ball
};

bool InU(SampleState s) {
  return s == SampleState::kUndivided || s == SampleState::kLowDensity;
}

// Squared distance to a neighbor candidate. The (dist2, index) pair is a
// strict total order, so any selection schedule — the lazily sorted flat
// scan or the incremental KD-tree queries — realizes the same sorted
// sequence, which is what keeps the strategy knob bit-identical.
using DistEntry = SquaredNeighbor;

// Lazily sorted prefix over a DistEntry array. The granulation scans
// neighbors from nearest outward and almost always stops early — at the
// first heterogeneous neighbor or at the r_conf bound — so sorting all n
// entries (the seed implementation's std::sort) wastes nearly all of its
// O(n log n) work. Instead, operator[] materializes the globally sorted
// prefix on demand: each growth step selects the next block with
// nth_element (O(remaining)) and sorts just that block, with the block
// size growing geometrically so a full scan still costs O(n log n) total.
class LazySortedPrefix {
 public:
  LazySortedPrefix(std::vector<DistEntry>* entries, std::size_t initial_block)
      : entries_(entries),
        initial_block_(std::max<std::size_t>(initial_block, 1)) {}

  std::size_t size() const { return entries_->size(); }

  /// The i-th nearest entry; sorts further prefix blocks as needed.
  const DistEntry& operator[](std::size_t i) {
    if (i >= sorted_) Grow(i + 1);
    return (*entries_)[i];
  }

 private:
  void Grow(std::size_t need) {
    std::vector<DistEntry>& e = *entries_;
    std::size_t target = std::max({need, sorted_ * 2, initial_block_});
    target = std::min(target, e.size());
    if (target < e.size()) {
      std::nth_element(e.begin() + sorted_, e.begin() + target, e.end());
    }
    std::sort(e.begin() + sorted_, e.begin() + target);
    sorted_ = target;
  }

  std::vector<DistEntry>* entries_;
  std::size_t initial_block_;
  std::size_t sorted_ = 0;  // [0, sorted_) is the globally sorted prefix
};

// The same lazily-extended sorted-neighbor view, served by incremental
// tree queries instead of a flat distance fill: operator[] fetches the
// (i+1)-nearest live neighbors on demand, with the fetch size growing
// geometrically like LazySortedPrefix's blocks. Each fetch is a fresh
// k-NN query, so the tree must not change while a stream is live — the
// granulation defers its tombstone removals to the end of the candidate,
// which also keeps the view a consistent snapshot of the U-set exactly
// like the flat path's entries buffer. Because the query returns the
// (dist2, index)-sorted prefix of the same total order the flat scan
// sorts by, the strategies are interchangeable bit-for-bit. Tree is
// DynamicKdTree or BallTree — both serve KNearestSquared in that exact
// order, differing only in pruning geometry (boxes vs metric balls).
template <typename Tree>
class TreeNeighborStream {
 public:
  TreeNeighborStream(const Tree* tree, const double* query,
                     int exclude, std::vector<DistEntry>* storage,
                     std::size_t initial_block)
      : tree_(tree),
        query_(query),
        exclude_(exclude),
        storage_(storage),
        m_(static_cast<std::size_t>(tree->size() - 1)),
        initial_block_(std::max<std::size_t>(initial_block, 1)) {
    storage_->clear();
  }

  /// Eligible neighbors (live points minus the query point itself).
  std::size_t size() const { return m_; }

  const DistEntry& operator[](std::size_t i) {
    if (i >= storage_->size()) Grow(i + 1);
    return (*storage_)[i];
  }

 private:
  void Grow(std::size_t need) {
    // Each growth step is a fresh k-NN query, so the factor is steeper
    // than LazySortedPrefix's (×4, not ×2), and once the target is a
    // sizeable fraction of the live set the fetch jumps straight to all
    // of it — a deep consumer (a candidate whose consistent region is a
    // whole cluster) then pays one full traversal instead of a tail of
    // near-full ones.
    std::size_t target =
        std::max({need, storage_->size() * 4, initial_block_});
    if (target >= m_ / 2) target = m_;
    target = std::min(target, m_);
    *storage_ = tree_->KNearestSquared(query_, static_cast<int>(target),
                                       exclude_);
    GBX_DCHECK(storage_->size() == target);
  }

  const Tree* tree_;
  const double* query_;
  int exclude_;
  std::vector<DistEntry>* storage_;
  std::size_t m_;
  std::size_t initial_block_;
};

}  // namespace

RdGbgResult GenerateRdGbg(const Dataset& dataset, const RdGbgConfig& config) {
  GBX_CHECK_GT(dataset.size(), 0);
  GBX_CHECK_GE(config.density_tolerance, 2);
  const int n = dataset.size();
  const int p = dataset.num_features();
  const int q = dataset.num_classes();
  const int rho = config.density_tolerance;
  const int threads = ResolveNumThreads(config.num_threads);
  const int grain = ParallelGrain(p);

  // Phase timers (gbx_core_phase_ms{phase=...}): total granulation time
  // plus the accumulated r_conf pass. Behind metrics::Enabled() because
  // the r_conf probe adds two clock reads per candidate — near-zero
  // when armed, literally zero when GBX_METRICS=0.
  const bool metrics_on = metrics::Enabled();
  const auto fit_start = std::chrono::steady_clock::now();
  double rconf_accum_ms = 0.0;

  Matrix x = config.scale_features ? MinMaxScaler().FitTransform(dataset.x())
                                   : dataset.x();
  const std::vector<int>& labels = dataset.y();

  std::vector<SampleState> state(n, SampleState::kUndivided);
  std::vector<GranularBall> balls;
  RdGbgResult result;
  Pcg32 rng(config.seed);

  std::vector<int> active;  // samples still in U, rebuilt per candidate
  active.reserve(n);
  std::vector<DistEntry> entries;
  std::vector<double> chunk_mins;  // per-chunk r_conf gap minima
  // SoA mirror of `balls` streamed by the fused r_conf gap kernel
  // (simd::MinSurfaceGap), maintained only while the flat scan is live
  // — the BallSurfaceIndex takes over past surface_threshold and the
  // mirror stops growing.
  SoaMatrix ball_centers_soa(p);
  std::vector<double> ball_radii;

  // Tree strategy: instead of re-scanning the whole undivided set per
  // candidate, a tree follows U — every sample that leaves U (noise,
  // ball member) is tombstoned, and the tree rebuilds itself once the
  // tombstones outnumber the survivors. kTree prunes with axis-aligned
  // boxes, kBallTree with the triangle inequality (better at moderate
  // dimensionality).
  const IndexStrategy strategy =
      ResolveRdGbgIndexStrategy(config.index_strategy, n, p, threads, &x);
  std::unique_ptr<DynamicKdTree> utree;
  std::unique_ptr<BallTree> ubtree;
  if (strategy == IndexStrategy::kTree) {
    utree = std::make_unique<DynamicKdTree>(&x);
  } else if (strategy == IndexStrategy::kBallTree) {
    ubtree = std::make_unique<BallTree>(&x);
  }
  // The r_conf pass switches from the flat per-ball gap scan to the
  // insert-capable BallSurfaceIndex once this many balls exist
  // (kSurfaceIndexNever = stay flat). Both compute the identical
  // min-gap double, so the switch is invisible in the output.
  const int surface_threshold =
      ResolveRdGbgSurfaceThreshold(config.index_strategy, p, threads);
  std::unique_ptr<BallSurfaceIndex> surface;
  std::vector<int> removed_now;  // U-departures of the current candidate
  const std::size_t initial_block =
      std::max<std::size_t>(static_cast<std::size_t>(rho), 32);

  for (;;) {
    // --- Step 1 per round: build T = U - L grouped by class. ---
    std::vector<std::vector<int>> groups(q);
    for (int i = 0; i < n; ++i) {
      if (state[i] == SampleState::kUndivided) groups[labels[i]].push_back(i);
    }
    std::vector<int> group_order;
    for (int c = 0; c < q; ++c) {
      if (!groups[c].empty()) group_order.push_back(c);
    }
    if (group_order.empty()) break;  // U ⊆ L: terminate global iteration
    // Larger groups first (|T1| >= |T2| >= ...), class id as tie-break.
    std::stable_sort(group_order.begin(), group_order.end(),
                     [&](int a, int b) {
                       return groups[a].size() > groups[b].size();
                     });
    ++result.iterations;

    // One random candidate per class.
    std::vector<int> candidates;
    candidates.reserve(group_order.size());
    for (int cls : group_order) {
      const auto& members = groups[cls];
      candidates.push_back(
          members[rng.NextBounded(static_cast<std::uint32_t>(members.size()))]);
    }

    for (int c : candidates) {
      // A previous candidate in this round may have absorbed or removed c.
      if (state[c] != SampleState::kUndivided) continue;
      const int label = labels[c];
      const double* cx = x.Row(c);
      removed_now.clear();

      // Everything from local-density detection to ball assembly,
      // against a sorted neighbor view — LazySortedPrefix over the flat
      // distance fill or TreeNeighborStream over incremental KD-tree
      // queries. Both present the same (dist2, index) total order, so
      // the two instantiations make identical decisions bit-for-bit.
      // Tree tombstone removals are deferred (collected in removed_now)
      // so the stream keeps serving the candidate-start snapshot of U,
      // exactly like the flat path's entries buffer: a noisy nearest
      // neighbor removed mid-candidate still occupies position 0, and
      // scan_begin skips it.
      auto run_candidate = [&](auto& neighbors) {
        const int m = static_cast<int>(neighbors.size());

        // --- Local-density center detection (§IV-B1). ---
        std::size_t scan_begin = 0;  // skip a removed noisy nearest neighbor
        if (labels[neighbors[0].index] != label) {
          const int rho_eff = std::min(rho, m);
          int h = 0;
          for (int i = 0; i < rho_eff; ++i) {
            if (labels[neighbors[i].index] != label) ++h;
          }
          if (h == rho_eff) {
            // Surrounded by heterogeneous samples: c is class noise.
            state[c] = SampleState::kNoise;
            removed_now.push_back(c);
            result.noise_indices.push_back(c);
            return;
          }
          if (h == 1) {
            // The lone heterogeneous nearest neighbor is the noise.
            const int nn = neighbors[0].index;
            state[nn] = SampleState::kNoise;
            removed_now.push_back(nn);
            result.noise_indices.push_back(nn);
            scan_begin = 1;
          } else {
            // 1 < h < rho: c cannot be cleanly separated — low density.
            state[c] = SampleState::kLowDensity;
            return;
          }
        }

        // --- Radius determination (§IV-B2). ---
        // Locally consistent radius CR(c): farthest of the leading
        // homogeneous neighbors (Eq.3). If no heterogeneous sample
        // remains in U, the whole neighbor list is consistent.
        double cr2 = 0.0;
        for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
          if (labels[neighbors[i].index] != label) break;
          cr2 = neighbors[i].dist2;
        }

        // Conflict radius r_conf(c): gap to the nearest existing ball
        // (Eq.4) — min_i(dist(c, center_i) − radius_i). min() over
        // doubles is exact whatever the evaluation order, so the three
        // schedules below — the sublinear BallSurfaceIndex query and
        // the chunked parallel flat scan at any thread count — all
        // produce the identical double.
        std::chrono::steady_clock::time_point rconf_start;
        if (metrics_on) rconf_start = std::chrono::steady_clock::now();
        double r_conf = std::numeric_limits<double>::infinity();
        const int nballs = static_cast<int>(balls.size());
        if (surface != nullptr) {
          // The index mirrors `balls` exactly (every push below inserts)
          // and evaluates the same EuclideanDistance − radius expression
          // at its leaves.
          r_conf = surface->MinSurfaceGap(cx);
        } else if (nballs > 0) {
          // Deterministic parallel min-reduction: each chunk owns a
          // disjoint ball range and writes its own min; the chunk mins
          // are folded in chunk order. The chunk layout depends only on
          // the ball count — never on the thread count — and the serial
          // tail fold is O(B/chunk) instead of the old O(B) gap-buffer
          // fold.
          const int nchunks = (nballs + grain - 1) / grain;
          chunk_mins.resize(nchunks);
          double* chunk_min = chunk_mins.data();
          GBX_DCHECK(ball_centers_soa.rows() == nballs);
          ParallelForRange(
              nchunks, 1, ParallelThreads(nballs, p, threads),
              [&](int cbegin, int cend) {
                for (int ci = cbegin; ci < cend; ++ci) {
                  const int lo = ci * grain;
                  const int hi = std::min(nballs, lo + grain);
                  // Fused gap kernel over the SoA mirror — bit-identical
                  // to folding EuclideanDistance − radius in row order
                  // (simd.h contract), on every dispatch level.
                  chunk_min[ci] = simd::MinSurfaceGap(
                      cx, ball_centers_soa, ball_radii.data(), lo, hi);
                }
              });
          for (int ci = 0; ci < nchunks; ++ci) {
            r_conf = std::min(r_conf, chunk_min[ci]);
          }
        }
        r_conf = std::max(r_conf, 0.0);
        if (metrics_on) {
          rconf_accum_ms += std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - rconf_start)
                                .count();
        }
        const double r_conf2 = r_conf * r_conf;

        double r2 = cr2;
        if (cr2 > r_conf2) {
          // Restricted maximum consistent radius r_max(c) (Eq.6): the
          // farthest neighbor not crossing into a previous ball. Neighbors
          // within r_conf < CR are automatically homogeneous.
          r2 = 0.0;
          for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
            if (neighbors[i].dist2 > r_conf2) break;
            r2 = neighbors[i].dist2;
          }
        }

        if (r2 <= 0.0) {
          // Center sits on the edge of U; leave it for later absorption.
          state[c] = SampleState::kLowDensity;
          return;
        }

        // --- Assemble the ball (Eq.7): O = every U-sample within r. ---
        GranularBall ball;
        ball.center.assign(cx, cx + p);
        ball.center_index = c;
        ball.radius = std::sqrt(r2);
        ball.label = label;
        ball.members.push_back(c);
        state[c] = SampleState::kCovered;
        removed_now.push_back(c);
        for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
          if (neighbors[i].dist2 > r2) break;
          const int idx = neighbors[i].index;
          GBX_DCHECK(labels[idx] == label);
          ball.members.push_back(idx);
          state[idx] = SampleState::kCovered;
          removed_now.push_back(idx);
        }
        GBX_CHECK_GE(ball.size(), 2);
        balls.push_back(std::move(ball));
        // Keep the surface index an exact mirror of `balls`: insert the
        // new ball, or stand the index up once the ball count crosses
        // the strategy threshold (backfilling everything generated so
        // far).
        if (surface != nullptr) {
          const GranularBall& added = balls.back();
          surface->Insert(added.center.data(), added.radius);
        } else if (static_cast<int>(balls.size()) >= surface_threshold) {
          surface = std::make_unique<BallSurfaceIndex>(p);
          for (const GranularBall& gb : balls) {
            surface->Insert(gb.center.data(), gb.radius);
          }
        } else {
          // Flat r_conf stays live: grow its SoA mirror in lockstep.
          const GranularBall& added = balls.back();
          ball_centers_soa.AppendRow(added.center.data());
          ball_radii.push_back(added.radius);
        }
      };

      // Tree strategies share one shape: stream neighbors from the tree,
      // then apply the candidate's deferred U-departures as tombstones.
      const auto run_with_tree = [&](auto* tree) {
        if (tree->size() <= 1) {
          state[c] = SampleState::kLowDensity;  // last sample standing
          return;
        }
        TreeNeighborStream neighbors(tree, cx, /*exclude=*/c, &entries,
                                     initial_block);
        run_candidate(neighbors);
        for (int idx : removed_now) tree->Remove(idx);
      };
      if (utree != nullptr) {
        run_with_tree(utree.get());
        continue;
      }
      if (ubtree != nullptr) {
        run_with_tree(ubtree.get());
        continue;
      }

      // Flat strategy: squared distances from c to every other sample
      // still in U. The scan parallelizes over disjoint slots of
      // `entries`, so its content does not depend on the thread count;
      // sqrt is deferred until a radius is actually assigned.
      active.clear();
      for (int i = 0; i < n; ++i) {
        if (i != c && InU(state[i])) active.push_back(i);
      }
      const int m = static_cast<int>(active.size());
      if (m == 0) {
        state[c] = SampleState::kLowDensity;  // last sample standing
        continue;
      }
      entries.resize(m);
      {
        const int* act = active.data();
        DistEntry* out = entries.data();
        ParallelForRange(
            m, grain, ParallelThreads(m, p, threads),
            [&](int begin, int end) {
              // Gather-pack each tile of scattered U-rows into a
              // thread-local SoA scratch, then one batched kernel call
              // fills the tile — per-row arithmetic identical to
              // SquaredDistance (simd.h contract). thread_local: pool
              // workers are long-lived, so the scratch amortizes across
              // candidates.
              thread_local SoaMatrix tile;
              thread_local std::vector<double> d2;
              for (int t = begin; t < end; t += kCandidateTile) {
                const int cnt = std::min(end - t, kCandidateTile);
                tile.GatherRows(x, act + t, cnt);
                d2.resize(cnt);
                simd::SquaredDistanceBatch(cx, tile, 0, cnt, d2.data());
                for (int j = 0; j < cnt; ++j) {
                  out[t + j] = DistEntry{d2[j], act[t + j]};
                }
              }
            });
      }
      LazySortedPrefix neighbors(&entries, initial_block);
      run_candidate(neighbors);
    }
  }

  // --- Orphan GBs: every remaining U-sample becomes a radius-0 ball. ---
  for (int i = 0; i < n; ++i) {
    if (!InU(state[i])) continue;
    GranularBall ball;
    const double* xi = x.Row(i);
    ball.center.assign(xi, xi + p);
    ball.center_index = i;
    ball.radius = 0.0;
    ball.label = labels[i];
    ball.members.push_back(i);
    balls.push_back(std::move(ball));
    result.orphan_indices.push_back(i);
  }

  std::sort(result.noise_indices.begin(), result.noise_indices.end());
  std::sort(result.orphan_indices.begin(), result.orphan_indices.end());
  result.balls = GranularBallSet(std::move(balls), std::move(x), q);
  if (metrics_on) {
    auto& reg = metrics::MetricsRegistry::Default();
    static const std::string help =
        "Core algorithm phase durations (ms); phases: rdgbg_fit, "
        "rdgbg_rconf, gbknn_fit, gbknn_index_build, gbknn_predict_batch";
    reg.GetHistogram("gbx_core_phase_ms", {{"phase", "rdgbg_fit"}}, help)
        ->Observe(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - fit_start)
                      .count());
    reg.GetHistogram("gbx_core_phase_ms", {{"phase", "rdgbg_rconf"}}, help)
        ->Observe(rconf_accum_ms);
  }
  return result;
}

}  // namespace gbx
