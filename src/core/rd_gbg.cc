#include "core/rd_gbg.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "data/scaler.h"

namespace gbx {

namespace {

// Lifecycle of a sample during granulation.
enum class SampleState : std::uint8_t {
  kUndivided,   // in U, potential center (in T)
  kLowDensity,  // in U and in L: not a center, may still be absorbed
  kNoise,       // eliminated as class noise
  kCovered,     // member of a generated ball
};

bool InU(SampleState s) {
  return s == SampleState::kUndivided || s == SampleState::kLowDensity;
}

struct DistEntry {
  double dist;
  int index;
  friend bool operator<(const DistEntry& a, const DistEntry& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.index < b.index;
  }
};

}  // namespace

RdGbgResult GenerateRdGbg(const Dataset& dataset, const RdGbgConfig& config) {
  GBX_CHECK_GT(dataset.size(), 0);
  GBX_CHECK_GE(config.density_tolerance, 2);
  const int n = dataset.size();
  const int p = dataset.num_features();
  const int q = dataset.num_classes();
  const int rho = config.density_tolerance;

  Matrix x = config.scale_features ? MinMaxScaler().FitTransform(dataset.x())
                                   : dataset.x();
  const std::vector<int>& labels = dataset.y();

  std::vector<SampleState> state(n, SampleState::kUndivided);
  std::vector<GranularBall> balls;
  RdGbgResult result;
  Pcg32 rng(config.seed);

  std::vector<DistEntry> neighbors;
  neighbors.reserve(n);

  for (;;) {
    // --- Step 1 per round: build T = U - L grouped by class. ---
    std::vector<std::vector<int>> groups(q);
    for (int i = 0; i < n; ++i) {
      if (state[i] == SampleState::kUndivided) groups[labels[i]].push_back(i);
    }
    std::vector<int> group_order;
    for (int c = 0; c < q; ++c) {
      if (!groups[c].empty()) group_order.push_back(c);
    }
    if (group_order.empty()) break;  // U ⊆ L: terminate global iteration
    // Larger groups first (|T1| >= |T2| >= ...), class id as tie-break.
    std::stable_sort(group_order.begin(), group_order.end(),
                     [&](int a, int b) {
                       return groups[a].size() > groups[b].size();
                     });
    ++result.iterations;

    // One random candidate per class.
    std::vector<int> candidates;
    candidates.reserve(group_order.size());
    for (int cls : group_order) {
      const auto& members = groups[cls];
      candidates.push_back(
          members[rng.NextBounded(static_cast<std::uint32_t>(members.size()))]);
    }

    for (int c : candidates) {
      // A previous candidate in this round may have absorbed or removed c.
      if (state[c] != SampleState::kUndivided) continue;
      const int label = labels[c];
      const double* cx = x.Row(c);

      // Distances from c to every other sample still in U.
      neighbors.clear();
      for (int i = 0; i < n; ++i) {
        if (i == c || !InU(state[i])) continue;
        neighbors.push_back(
            DistEntry{EuclideanDistance(cx, x.Row(i), p), i});
      }
      if (neighbors.empty()) {
        state[c] = SampleState::kLowDensity;  // last sample standing
        continue;
      }
      std::sort(neighbors.begin(), neighbors.end());

      // --- Local-density center detection (§IV-B1). ---
      std::size_t scan_begin = 0;  // skip a removed noisy nearest neighbor
      if (labels[neighbors[0].index] != label) {
        const int rho_eff =
            std::min<int>(rho, static_cast<int>(neighbors.size()));
        int h = 0;
        for (int i = 0; i < rho_eff; ++i) {
          if (labels[neighbors[i].index] != label) ++h;
        }
        if (h == rho_eff) {
          // Surrounded by heterogeneous samples: c is class noise.
          state[c] = SampleState::kNoise;
          result.noise_indices.push_back(c);
          continue;
        }
        if (h == 1) {
          // The lone heterogeneous nearest neighbor is the noise.
          const int nn = neighbors[0].index;
          state[nn] = SampleState::kNoise;
          result.noise_indices.push_back(nn);
          scan_begin = 1;
        } else {
          // 1 < h < rho: c cannot be cleanly separated — low density.
          state[c] = SampleState::kLowDensity;
          continue;
        }
      }

      // --- Radius determination (§IV-B2). ---
      // Locally consistent radius CR(c): farthest of the leading
      // homogeneous neighbors (Eq.3). If no heterogeneous sample remains
      // in U, the whole neighbor list is consistent.
      double cr = 0.0;
      for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
        if (labels[neighbors[i].index] != label) break;
        cr = neighbors[i].dist;
      }

      // Conflict radius r_conf(c): gap to the nearest existing ball (Eq.4).
      double r_conf = std::numeric_limits<double>::infinity();
      for (const GranularBall& ball : balls) {
        const double gap =
            EuclideanDistance(cx, ball.center.data(), p) - ball.radius;
        r_conf = std::min(r_conf, gap);
      }
      r_conf = std::max(r_conf, 0.0);

      double r = cr;
      if (cr > r_conf) {
        // Restricted maximum consistent radius r_max(c) (Eq.6): the
        // farthest neighbor not crossing into a previous ball. Neighbors
        // within r_conf < CR are automatically homogeneous.
        r = 0.0;
        for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
          if (neighbors[i].dist > r_conf) break;
          r = neighbors[i].dist;
        }
      }

      if (r <= 0.0) {
        // Center sits on the edge of U; leave it for later absorption.
        state[c] = SampleState::kLowDensity;
        continue;
      }

      // --- Assemble the ball (Eq.7): O = every U-sample within r. ---
      GranularBall ball;
      ball.center.assign(cx, cx + p);
      ball.center_index = c;
      ball.radius = r;
      ball.label = label;
      ball.members.push_back(c);
      state[c] = SampleState::kCovered;
      for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
        if (neighbors[i].dist > r) break;
        const int idx = neighbors[i].index;
        GBX_DCHECK(labels[idx] == label);
        ball.members.push_back(idx);
        state[idx] = SampleState::kCovered;
      }
      GBX_CHECK_GE(ball.size(), 2);
      balls.push_back(std::move(ball));
    }
  }

  // --- Orphan GBs: every remaining U-sample becomes a radius-0 ball. ---
  for (int i = 0; i < n; ++i) {
    if (!InU(state[i])) continue;
    GranularBall ball;
    const double* xi = x.Row(i);
    ball.center.assign(xi, xi + p);
    ball.center_index = i;
    ball.radius = 0.0;
    ball.label = labels[i];
    ball.members.push_back(i);
    balls.push_back(std::move(ball));
    result.orphan_indices.push_back(i);
  }

  std::sort(result.noise_indices.begin(), result.noise_indices.end());
  std::sort(result.orphan_indices.begin(), result.orphan_indices.end());
  result.balls = GranularBallSet(std::move(balls), std::move(x), q);
  return result;
}

}  // namespace gbx
