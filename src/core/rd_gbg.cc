#include "core/rd_gbg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/scaler.h"

namespace gbx {

namespace {

// Lifecycle of a sample during granulation.
enum class SampleState : std::uint8_t {
  kUndivided,   // in U, potential center (in T)
  kLowDensity,  // in U and in L: not a center, may still be absorbed
  kNoise,       // eliminated as class noise
  kCovered,     // member of a generated ball
};

bool InU(SampleState s) {
  return s == SampleState::kUndivided || s == SampleState::kLowDensity;
}

// Squared distance to a neighbor candidate. The (dist2, index) pair is a
// strict total order, so any selection schedule realizes the same sorted
// sequence.
struct DistEntry {
  double dist2;
  int index;
  friend bool operator<(const DistEntry& a, const DistEntry& b) {
    if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
    return a.index < b.index;
  }
};

// Lazily sorted prefix over a DistEntry array. The granulation scans
// neighbors from nearest outward and almost always stops early — at the
// first heterogeneous neighbor or at the r_conf bound — so sorting all n
// entries (the seed implementation's std::sort) wastes nearly all of its
// O(n log n) work. Instead, operator[] materializes the globally sorted
// prefix on demand: each growth step selects the next block with
// nth_element (O(remaining)) and sorts just that block, with the block
// size growing geometrically so a full scan still costs O(n log n) total.
class LazySortedPrefix {
 public:
  LazySortedPrefix(std::vector<DistEntry>* entries, std::size_t initial_block)
      : entries_(entries),
        initial_block_(std::max<std::size_t>(initial_block, 1)) {}

  std::size_t size() const { return entries_->size(); }

  /// The i-th nearest entry; sorts further prefix blocks as needed.
  const DistEntry& operator[](std::size_t i) {
    if (i >= sorted_) Grow(i + 1);
    return (*entries_)[i];
  }

 private:
  void Grow(std::size_t need) {
    std::vector<DistEntry>& e = *entries_;
    std::size_t target = std::max({need, sorted_ * 2, initial_block_});
    target = std::min(target, e.size());
    if (target < e.size()) {
      std::nth_element(e.begin() + sorted_, e.begin() + target, e.end());
    }
    std::sort(e.begin() + sorted_, e.begin() + target);
    sorted_ = target;
  }

  std::vector<DistEntry>* entries_;
  std::size_t initial_block_;
  std::size_t sorted_ = 0;  // [0, sorted_) is the globally sorted prefix
};

}  // namespace

RdGbgResult GenerateRdGbg(const Dataset& dataset, const RdGbgConfig& config) {
  GBX_CHECK_GT(dataset.size(), 0);
  GBX_CHECK_GE(config.density_tolerance, 2);
  const int n = dataset.size();
  const int p = dataset.num_features();
  const int q = dataset.num_classes();
  const int rho = config.density_tolerance;
  const int threads = ResolveNumThreads(config.num_threads);
  const int grain = ParallelGrain(p);

  Matrix x = config.scale_features ? MinMaxScaler().FitTransform(dataset.x())
                                   : dataset.x();
  const std::vector<int>& labels = dataset.y();

  std::vector<SampleState> state(n, SampleState::kUndivided);
  std::vector<GranularBall> balls;
  RdGbgResult result;
  Pcg32 rng(config.seed);

  std::vector<int> active;  // samples still in U, rebuilt per candidate
  active.reserve(n);
  std::vector<DistEntry> entries;
  std::vector<double> gaps;  // per-ball surface gaps for r_conf

  for (;;) {
    // --- Step 1 per round: build T = U - L grouped by class. ---
    std::vector<std::vector<int>> groups(q);
    for (int i = 0; i < n; ++i) {
      if (state[i] == SampleState::kUndivided) groups[labels[i]].push_back(i);
    }
    std::vector<int> group_order;
    for (int c = 0; c < q; ++c) {
      if (!groups[c].empty()) group_order.push_back(c);
    }
    if (group_order.empty()) break;  // U ⊆ L: terminate global iteration
    // Larger groups first (|T1| >= |T2| >= ...), class id as tie-break.
    std::stable_sort(group_order.begin(), group_order.end(),
                     [&](int a, int b) {
                       return groups[a].size() > groups[b].size();
                     });
    ++result.iterations;

    // One random candidate per class.
    std::vector<int> candidates;
    candidates.reserve(group_order.size());
    for (int cls : group_order) {
      const auto& members = groups[cls];
      candidates.push_back(
          members[rng.NextBounded(static_cast<std::uint32_t>(members.size()))]);
    }

    for (int c : candidates) {
      // A previous candidate in this round may have absorbed or removed c.
      if (state[c] != SampleState::kUndivided) continue;
      const int label = labels[c];
      const double* cx = x.Row(c);

      // Squared distances from c to every other sample still in U. The
      // scan parallelizes over disjoint slots of `entries`, so its content
      // does not depend on the thread count; sqrt is deferred until a
      // radius is actually assigned.
      active.clear();
      for (int i = 0; i < n; ++i) {
        if (i != c && InU(state[i])) active.push_back(i);
      }
      const int m = static_cast<int>(active.size());
      if (m == 0) {
        state[c] = SampleState::kLowDensity;  // last sample standing
        continue;
      }
      entries.resize(m);
      {
        const int* act = active.data();
        DistEntry* out = entries.data();
        ParallelForRange(m, grain, ParallelThreads(m, p, threads),
                         [&](int begin, int end) {
                           for (int j = begin; j < end; ++j) {
                             out[j] = DistEntry{
                                 SquaredDistance(cx, x.Row(act[j]), p),
                                 act[j]};
                           }
                         });
      }
      LazySortedPrefix neighbors(
          &entries, std::max<std::size_t>(static_cast<std::size_t>(rho), 32));

      // --- Local-density center detection (§IV-B1). ---
      std::size_t scan_begin = 0;  // skip a removed noisy nearest neighbor
      if (labels[neighbors[0].index] != label) {
        const int rho_eff = std::min(rho, m);
        int h = 0;
        for (int i = 0; i < rho_eff; ++i) {
          if (labels[neighbors[i].index] != label) ++h;
        }
        if (h == rho_eff) {
          // Surrounded by heterogeneous samples: c is class noise.
          state[c] = SampleState::kNoise;
          result.noise_indices.push_back(c);
          continue;
        }
        if (h == 1) {
          // The lone heterogeneous nearest neighbor is the noise.
          const int nn = neighbors[0].index;
          state[nn] = SampleState::kNoise;
          result.noise_indices.push_back(nn);
          scan_begin = 1;
        } else {
          // 1 < h < rho: c cannot be cleanly separated — low density.
          state[c] = SampleState::kLowDensity;
          continue;
        }
      }

      // --- Radius determination (§IV-B2). ---
      // Locally consistent radius CR(c): farthest of the leading
      // homogeneous neighbors (Eq.3). If no heterogeneous sample remains
      // in U, the whole neighbor list is consistent.
      double cr2 = 0.0;
      for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
        if (labels[neighbors[i].index] != label) break;
        cr2 = neighbors[i].dist2;
      }

      // Conflict radius r_conf(c): gap to the nearest existing ball
      // (Eq.4). min() over doubles is exact, so reducing the
      // parallel-filled gap buffer in ball order stays deterministic.
      double r_conf = std::numeric_limits<double>::infinity();
      const int nballs = static_cast<int>(balls.size());
      if (nballs > 0) {
        gaps.resize(nballs);
        const GranularBall* ball_data = balls.data();
        double* gap_out = gaps.data();
        ParallelForRange(nballs, grain, ParallelThreads(nballs, p, threads),
                         [&](int begin, int end) {
                           for (int i = begin; i < end; ++i) {
                             gap_out[i] =
                                 EuclideanDistance(
                                     cx, ball_data[i].center.data(), p) -
                                 ball_data[i].radius;
                           }
                         });
        for (int i = 0; i < nballs; ++i) r_conf = std::min(r_conf, gaps[i]);
      }
      r_conf = std::max(r_conf, 0.0);
      const double r_conf2 = r_conf * r_conf;

      double r2 = cr2;
      if (cr2 > r_conf2) {
        // Restricted maximum consistent radius r_max(c) (Eq.6): the
        // farthest neighbor not crossing into a previous ball. Neighbors
        // within r_conf < CR are automatically homogeneous.
        r2 = 0.0;
        for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
          if (neighbors[i].dist2 > r_conf2) break;
          r2 = neighbors[i].dist2;
        }
      }

      if (r2 <= 0.0) {
        // Center sits on the edge of U; leave it for later absorption.
        state[c] = SampleState::kLowDensity;
        continue;
      }

      // --- Assemble the ball (Eq.7): O = every U-sample within r. ---
      GranularBall ball;
      ball.center.assign(cx, cx + p);
      ball.center_index = c;
      ball.radius = std::sqrt(r2);
      ball.label = label;
      ball.members.push_back(c);
      state[c] = SampleState::kCovered;
      for (std::size_t i = scan_begin; i < neighbors.size(); ++i) {
        if (neighbors[i].dist2 > r2) break;
        const int idx = neighbors[i].index;
        GBX_DCHECK(labels[idx] == label);
        ball.members.push_back(idx);
        state[idx] = SampleState::kCovered;
      }
      GBX_CHECK_GE(ball.size(), 2);
      balls.push_back(std::move(ball));
    }
  }

  // --- Orphan GBs: every remaining U-sample becomes a radius-0 ball. ---
  for (int i = 0; i < n; ++i) {
    if (!InU(state[i])) continue;
    GranularBall ball;
    const double* xi = x.Row(i);
    ball.center.assign(xi, xi + p);
    ball.center_index = i;
    ball.radius = 0.0;
    ball.label = labels[i];
    ball.members.push_back(i);
    balls.push_back(std::move(ball));
    result.orphan_indices.push_back(i);
  }

  std::sort(result.noise_indices.begin(), result.noise_indices.end());
  std::sort(result.orphan_indices.begin(), result.orphan_indices.end());
  result.balls = GranularBallSet(std::move(balls), std::move(x), q);
  return result;
}

}  // namespace gbx
