// RD-GBG: Restricted Diffusion-based Granular-Ball Generation
// (Algorithm 1 of the paper).
//
// Iteratively picks one candidate center per remaining class (larger
// classes first), validates it by local consistency (density tolerance
// rho), detects and removes class noise while doing so, and grows a *pure*,
// *non-overlapping* ball around each eligible center:
//
//   radius = CR(c)                 if CR(c) <= r_conf(c)     (Eq.3/4/5)
//          = r_max(c)              otherwise                 (Eq.6)
//
// where CR is the locally-consistent radius (distance to the farthest of
// the leading homogeneous neighbors), r_conf the distance to the nearest
// previously generated ball's surface, and r_max the largest neighbor
// distance not exceeding r_conf. Iteration ends when every undivided
// sample is low-density (U ⊆ L); remaining samples become radius-0
// "orphan" balls so the granulation is complete.
#ifndef GBX_CORE_RD_GBG_H_
#define GBX_CORE_RD_GBG_H_

#include <cstdint>

#include "core/granular_ball.h"
#include "data/dataset.h"
#include "index/index_strategy.h"

namespace gbx {

struct RdGbgConfig {
  /// Density tolerance rho (§IV-B1): how many nearest neighbors are
  /// examined when the closest neighbor of a candidate center is
  /// heterogeneous. The paper's default is 5 (Fig. 10/11 sweep 3..19).
  int density_tolerance = 5;
  /// Seed for the deterministic candidate-center stream.
  std::uint64_t seed = 42;
  /// Min-max scale features before granulation (recommended; distances and
  /// rho are then comparable across features). Balls always live in the
  /// scaled space reported by GranularBallSet::scaled_features().
  bool scale_features = true;
  /// Worker threads for the per-candidate distance scans. <= 0 resolves to
  /// the GBX_THREADS environment variable or the hardware concurrency
  /// (see common/parallel.h); 1 forces a fully serial run. Candidate
  /// selection and all state mutation stay sequential, so the granulation
  /// is bit-identical at every thread count. Reaches GBABS through
  /// GbabsConfig::gbg.
  int num_threads = 0;
  /// How the per-candidate neighbor pass scans the shrinking undivided
  /// set: kFlat is the parallel exhaustive scan, kTree a DynamicKdTree
  /// that follows the U-set with tombstone deletions (asymptotically
  /// cheaper from ~4k samples in indexable dimensionality), kBallTree a
  /// metric ball-tree whose triangle-inequality pruning extends tree
  /// wins to moderate dimensionality, kAuto picks by n and dims
  /// (index/index_strategy.h). The same knob drives the conflict-radius
  /// pass: any tree strategy (and kAuto past a measured ball count)
  /// routes r_conf through an incremental BallSurfaceIndex over the
  /// generated balls instead of the flat per-ball gap scan. Every
  /// strategy consumes the identical (dist2, index)-ordered neighbor
  /// sequence and computes the identical r_conf double, so the
  /// granulation output is bit-identical whichever is chosen — the knob
  /// trades wall-clock only. Also selects GB-kNN's ball-center scan
  /// (ml/gb_knn.h).
  IndexStrategy index_strategy = IndexStrategy::kAuto;
};

struct RdGbgResult {
  GranularBallSet balls;
  /// Samples eliminated as class noise during center detection (sorted).
  std::vector<int> noise_indices;
  /// Samples that ended as low-density orphans (radius-0 balls; sorted).
  std::vector<int> orphan_indices;
  /// Number of outer (global) iterations executed.
  int iterations = 0;
};

/// Runs RD-GBG over the dataset. Requires at least one sample.
RdGbgResult GenerateRdGbg(const Dataset& dataset, const RdGbgConfig& config);

}  // namespace gbx

#endif  // GBX_CORE_RD_GBG_H_
