#include "data/arff.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace gbx {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Strips optional single quotes around an identifier.
std::string Unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

/// Splits "{a, b, c}" into category names.
StatusOr<std::vector<std::string>> ParseNominalSpec(const std::string& spec) {
  const std::string trimmed = Trim(spec);
  if (trimmed.size() < 2 || trimmed.front() != '{' ||
      trimmed.back() != '}') {
    return Status::InvalidArgument("bad nominal spec: " + spec);
  }
  std::vector<std::string> categories;
  std::stringstream ss(trimmed.substr(1, trimmed.size() - 2));
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string name = Unquote(Trim(item));
    if (name.empty()) {
      return Status::InvalidArgument("empty nominal category in " + spec);
    }
    categories.push_back(name);
  }
  if (categories.empty()) {
    return Status::InvalidArgument("nominal attribute with no categories");
  }
  return categories;
}

int CategoryIndex(const ArffAttribute& attr, const std::string& value) {
  for (std::size_t i = 0; i < attr.categories.size(); ++i) {
    if (attr.categories[i] == value) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

StatusOr<ArffRelation> ParseArff(const std::string& text,
                                 const ArffOptions& options) {
  std::stringstream ss(text);
  std::string line;
  ArffRelation relation;
  std::vector<ArffAttribute> all_attrs;
  bool in_data = false;
  int line_no = 0;

  Matrix x;
  std::vector<int> labels;
  int class_index = -1;
  std::vector<double> row_features;

  while (std::getline(ss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '%') continue;

    if (!in_data) {
      const std::string lower = ToLower(trimmed);
      if (lower.rfind("@relation", 0) == 0) {
        relation.name = Unquote(Trim(trimmed.substr(9)));
      } else if (lower.rfind("@attribute", 0) == 0) {
        // "@attribute <name> <type>"
        const std::string rest = Trim(trimmed.substr(10));
        std::size_t name_end = 0;
        if (!rest.empty() && rest[0] == '\'') {
          name_end = rest.find('\'', 1);
          if (name_end == std::string::npos) {
            return Status::InvalidArgument("unterminated attribute name at "
                                           "line " +
                                           std::to_string(line_no));
          }
          ++name_end;
        } else {
          name_end = rest.find_first_of(" \t{");
          if (name_end == std::string::npos) {
            return Status::InvalidArgument("attribute without type at line " +
                                           std::to_string(line_no));
          }
        }
        ArffAttribute attr;
        attr.name = Unquote(Trim(rest.substr(0, name_end)));
        const std::string type = Trim(rest.substr(name_end));
        const std::string type_lower = ToLower(type);
        if (type_lower.rfind("numeric", 0) == 0 ||
            type_lower.rfind("real", 0) == 0 ||
            type_lower.rfind("integer", 0) == 0) {
          attr.nominal = false;
        } else if (!type.empty() && type[0] == '{') {
          attr.nominal = true;
          StatusOr<std::vector<std::string>> cats = ParseNominalSpec(type);
          if (!cats.ok()) return cats.status();
          attr.categories = std::move(*cats);
        } else {
          return Status::InvalidArgument("unsupported attribute type '" +
                                         type + "' at line " +
                                         std::to_string(line_no));
        }
        all_attrs.push_back(std::move(attr));
      } else if (lower.rfind("@inputs", 0) == 0 ||
                 lower.rfind("@outputs", 0) == 0) {
        // KEEL extension headers; the class is still resolved below.
        continue;
      } else if (lower.rfind("@data", 0) == 0) {
        if (all_attrs.size() < 2) {
          return Status::InvalidArgument(
              "need at least one feature and a class attribute");
        }
        // Resolve the class attribute.
        if (options.class_attribute.empty()) {
          class_index = static_cast<int>(all_attrs.size()) - 1;
        } else {
          for (std::size_t i = 0; i < all_attrs.size(); ++i) {
            if (all_attrs[i].name == options.class_attribute) {
              class_index = static_cast<int>(i);
              break;
            }
          }
          if (class_index < 0) {
            return Status::NotFound("class attribute '" +
                                    options.class_attribute + "' not found");
          }
        }
        if (!all_attrs[class_index].nominal) {
          return Status::InvalidArgument(
              "class attribute must be nominal");
        }
        in_data = true;
      } else {
        return Status::InvalidArgument("unrecognized header line " +
                                       std::to_string(line_no) + ": " +
                                       trimmed);
      }
      continue;
    }

    // Data row.
    std::vector<std::string> fields;
    {
      std::stringstream row_ss(trimmed);
      std::string field;
      while (std::getline(row_ss, field, ',')) {
        fields.push_back(Trim(field));
      }
    }
    if (fields.size() != all_attrs.size()) {
      return Status::InvalidArgument("row arity mismatch at line " +
                                     std::to_string(line_no));
    }
    row_features.clear();
    int label = -1;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const ArffAttribute& attr = all_attrs[i];
      const std::string value = Unquote(fields[i]);
      if (static_cast<int>(i) == class_index) {
        label = CategoryIndex(attr, value);
        if (label < 0) {
          return Status::InvalidArgument("unknown class '" + value +
                                         "' at line " +
                                         std::to_string(line_no));
        }
        continue;
      }
      if (attr.nominal) {
        const int idx = CategoryIndex(attr, value);
        if (idx < 0) {
          return Status::InvalidArgument("unknown category '" + value +
                                         "' for attribute " + attr.name);
        }
        row_features.push_back(idx);
      } else {
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str()) {
          return Status::InvalidArgument("non-numeric value '" + value +
                                         "' at line " +
                                         std::to_string(line_no));
        }
        row_features.push_back(v);
      }
    }
    x.AppendRow(row_features.data(), static_cast<int>(row_features.size()));
    labels.push_back(label);
  }

  if (!in_data) return Status::InvalidArgument("missing @data section");
  if (x.rows() == 0) return Status::InvalidArgument("no data rows");

  for (std::size_t i = 0; i < all_attrs.size(); ++i) {
    if (static_cast<int>(i) == class_index) {
      relation.class_attribute = all_attrs[i];
    } else {
      relation.attributes.push_back(all_attrs[i]);
    }
  }
  relation.data = Dataset(
      std::move(x), std::move(labels),
      static_cast<int>(relation.class_attribute.categories.size()));
  return relation;
}

StatusOr<ArffRelation> LoadArff(const std::string& path,
                                const ArffOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseArff(buffer.str(), options);
}

}  // namespace gbx
