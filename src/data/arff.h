// ARFF (Attribute-Relation File Format) loader — the native format of the
// KEEL repository the paper draws datasets from (banana, coil2000, magic,
// shuttle). Supports numeric/real/integer attributes and nominal
// attributes (mapped to their category index); the class attribute is the
// last one by default or any nominal attribute selected by name.
#ifndef GBX_DATA_ARFF_H_
#define GBX_DATA_ARFF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace gbx {

struct ArffAttribute {
  std::string name;
  bool nominal = false;
  /// Category names for nominal attributes, in declaration order.
  std::vector<std::string> categories;
};

struct ArffRelation {
  std::string name;
  std::vector<ArffAttribute> attributes;  // excluding the class attribute
  ArffAttribute class_attribute;
  Dataset data;
};

struct ArffOptions {
  /// Name of the class attribute; empty selects the last attribute.
  std::string class_attribute;
};

/// Parses ARFF text. Case-insensitive keywords, '%' comments, optional
/// sparse rows are NOT supported (KEEL files are dense).
StatusOr<ArffRelation> ParseArff(const std::string& text,
                                 const ArffOptions& options = {});

/// Loads an ARFF file from disk.
StatusOr<ArffRelation> LoadArff(const std::string& path,
                                const ArffOptions& options = {});

}  // namespace gbx

#endif  // GBX_DATA_ARFF_H_
