#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace gbx {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, delim)) fields.push_back(field);
  // Trailing delimiter produces an implicit empty last field.
  if (!line.empty() && line.back() == delim) fields.emplace_back();
  return fields;
}

}  // namespace

StatusOr<Dataset> ParseCsv(const std::string& text,
                           const CsvOptions& options) {
  std::stringstream ss(text);
  std::string line;
  Matrix x;
  std::vector<int> y;
  int line_no = 0;
  bool skipped_header = !options.has_header;
  int expected_fields = -1;
  std::vector<double> features;
  while (std::getline(ss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (expected_fields < 0) {
      expected_fields = static_cast<int>(fields.size());
      if (expected_fields < 2) {
        return Status::InvalidArgument(
            "CSV needs at least one feature and one label column (line " +
            std::to_string(line_no) + ")");
      }
    }
    if (static_cast<int>(fields.size()) != expected_fields) {
      return Status::InvalidArgument("inconsistent field count at line " +
                                     std::to_string(line_no));
    }
    int label_col = options.label_column < 0 ? expected_fields - 1
                                             : options.label_column;
    if (label_col >= expected_fields) {
      return Status::InvalidArgument("label column out of range");
    }
    features.clear();
    int label = 0;
    for (int i = 0; i < expected_fields; ++i) {
      char* end = nullptr;
      const double v = std::strtod(fields[i].c_str(), &end);
      if (end == fields[i].c_str()) {
        return Status::InvalidArgument("non-numeric value '" + fields[i] +
                                       "' at line " + std::to_string(line_no));
      }
      if (i == label_col) {
        label = static_cast<int>(v);
        if (label < 0) {
          return Status::InvalidArgument("negative label at line " +
                                         std::to_string(line_no));
        }
      } else {
        features.push_back(v);
      }
    }
    x.AppendRow(features.data(), static_cast<int>(features.size()));
    y.push_back(label);
  }
  if (x.rows() == 0) return Status::InvalidArgument("CSV contains no rows");
  return Dataset(std::move(x), std::move(y));
}

StatusOr<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

Status SaveCsv(const Dataset& dataset, const std::string& path,
               const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  const int p = dataset.num_features();
  if (options.has_header) {
    for (int j = 0; j < p; ++j) out << "f" << j << options.delimiter;
    out << "label\n";
  }
  out.precision(17);
  for (int i = 0; i < dataset.size(); ++i) {
    const double* row = dataset.row(i);
    for (int j = 0; j < p; ++j) out << row[j] << options.delimiter;
    out << dataset.label(i) << "\n";
  }
  if (!out) return Status::Internal("write failure on " + path);
  return Status::Ok();
}

}  // namespace gbx
