// CSV persistence for datasets: numeric feature columns plus an integer
// label column (by default the last column). Supports an optional header
// row and round-trips datasets written by SaveCsv.
#ifndef GBX_DATA_CSV_H_
#define GBX_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace gbx {

struct CsvOptions {
  /// Column index holding the class label; -1 means the last column.
  int label_column = -1;
  /// Whether the first row is a header to be skipped (load) / written (save).
  bool has_header = true;
  char delimiter = ',';
};

/// Loads a dataset from a CSV file.
StatusOr<Dataset> LoadCsv(const std::string& path,
                          const CsvOptions& options = {});

/// Parses a dataset from CSV text (used by LoadCsv; handy in tests).
StatusOr<Dataset> ParseCsv(const std::string& text,
                           const CsvOptions& options = {});

/// Writes the dataset as CSV with features f0..f{p-1} and final column
/// `label`.
Status SaveCsv(const Dataset& dataset, const std::string& path,
               const CsvOptions& options = {});

}  // namespace gbx

#endif  // GBX_DATA_CSV_H_
