#include "data/dataset.h"

#include <algorithm>

namespace gbx {

Dataset::Dataset(Matrix x, std::vector<int> y, int num_classes)
    : x_(std::move(x)), y_(std::move(y)) {
  GBX_CHECK_EQ(x_.rows(), static_cast<int>(y_.size()));
  int max_label = -1;
  for (int label : y_) {
    GBX_CHECK_GE(label, 0);
    max_label = std::max(max_label, label);
  }
  num_classes_ = num_classes >= 0 ? num_classes : max_label + 1;
  GBX_CHECK_GE(num_classes_, max_label + 1);
}

void Dataset::set_label(int i, int label) {
  GBX_CHECK(i >= 0 && i < size());
  GBX_CHECK(label >= 0 && label < num_classes_);
  y_[i] = label;
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  std::vector<int> labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    GBX_CHECK(indices[i] >= 0 && indices[i] < size());
    labels[i] = y_[indices[i]];
  }
  return Dataset(x_.SelectRows(indices), std::move(labels), num_classes_);
}

void Dataset::AppendSample(const double* features, int n, int label) {
  GBX_CHECK_GE(label, 0);
  x_.AppendRow(features, n);
  y_.push_back(label);
  num_classes_ = std::max(num_classes_, label + 1);
}

void Dataset::Append(const Dataset& other) {
  if (other.empty()) return;
  x_.AppendRows(other.x());
  y_.insert(y_.end(), other.y().begin(), other.y().end());
  num_classes_ = std::max(num_classes_, other.num_classes());
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(num_classes_, 0);
  for (int label : y_) ++counts[label];
  return counts;
}

double Dataset::ImbalanceRatio() const {
  const std::vector<int> counts = ClassCounts();
  int majority = 0;
  int minority = 0;
  for (int c : counts) {
    if (c == 0) continue;
    majority = std::max(majority, c);
    minority = (minority == 0) ? c : std::min(minority, c);
  }
  if (minority == 0) return 1.0;
  return static_cast<double>(majority) / minority;
}

int Dataset::MajorityClass() const {
  const std::vector<int> counts = ClassCounts();
  return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                          counts.begin());
}

int Dataset::MinorityClass() const {
  const std::vector<int> counts = ClassCounts();
  int best = -1;
  for (int c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0) continue;
    if (best < 0 || counts[c] < counts[best]) best = c;
  }
  return best < 0 ? 0 : best;
}

std::vector<int> Dataset::IndicesOfClass(int cls) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (y_[i] == cls) out.push_back(i);
  }
  return out;
}

}  // namespace gbx
