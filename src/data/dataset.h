// Tabular labeled dataset: a row-major feature matrix plus integer class
// labels in [0, num_classes). This is the single data currency of the
// library — samplers map Dataset -> Dataset, classifiers fit on Dataset.
#ifndef GBX_DATA_DATASET_H_
#define GBX_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/matrix.h"

namespace gbx {

class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of features and labels. Labels must be non-negative;
  /// num_classes is max(label) + 1 unless overridden (override is needed
  /// when a subset might not contain every class).
  Dataset(Matrix x, std::vector<int> y, int num_classes = -1);

  int size() const { return x_.rows(); }
  int num_features() const { return x_.cols(); }
  int num_classes() const { return num_classes_; }
  bool empty() const { return size() == 0; }

  const Matrix& x() const { return x_; }
  Matrix& mutable_x() { return x_; }
  const std::vector<int>& y() const { return y_; }

  const double* row(int i) const { return x_.Row(i); }
  double feature(int i, int j) const { return x_.At(i, j); }
  int label(int i) const { return y_[i]; }
  void set_label(int i, int label);

  /// Subset preserving num_classes (so per-fold subsets keep class arity).
  Dataset Subset(const std::vector<int>& indices) const;

  /// Appends a single labeled sample.
  void AppendSample(const double* features, int n, int label);

  /// Appends all samples of `other`; feature arity must match.
  void Append(const Dataset& other);

  /// Number of samples per class (length num_classes()).
  std::vector<int> ClassCounts() const;

  /// Majority-class count divided by (nonzero) minority-class count.
  /// Returns 1.0 for datasets with fewer than two populated classes.
  double ImbalanceRatio() const;

  /// Index of the class with the most (fewest, nonzero) samples.
  int MajorityClass() const;
  int MinorityClass() const;

  /// Indices of samples belonging to `cls`.
  std::vector<int> IndicesOfClass(int cls) const;

 private:
  Matrix x_;
  std::vector<int> y_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_DATA_DATASET_H_
