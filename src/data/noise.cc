#include "data/noise.h"

#include <algorithm>

namespace gbx {

std::vector<int> InjectClassNoise(Dataset* ds, double ratio, Pcg32* rng) {
  GBX_CHECK(ds != nullptr);
  GBX_CHECK(rng != nullptr);
  GBX_CHECK(ratio >= 0.0 && ratio <= 1.0);
  const int n_flip = static_cast<int>(ds->size() * ratio);
  if (n_flip == 0) return {};
  GBX_CHECK_GE(ds->num_classes(), 2);
  std::vector<int> flipped = rng->SampleWithoutReplacement(ds->size(), n_flip);
  for (int idx : flipped) {
    const int old_label = ds->label(idx);
    // Draw from the other q-1 classes uniformly.
    int new_label = rng->NextInt(0, ds->num_classes() - 2);
    if (new_label >= old_label) ++new_label;
    ds->set_label(idx, new_label);
  }
  std::sort(flipped.begin(), flipped.end());
  return flipped;
}

Dataset WithClassNoise(const Dataset& ds, double ratio, Pcg32* rng) {
  Dataset copy = ds;
  InjectClassNoise(&copy, ratio, rng);
  return copy;
}

}  // namespace gbx
