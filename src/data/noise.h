// Class-noise injection: the paper constructs noisy variants of every
// dataset by "randomly selecting samples and altering their labels" at
// ratios 5/10/20/30/40% (§V-A2). Flipping always picks a *different*
// uniformly random class.
#ifndef GBX_DATA_NOISE_H_
#define GBX_DATA_NOISE_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace gbx {

/// Flips the labels of floor(ratio * n) distinct samples in place.
/// Requires num_classes >= 2 when any flips are requested. Returns the
/// indices of flipped samples (sorted).
std::vector<int> InjectClassNoise(Dataset* ds, double ratio, Pcg32* rng);

/// Returns a noisy copy, leaving `ds` untouched.
Dataset WithClassNoise(const Dataset& ds, double ratio, Pcg32* rng);

}  // namespace gbx

#endif  // GBX_DATA_NOISE_H_
