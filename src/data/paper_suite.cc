#include "data/paper_suite.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "data/synthetic.h"

namespace gbx {

const std::vector<PaperDatasetSpec>& PaperDatasetSpecs() {
  static const std::vector<PaperDatasetSpec>* kSpecs =
      new std::vector<PaperDatasetSpec>{
          {"S1", "Credit Approval", 690, 15, 2, 1.25, "UCI"},
          {"S2", "Diabetes", 768, 8, 2, 1.87, "UCI"},
          {"S3", "Car Evaluation", 1728, 6, 4, 18.62, "UCI"},
          {"S4", "Pumpkin Seeds", 2500, 12, 2, 1.08, "Kaggle"},
          {"S5", "banana", 5300, 2, 2, 1.23, "KEEL"},
          {"S6", "page-blocks", 5473, 11, 5, 175.46, "UCI"},
          {"S7", "coil2000", 9822, 85, 2, 15.76, "KEEL"},
          {"S8", "Dry Bean", 13611, 16, 7, 6.79, "UCI"},
          {"S9", "HTRU2", 17898, 8, 2, 9.92, "UCI"},
          {"S10", "magic", 19020, 10, 2, 1.84, "KEEL"},
          {"S11", "shuttle", 58000, 9, 7, 4558.6, "KEEL"},
          {"S12", "Gas Sensor", 13910, 128, 6, 1.83, "UCI"},
          {"S13", "USPS", 9298, 256, 10, 2.19, "VLDB'11"},
      };
  return *kSpecs;
}

const PaperDatasetSpec& PaperSpecById(const std::string& id) {
  for (const auto& spec : PaperDatasetSpecs()) {
    if (spec.id == id) return spec;
  }
  GBX_CHECK(false && "unknown paper dataset id");
  return PaperDatasetSpecs()[0];  // unreachable
}

namespace {

std::vector<double> BinaryWeights(double ir) { return {ir, 1.0}; }

/// Per-dataset geometry knobs chosen to match the paper's qualitative
/// description of each dataset (boundary complexity, separability) — see
/// the visualizations discussed around Fig. 5.
Dataset Generate(int index, int n, std::uint64_t seed) {
  const PaperDatasetSpec& spec = PaperDatasetSpecs()[index];
  Pcg32 rng(seed, /*stream=*/0x9E3779B97F4A7C15ULL ^ (index + 1));
  switch (index) {
    case 0: {  // S1 Credit Approval: complex, blurred boundary (ratio ~84%).
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 6;
      cfg.num_classes = 2;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      cfg.class_sep = 0.9;
      cfg.noise_std = 1.0;
      cfg.clusters_per_class = 3;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 1: {  // S2 Diabetes: moderate overlap.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 5;
      cfg.num_classes = 2;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      cfg.class_sep = 0.5;
      cfg.noise_std = 1.3;
      cfg.clusters_per_class = 2;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 2: {  // S3 Car Evaluation: 4 classes with overlapping distributions.
      BlobsConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_classes = spec.classes;
      cfg.class_weights = GeometricWeights(spec.classes, spec.imbalance_ratio);
      cfg.center_spread = 3.2;
      cfg.cluster_std = 1.2;
      cfg.clusters_per_class = 2;
      return MakeGaussianBlobs(cfg, &rng);
    }
    case 3: {  // S4 Pumpkin Seeds: near-balanced, moderately separable.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 8;
      cfg.num_classes = 2;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      cfg.class_sep = 0.8;
      cfg.noise_std = 1.1;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 4: {  // S5 banana: simple curved boundary, 2-D.
      BananaConfig cfg;
      cfg.num_samples = n;
      cfg.noise_std = 0.28;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      return MakeBanana(cfg, &rng);
    }
    case 5: {  // S6 page-blocks: clear multi-class boundaries, extreme IR.
      BlobsConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_classes = spec.classes;
      cfg.class_weights = GeometricWeights(spec.classes, spec.imbalance_ratio);
      cfg.center_spread = 5.0;
      cfg.cluster_std = 0.85;
      return MakeGaussianBlobs(cfg, &rng);
    }
    case 6: {  // S7 coil2000: high-dim, imbalanced, hard to compress.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 12;
      cfg.num_classes = 2;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      cfg.class_sep = 0.6;
      cfg.noise_std = 1.3;
      cfg.clusters_per_class = 2;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 7: {  // S8 Dry Bean: 7 classes, moderate separation.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 10;
      cfg.num_classes = spec.classes;
      cfg.class_weights = GeometricWeights(spec.classes, spec.imbalance_ratio);
      cfg.class_sep = 1.1;
      cfg.noise_std = 1.05;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 8: {  // S9 HTRU2: quite separable binary, IR ~10.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 6;
      cfg.num_classes = 2;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      cfg.class_sep = 1.5;
      cfg.noise_std = 1.0;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 9: {  // S10 magic: large binary with real overlap.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 7;
      cfg.num_classes = 2;
      cfg.class_weights = BinaryWeights(spec.imbalance_ratio);
      cfg.class_sep = 0.62;
      cfg.noise_std = 1.15;
      cfg.clusters_per_class = 2;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 10: {  // S11 shuttle: extreme IR, nearly separable classes.
      BlobsConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_classes = spec.classes;
      cfg.class_weights = GeometricWeights(spec.classes, spec.imbalance_ratio);
      cfg.center_spread = 8.0;
      cfg.cluster_std = 0.5;
      return MakeGaussianBlobs(cfg, &rng);
    }
    case 11: {  // S12 Gas Sensor: 128-dim, separable, 6 classes.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 16;
      cfg.num_classes = spec.classes;
      cfg.class_weights = GeometricWeights(spec.classes, spec.imbalance_ratio);
      cfg.class_sep = 1.9;
      cfg.noise_std = 1.0;
      return MakeInformativeHighDim(cfg, &rng);
    }
    case 12: {  // S13 USPS: 256-dim, 10 digit-like clusters.
      HighDimConfig cfg;
      cfg.num_samples = n;
      cfg.num_features = spec.features;
      cfg.num_informative = 24;
      cfg.num_classes = spec.classes;
      cfg.class_weights = GeometricWeights(spec.classes, spec.imbalance_ratio);
      cfg.class_sep = 1.05;
      cfg.noise_std = 1.0;
      return MakeInformativeHighDim(cfg, &rng);
    }
    default:
      GBX_CHECK(false && "paper dataset index out of range");
      return Dataset();
  }
}

}  // namespace

Dataset MakePaperDataset(int index, int max_samples, std::uint64_t seed) {
  GBX_CHECK(index >= 0 &&
            index < static_cast<int>(PaperDatasetSpecs().size()));
  const PaperDatasetSpec& spec = PaperDatasetSpecs()[index];
  int n = spec.samples;
  if (max_samples > 0) n = std::min(n, max_samples);
  GBX_CHECK_GE(n, spec.classes);
  return Generate(index, n, seed);
}

Dataset MakePaperDataset(const std::string& id, int max_samples,
                         std::uint64_t seed) {
  const auto& specs = PaperDatasetSpecs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].id == id) {
      return MakePaperDataset(static_cast<int>(i), max_samples, seed);
    }
  }
  GBX_CHECK(false && "unknown paper dataset id");
  return Dataset();
}

}  // namespace gbx
