// Registry of the 13 evaluation datasets of Table I (S1..S13). Each entry
// records the paper's published statistics (samples / features / classes /
// imbalance ratio) and a synthetic generator whose geometry matches the
// qualitative description in §V (see DESIGN.md §3 for the substitution
// rationale).
#ifndef GBX_DATA_PAPER_SUITE_H_
#define GBX_DATA_PAPER_SUITE_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace gbx {

struct PaperDatasetSpec {
  std::string id;        // "S1".."S13"
  std::string name;      // original dataset name
  int samples;           // paper-scale sample count
  int features;
  int classes;
  double imbalance_ratio;
  std::string source;    // UCI / KEEL / Kaggle / paper ref
};

/// The 13 dataset specs exactly as printed in Table I.
const std::vector<PaperDatasetSpec>& PaperDatasetSpecs();

/// Spec lookup by id ("S5"); checks the id exists.
const PaperDatasetSpec& PaperSpecById(const std::string& id);

/// Generates the synthetic stand-in for dataset `index` (0-based, S1 is
/// 0). `max_samples` caps the generated size (<=0 means paper scale);
/// features/classes/IR always match the spec. Features are NOT scaled —
/// callers (samplers) min-max scale as part of their pipeline.
Dataset MakePaperDataset(int index, int max_samples, std::uint64_t seed);

/// Convenience overload taking "S1".."S13".
Dataset MakePaperDataset(const std::string& id, int max_samples,
                         std::uint64_t seed);

}  // namespace gbx

#endif  // GBX_DATA_PAPER_SUITE_H_
