#include "data/scaler.h"

#include <cmath>
#include <limits>

namespace gbx {

void MinMaxScaler::Fit(const Matrix& x) {
  GBX_CHECK_GT(x.rows(), 0);
  const int p = x.cols();
  mins_.assign(p, std::numeric_limits<double>::infinity());
  maxs_.assign(p, -std::numeric_limits<double>::infinity());
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (int j = 0; j < p; ++j) {
      mins_[j] = std::min(mins_[j], row[j]);
      maxs_[j] = std::max(maxs_[j], row[j]);
    }
  }
}

void MinMaxScaler::Restore(std::vector<double> mins,
                           std::vector<double> maxs) {
  GBX_CHECK(!mins.empty());
  GBX_CHECK_EQ(mins.size(), maxs.size());
  for (std::size_t j = 0; j < mins.size(); ++j) {
    GBX_CHECK_LE(mins[j], maxs[j]);
  }
  mins_ = std::move(mins);
  maxs_ = std::move(maxs);
}

Matrix MinMaxScaler::Transform(const Matrix& x) const {
  GBX_CHECK(fitted());
  GBX_CHECK_EQ(x.cols(), static_cast<int>(mins_.size()));
  Matrix out(x.rows(), x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const double* src = x.Row(i);
    double* dst = out.Row(i);
    for (int j = 0; j < x.cols(); ++j) {
      const double range = maxs_[j] - mins_[j];
      dst[j] = range > 0 ? (src[j] - mins_[j]) / range : 0.0;
    }
  }
  return out;
}

void StandardScaler::Fit(const Matrix& x) {
  GBX_CHECK_GT(x.rows(), 0);
  const int p = x.cols();
  means_.assign(p, 0.0);
  stds_.assign(p, 0.0);
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (int j = 0; j < p; ++j) means_[j] += row[j];
  }
  for (int j = 0; j < p; ++j) means_[j] /= x.rows();
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (int j = 0; j < p; ++j) {
      const double d = row[j] - means_[j];
      stds_[j] += d * d;
    }
  }
  for (int j = 0; j < p; ++j) stds_[j] = std::sqrt(stds_[j] / x.rows());
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  GBX_CHECK(fitted());
  GBX_CHECK_EQ(x.cols(), static_cast<int>(means_.size()));
  Matrix out(x.rows(), x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const double* src = x.Row(i);
    double* dst = out.Row(i);
    for (int j = 0; j < x.cols(); ++j) {
      dst[j] = stds_[j] > 0 ? (src[j] - means_[j]) / stds_[j] : 0.0;
    }
  }
  return out;
}

Dataset MinMaxScaled(const Dataset& ds) {
  MinMaxScaler scaler;
  Matrix scaled = scaler.FitTransform(ds.x());
  return Dataset(std::move(scaled), ds.y(), ds.num_classes());
}

}  // namespace gbx
