// Feature scaling. RD-GBG and every distance-based component operate on
// Euclidean distances, so features are min-max scaled to [0, 1] before
// granulation (constant features map to 0).
#ifndef GBX_DATA_SCALER_H_
#define GBX_DATA_SCALER_H_

#include <vector>

#include "data/dataset.h"

namespace gbx {

/// Min-max scaler: x' = (x - min) / (max - min), per feature.
class MinMaxScaler {
 public:
  /// Learns per-feature min/max from `x`.
  void Fit(const Matrix& x);

  /// Applies the learned transform (values outside the fitted range are
  /// extrapolated linearly, not clipped).
  Matrix Transform(const Matrix& x) const;

  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  /// Restores a previously fitted state (model deserialization). `mins`
  /// and `maxs` must have equal, nonzero length with mins[j] <= maxs[j].
  void Restore(std::vector<double> mins, std::vector<double> maxs);

  bool fitted() const { return !mins_.empty(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Z-score scaler: x' = (x - mean) / std (std==0 maps to 0).
class StandardScaler {
 public:
  void Fit(const Matrix& x);
  Matrix Transform(const Matrix& x) const;
  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

/// Convenience: returns a copy of `ds` with min-max scaled features.
Dataset MinMaxScaled(const Dataset& ds);

}  // namespace gbx

#endif  // GBX_DATA_SCALER_H_
