#include "data/split.h"

#include <algorithm>

namespace gbx {

TrainTestSplitResult TrainTestSplit(const Dataset& ds, double test_fraction,
                                    Pcg32* rng, bool stratified) {
  GBX_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  GBX_CHECK(rng != nullptr);
  std::vector<int> test_idx;
  std::vector<int> train_idx;
  if (stratified) {
    for (int cls = 0; cls < ds.num_classes(); ++cls) {
      std::vector<int> members = ds.IndicesOfClass(cls);
      rng->Shuffle(&members);
      const int n_test = static_cast<int>(members.size() * test_fraction);
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (static_cast<int>(i) < n_test) {
          test_idx.push_back(members[i]);
        } else {
          train_idx.push_back(members[i]);
        }
      }
    }
  } else {
    std::vector<int> all(ds.size());
    for (int i = 0; i < ds.size(); ++i) all[i] = i;
    rng->Shuffle(&all);
    const int n_test = static_cast<int>(ds.size() * test_fraction);
    test_idx.assign(all.begin(), all.begin() + n_test);
    train_idx.assign(all.begin() + n_test, all.end());
  }
  std::sort(test_idx.begin(), test_idx.end());
  std::sort(train_idx.begin(), train_idx.end());
  TrainTestSplitResult result;
  result.train = ds.Subset(train_idx);
  result.test = ds.Subset(test_idx);
  result.train_indices = std::move(train_idx);
  result.test_indices = std::move(test_idx);
  return result;
}

std::vector<std::vector<int>> StratifiedKFold(const Dataset& ds, int k,
                                              Pcg32* rng) {
  GBX_CHECK_GE(k, 2);
  GBX_CHECK(rng != nullptr);
  std::vector<std::vector<int>> folds(k);
  for (int cls = 0; cls < ds.num_classes(); ++cls) {
    std::vector<int> members = ds.IndicesOfClass(cls);
    rng->Shuffle(&members);
    for (std::size_t i = 0; i < members.size(); ++i) {
      folds[i % k].push_back(members[i]);
    }
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

std::vector<int> FoldComplement(const std::vector<int>& fold, int n) {
  std::vector<bool> in_fold(n, false);
  for (int i : fold) {
    GBX_CHECK(i >= 0 && i < n);
    in_fold[i] = true;
  }
  std::vector<int> out;
  out.reserve(n - static_cast<int>(fold.size()));
  for (int i = 0; i < n; ++i) {
    if (!in_fold[i]) out.push_back(i);
  }
  return out;
}

}  // namespace gbx
