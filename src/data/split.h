// Train/test and cross-validation splitting. Experiments use repeated
// stratified 5-fold CV exactly as §V-A3 of the paper.
#ifndef GBX_DATA_SPLIT_H_
#define GBX_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace gbx {

struct TrainTestSplitResult {
  Dataset train;
  Dataset test;
  std::vector<int> train_indices;
  std::vector<int> test_indices;
};

/// Splits `ds` into train/test with the given test fraction. When
/// `stratified` is true each class contributes proportionally.
TrainTestSplitResult TrainTestSplit(const Dataset& ds, double test_fraction,
                                    Pcg32* rng, bool stratified = true);

/// Stratified k-fold partition: returns, for each fold, the indices of the
/// samples assigned to that fold's *test* set. Folds are disjoint and cover
/// [0, ds.size()); each class is spread as evenly as possible.
std::vector<std::vector<int>> StratifiedKFold(const Dataset& ds, int k,
                                              Pcg32* rng);

/// Complement of `fold` within [0, n): training indices for that fold.
std::vector<int> FoldComplement(const std::vector<int>& fold, int n);

}  // namespace gbx

#endif  // GBX_DATA_SPLIT_H_
