#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace gbx {

std::vector<int> ClassCountsFromWeights(int num_samples, int num_classes,
                                        const std::vector<double>& weights) {
  GBX_CHECK_GE(num_classes, 1);
  GBX_CHECK_GE(num_samples, num_classes);
  std::vector<double> w = weights;
  if (w.empty()) w.assign(num_classes, 1.0);
  GBX_CHECK_EQ(static_cast<int>(w.size()), num_classes);
  double total = 0.0;
  for (double v : w) {
    GBX_CHECK_GT(v, 0.0);
    total += v;
  }
  std::vector<int> counts(num_classes);
  int assigned = 0;
  for (int c = 0; c < num_classes; ++c) {
    counts[c] = std::max(1, static_cast<int>(num_samples * w[c] / total));
    assigned += counts[c];
  }
  // Fix rounding drift on the majority class.
  int majority =
      static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                       counts.begin());
  counts[majority] += num_samples - assigned;
  GBX_CHECK_GE(counts[majority], 1);
  return counts;
}

std::vector<double> GeometricWeights(int num_classes, double imbalance_ratio) {
  GBX_CHECK_GE(num_classes, 2);
  GBX_CHECK_GE(imbalance_ratio, 1.0);
  // w_c = r^(q-1-c) with r chosen so w_0 / w_{q-1} = IR.
  const double r = std::pow(imbalance_ratio, 1.0 / (num_classes - 1));
  std::vector<double> w(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    w[c] = std::pow(r, num_classes - 1 - c);
  }
  return w;
}

Dataset MakeGaussianBlobs(const BlobsConfig& config, Pcg32* rng) {
  GBX_CHECK(rng != nullptr);
  GBX_CHECK_GE(config.num_features, 1);
  GBX_CHECK_GE(config.clusters_per_class, 1);
  const int q = config.num_classes;
  const int p = config.num_features;
  const std::vector<int> counts =
      ClassCountsFromWeights(config.num_samples, q, config.class_weights);

  // One set of centers per class.
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<std::size_t>(q) * config.clusters_per_class);
  for (int c = 0; c < q * config.clusters_per_class; ++c) {
    std::vector<double> center(p);
    for (int j = 0; j < p; ++j) {
      center[j] = (rng->NextDouble() * 2.0 - 1.0) * config.center_spread;
    }
    centers.push_back(std::move(center));
  }

  Matrix x(config.num_samples, p);
  std::vector<int> y(config.num_samples);
  int row = 0;
  std::vector<double> sample(p);
  for (int c = 0; c < q; ++c) {
    for (int i = 0; i < counts[c]; ++i) {
      const int cluster =
          c * config.clusters_per_class +
          rng->NextInt(0, config.clusters_per_class - 1);
      const std::vector<double>& center = centers[cluster];
      double* dst = x.Row(row);
      for (int j = 0; j < p; ++j) {
        dst[j] = center[j] + rng->NextGaussian() * config.cluster_std;
      }
      y[row] = c;
      ++row;
    }
  }
  GBX_CHECK_EQ(row, config.num_samples);
  return Dataset(std::move(x), std::move(y), q);
}

Dataset MakeBanana(const BananaConfig& config, Pcg32* rng) {
  GBX_CHECK(rng != nullptr);
  const std::vector<int> counts =
      ClassCountsFromWeights(config.num_samples, 2, config.class_weights);
  Matrix x(config.num_samples, 2);
  std::vector<int> y(config.num_samples);
  int row = 0;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < counts[c]; ++i) {
      // Crescents: class 0 is the upper arc, class 1 the lower arc shifted
      // right/down so the tips interleave (two-moons construction).
      const double t = M_PI * rng->NextDouble();
      double px = 0.0;
      double py = 0.0;
      if (c == 0) {
        px = std::cos(t);
        py = std::sin(t);
      } else {
        px = 1.0 - std::cos(t);
        py = 0.5 - std::sin(t);
      }
      double* dst = x.Row(row);
      dst[0] = px + rng->NextGaussian() * config.noise_std;
      dst[1] = py + rng->NextGaussian() * config.noise_std;
      y[row] = c;
      ++row;
    }
  }
  GBX_CHECK_EQ(row, config.num_samples);
  return Dataset(std::move(x), std::move(y), 2);
}

Dataset MakeConcentricRings(const RingsConfig& config, Pcg32* rng) {
  GBX_CHECK(rng != nullptr);
  GBX_CHECK_GE(config.num_classes, 2);
  const std::vector<int> counts =
      ClassCountsFromWeights(config.num_samples, config.num_classes, {});
  Matrix x(config.num_samples, 2);
  std::vector<int> y(config.num_samples);
  int row = 0;
  for (int c = 0; c < config.num_classes; ++c) {
    const double radius = (c + 1) * config.ring_gap;
    for (int i = 0; i < counts[c]; ++i) {
      const double theta = 2.0 * M_PI * rng->NextDouble();
      double* dst = x.Row(row);
      dst[0] = radius * std::cos(theta) + rng->NextGaussian() * config.noise_std;
      dst[1] = radius * std::sin(theta) + rng->NextGaussian() * config.noise_std;
      y[row] = c;
      ++row;
    }
  }
  GBX_CHECK_EQ(row, config.num_samples);
  return Dataset(std::move(x), std::move(y), config.num_classes);
}

Dataset MakeInformativeHighDim(const HighDimConfig& config, Pcg32* rng) {
  GBX_CHECK(rng != nullptr);
  GBX_CHECK_GE(config.num_informative, 1);
  GBX_CHECK_GE(config.num_features, config.num_informative);
  const int q = config.num_classes;
  const int p = config.num_features;
  const int m = config.num_informative;
  const std::vector<int> counts =
      ClassCountsFromWeights(config.num_samples, q, config.class_weights);

  // Centroids at scaled random hypercube-ish vertices of the informative
  // subspace. class_sep stretches them apart.
  const int total_clusters = q * config.clusters_per_class;
  std::vector<std::vector<double>> centroids(total_clusters,
                                             std::vector<double>(m));
  for (int c = 0; c < total_clusters; ++c) {
    for (int j = 0; j < m; ++j) {
      centroids[c][j] =
          config.class_sep * (rng->NextDouble() < 0.5 ? -1.0 : 1.0) *
          (1.0 + 0.5 * rng->NextDouble());
    }
  }

  Matrix x(config.num_samples, p);
  std::vector<int> y(config.num_samples);
  int row = 0;
  for (int c = 0; c < q; ++c) {
    for (int i = 0; i < counts[c]; ++i) {
      const int cluster = c * config.clusters_per_class +
                          rng->NextInt(0, config.clusters_per_class - 1);
      double* dst = x.Row(row);
      for (int j = 0; j < m; ++j) {
        dst[j] = centroids[cluster][j] + rng->NextGaussian() * config.noise_std;
      }
      for (int j = m; j < p; ++j) {
        dst[j] = rng->NextGaussian() * config.noise_std;
      }
      y[row] = c;
      ++row;
    }
  }
  GBX_CHECK_EQ(row, config.num_samples);
  return Dataset(std::move(x), std::move(y), q);
}

void RotateFeatures(Matrix* features, Pcg32* rng) {
  const int d = features->cols();
  const int n = features->rows();
  for (int pass = 0; pass < 2; ++pass) {
    for (int a = 0; a < d; ++a) {
      for (int b = a + 1; b < d; ++b) {
        const double theta = 2.0 * M_PI * rng->NextDouble();
        const double c = std::cos(theta);
        const double s = std::sin(theta);
        for (int i = 0; i < n; ++i) {
          double* row = features->Row(i);
          const double va = row[a];
          const double vb = row[b];
          row[a] = c * va - s * vb;
          row[b] = s * va + c * vb;
        }
      }
    }
  }
}

}  // namespace gbx
