// Synthetic dataset generators. These stand in for the UCI/KEEL/Kaggle
// datasets of Table I (offline reproduction; see DESIGN.md §3): each
// generator controls the geometric properties the paper's methods react to
// — boundary shape/complexity, density, class count, dimensionality, and
// imbalance.
#ifndef GBX_DATA_SYNTHETIC_H_
#define GBX_DATA_SYNTHETIC_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace gbx {

/// Isotropic Gaussian blobs, optionally several clusters per class.
struct BlobsConfig {
  int num_samples = 1000;
  int num_features = 2;
  int num_classes = 2;
  /// Relative class frequencies; empty means balanced. Values are
  /// normalized internally.
  std::vector<double> class_weights;
  /// Cluster centers are drawn uniformly from [-spread, spread]^p.
  double center_spread = 4.0;
  /// Standard deviation of each blob.
  double cluster_std = 1.0;
  int clusters_per_class = 1;
};
Dataset MakeGaussianBlobs(const BlobsConfig& config, Pcg32* rng);

/// Two interleaved crescent ("banana") shaped classes in 2-D — the classic
/// geometry of the KEEL `banana` set (paper dataset S5).
struct BananaConfig {
  int num_samples = 1000;
  /// Gaussian jitter around each crescent.
  double noise_std = 0.15;
  /// Relative sizes of the two classes; empty means balanced.
  std::vector<double> class_weights;
};
Dataset MakeBanana(const BananaConfig& config, Pcg32* rng);

/// Concentric rings: q classes on circles of increasing radius. Boundaries
/// are closed curves, exercising the per-dimension borderline scan.
struct RingsConfig {
  int num_samples = 1000;
  int num_classes = 3;
  double ring_gap = 1.0;
  double noise_std = 0.1;
};
Dataset MakeConcentricRings(const RingsConfig& config, Pcg32* rng);

/// High-dimensional classification problem in the style of
/// sklearn.make_classification: class centroids are placed in an
/// `num_informative`-dimensional subspace at pairwise distance controlled
/// by class_sep; the remaining dimensions carry pure noise.
struct HighDimConfig {
  int num_samples = 1000;
  int num_features = 50;
  int num_informative = 10;
  int num_classes = 2;
  std::vector<double> class_weights;
  /// Multiplier on centroid separation; lower = harder, blurrier boundary.
  double class_sep = 1.0;
  double noise_std = 1.0;
  int clusters_per_class = 1;
};
Dataset MakeInformativeHighDim(const HighDimConfig& config, Pcg32* rng);

/// Applies a deterministic random orthogonal rotation — a composition of
/// Givens rotations over every coordinate pair, two passes — to the
/// feature matrix in place. Rotations preserve all pairwise distances,
/// so class geometry (and every distance-based algorithm's output on
/// it) is intact, but axis-aligned structure — informative subspaces,
/// per-dimension spreads — is mixed across all coordinates. That is the
/// regime separating metric (ball-tree) from axis-aligned (KD-tree)
/// pruning, and the honest stand-in for real tabular data whose
/// correlations ignore the coordinate system.
void RotateFeatures(Matrix* features, Pcg32* rng);

/// Converts relative weights (or balanced, if empty) into exact per-class
/// sample counts summing to `num_samples`. Every class receives >= 1
/// sample when num_samples >= num_classes.
std::vector<int> ClassCountsFromWeights(int num_samples, int num_classes,
                                        const std::vector<double>& weights);

/// Binary weights {IR, 1} -> multi-class geometric ladder whose
/// majority/minority ratio equals `imbalance_ratio`.
std::vector<double> GeometricWeights(int num_classes, double imbalance_ratio);

}  // namespace gbx

#endif  // GBX_DATA_SYNTHETIC_H_
