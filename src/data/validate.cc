#include "data/validate.h"

#include <cmath>

namespace gbx {

Status ValidateDataset(const Dataset& ds, const ValidateOptions& options) {
  if (ds.size() < options.min_samples) {
    return Status::FailedPrecondition(
        "dataset has " + std::to_string(ds.size()) + " samples, need >= " +
        std::to_string(options.min_samples));
  }
  if (ds.size() > 0 && ds.num_features() == 0) {
    return Status::FailedPrecondition("dataset has zero features");
  }
  for (int i = 0; i < ds.size(); ++i) {
    const double* row = ds.row(i);
    for (int j = 0; j < ds.num_features(); ++j) {
      if (!std::isfinite(row[j])) {
        return Status::InvalidArgument(
            "non-finite feature at sample " + std::to_string(i) +
            ", feature " + std::to_string(j));
      }
    }
    if (ds.label(i) < 0 || ds.label(i) >= ds.num_classes()) {
      return Status::OutOfRange("label " + std::to_string(ds.label(i)) +
                                " out of range at sample " +
                                std::to_string(i));
    }
  }
  if (options.require_two_classes) {
    int populated = 0;
    for (int c : ds.ClassCounts()) populated += c > 0 ? 1 : 0;
    if (populated < 2) {
      return Status::FailedPrecondition(
          "classification requires >= 2 populated classes, found " +
          std::to_string(populated));
    }
  }
  return Status::Ok();
}

}  // namespace gbx
