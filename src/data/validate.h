// Dataset validation: catches the malformed inputs (NaN/Inf features,
// labels out of range, empty/degenerate shapes) that would otherwise trip
// internal GBX_CHECKs deep inside samplers and classifiers. Entry points
// that accept user data (CLI tools, CSV/ARFF loads) validate first.
#ifndef GBX_DATA_VALIDATE_H_
#define GBX_DATA_VALIDATE_H_

#include "common/status.h"
#include "data/dataset.h"

namespace gbx {

struct ValidateOptions {
  /// Minimum number of samples a usable dataset must have.
  int min_samples = 1;
  /// Require at least two populated classes (classification tasks).
  bool require_two_classes = false;
};

/// OK iff the dataset has finite features, labels within
/// [0, num_classes), and satisfies the options' shape requirements.
Status ValidateDataset(const Dataset& ds, const ValidateOptions& options = {});

}  // namespace gbx

#endif  // GBX_DATA_VALIDATE_H_
