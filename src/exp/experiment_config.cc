#include "exp/experiment_config.h"

#include <cstdlib>
#include <cstring>

namespace gbx {

ExperimentConfig ExperimentConfig::FromArgs(int argc, char** argv) {
  ExperimentConfig config;
  const char* env_full = std::getenv("GBX_FULL");
  if (env_full != nullptr && std::strcmp(env_full, "0") != 0 &&
      std::strcmp(env_full, "") != 0) {
    config.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_int = [&](int fallback) {
      return i + 1 < argc ? std::atoi(argv[++i]) : fallback;
    };
    if (std::strcmp(arg, "--full") == 0) {
      config.full = true;
    } else if (std::strcmp(arg, "--scaled") == 0) {
      // Pin the scaled protocol even when GBX_FULL is set — used by the
      // BENCH-label ctest smoke entries.
      config.full = false;
    } else if (std::strcmp(arg, "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(next_int(7));
    } else if (std::strcmp(arg, "--threads") == 0) {
      config.num_threads = next_int(-1);
    } else if (std::strcmp(arg, "--max-samples") == 0) {
      config.max_samples = next_int(config.max_samples);
    }
  }
  if (config.full) {
    config.max_samples = -1;
    config.cv_repeats = 5;
    config.fast_classifiers = false;
  }
  return config;
}

}  // namespace gbx
