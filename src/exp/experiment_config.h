// Experiment scaling. The paper's full protocol (paper-size datasets,
// 5-fold CV repeated 5 times, full-size ensembles) is expensive; the
// default "scaled" mode caps dataset sizes and repeats so the whole bench
// suite runs in minutes while preserving the qualitative shapes. Pass
// --full (or set GBX_FULL=1) to any bench binary for the paper-scale run.
#ifndef GBX_EXP_EXPERIMENT_CONFIG_H_
#define GBX_EXP_EXPERIMENT_CONFIG_H_

#include <cstdint>

namespace gbx {

struct ExperimentConfig {
  bool full = false;
  /// Cap on per-dataset sample count (<= 0 = paper scale).
  int max_samples = 1200;
  int cv_folds = 5;
  /// Paper repeats 5-fold CV five times (§V-A3).
  int cv_repeats = 1;
  /// Use trimmed ensemble sizes (see MakeClassifier(kind, fast)).
  bool fast_classifiers = true;
  std::uint64_t seed = 7;
  /// Runner worker threads; -1 = hardware concurrency.
  int num_threads = -1;

  /// Parses --full / --scaled / --seed N / --threads N / --max-samples N
  /// and the GBX_FULL environment variable (--scaled wins over GBX_FULL).
  static ExperimentConfig FromArgs(int argc, char** argv);
};

/// The noise ratios evaluated throughout §V.
inline const double kNoiseRatios[] = {0.05, 0.10, 0.20, 0.30, 0.40};
inline constexpr int kNumNoiseRatios = 5;

}  // namespace gbx

#endif  // GBX_EXP_EXPERIMENT_CONFIG_H_
