#include "exp/result_io.h"

#include <fstream>
#include <sstream>

#include "data/paper_suite.h"

namespace gbx {

std::string ResultsToCsv(const std::vector<EvalResult>& results) {
  std::ostringstream out;
  out.precision(10);
  out << "dataset,noise_ratio,sampler,classifier,mean_accuracy,mean_gmean,"
         "mean_sampling_ratio,fold_accuracies\n";
  for (const EvalResult& r : results) {
    const auto& specs = PaperDatasetSpecs();
    const std::string dataset =
        r.request.dataset_index >= 0 &&
                r.request.dataset_index < static_cast<int>(specs.size())
            ? specs[r.request.dataset_index].id
            : std::to_string(r.request.dataset_index);
    out << dataset << "," << r.request.noise_ratio << ","
        << SamplerKindName(r.request.sampler) << ","
        << ClassifierKindName(r.request.classifier) << ","
        << r.mean_accuracy << "," << r.mean_gmean << ","
        << r.mean_sampling_ratio << ",";
    for (std::size_t i = 0; i < r.fold_accuracies.size(); ++i) {
      if (i > 0) out << ";";
      out << r.fold_accuracies[i];
    }
    out << "\n";
  }
  return out.str();
}

Status SaveResultsCsv(const std::vector<EvalResult>& results,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << ResultsToCsv(results);
  if (!out) return Status::Internal("write failure on " + path);
  return Status::Ok();
}

}  // namespace gbx
