// Export of experiment results to CSV so tables/figures can be re-plotted
// outside the harness (the paper's figures are matplotlib renderings of
// exactly this kind of grid).
#ifndef GBX_EXP_RESULT_IO_H_
#define GBX_EXP_RESULT_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exp/runner.h"

namespace gbx {

/// One CSV row per result: dataset id, noise ratio, sampler, classifier,
/// mean accuracy, mean G-mean, mean sampling ratio, and the per-fold
/// accuracies joined with ';'.
Status SaveResultsCsv(const std::vector<EvalResult>& results,
                      const std::string& path);

/// Serialization used by SaveResultsCsv (exposed for tests).
std::string ResultsToCsv(const std::vector<EvalResult>& results);

}  // namespace gbx

#endif  // GBX_EXP_RESULT_IO_H_
