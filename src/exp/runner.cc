#include "exp/runner.h"

#include <algorithm>

#include "core/gbabs.h"
#include "data/noise.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "sampling/srs.h"
#include "stats/descriptive.h"

namespace gbx {

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(config) {}

Dataset ExperimentRunner::LoadDataset(int dataset_index) const {
  return MakePaperDataset(dataset_index, config_.max_samples, config_.seed);
}

EvalResult ExperimentRunner::Evaluate(const EvalRequest& request) const {
  EvalResult result;
  result.request = request;

  // Deterministic per-cell stream: cells never share RNG state, so
  // EvaluateAll's scheduling cannot change results.
  const std::uint64_t cell_seed =
      config_.seed * 1000003ULL + request.dataset_index * 7919ULL +
      static_cast<std::uint64_t>(request.noise_ratio * 1000.0) * 104729ULL +
      static_cast<std::uint64_t>(request.sampler) * 31ULL +
      static_cast<std::uint64_t>(request.classifier);
  Pcg32 rng(cell_seed, /*stream=*/0x5bd1e995);

  const Dataset clean = LoadDataset(request.dataset_index);
  Dataset data = request.noise_ratio > 0.0
                     ? WithClassNoise(clean, request.noise_ratio, &rng)
                     : clean;

  const std::unique_ptr<Sampler> sampler = MakeSampler(request.sampler);
  std::vector<double> ratios;

  for (int repeat = 0; repeat < config_.cv_repeats; ++repeat) {
    const std::vector<std::vector<int>> folds =
        StratifiedKFold(data, config_.cv_folds, &rng);
    for (const std::vector<int>& test_idx : folds) {
      const std::vector<int> train_idx =
          FoldComplement(test_idx, data.size());
      const Dataset train = data.Subset(train_idx);
      const Dataset test = data.Subset(test_idx);

      Dataset sampled;
      if (request.sampler == SamplerKind::kSrs) {
        // Pin the SRS ratio to GBABS's realized ratio on this fold.
        GbabsConfig gb;
        gb.gbg.seed = (static_cast<std::uint64_t>(rng.NextU32()) << 32) |
                      rng.NextU32();
        const double ratio =
            std::clamp(RunGbabs(train, gb).sampling_ratio, 1e-3, 1.0);
        sampled = SrsSampler(ratio).Sample(train, &rng);
      } else {
        sampled = sampler->Sample(train, &rng);
      }
      // Guard degenerate folds: a usable training set needs >= 2 samples
      // and more than one class.
      bool degenerate = sampled.size() < 2;
      if (!degenerate) {
        const std::vector<int> counts = sampled.ClassCounts();
        int populated = 0;
        for (int c : counts) populated += c > 0 ? 1 : 0;
        degenerate = populated < 2;
      }
      if (degenerate) sampled = train;
      ratios.push_back(static_cast<double>(sampled.size()) /
                       std::max(1, train.size()));

      const std::unique_ptr<Classifier> clf =
          MakeClassifier(request.classifier, config_.fast_classifiers);
      clf->Fit(sampled, &rng);
      const std::vector<int> pred = clf->PredictBatch(test.x());
      result.fold_accuracies.push_back(Accuracy(test.y(), pred));
      result.fold_gmeans.push_back(
          GMean(test.y(), pred, data.num_classes()));
    }
  }

  result.mean_accuracy = Mean(result.fold_accuracies);
  result.mean_gmean = Mean(result.fold_gmeans);
  result.mean_sampling_ratio = Mean(ratios);
  return result;
}

std::vector<EvalResult> ExperimentRunner::EvaluateAll(
    const std::vector<EvalRequest>& requests) const {
  std::vector<EvalResult> results(requests.size());
  ParallelFor(static_cast<int>(requests.size()), config_.num_threads,
              [&](int i) { results[i] = Evaluate(requests[i]); });
  return results;
}

}  // namespace gbx
