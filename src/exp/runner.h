// Cross-validated sampler x classifier evaluation — the engine behind
// every accuracy/G-mean table and figure in §V. Protocol (per §V-A2/A3):
// class noise is injected once over the whole dataset, then (repeated)
// stratified 5-fold CV runs over the noisy data; testing metrics are
// measured against the (noisy) test-fold labels. SRS uses the GBABS
// sampling ratio realized on the same training fold, as the paper pins the
// two ratios together.
#ifndef GBX_EXP_RUNNER_H_
#define GBX_EXP_RUNNER_H_

#include <functional>
#include <vector>

#include "common/parallel.h"
#include "data/dataset.h"
#include "exp/experiment_config.h"
#include "ml/classifier.h"
#include "sampling/sampler.h"

namespace gbx {

struct EvalRequest {
  /// Index into PaperDatasetSpecs() (S1 = 0).
  int dataset_index = 0;
  double noise_ratio = 0.0;
  SamplerKind sampler = SamplerKind::kNone;
  ClassifierKind classifier = ClassifierKind::kDecisionTree;
};

struct EvalResult {
  EvalRequest request;
  double mean_accuracy = 0.0;
  double mean_gmean = 0.0;
  /// Mean |sampled| / |train fold| across folds.
  double mean_sampling_ratio = 1.0;
  /// Per-(repeat, fold) accuracies, flattened.
  std::vector<double> fold_accuracies;
  std::vector<double> fold_gmeans;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config);

  const ExperimentConfig& config() const { return config_; }

  /// Evaluates a single (dataset, noise, sampler, classifier) cell.
  EvalResult Evaluate(const EvalRequest& request) const;

  /// Evaluates many cells in parallel (deterministic per-cell seeds, so
  /// results are independent of scheduling).
  std::vector<EvalResult> EvaluateAll(
      const std::vector<EvalRequest>& requests) const;

  /// The (possibly size-capped) dataset for a spec index, generated with
  /// the runner's seed.
  Dataset LoadDataset(int dataset_index) const;

 private:
  ExperimentConfig config_;
};

}  // namespace gbx

#endif  // GBX_EXP_RUNNER_H_
