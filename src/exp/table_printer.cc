#include "exp/table_printer.h"

#include <cstdio>

namespace gbx {

TablePrinter::TablePrinter(std::vector<int> widths)
    : widths_(std::move(widths)) {}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths_.size() ? widths_[i] : 12;
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < width) {
      cell.append(width - cell.size(), ' ');
    }
    line += cell;
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

void TablePrinter::PrintSeparator() const {
  int total = 0;
  for (int w : widths_) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
}

std::string TablePrinter::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace gbx
