// Fixed-width table printing for the bench harnesses, so every binary
// emits rows that line up with the paper's tables.
#ifndef GBX_EXP_TABLE_PRINTER_H_
#define GBX_EXP_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace gbx {

class TablePrinter {
 public:
  /// `widths` are per-column character widths; text is left-aligned,
  /// numbers should be pre-formatted by the caller (Cell helpers below).
  explicit TablePrinter(std::vector<int> widths);

  void PrintRow(const std::vector<std::string>& cells) const;
  void PrintSeparator() const;

  /// value formatted with `digits` decimals.
  static std::string Num(double value, int digits = 4);

 private:
  std::vector<int> widths_;
};

/// Prints a "=== title ===" banner.
void PrintBanner(const std::string& title);

}  // namespace gbx

#endif  // GBX_EXP_TABLE_PRINTER_H_
