#include "index/ball_surface_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/matrix.h"
#include "index/neighbor_index.h"

namespace gbx {

BallSurfaceIndex::BallSurfaceIndex(int dims, int leaf_size)
    : dims_(dims), leaf_size_(leaf_size) {
  GBX_CHECK_GE(dims, 1);
  GBX_CHECK_GE(leaf_size, 1);
}

void BallSurfaceIndex::Insert(const double* center, double radius) {
  GBX_CHECK_GE(radius, 0.0);
  const int id = size();
  centers_.insert(centers_.end(), center, center + dims_);
  radii_.push_back(radius);
  tail_.push_back(id);
  if (static_cast<int>(tail_.size()) < kTailCap) return;

  // Binary-counter merge: fold the tail and every trailing block no
  // larger than the accumulated id set into one fresh block. Sizes then
  // stay strictly decreasing front to back, so the forest holds
  // O(log(B / kTailCap)) blocks and every ball is rebuilt O(log B)
  // times in total.
  std::vector<int> ids = std::move(tail_);
  tail_.clear();
  while (!blocks_.empty() && blocks_.back().ids.size() <= ids.size()) {
    ids.insert(ids.end(), blocks_.back().ids.begin(),
               blocks_.back().ids.end());
    blocks_.pop_back();
  }
  Block block;
  block.ids = std::move(ids);
  block.nodes.reserve(2 * block.ids.size() / leaf_size_ + 4);
  block.boxes.reserve(block.nodes.capacity() * 2 * dims_);
  block.root = BuildNode(&block, 0, static_cast<int>(block.ids.size()));
  blocks_.push_back(std::move(block));
}

int BallSurfaceIndex::BuildNode(Block* block, int begin, int end) {
  const int node_id = static_cast<int>(block->nodes.size());
  block->nodes.emplace_back();
  double max_radius = 0.0;
  for (int i = begin; i < end; ++i) {
    max_radius = std::max(max_radius, radii_[block->ids[i]]);
  }
  block->nodes[node_id].max_radius = max_radius;

  // Box + widest-dimension split, exactly the DynamicKdTree recipe: the
  // box is both the split heuristic and the pruning bound.
  const int d = dims_;
  block->boxes.resize(block->boxes.size() + 2 * static_cast<std::size_t>(d));
  double* lo = &block->boxes[static_cast<std::size_t>(node_id) * 2 * d];
  double* hi = lo + d;
  int best_dim = 0;
  double best_spread = -1.0;
  for (int j = 0; j < d; ++j) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (int i = begin; i < end; ++i) {
      const double v = Center(block->ids[i])[j];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    lo[j] = mn;
    hi[j] = mx;
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = j;
    }
  }
  // Zero spread means every center in the range is identical (duplicate
  // centers happen — distinct balls may share a center sample); the
  // range stays one (possibly oversized) leaf.
  if (end - begin <= leaf_size_ || best_spread <= 0.0) {
    block->nodes[node_id].begin = begin;
    block->nodes[node_id].end = end;
    return node_id;
  }

  const int mid = begin + (end - begin) / 2;
  std::nth_element(block->ids.begin() + begin, block->ids.begin() + mid,
                   block->ids.begin() + end, [&](int a, int b) {
                     const double va = Center(a)[best_dim];
                     const double vb = Center(b)[best_dim];
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  block->nodes[node_id].split_dim = best_dim;
  block->nodes[node_id].split_value = Center(block->ids[mid])[best_dim];
  const int left = BuildNode(block, begin, mid);
  const int right = BuildNode(block, mid, end);
  block->nodes[node_id].left = left;
  block->nodes[node_id].right = right;
  return node_id;
}

double BallSurfaceIndex::BoxMinD2(const Block& block, int node_id,
                                  const double* query) const {
  const int d = dims_;
  const double* lo = &block.boxes[static_cast<std::size_t>(node_id) * 2 * d];
  return BoxMinSquaredDistance(lo, lo + d, query, d);
}

void BallSurfaceIndex::SearchBlock(const Block& block, int node_id,
                                   const double* query, double* best) const {
  const Node& node = block.nodes[node_id];
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int id = block.ids[i];
      // The flat gap scan's exact arithmetic.
      const double gap =
          EuclideanDistance(query, Center(id), dims_) - radii_[id];
      *best = std::min(*best, gap);
    }
    return;
  }
  // sqrt(BoxMinD2) − max_radius lower-bounds every gap in the subtree
  // fp-exactly (see the header), so skipping at bound >= best cannot
  // change the min; the lower-bound child goes first to shrink best
  // before the sibling is tested.
  int children[2] = {node.left, node.right};
  double bounds[2];
  for (int s = 0; s < 2; ++s) {
    bounds[s] = std::sqrt(BoxMinD2(block, children[s], query)) -
                block.nodes[children[s]].max_radius;
  }
  if (bounds[1] < bounds[0]) {
    std::swap(children[0], children[1]);
    std::swap(bounds[0], bounds[1]);
  }
  for (int s = 0; s < 2; ++s) {
    if (bounds[s] >= *best) continue;
    SearchBlock(block, children[s], query, best);
  }
}

double BallSurfaceIndex::MinSurfaceGap(const double* query) const {
  double best = std::numeric_limits<double>::infinity();
  for (const int id : tail_) {
    const double gap =
        EuclideanDistance(query, Center(id), dims_) - radii_[id];
    best = std::min(best, gap);
  }
  // Largest block first: its min is likeliest to set a tight best for
  // the smaller blocks' pruning.
  for (const Block& block : blocks_) {
    if (block.root < 0) continue;
    SearchBlock(block, block.root, query, &best);
  }
  return best;
}

}  // namespace gbx
