// Insert-capable index over granular-ball surfaces for RD-GBG's
// conflict-radius pass (Eq. 4): r_conf(c) = min_i(dist(c, center_i) −
// radius_i) over every ball generated so far. The granulation creates
// balls one at a time and queries the gap for every candidate, so the
// flat scan is O(B) per candidate and O(B²) per run; this index answers
// the same min exactly in sublinear time while accepting interleaved
// Insert calls.
//
// Structure: a logarithmic forest of static KD blocks (Bentley's binary
// counter). Inserts land in a small flat tail; once the tail fills, it
// is merged with every block of equal-or-smaller size into one new
// block, so the forest holds O(log B) blocks of geometrically growing
// size and each ball is rebuilt O(log B) times — O(B log² B) total build
// work, against the flat scan's O(B²) query work. A query scans the tail
// exhaustively and walks each block best-bound-first with per-subtree
// pruning.
//
// Exactness: each block node keeps the bounding box of its centers and
// the maximum radius in its subtree, giving the lower bound
//     sqrt(BoxMinD2) − max_radius  <=  dist(q, c_i) − r_i
// for every ball i in the subtree. The bound is floating-point-exact
// with respect to the flat scan's arithmetic (BoxMinD2 dominates each
// center's SquaredDistance term by term in the same summation order;
// sqrt and the subtraction are monotone — the PR-4 KNearestSurface
// argument), and leaves evaluate the identical
// EuclideanDistance(q, c) − r expression, so MinSurfaceGap returns the
// bit-identical double the exhaustive scan produces. min() is
// order-independent over doubles, so pruning at `bound >= best` — which
// only skips balls that cannot lower the min — never changes the result.
// Property-tested against the flat scan under interleaved Insert/query
// (tests/ball_surface_index_test.cc).
//
// Queries never mutate the index; Insert must be externally serialized
// against queries (RD-GBG alternates them from its sequential candidate
// loop).
#ifndef GBX_INDEX_BALL_SURFACE_INDEX_H_
#define GBX_INDEX_BALL_SURFACE_INDEX_H_

#include <vector>

namespace gbx {

class BallSurfaceIndex {
 public:
  /// `leaf_size` is the maximum number of balls in a block leaf bucket.
  explicit BallSurfaceIndex(int dims, int leaf_size = 16);

  /// Adds a ball (center has `dims` components, copied; radius >= 0).
  void Insert(const double* center, double radius);

  /// min_i(EuclideanDistance(query, center_i) − radius_i) over every
  /// inserted ball, bit-identical to the exhaustive scan; +infinity when
  /// empty.
  double MinSurfaceGap(const double* query) const;

  int size() const { return static_cast<int>(radii_.size()); }
  int dims() const { return dims_; }

  /// Introspection for tests: balls waiting in the flat tail, and the
  /// number of built blocks.
  int tail_size() const { return static_cast<int>(tail_.size()); }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }

 private:
  struct Node {
    int left = -1;  // child node ids; -1 for leaf
    int right = -1;
    int split_dim = -1;
    double split_value = 0.0;
    int begin = 0;  // leaf: range into Block::ids
    int end = 0;
    double max_radius = 0.0;  // largest ball radius in the subtree
  };

  // One static KD tree over a subset of the inserted balls. Nodes and
  // boxes are laid out exactly like DynamicKdTree's (per-node bounding
  // box at node_id * 2 * dims: lows then highs).
  struct Block {
    std::vector<int> ids;
    std::vector<Node> nodes;
    std::vector<double> boxes;
    int root = -1;
  };

  const double* Center(int id) const { return &centers_[id * dims_]; }
  int BuildNode(Block* block, int begin, int end);
  double BoxMinD2(const Block& block, int node_id, const double* query) const;
  void SearchBlock(const Block& block, int node_id, const double* query,
                   double* best) const;

  int dims_;
  int leaf_size_;
  std::vector<double> centers_;  // row-major, size() rows
  std::vector<double> radii_;
  std::vector<int> tail_;       // inserted, not yet in any block
  std::vector<Block> blocks_;   // sizes strictly decrease front to back

  /// Tail capacity before a merge; small enough that the exhaustive tail
  /// scan stays a footnote, large enough that blocks are worth building.
  static constexpr int kTailCap = 32;
};

}  // namespace gbx

#endif  // GBX_INDEX_BALL_SURFACE_INDEX_H_
