#include "index/ball_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gbx {

namespace {

bool WorseNeighbor(const Neighbor& a, const Neighbor& b) { return a < b; }
bool WorseSquared(const SquaredNeighbor& a, const SquaredNeighbor& b) {
  return a < b;
}

}  // namespace

BallTree::BallTree(const Matrix* points, int leaf_size)
    : BallTree(points, nullptr, leaf_size) {}

BallTree::BallTree(const Matrix* points, const double* point_weights,
                   int leaf_size)
    : points_(points), weights_(point_weights), leaf_size_(leaf_size) {
  GBX_CHECK(points != nullptr);
  GBX_CHECK_GE(leaf_size, 1);
  const int n = points_->rows();
  alive_.assign(n, 1);
  point_leaf_.assign(n, -1);
  order_.resize(n);
  for (int i = 0; i < n; ++i) order_[i] = i;
  live_ = n;
  built_size_ = n;
  if (n > 0) {
    nodes_.reserve(2 * order_.size() / leaf_size_ + 4);
    centroids_.reserve(nodes_.capacity() * points_->cols());
    root_ = Build(0, n, -1);
  }
}

int BallTree::Build(int begin, int end, int parent) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].parent = parent;
  nodes_[node_id].live = end - begin;
  if (weights_ != nullptr) {
    double max_w = 0.0;
    for (int i = begin; i < end; ++i) {
      max_w = std::max(max_w, weights_[order_[i]]);
    }
    nodes_[node_id].max_weight = max_w;
  }

  // Centroid: the per-dimension mean, summed in order_ sequence so the
  // structure is deterministic. The covering radius is the largest
  // *computed* centroid distance — the quantity the pruning bound must
  // dominate.
  const int d = points_->cols();
  const int count = end - begin;
  centroids_.resize(centroids_.size() + d, 0.0);
  double* centroid = &centroids_[static_cast<std::size_t>(node_id) * d];
  for (int i = begin; i < end; ++i) {
    const double* row = points_->Row(order_[i]);
    for (int j = 0; j < d; ++j) centroid[j] += row[j];
  }
  for (int j = 0; j < d; ++j) centroid[j] /= count;
  double radius = 0.0;
  for (int i = begin; i < end; ++i) {
    radius = std::max(
        radius, EuclideanDistance(centroid, points_->Row(order_[i]), d));
  }
  nodes_[node_id].radius = radius;

  // The widest spread picks the partition axis — same heuristic as the
  // KD-tree; only the pruning geometry differs.
  int best_dim = 0;
  double best_spread = -1.0;
  for (int j = 0; j < d; ++j) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (int i = begin; i < end; ++i) {
      const double v = points_->At(order_[i], j);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = j;
    }
  }
  // A zero best spread means every point in the range is identical; the
  // range stays one (possibly oversized) leaf.
  if (count <= leaf_size_ || best_spread <= 0.0) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    for (int i = begin; i < end; ++i) point_leaf_[order_[i]] = node_id;
    return node_id;
  }

  const int mid = begin + count / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     const double va = points_->At(a, best_dim);
                     const double vb = points_->At(b, best_dim);
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  nodes_[node_id].split_dim = best_dim;
  const int left = Build(begin, mid, node_id);
  const int right = Build(mid, end, node_id);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double BallTree::NodeMinDist(int node_id, const double* query) const {
  const int d = points_->cols();
  const double dc = EuclideanDistance(query, Centroid(node_id), d);
  const Node& node = nodes_[node_id];
  // Triangle inequality: every member distance >= dc − radius. Both
  // operands are computed values with relative error O(d·eps); the
  // kFpSlack deflation (see the header) turns the bound into a certain
  // lower bound on the members' *computed* distances.
  const double lb = (dc - node.radius) - kFpSlack * (dc + node.radius);
  return lb > 0.0 ? lb : 0.0;
}

double BallTree::SquaredLowerBound(double min_dist) {
  // Squaring re-introduces up to ~4 ulps of overshoot relative to the
  // computed squared distances; one more deflation absorbs it.
  return min_dist * min_dist * (1.0 - kFpSlack);
}

bool BallTree::alive(int i) const {
  GBX_CHECK(i >= 0 && i < points_->rows());
  return alive_[i] != 0;
}

void BallTree::Remove(int i) {
  GBX_CHECK(i >= 0 && i < points_->rows());
  GBX_CHECK_MSG(alive_[i] != 0, "BallTree::Remove: point already removed");
  alive_[i] = 0;
  --live_;
  ++tombstones_;
  for (int nid = point_leaf_[i]; nid >= 0; nid = nodes_[nid].parent) {
    --nodes_[nid].live;
  }
  // Amortized compaction, identical to DynamicKdTree: once the majority
  // of the indexed points are tombstones, every query is paying for
  // points that no longer exist.
  if (2 * tombstones_ > built_size_) Rebuild();
}

void BallTree::Rebuild() {
  order_.clear();
  const int n = points_->rows();
  for (int i = 0; i < n; ++i) {
    if (alive_[i]) order_.push_back(i);
  }
  built_size_ = static_cast<int>(order_.size());
  tombstones_ = 0;
  ++rebuilds_;
  nodes_.clear();
  centroids_.clear();
  root_ = built_size_ > 0 ? Build(0, built_size_, -1) : -1;
}

void BallTree::SearchKnn(int node_id, const double* query, int k,
                         std::vector<Neighbor>* heap) const {
  // Neighbor::distance holds the squared distance during the search —
  // the (dist2, index) order every index ranks by; KNearest applies the
  // sqrt once to the k results.
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx]) continue;
      const Neighbor cand{idx, SquaredDistance(query, points_->Row(idx), d)};
      OfferToBoundedHeap(heap, cand, k);
    }
    return;
  }
  // Lower-bound child first, so the heap tightens before the sibling's
  // bound is tested; pruning strictly above the worst retained dist2
  // cannot drop a candidate (the deflated bound never exceeds any
  // member's computed dist2).
  int children[2] = {node.left, node.right};
  double bounds[2];
  for (int s = 0; s < 2; ++s) bounds[s] = NodeMinDist(children[s], query);
  if (bounds[1] < bounds[0]) {
    std::swap(children[0], children[1]);
    std::swap(bounds[0], bounds[1]);
  }
  for (int s = 0; s < 2; ++s) {
    const int child = children[s];
    if (nodes_[child].live == 0) continue;
    if (static_cast<int>(heap->size()) >= k &&
        SquaredLowerBound(bounds[s]) > heap->front().distance) {
      continue;
    }
    SearchKnn(child, query, k, heap);
  }
}

std::vector<Neighbor> BallTree::KNearest(const double* query, int k) const {
  GBX_CHECK_GE(k, 0);
  k = std::min(k, live_);
  if (k == 0 || root_ < 0) return {};
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  SearchKnn(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseNeighbor);
  for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  return heap;
}

void BallTree::SearchKnnSquared(int node_id, const double* query, int k,
                                int exclude,
                                std::vector<SquaredNeighbor>* heap) const {
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx] || idx == exclude) continue;
      const SquaredNeighbor cand{SquaredDistance(query, points_->Row(idx), d),
                                 idx};
      OfferToBoundedHeap(heap, cand, k);
    }
    return;
  }
  int children[2] = {node.left, node.right};
  double bounds[2];
  for (int s = 0; s < 2; ++s) bounds[s] = NodeMinDist(children[s], query);
  if (bounds[1] < bounds[0]) {
    std::swap(children[0], children[1]);
    std::swap(bounds[0], bounds[1]);
  }
  for (int s = 0; s < 2; ++s) {
    const int child = children[s];
    if (nodes_[child].live == 0) continue;
    if (static_cast<int>(heap->size()) >= k &&
        SquaredLowerBound(bounds[s]) > heap->front().dist2) {
      continue;
    }
    SearchKnnSquared(child, query, k, exclude, heap);
  }
}

std::vector<SquaredNeighbor> BallTree::KNearestSquared(const double* query,
                                                       int k,
                                                       int exclude) const {
  GBX_CHECK_GE(k, 0);
  int eligible = live_;
  if (exclude >= 0 && exclude < points_->rows() && alive_[exclude]) {
    --eligible;
  }
  k = std::min(k, eligible);
  if (k <= 0 || root_ < 0) return {};
  std::vector<SquaredNeighbor> heap;
  heap.reserve(k + 1);
  SearchKnnSquared(root_, query, k, exclude, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseSquared);
  return heap;
}

void BallTree::SearchRadius(int node_id, const double* query, double r2,
                            std::vector<Neighbor>* out) const {
  // Inclusion in squared space (d2 <= r2), exactly as BruteForceIndex
  // decides it; the sqrt happens once per hit in RadiusSearch.
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx]) continue;
      const double d2 = SquaredDistance(query, points_->Row(idx), d);
      if (d2 <= r2) out->push_back(Neighbor{idx, d2});
    }
    return;
  }
  for (const int child : {node.left, node.right}) {
    if (nodes_[child].live == 0) continue;
    if (SquaredLowerBound(NodeMinDist(child, query)) > r2) continue;
    SearchRadius(child, query, r2, out);
  }
}

std::vector<Neighbor> BallTree::RadiusSearch(const double* query,
                                             double radius) const {
  GBX_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> out;
  if (root_ < 0 || live_ == 0) return out;
  SearchRadius(root_, query, radius * radius, &out);
  for (Neighbor& nb : out) nb.distance = std::sqrt(nb.distance);
  std::sort(out.begin(), out.end());
  return out;
}

void BallTree::SearchSurface(int node_id, const double* query, int k,
                             std::vector<Neighbor>* heap) const {
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx]) continue;
      // The exact arithmetic of the exhaustive scan: EuclideanDistance,
      // then the containment-or-not score.
      const double dist =
          std::sqrt(SquaredDistance(query, points_->Row(idx), d));
      const double w = weights_[idx];
      const Neighbor cand{idx, dist <= w ? dist - w : dist};
      OfferToBoundedHeap(heap, cand, k);
    }
    return;
  }
  // Every score in a subtree is >= the deflated triangle bound minus the
  // subtree's max weight (subtraction is monotone, weights are
  // non-negative), so pruning strictly above the current worst retained
  // score never drops a candidate — equal bounds still visit, preserving
  // index ties.
  int children[2] = {node.left, node.right};
  double bounds[2];
  for (int s = 0; s < 2; ++s) {
    bounds[s] = NodeMinDist(children[s], query) -
                nodes_[children[s]].max_weight;
  }
  if (bounds[1] < bounds[0]) {
    std::swap(children[0], children[1]);
    std::swap(bounds[0], bounds[1]);
  }
  for (int s = 0; s < 2; ++s) {
    const int child = children[s];
    if (nodes_[child].live == 0) continue;
    if (static_cast<int>(heap->size()) >= k &&
        bounds[s] > heap->front().distance) {
      continue;
    }
    SearchSurface(child, query, k, heap);
  }
}

std::vector<Neighbor> BallTree::KNearestSurface(const double* query,
                                                int k) const {
  GBX_CHECK_MSG(weights_ != nullptr,
                "BallTree::KNearestSurface requires point weights");
  GBX_CHECK_GE(k, 0);
  k = std::min(k, live_);
  if (k == 0 || root_ < 0) return {};
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  SearchSurface(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseNeighbor);
  return heap;
}

}  // namespace gbx
