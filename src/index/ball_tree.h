// Metric ball-tree with cheap lazy deletions — the moderate-dimension
// counterpart to DynamicKdTree. Nodes are metric balls (centroid +
// covering radius) instead of axis-aligned boxes, and queries prune
// subtrees with the triangle inequality:
//     dist(q, x) >= dist(q, centroid) − node_radius   for every member x.
// Axis-box pruning collapses under distance concentration because a
// high-dimensional box's min-distance is realized at a corner the data
// never occupies; a covering ball follows the points' actual spread, so
// the ball-tree keeps pruning where the KD-tree has already degraded to
// a linear scan — that is what raises the IndexStrategy crossover
// dimension (see index_strategy.cc for the measured surface).
//
// Deletions mirror DynamicKdTree exactly: Remove(i) tombstones a point
// in O(depth) via per-node live counters, and the tree rebuilds itself
// over the survivors once more than half of the indexed points are
// tombstoned. Centroids/radii are not recomputed on removal — they only
// ever overestimate, so pruning stays valid.
//
// Exactness under floating point: computed distances carry relative
// rounding error O(dims · eps), so the raw triangle bound — computed
// from the fp centroid distance and the fp covering radius — could
// exceed a member's fp distance by a few ulps and wrongly prune it. The
// bound is therefore deflated by kFpSlack = 1e-9, orders of magnitude
// above the true error for any dimensionality this library sees (error
// <= ~(dims+2)·2⁻⁵³ ≈ 1e-13 even at dims = 1e3) and orders of magnitude
// below any gap that affects pruning power. The deflated bound is a
// certain lower bound on every member's *computed* distance, so pruning
// only ever skips subtrees that cannot contribute, and every query
// family returns results bit-identical to the brute-force scan — the
// same contract DynamicKdTree's fp-exact box bound provides, enforced
// by the oracle battery in tests/ball_tree_test.cc.
//
// Queries never mutate the tree and are safe to issue concurrently;
// Remove must be externally serialized against queries.
#ifndef GBX_INDEX_BALL_TREE_H_
#define GBX_INDEX_BALL_TREE_H_

#include <vector>

#include "index/neighbor_index.h"

namespace gbx {

class BallTree : public NeighborIndex {
 public:
  /// `points` must outlive the tree and must not be mutated while the
  /// tree is live. All rows start alive. `leaf_size` is the maximum
  /// number of points in a leaf bucket.
  explicit BallTree(const Matrix* points, int leaf_size = 16);

  /// As above, plus a non-negative weight per point (one per row,
  /// `point_weights` must outlive the tree), enabling KNearestSurface.
  /// GB-kNN passes ball radii so a query ranks balls by surface
  /// distance.
  BallTree(const Matrix* points, const double* point_weights,
           int leaf_size = 16);

  /// Tombstones point `i` (must be alive). Triggers an automatic rebuild
  /// over the survivors when more than half of the currently indexed
  /// points are tombstoned.
  void Remove(int i);

  bool alive(int i) const;

  /// Number of live (non-tombstoned) points.
  int size() const override { return live_; }
  int dims() const override { return points_->cols(); }

  /// Rows in the backing matrix, including removed ones.
  int total_points() const { return points_->rows(); }
  /// Points in the current tree structure (live + tombstones); resets to
  /// size() on rebuild.
  int indexed_points() const { return built_size_; }
  /// Tombstones in the current structure (cleared by rebuild).
  int tombstones() const { return tombstones_; }
  /// Automatic rebuilds performed so far.
  int rebuilds() const { return rebuilds_; }

  /// The k nearest live points, ranked by (squared distance, index) —
  /// BruteForceIndex's order — with Euclidean distances in the result.
  /// Like every index: k larger than size() returns all live points.
  std::vector<Neighbor> KNearest(const double* query, int k) const override;

  /// All live points with squared distance <= radius², sorted by
  /// (distance, index) — BruteForceIndex's inclusion rule and order.
  std::vector<Neighbor> RadiusSearch(const double* query,
                                     double radius) const override;

  /// The k nearest live points by (squared distance, index), excluding
  /// point id `exclude` (pass -1 to exclude nothing) — the exact total
  /// order RD-GBG's neighbor stream consumes. k larger than the number
  /// of eligible points returns all of them.
  std::vector<SquaredNeighbor> KNearestSquared(const double* query, int k,
                                               int exclude = -1) const;

  /// Requires weights (see the weighted constructor): the k live points
  /// minimizing (score, index) where
  ///     score = dist - w_i   if dist <= w_i   (query inside the ball)
  ///           = dist         otherwise,
  /// i.e. GB-kNN's granular-ball surface distance when w is the ball
  /// radius. Neighbor::distance carries the score. Subtrees are pruned
  /// with the deflated triangle bound minus the subtree's maximum
  /// weight; results are bit-identical to the exhaustive scan.
  std::vector<Neighbor> KNearestSurface(const double* query, int k) const;

 private:
  struct Node {
    int left = -1;  // child node ids; -1 for leaf
    int right = -1;
    int parent = -1;
    int split_dim = -1;  // build-time partition axis; -1 for leaf
    int begin = 0;       // leaf: range into order_
    int end = 0;
    int live = 0;  // live points in this subtree; 0 prunes it entirely
    // Covering radius: max computed distance from the centroid to a
    // live-at-build member. Overestimates after removals — still valid.
    double radius = 0.0;
    // Largest weight of a live-at-build point in the subtree (0 without
    // weights).
    double max_weight = 0.0;
  };

  int Build(int begin, int end, int parent);
  void Rebuild();

  const double* Centroid(int node_id) const {
    return &centroids_[static_cast<std::size_t>(node_id) * points_->cols()];
  }

  /// Deflated triangle bound: a certain lower bound on the computed
  /// Euclidean distance from `query` to every point indexed under the
  /// node (0 when the query is inside the covering ball).
  double NodeMinDist(int node_id, const double* query) const;

  /// The bound above, squared and deflated once more, safe to compare
  /// against computed *squared* distances.
  static double SquaredLowerBound(double min_dist);

  void SearchKnn(int node_id, const double* query, int k,
                 std::vector<Neighbor>* heap) const;
  void SearchKnnSquared(int node_id, const double* query, int k, int exclude,
                        std::vector<SquaredNeighbor>* heap) const;
  void SearchRadius(int node_id, const double* query, double r2,
                    std::vector<Neighbor>* out) const;
  void SearchSurface(int node_id, const double* query, int k,
                     std::vector<Neighbor>* heap) const;

  const Matrix* points_;
  const double* weights_ = nullptr;  // per-point, for KNearestSurface
  int leaf_size_;
  std::vector<char> alive_;
  std::vector<int> order_;       // live-at-build point ids, leaves own ranges
  std::vector<int> point_leaf_;  // point id -> leaf node id (-1 if removed
                                 // before the last rebuild)
  std::vector<Node> nodes_;
  std::vector<double> centroids_;  // node_id * dims
  int root_ = -1;
  int live_ = 0;
  int built_size_ = 0;
  int tombstones_ = 0;
  int rebuilds_ = 0;

  static constexpr double kFpSlack = 1e-9;
};

}  // namespace gbx

#endif  // GBX_INDEX_BALL_TREE_H_
