#include "index/brute_force.h"

#include <algorithm>
#include <cmath>

namespace gbx {

BruteForceIndex::BruteForceIndex(const Matrix* points) : points_(points) {
  GBX_CHECK(points != nullptr);
}

std::vector<Neighbor> BruteForceIndex::KNearest(const double* query,
                                                int k) const {
  GBX_CHECK_GE(k, 0);
  const int n = points_->rows();
  const int d = points_->cols();
  k = std::min(k, n);
  if (k == 0) return {};

  // Max-heap of the current best k (by squared distance); heap top is the
  // worst retained candidate.
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  for (int i = 0; i < n; ++i) {
    const double d2 = SquaredDistance(query, points_->Row(i), d);
    OfferToBoundedHeap(&heap, Neighbor{i, d2}, k);
  }
  std::sort_heap(heap.begin(), heap.end(),
                 [](const Neighbor& a, const Neighbor& b) { return a < b; });
  for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  return heap;
}

std::vector<Neighbor> BruteForceIndex::RadiusSearch(const double* query,
                                                    double radius) const {
  GBX_CHECK_GE(radius, 0.0);
  const int n = points_->rows();
  const int d = points_->cols();
  const double r2 = radius * radius;
  std::vector<Neighbor> out;
  for (int i = 0; i < n; ++i) {
    const double d2 = SquaredDistance(query, points_->Row(i), d);
    if (d2 <= r2) out.push_back(Neighbor{i, std::sqrt(d2)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gbx
