// Exhaustive-scan neighbor index: O(n·d) per query, no preprocessing.
// The reference implementation that the KD-tree is property-tested against,
// and the faster choice for small n or very high d.
#ifndef GBX_INDEX_BRUTE_FORCE_H_
#define GBX_INDEX_BRUTE_FORCE_H_

#include <vector>

#include "index/neighbor_index.h"

namespace gbx {

class BruteForceIndex : public NeighborIndex {
 public:
  /// `points` must outlive the index.
  explicit BruteForceIndex(const Matrix* points);

  std::vector<Neighbor> KNearest(const double* query, int k) const override;
  std::vector<Neighbor> RadiusSearch(const double* query,
                                     double radius) const override;

  int size() const override { return points_->rows(); }
  int dims() const override { return points_->cols(); }

 private:
  const Matrix* points_;
};

}  // namespace gbx

#endif  // GBX_INDEX_BRUTE_FORCE_H_
