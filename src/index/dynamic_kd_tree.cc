#include "index/dynamic_kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gbx {

namespace {

bool WorseNeighbor(const Neighbor& a, const Neighbor& b) { return a < b; }
bool WorseSquared(const SquaredNeighbor& a, const SquaredNeighbor& b) {
  return a < b;
}

}  // namespace

DynamicKdTree::DynamicKdTree(const Matrix* points, int leaf_size)
    : DynamicKdTree(points, nullptr, leaf_size) {}

DynamicKdTree::DynamicKdTree(const Matrix* points,
                             const double* point_weights, int leaf_size)
    : points_(points), weights_(point_weights), leaf_size_(leaf_size) {
  GBX_CHECK(points != nullptr);
  GBX_CHECK_GE(leaf_size, 1);
  const int n = points_->rows();
  alive_.assign(n, 1);
  point_leaf_.assign(n, -1);
  order_.resize(n);
  for (int i = 0; i < n; ++i) order_[i] = i;
  live_ = n;
  built_size_ = n;
  if (n > 0) {
    nodes_.reserve(2 * order_.size() / leaf_size_ + 4);
    boxes_.reserve(nodes_.capacity() * 2 * points_->cols());
    root_ = Build(0, n, -1);
  }
}

int DynamicKdTree::Build(int begin, int end, int parent) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].parent = parent;
  nodes_[node_id].live = end - begin;
  if (weights_ != nullptr) {
    double max_w = 0.0;
    for (int i = begin; i < end; ++i) {
      max_w = std::max(max_w, weights_[order_[i]]);
    }
    nodes_[node_id].max_weight = max_w;
  }

  // The bounding box over this range doubles as the split heuristic: the
  // widest dimension is the split dimension (round-robin is pointless
  // once real spreads are known), and queries prune on the smallest
  // distance to the box — far tighter than the split plane alone at
  // medium dimensionality.
  const int d = points_->cols();
  boxes_.resize(boxes_.size() + 2 * static_cast<std::size_t>(d));
  double* lo = &boxes_[static_cast<std::size_t>(node_id) * 2 * d];
  double* hi = lo + d;
  int best_dim = 0;
  double best_spread = -1.0;
  for (int j = 0; j < d; ++j) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (int i = begin; i < end; ++i) {
      const double v = points_->At(order_[i], j);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    lo[j] = mn;
    hi[j] = mx;
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = j;
    }
  }
  // A zero best spread means every point in the range is identical; the
  // range stays one (possibly oversized) leaf.
  if (end - begin <= leaf_size_ || best_spread <= 0.0) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    for (int i = begin; i < end; ++i) point_leaf_[order_[i]] = node_id;
    return node_id;
  }

  const int mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     const double va = points_->At(a, best_dim);
                     const double vb = points_->At(b, best_dim);
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  nodes_[node_id].split_dim = best_dim;
  nodes_[node_id].split_value = points_->At(order_[mid], best_dim);
  const int left = Build(begin, mid, node_id);
  const int right = Build(mid, end, node_id);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DynamicKdTree::BoxMinD2(int node_id, const double* query) const {
  const int d = points_->cols();
  const double* lo = &boxes_[static_cast<std::size_t>(node_id) * 2 * d];
  const double* hi = lo + d;
  double s = 0.0;
  for (int j = 0; j < d; ++j) {
    double diff = 0.0;
    if (query[j] < lo[j]) {
      diff = lo[j] - query[j];
    } else if (query[j] > hi[j]) {
      diff = query[j] - hi[j];
    }
    s += diff * diff;
  }
  return s;
}

bool DynamicKdTree::alive(int i) const {
  GBX_CHECK(i >= 0 && i < points_->rows());
  return alive_[i] != 0;
}

void DynamicKdTree::Remove(int i) {
  GBX_CHECK(i >= 0 && i < points_->rows());
  GBX_CHECK_MSG(alive_[i] != 0,
                "DynamicKdTree::Remove: point already removed");
  alive_[i] = 0;
  --live_;
  ++tombstones_;
  for (int nid = point_leaf_[i]; nid >= 0; nid = nodes_[nid].parent) {
    --nodes_[nid].live;
  }
  // Amortized compaction: once the majority of the indexed points are
  // tombstones, the structure (and every query walking past them) is
  // paying for points that no longer exist.
  if (2 * tombstones_ > built_size_) Rebuild();
}

void DynamicKdTree::Rebuild() {
  order_.clear();
  const int n = points_->rows();
  for (int i = 0; i < n; ++i) {
    if (alive_[i]) order_.push_back(i);
  }
  built_size_ = static_cast<int>(order_.size());
  tombstones_ = 0;
  ++rebuilds_;
  nodes_.clear();
  boxes_.clear();
  root_ = built_size_ > 0 ? Build(0, built_size_, -1) : -1;
}

void DynamicKdTree::SearchKnn(int node_id, const double* query, int k,
                              std::vector<Neighbor>* heap) const {
  // Neighbor::distance holds the squared distance during the search —
  // the (dist2, index) order BruteForceIndex and the static KdTree rank
  // by (sqrt can merge distinct squared distances into ties, so ranking
  // after the sqrt would tie-break differently); KNearest applies the
  // sqrt once to the k results.
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx]) continue;
      const Neighbor cand{idx, SquaredDistance(query, points_->Row(idx), d)};
      OfferToBoundedHeap(heap, cand, k);
    }
    return;
  }
  const double diff = query[node.split_dim] - node.split_value;
  const int near = diff <= 0.0 ? node.left : node.right;
  const int far = diff <= 0.0 ? node.right : node.left;
  for (const int child : {near, far}) {
    if (nodes_[child].live == 0) continue;
    // Exact in squared space: BoxMinD2 never exceeds any member's dist2
    // (term-by-term domination in the same summation order), so pruning
    // strictly above the worst retained dist2 cannot drop a candidate.
    if (static_cast<int>(heap->size()) >= k &&
        BoxMinD2(child, query) > heap->front().distance) {
      continue;
    }
    SearchKnn(child, query, k, heap);
  }
}

std::vector<Neighbor> DynamicKdTree::KNearest(const double* query,
                                              int k) const {
  GBX_CHECK_GE(k, 0);
  k = std::min(k, live_);
  if (k == 0 || root_ < 0) return {};
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  SearchKnn(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseNeighbor);
  for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  return heap;
}

void DynamicKdTree::SearchKnnSquared(
    int node_id, const double* query, int k, int exclude,
    std::vector<SquaredNeighbor>* heap) const {
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx] || idx == exclude) continue;
      const SquaredNeighbor cand{SquaredDistance(query, points_->Row(idx), d),
                                 idx};
      OfferToBoundedHeap(heap, cand, k);
    }
    return;
  }
  const double diff = query[node.split_dim] - node.split_value;
  const int near = diff <= 0.0 ? node.left : node.right;
  const int far = diff <= 0.0 ? node.right : node.left;
  for (const int child : {near, far}) {
    if (nodes_[child].live == 0) continue;
    // Squared space compares exactly: every point in the child has
    // dist2 >= the box distance, so pruning at "box > worst dist2" can
    // never drop an eligible candidate (an equal dist2 with a smaller
    // index still visits).
    if (static_cast<int>(heap->size()) >= k &&
        BoxMinD2(child, query) > heap->front().dist2) {
      continue;
    }
    SearchKnnSquared(child, query, k, exclude, heap);
  }
}

std::vector<SquaredNeighbor> DynamicKdTree::KNearestSquared(
    const double* query, int k, int exclude) const {
  GBX_CHECK_GE(k, 0);
  int eligible = live_;
  if (exclude >= 0 && exclude < points_->rows() && alive_[exclude]) {
    --eligible;
  }
  k = std::min(k, eligible);
  if (k <= 0 || root_ < 0) return {};
  std::vector<SquaredNeighbor> heap;
  heap.reserve(k + 1);
  SearchKnnSquared(root_, query, k, exclude, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseSquared);
  return heap;
}

void DynamicKdTree::SearchRadius(int node_id, const double* query, double r2,
                                 std::vector<Neighbor>* out) const {
  // Inclusion in squared space (d2 <= r2), exactly as BruteForceIndex
  // decides it; the sqrt happens once per hit in RadiusSearch. Pruning
  // is exact for the same reason as SearchKnn.
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx]) continue;
      const double d2 = SquaredDistance(query, points_->Row(idx), d);
      if (d2 <= r2) out->push_back(Neighbor{idx, d2});
    }
    return;
  }
  for (const int child : {node.left, node.right}) {
    if (nodes_[child].live == 0) continue;
    if (BoxMinD2(child, query) > r2) continue;
    SearchRadius(child, query, r2, out);
  }
}

void DynamicKdTree::SearchSurface(int node_id, const double* query, int k,
                                  std::vector<Neighbor>* heap) const {
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      if (!alive_[idx]) continue;
      // The exact arithmetic of the exhaustive scan: EuclideanDistance,
      // then the containment-or-not score.
      const double dist =
          std::sqrt(SquaredDistance(query, points_->Row(idx), d));
      const double w = weights_[idx];
      const Neighbor cand{idx, dist <= w ? dist - w : dist};
      OfferToBoundedHeap(heap, cand, k);
    }
    return;
  }
  // Every score in a subtree is >= sqrt(BoxMinD2) - max_weight, exactly
  // (box distance dominates each point's squared distance term by term
  // in the same summation order; sqrt and subtraction are monotone), so
  // pruning strictly above the current worst retained score never drops
  // a candidate — equal bounds still visit, preserving index ties.
  // Descend the lower-bound side first to tighten the heap early.
  int children[2] = {node.left, node.right};
  double bounds[2];
  for (int s = 0; s < 2; ++s) {
    bounds[s] = std::sqrt(BoxMinD2(children[s], query)) -
                nodes_[children[s]].max_weight;
  }
  if (bounds[1] < bounds[0]) {
    std::swap(children[0], children[1]);
    std::swap(bounds[0], bounds[1]);
  }
  for (int s = 0; s < 2; ++s) {
    const int child = children[s];
    if (nodes_[child].live == 0) continue;
    if (static_cast<int>(heap->size()) >= k &&
        bounds[s] > heap->front().distance) {
      continue;
    }
    SearchSurface(child, query, k, heap);
  }
}

std::vector<Neighbor> DynamicKdTree::KNearestSurface(const double* query,
                                                     int k) const {
  GBX_CHECK_MSG(weights_ != nullptr,
                "DynamicKdTree::KNearestSurface requires point weights");
  GBX_CHECK_GE(k, 0);
  k = std::min(k, live_);
  if (k == 0 || root_ < 0) return {};
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  SearchSurface(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseNeighbor);
  return heap;
}

std::vector<Neighbor> DynamicKdTree::RadiusSearch(const double* query,
                                                  double radius) const {
  GBX_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> out;
  if (root_ < 0 || live_ == 0) return out;
  SearchRadius(root_, query, radius * radius, &out);
  for (Neighbor& nb : out) nb.distance = std::sqrt(nb.distance);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gbx
