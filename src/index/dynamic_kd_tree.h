// KD-tree with cheap lazy deletions: Remove(i) tombstones a point in
// O(depth) (per-node live counters let queries prune dead subtrees), and
// the structure rebuilds itself over the survivors once more than half of
// the indexed points are tombstoned, so a full build-then-drain cycle —
// RD-GBG's granulation loop, which queries nearest neighbors from a
// *shrinking* undivided set — costs O(n log n) amortized instead of a
// fresh O(n) scan per candidate.
//
// Exact, like the static KdTree: property-tested against a live-filtered
// brute-force oracle (tests/index_dynamic_test.cc). Two query families:
//
//  - KNearest / RadiusSearch (NeighborIndex): Euclidean distances. Like
//    BruteForceIndex and the static KdTree, ranking/inclusion happen in
//    squared space ((dist2, index) order, d2 <= r2 inclusion) and the
//    sqrt is applied only to the results — bit-identical to what
//    BruteForceIndex produces over the live points.
//  - KNearestSquared: squared distances ordered by (dist2, index), the
//    exact total order RD-GBG's flat scan consumes. sqrt can merge
//    distinct squared distances into ties, so squared-space consumers get
//    squared-space results rather than a lossy round trip.
//  - KNearestSurface (weighted trees): GB-kNN's ball-surface score.
//
// Queries never mutate the tree and are safe to issue concurrently;
// Remove must be externally serialized against queries.
#ifndef GBX_INDEX_DYNAMIC_KD_TREE_H_
#define GBX_INDEX_DYNAMIC_KD_TREE_H_

#include <vector>

#include "index/neighbor_index.h"

namespace gbx {

class DynamicKdTree : public NeighborIndex {
 public:
  /// `points` must outlive the tree and must not be mutated while the
  /// tree is live. All rows start alive. `leaf_size` is the maximum
  /// number of points in a leaf bucket.
  explicit DynamicKdTree(const Matrix* points, int leaf_size = 16);

  /// As above, plus a non-negative weight per point (one per row,
  /// `point_weights` must outlive the tree), enabling KNearestSurface.
  /// GB-kNN passes ball radii so a query ranks balls by surface
  /// distance.
  DynamicKdTree(const Matrix* points, const double* point_weights,
                int leaf_size = 16);

  /// Tombstones point `i` (must be alive). Triggers an automatic rebuild
  /// over the survivors when more than half of the currently indexed
  /// points are tombstoned.
  void Remove(int i);

  bool alive(int i) const;

  /// Number of live (non-tombstoned) points.
  int size() const override { return live_; }
  int dims() const override { return points_->cols(); }

  /// Rows in the backing matrix, including removed ones.
  int total_points() const { return points_->rows(); }
  /// Points in the current tree structure (live + tombstones); resets to
  /// size() on rebuild.
  int indexed_points() const { return built_size_; }
  /// Tombstones in the current structure (cleared by rebuild).
  int tombstones() const { return tombstones_; }
  /// Automatic rebuilds performed so far.
  int rebuilds() const { return rebuilds_; }

  /// The k nearest live points, ranked by (squared distance, index) —
  /// BruteForceIndex's order — with Euclidean distances in the result.
  /// Like every index: k larger than size() returns all live points.
  std::vector<Neighbor> KNearest(const double* query, int k) const override;

  /// All live points with squared distance <= radius², sorted by
  /// (distance, index) — BruteForceIndex's inclusion rule and order.
  std::vector<Neighbor> RadiusSearch(const double* query,
                                     double radius) const override;

  /// The k nearest live points by (squared distance, index), excluding
  /// point id `exclude` (pass -1 to exclude nothing). k larger than the
  /// number of eligible points returns all of them.
  std::vector<SquaredNeighbor> KNearestSquared(const double* query, int k,
                                               int exclude = -1) const;

  /// Requires weights (see the weighted constructor): the k live points
  /// minimizing (score, index) where
  ///     score = dist - w_i   if dist <= w_i   (query inside the ball)
  ///           = dist         otherwise,
  /// i.e. GB-kNN's granular-ball surface distance when w is the ball
  /// radius. Neighbor::distance carries the score. Subtrees are pruned
  /// with sqrt(BoxMinD2) - subtree_max_weight, a floating-point-exact
  /// lower bound on every score inside (box distance dominates each
  /// point's distance term-by-term in the same summation order, and
  /// sqrt/subtract are monotone), so the result is bit-identical to an
  /// exhaustive scan using the same arithmetic.
  std::vector<Neighbor> KNearestSurface(const double* query, int k) const;

 private:
  struct Node {
    int left = -1;  // child node ids; -1 for leaf
    int right = -1;
    int parent = -1;
    int split_dim = -1;
    double split_value = 0.0;
    int begin = 0;  // leaf: range into order_
    int end = 0;
    int live = 0;  // live points in this subtree; 0 prunes it entirely
    // Largest weight of a live-at-build point in the subtree (0 without
    // weights). Stays an overestimate after removals — still a valid
    // bound.
    double max_weight = 0.0;
  };

  int Build(int begin, int end, int parent);
  void Rebuild();

  /// Smallest squared distance from `query` to node's bounding box (0
  /// inside). Boxes are computed over the live-at-build points; they
  /// only ever overestimate after removals, so pruning stays exact.
  double BoxMinD2(int node_id, const double* query) const;

  void SearchKnn(int node_id, const double* query, int k,
                 std::vector<Neighbor>* heap) const;
  void SearchKnnSquared(int node_id, const double* query, int k, int exclude,
                        std::vector<SquaredNeighbor>* heap) const;
  void SearchRadius(int node_id, const double* query, double r2,
                    std::vector<Neighbor>* out) const;
  void SearchSurface(int node_id, const double* query, int k,
                     std::vector<Neighbor>* heap) const;

  const Matrix* points_;
  const double* weights_ = nullptr;  // per-point, for KNearestSurface
  int leaf_size_;
  std::vector<char> alive_;
  std::vector<int> order_;       // live-at-build point ids, leaves own ranges
  std::vector<int> point_leaf_;  // point id -> leaf node id (-1 if removed
                                 // before the last rebuild)
  std::vector<Node> nodes_;
  // Per-node bounding boxes, node_id * 2d: [lo_0..lo_{d-1} hi_0..hi_{d-1}].
  // Box pruning (min distance to the box, not just to the split plane)
  // is what keeps exact k-NN competitive at d ~ 8-16.
  std::vector<double> boxes_;
  int root_ = -1;
  int live_ = 0;
  int built_size_ = 0;
  int tombstones_ = 0;
  int rebuilds_ = 0;
};

}  // namespace gbx

#endif  // GBX_INDEX_DYNAMIC_KD_TREE_H_
