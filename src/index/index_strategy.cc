#include "index/index_strategy.h"

namespace gbx {

namespace {
// RD-GBG thresholds, measured with bench_granulation's strategy axis on
// Gaussian-blob geometries (1 core, 2.1 GHz). The overlapping regime
// (many small balls — the paper's hard case) has the tree ahead 8.8× at
// (n=20k, d=2), 3.5× at d=4 and 1.6× at d=6; the well-separated regime
// (few huge balls, so candidates consume whole clusters from the
// stream) only clearly favors the tree at d<=2, and at d<=4 from ~20k
// points. kAuto must not lose on either regime, so it takes the
// intersection; callers who know their data is overlap-heavy can force
// kTree up to d~6. The flat scan also parallelizes over the thread pool
// while a tree query is serial, so the d<=4 tier (4.2x single-thread
// margin) only engages up to kRdGbgTreeMaxThreads workers; the d<=2
// tier's ~9x margin outruns typical thread scaling and stays on.
constexpr int kRdGbgTreeMaxDimsLow = 2;    // tree from kRdGbgTreeMinPoints
constexpr int kRdGbgTreeMaxDimsHigh = 4;   // tree from kRdGbgTreeBigPoints
constexpr int kRdGbgTreeMinPoints = 4096;
constexpr int kRdGbgTreeBigPoints = 16384;
constexpr int kRdGbgTreeMaxThreads = 4;  // for the d<=4 tier only
// GB-kNN center scan (KNearestSurface): crossover measured at ~4k balls
// for d=10 (1.9× ahead at 15.6k balls), earlier at lower d.
constexpr int kCenterTreeMinBalls = 4096;
constexpr int kCenterTreeMaxDims = 16;
}  // namespace

const char* IndexStrategyName(IndexStrategy strategy) {
  switch (strategy) {
    case IndexStrategy::kAuto:
      return "auto";
    case IndexStrategy::kFlat:
      return "flat";
    case IndexStrategy::kTree:
      return "tree";
  }
  return "auto";
}

bool ParseIndexStrategy(const std::string& text, IndexStrategy* out) {
  if (text == "auto") {
    *out = IndexStrategy::kAuto;
  } else if (text == "flat") {
    *out = IndexStrategy::kFlat;
  } else if (text == "tree") {
    *out = IndexStrategy::kTree;
  } else {
    return false;
  }
  return true;
}

IndexStrategy ResolveRdGbgIndexStrategy(IndexStrategy requested, int n,
                                        int dims, int num_threads) {
  if (requested != IndexStrategy::kAuto) return requested;
  const bool tree =
      (dims <= kRdGbgTreeMaxDimsLow && n >= kRdGbgTreeMinPoints) ||
      (dims <= kRdGbgTreeMaxDimsHigh && n >= kRdGbgTreeBigPoints &&
       num_threads <= kRdGbgTreeMaxThreads);
  return tree ? IndexStrategy::kTree : IndexStrategy::kFlat;
}

IndexStrategy ResolveCenterIndexStrategy(IndexStrategy requested,
                                         int num_balls, int dims) {
  if (requested != IndexStrategy::kAuto) return requested;
  return (num_balls >= kCenterTreeMinBalls && dims <= kCenterTreeMaxDims)
             ? IndexStrategy::kTree
             : IndexStrategy::kFlat;
}

}  // namespace gbx
