#include "index/index_strategy.h"

#include <vector>

namespace gbx {

namespace {
// RD-GBG thresholds, measured with bench_granulation's strategy axis
// (1 core, 2.1 GHz). The unconditional tiers come from Gaussian-blob
// geometries: the overlapping regime (many small balls — the paper's
// hard case) has the KD-tree ahead 9.6× at (n=20k, d=2) and 3.6× at
// d=4; the well-separated regime (few huge balls, so candidates consume
// whole clusters from the stream) only clearly favors the tree at d<=2,
// and at d<=4 from ~20k points. kAuto must not lose on either regime,
// so it takes the intersection. The flat scan also parallelizes over
// the thread pool while a tree query is serial, so the d<=4 tier
// (3.6× single-thread margin) only engages up to kRdGbgTreeMaxThreads
// workers; the d<=2 tier's ~9× margin outruns typical thread scaling
// and stays on.
constexpr int kRdGbgTreeMaxDimsLow = 2;    // KD-tree from kRdGbgTreeMinPoints
constexpr int kRdGbgTreeMaxDimsHigh = 4;   // KD-tree from kRdGbgTreeBigPoints
constexpr int kRdGbgTreeMinPoints = 4096;
constexpr int kRdGbgTreeBigPoints = 16384;
constexpr int kRdGbgTreeMaxThreads = 4;  // for the d<=4 tier only
// Structure-gated tier: on isotropic data past d~6, distance
// concentration hands the flat parallel scan the win and no gate can
// help; but when the data's EffectiveDimension certifies a
// low-dimensional cloud (rotated informative-subspace geometry:
// d_eff ≈ 3.5 at any ambient d, vs 6.5–12 for isotropic blobs), tree
// pruning keeps working — measured, KD-tree 1.5× ahead of flat at
// (n=20k, d=8) and 1.85× at d=16 where blobs have the tree behind.
// The tier stops at d=16 (the measured grid's edge) and at 2 workers
// because the single-thread edge is modest.
constexpr int kRdGbgStructDims = 16;
constexpr double kRdGbgStructMaxEffDims = 5.0;
constexpr int kRdGbgStructMaxThreads = 2;
// r_conf surface pass: the flat gap scan is O(B) per candidate but
// parallelized; a BallSurfaceIndex query is serial and sublinear.
// Measured (bench_index_dynamic BM_SurfaceGapDrain, 1 core): the index
// is ahead of the serial flat scan from ~2k balls at every measured d
// (4.0× at 2k / 7.3× at 8k / 19× at 32k for d=2; 1.8× / 1.4× / 2.5×
// for d=10), so one worker switches early; big pools amortize the flat
// scan better, so the threshold scales with the worker count.
constexpr int kSurfaceMinBallsSerial = 512;
constexpr int kSurfaceMinBallsPerThread = 512;
// GB-kNN center scan (KNearestSurface): the KD-tree tier is measured at
// ~4k balls for d<=16 on clustered blob centers (2.6× ahead at 16k
// balls, d=8; behind from d=16 on isotropic centers but 5–8× ahead on
// low-intrinsic-dimension centers, which the d_eff gate cannot
// distinguish cheaply below d=16 — the 16-d cap keeps the iid loss
// bounded to the ~1.6× measured at d=16 while structured data wins
// big). Past d=16 every strategy choice hinges on structure: the
// metric ball-tree is 4.6–6.3× ahead of flat at d=24/32 on rotated
// informative-subspace centers (and ahead of the KD-tree there), while
// on isotropic centers both trees lose — so the (16, 32] tier engages
// only under the EffectiveDimension gate.
constexpr int kCenterTreeMinBalls = 4096;
constexpr int kCenterTreeMaxDims = 16;
constexpr int kCenterBallTreeMaxDims = 32;
constexpr double kCenterBallTreeMaxEffDims = 8.0;
// EffectiveDimension subsample bound: past ~2k rows the spectrum
// estimate is stable and the O(n·d²) cost stops being free.
constexpr int kEffDimMaxRows = 2048;
}  // namespace

double EffectiveDimension(const Matrix& points) {
  const int n = points.rows();
  const int d = points.cols();
  if (n < 2 || d < 1) return d;
  const int stride = n > kEffDimMaxRows ? n / kEffDimMaxRows : 1;

  std::vector<double> mean(d, 0.0);
  int used = 0;
  for (int i = 0; i < n; i += stride) {
    const double* row = points.Row(i);
    for (int j = 0; j < d; ++j) mean[j] += row[j];
    ++used;
  }
  for (int j = 0; j < d; ++j) mean[j] /= used;

  // Upper triangle of the (unnormalized) covariance; the participation
  // ratio is scale-invariant, so the 1/(used-1) factor cancels.
  std::vector<double> cov(static_cast<std::size_t>(d) * d, 0.0);
  for (int i = 0; i < n; i += stride) {
    const double* row = points.Row(i);
    for (int a = 0; a < d; ++a) {
      const double va = row[a] - mean[a];
      double* cov_row = &cov[static_cast<std::size_t>(a) * d];
      for (int b = a; b < d; ++b) cov_row[b] += va * (row[b] - mean[b]);
    }
  }
  double trace = 0.0;
  double frob2 = 0.0;
  for (int a = 0; a < d; ++a) {
    const double* cov_row = &cov[static_cast<std::size_t>(a) * d];
    trace += cov_row[a];
    for (int b = a; b < d; ++b) {
      frob2 += (a == b ? 1.0 : 2.0) * cov_row[b] * cov_row[b];
    }
  }
  // (Σλ)² / Σλ² via trace(C)² / ‖C‖²_F (C symmetric, λ its spectrum).
  return frob2 > 0.0 ? trace * trace / frob2 : d;
}

const char* IndexStrategyName(IndexStrategy strategy) {
  switch (strategy) {
    case IndexStrategy::kAuto:
      return "auto";
    case IndexStrategy::kFlat:
      return "flat";
    case IndexStrategy::kTree:
      return "tree";
    case IndexStrategy::kBallTree:
      return "balltree";
    case IndexStrategy::kSampled:
      return "sampled";
  }
  return "auto";
}

bool ParseIndexStrategy(const std::string& text, IndexStrategy* out) {
  if (text == "auto") {
    *out = IndexStrategy::kAuto;
  } else if (text == "flat") {
    *out = IndexStrategy::kFlat;
  } else if (text == "tree") {
    *out = IndexStrategy::kTree;
  } else if (text == "balltree") {
    *out = IndexStrategy::kBallTree;
  } else if (text == "sampled") {
    *out = IndexStrategy::kSampled;
  } else {
    return false;
  }
  return true;
}

IndexStrategy ResolveRdGbgIndexStrategy(IndexStrategy requested, int n,
                                        int dims, int num_threads,
                                        const Matrix* points) {
  // Granulation is always exact: an approximate candidate scan would
  // change the balls — and therefore the model bytes — so a kSampled
  // request degrades to kAuto here and only takes effect at inference
  // (GB-kNN's center scan).
  if (requested == IndexStrategy::kSampled) requested = IndexStrategy::kAuto;
  if (requested != IndexStrategy::kAuto) return requested;
  const bool kd_tree =
      (dims <= kRdGbgTreeMaxDimsLow && n >= kRdGbgTreeMinPoints) ||
      (dims <= kRdGbgTreeMaxDimsHigh && n >= kRdGbgTreeBigPoints &&
       num_threads <= kRdGbgTreeMaxThreads);
  if (kd_tree) return IndexStrategy::kTree;
  // The moderate-d tier pays one EffectiveDimension scan (O(2k · d²),
  // microseconds against a granulation that is seconds at this n) only
  // once the unconditional size/dims gates pass.
  const bool structured_candidate =
      points != nullptr && dims > kRdGbgTreeMaxDimsHigh &&
      dims <= kRdGbgStructDims && n >= kRdGbgTreeBigPoints &&
      num_threads <= kRdGbgStructMaxThreads;
  if (structured_candidate &&
      EffectiveDimension(*points) <= kRdGbgStructMaxEffDims) {
    return IndexStrategy::kTree;
  }
  return IndexStrategy::kFlat;
}

int ResolveRdGbgSurfaceThreshold(IndexStrategy requested, int dims,
                                 int num_threads) {
  (void)dims;  // measured crossover is d-independent on the tested grid
  switch (requested) {
    case IndexStrategy::kFlat:
      return kSurfaceIndexNever;
    case IndexStrategy::kTree:
    case IndexStrategy::kBallTree:
      return 0;
    case IndexStrategy::kAuto:
    case IndexStrategy::kSampled:  // exact during granulation, like kAuto
      break;
  }
  if (num_threads <= 1) return kSurfaceMinBallsSerial;
  return kSurfaceMinBallsPerThread * num_threads;
}

IndexStrategy ResolveCenterIndexStrategy(IndexStrategy requested,
                                         int num_balls, int dims,
                                         int num_threads,
                                         const Matrix* centers) {
  if (requested != IndexStrategy::kAuto) return requested;
  // Thread-awareness, re-measured under GBX_THREADS ∈ {1, 4, 8}
  // (bench_index_dynamic BM_GbKnnPredict): unlike RD-GBG — where the
  // flat scan parallelizes *inside* the serial candidate loop and a
  // tree query cannot — batch prediction fans out over queries for
  // every strategy, so the tree's margin (2.3× at 15.6k balls, d=10)
  // is invariant in the worker count and the entry bar must NOT rise
  // with it (a ×threads bar measurably hands kAuto a 2× loss at
  // GBX_THREADS=4 on that grid). num_threads is part of the contract
  // so a future single-query-latency tier — where Predict's parallel
  // score fill does shift the crossover — can use it without another
  // signature change.
  (void)num_threads;
  if (num_balls < kCenterTreeMinBalls) return IndexStrategy::kFlat;
  if (dims <= kCenterTreeMaxDims) return IndexStrategy::kTree;
  if (dims <= kCenterBallTreeMaxDims && centers != nullptr &&
      EffectiveDimension(*centers) <= kCenterBallTreeMaxEffDims) {
    return IndexStrategy::kBallTree;
  }
  return IndexStrategy::kFlat;
}

bool CenterResolutionWantsCenters(int num_balls, int dims) {
  return num_balls >= kCenterTreeMinBalls && dims > kCenterTreeMaxDims &&
         dims <= kCenterBallTreeMaxDims;
}

}  // namespace gbx
