// Strategy knob for the neighbor-scan hot paths: a parallel flat scan, a
// (dynamic) KD-tree, or a metric ball-tree. kAuto resolves per workload
// from the point count and the dimensionality — trees win asymptotically
// at large n but lose to the cache-friendly flat scan for small n, and
// axis-aligned-box pruning degrades toward a linear scan as
// dimensionality grows (distance concentration). The ball-tree's
// triangle-inequality pruning follows the data's intrinsic structure
// instead of coordinate boxes, which extends tree wins into the
// moderate-d regime where the KD-tree already lost — so each call site
// picks from its own measured crossover surface. Every strategy produces
// bit-identical results (enforced by thread_determinism_test); the knob
// trades wall-clock only, which is why it is runtime state and never
// persisted into model artifacts.
#ifndef GBX_INDEX_INDEX_STRATEGY_H_
#define GBX_INDEX_INDEX_STRATEGY_H_

#include <string>

#include "common/matrix.h"

namespace gbx {

enum class IndexStrategy {
  kAuto,      // resolve from n and dims at the call site
  kFlat,      // exhaustive scan (parallelized where the call site supports it)
  kTree,      // DynamicKdTree (axis-aligned box pruning)
  kBallTree,  // BallTree (metric triangle-inequality pruning)
  // Approximate candidate tier: scan a seeded fixed-permutation prefix
  // of the points instead of all of them, sized by an explicit recall
  // knob (GbKnnClassifier::set_recall_target). The ONLY strategy that
  // may return different results from kFlat — and only at recall < 1;
  // at the default recall 1.0 it is bit-identical to the exact scan.
  // Inference-only: granulation resolves kSampled to the exact scan
  // (training must produce the same artifact bytes whatever the knob),
  // and kAuto never picks it — approximation is strictly opt-in.
  kSampled,
};

/// "auto", "flat", "tree", "balltree", or "sampled".
const char* IndexStrategyName(IndexStrategy strategy);

/// Parses "auto" / "flat" / "tree" / "balltree" / "sampled" (exact
/// match). Returns false and leaves `*out` untouched on anything else.
bool ParseIndexStrategy(const std::string& text, IndexStrategy* out);

/// Effective (intrinsic) dimensionality of a point set: the
/// participation ratio (Σλ)² / Σλ² of its covariance spectrum, computed
/// through trace identities (trace²(C) / ‖C‖²_F) — no eigendecomposition
/// — over a deterministic subsample of at most ~2k rows, so the cost is
/// O(min(n, 2k) · d²). Rotation-invariant: d for isotropic clouds, ≈ the
/// subspace dimension for data concentrated near a low-dimensional
/// subspace however it is oriented. This is the cheap signal that
/// separates "distance concentration kills tree pruning" (d_eff tracks
/// the ambient d) from "real structure, trees keep winning" (d_eff
/// stays small as d grows), and it gates kAuto's moderate-d tree tiers
/// below. Returns dims for degenerate inputs (< 2 rows, zero variance).
double EffectiveDimension(const Matrix& points);

/// Resolution for RD-GBG's per-candidate neighbor pass over the shrinking
/// undivided set. The unconditional KD-tree tiers are unchanged from
/// PR 4: tree at d<=2 from ~4k samples; at d<=4 from ~16k but only up to
/// 4 worker threads, because the flat scan it replaces parallelizes over
/// the pool while a tree query is serial. A third tier extends the tree
/// to moderate ambient dimensionality (d<=16 from ~16k samples) when the
/// measured EffectiveDimension of `points` (pass the scaled feature
/// matrix; nullptr disables the tier) certifies low intrinsic
/// dimensionality — measured on rotated informative-subspace data the
/// KD-tree is 1.6× ahead of the flat scan at d=8 where isotropic data
/// hands the flat scan the win. Thresholds in index_strategy.cc.
/// `num_threads` is the resolved worker count (common/parallel.h).
IndexStrategy ResolveRdGbgIndexStrategy(IndexStrategy requested, int n,
                                        int dims, int num_threads,
                                        const Matrix* points = nullptr);

/// The ball count at which GenerateRdGbg's conflict-radius (r_conf) pass
/// switches from the flat parallel gap scan to the incremental
/// BallSurfaceIndex, or kSurfaceIndexNever to stay flat for the whole
/// run. kFlat never switches; kTree/kBallTree switch immediately (the
/// explicit request is also what drives the bit-identity test axes
/// through the index); kAuto switches once enough balls have accumulated
/// that the index's sublinear query beats the parallelized O(B) scan —
/// sooner on one worker than on many, since the flat scan parallelizes
/// and an index query is serial.
int ResolveRdGbgSurfaceThreshold(IndexStrategy requested, int dims,
                                 int num_threads);
inline constexpr int kSurfaceIndexNever = 0x7fffffff;

/// Resolution for GB-kNN's per-query scan over ball centers
/// (KNearestSurface): KD-tree from ~4k balls up to d=16; past that
/// (d<=32) the metric ball-tree takes over, but only when the measured
/// EffectiveDimension of `centers` (pass the center matrix; nullptr
/// disables the tier) certifies low intrinsic dimensionality — that is
/// the regime where its triangle-inequality pruning still bites
/// (measured 2.1–2.3× over the flat scan at d=24/32 on rotated
/// informative-subspace centers, ahead of the KD-tree) while on
/// isotropic centers every tree loses there. `num_threads` is the
/// resolved worker count; re-measured under GBX_THREADS ∈ {1,4,8} the
/// crossover is thread-invariant — batch prediction parallelizes over
/// queries for every strategy — so unlike the RD-GBG resolver the bars
/// do not scale with it (rationale in index_strategy.cc). Crossovers
/// measured by bench_index_dynamic.
IndexStrategy ResolveCenterIndexStrategy(IndexStrategy requested,
                                         int num_balls, int dims,
                                         int num_threads,
                                         const Matrix* centers = nullptr);

/// True when ResolveCenterIndexStrategy(kAuto, num_balls, dims, ...)
/// would consult the centers matrix — i.e. the EffectiveDimension-gated
/// ball-tree tier is in play. Callers use it to materialize the center
/// matrix only when the resolution actually needs it.
bool CenterResolutionWantsCenters(int num_balls, int dims);

}  // namespace gbx

#endif  // GBX_INDEX_INDEX_STRATEGY_H_
