// Strategy knob for the neighbor-scan hot paths: a parallel flat scan or
// a (dynamic) KD-tree. kAuto resolves per workload from the point count
// and the dimensionality — KD-trees win asymptotically at large n but
// lose to the cache-friendly flat scan for small n, and degrade toward a
// linear scan as dimensionality grows (distance concentration), so each
// call site picks from its own measured crossover. Every strategy
// produces bit-identical results (enforced by thread_determinism_test);
// the knob trades wall-clock only, which is why it is runtime state and
// never persisted into model artifacts.
#ifndef GBX_INDEX_INDEX_STRATEGY_H_
#define GBX_INDEX_INDEX_STRATEGY_H_

#include <string>

namespace gbx {

enum class IndexStrategy {
  kAuto,  // resolve from n and dims at the call site
  kFlat,  // exhaustive scan (parallelized where the call site supports it)
  kTree,  // DynamicKdTree
};

/// "auto", "flat", or "tree".
const char* IndexStrategyName(IndexStrategy strategy);

/// Parses "auto" / "flat" / "tree" (exact match). Returns false and
/// leaves `*out` untouched on anything else.
bool ParseIndexStrategy(const std::string& text, IndexStrategy* out);

/// Resolution for RD-GBG's per-candidate neighbor pass over the shrinking
/// undivided set: tree at d<=2 from ~4k samples; at d<=4 from ~16k but
/// only up to 4 worker threads, because the flat scan it replaces
/// parallelizes over the pool while the tree query is serial, so the
/// tree's single-thread margin must exceed the flat path's thread
/// scaling (9x at d=2 does; 4.2x at d=4 does not beyond ~4 workers).
/// Measured (bench_granulation strategy axis, 1 core): at n=20k the
/// tree is 8.8x ahead at d=2 and 3.5x at d=4 on overlapping blobs; at
/// n=2k it is 2.9x ahead at d=2, within noise at d=4, and behind at
/// d=8 — kAuto stays flat below 4k points. Above d~6 distance
/// concentration hands the flat parallel scan the win back. Thresholds
/// in index_strategy.cc. `num_threads` is the resolved worker count
/// (common/parallel.h).
IndexStrategy ResolveRdGbgIndexStrategy(IndexStrategy requested, int n,
                                        int dims, int num_threads);

/// Resolution for GB-kNN's per-query scan over ball centers
/// (DynamicKdTree::KNearestSurface): tree from ~4k balls up to d=16
/// (measured 1.9x ahead at 15.6k balls, d=10 — bench_index_dynamic).
IndexStrategy ResolveCenterIndexStrategy(IndexStrategy requested,
                                         int num_balls, int dims);

}  // namespace gbx

#endif  // GBX_INDEX_INDEX_STRATEGY_H_
