#include "index/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gbx {

KdTree::KdTree(const Matrix* points, int leaf_size)
    : points_(points), leaf_size_(leaf_size) {
  GBX_CHECK(points != nullptr);
  GBX_CHECK_GE(leaf_size, 1);
  order_.resize(points_->rows());
  for (int i = 0; i < points_->rows(); ++i) order_[i] = i;
  if (!order_.empty()) {
    nodes_.reserve(2 * order_.size() / leaf_size_ + 4);
    root_ = Build(0, static_cast<int>(order_.size()), 0);
  }
}

int KdTree::Build(int begin, int end, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size_) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }

  // Pick the dimension with the largest spread over this range; fall back
  // to round-robin when all spreads are zero (duplicate points).
  const int d = points_->cols();
  int best_dim = depth % d;
  double best_spread = -1.0;
  for (int j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (int i = begin; i < end; ++i) {
      const double v = points_->At(order_[i], j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = j;
    }
  }
  if (best_spread <= 0.0) {
    // All points identical in every dimension: keep as one leaf.
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }

  const int mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     const double va = points_->At(a, best_dim);
                     const double vb = points_->At(b, best_dim);
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  nodes_[node_id].split_dim = best_dim;
  nodes_[node_id].split_value = points_->At(order_[mid], best_dim);
  const int left = Build(begin, mid, depth + 1);
  const int right = Build(mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

namespace {
bool WorseNeighbor(const Neighbor& a, const Neighbor& b) { return a < b; }
}  // namespace

void KdTree::SearchKnn(int node_id, const double* query, int k,
                       std::vector<Neighbor>* heap) const {
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      const double d2 = SquaredDistance(query, points_->Row(idx), d);
      OfferToBoundedHeap(heap, Neighbor{idx, d2}, k);
    }
    return;
  }
  const double diff = query[node.split_dim] - node.split_value;
  const int near = diff <= 0.0 ? node.left : node.right;
  const int far = diff <= 0.0 ? node.right : node.left;
  SearchKnn(near, query, k, heap);
  // Visit the far side only if the splitting plane could hide a better
  // candidate.
  const double plane_d2 = diff * diff;
  if (static_cast<int>(heap->size()) < k || plane_d2 <= heap->front().distance) {
    SearchKnn(far, query, k, heap);
  }
}

std::vector<Neighbor> KdTree::KNearest(const double* query, int k) const {
  GBX_CHECK_GE(k, 0);
  // Oversized k degrades to "all points", never an assertion — the same
  // guard DynamicKdTree applies against its live count. The explicit
  // root check keeps the clamp safe even for an empty tree, where there
  // is no node 0 to recurse into.
  k = std::min(k, size());
  if (k == 0 || root_ < 0) return {};
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  SearchKnn(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), WorseNeighbor);
  for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  return heap;
}

void KdTree::SearchRadius(int node_id, const double* query, double r2,
                          std::vector<Neighbor>* out) const {
  const Node& node = nodes_[node_id];
  const int d = points_->cols();
  if (node.split_dim < 0) {
    for (int i = node.begin; i < node.end; ++i) {
      const int idx = order_[i];
      const double d2 = SquaredDistance(query, points_->Row(idx), d);
      if (d2 <= r2) out->push_back(Neighbor{idx, d2});
    }
    return;
  }
  const double diff = query[node.split_dim] - node.split_value;
  const int near = diff <= 0.0 ? node.left : node.right;
  const int far = diff <= 0.0 ? node.right : node.left;
  SearchRadius(near, query, r2, out);
  if (diff * diff <= r2) SearchRadius(far, query, r2, out);
}

std::vector<Neighbor> KdTree::RadiusSearch(const double* query,
                                           double radius) const {
  GBX_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> out;
  if (root_ < 0) return out;
  SearchRadius(root_, query, radius * radius, &out);
  for (Neighbor& nb : out) nb.distance = std::sqrt(nb.distance);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gbx
