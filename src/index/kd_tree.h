// KD-tree over a point matrix: median-split build (O(n log n)), branch-and-
// bound k-NN and radius queries. Exact — property-tested to agree with
// BruteForceIndex — and much faster for the low/medium-dimensional
// datasets where kNN classification dominates experiment time.
#ifndef GBX_INDEX_KD_TREE_H_
#define GBX_INDEX_KD_TREE_H_

#include <vector>

#include "index/neighbor_index.h"

namespace gbx {

class KdTree : public NeighborIndex {
 public:
  /// `points` must outlive the tree. `leaf_size` is the maximum number of
  /// points in a leaf bucket.
  explicit KdTree(const Matrix* points, int leaf_size = 16);

  /// k larger than the number of stored points returns all points (k is
  /// clamped, never asserted on), matching BruteForceIndex and
  /// DynamicKdTree.
  std::vector<Neighbor> KNearest(const double* query, int k) const override;
  std::vector<Neighbor> RadiusSearch(const double* query,
                                     double radius) const override;

  int size() const override { return points_->rows(); }
  int dims() const override { return points_->cols(); }

 private:
  struct Node {
    int left = -1;        // child node ids; -1 for leaf
    int right = -1;
    int split_dim = -1;
    double split_value = 0.0;
    int begin = 0;        // leaf: range into order_
    int end = 0;
  };

  int Build(int begin, int end, int depth);

  void SearchKnn(int node_id, const double* query, int k,
                 std::vector<Neighbor>* heap) const;
  void SearchRadius(int node_id, const double* query, double r2,
                    std::vector<Neighbor>* out) const;

  const Matrix* points_;
  int leaf_size_;
  std::vector<int> order_;   // permutation of point ids, leaves own ranges
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace gbx

#endif  // GBX_INDEX_KD_TREE_H_
