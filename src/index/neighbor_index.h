// Nearest-neighbor search interface shared by the brute-force scanner and
// the KD-tree. Indexes are non-owning views over a Matrix whose lifetime
// must exceed the index.
#ifndef GBX_INDEX_NEIGHBOR_INDEX_H_
#define GBX_INDEX_NEIGHBOR_INDEX_H_

#include <vector>

#include "common/matrix.h"

namespace gbx {

struct Neighbor {
  int index = -1;
  double distance = 0.0;  // Euclidean

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;  // deterministic tie-break
  }
};

class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  /// The k nearest points to `query`, sorted by (distance, index)
  /// ascending. Returns fewer than k when the index holds fewer points.
  virtual std::vector<Neighbor> KNearest(const double* query,
                                         int k) const = 0;

  /// All points within `radius` (inclusive) of `query`, sorted by
  /// (distance, index).
  virtual std::vector<Neighbor> RadiusSearch(const double* query,
                                             double radius) const = 0;

  virtual int size() const = 0;
  virtual int dims() const = 0;
};

}  // namespace gbx

#endif  // GBX_INDEX_NEIGHBOR_INDEX_H_
