// Nearest-neighbor search interface shared by the brute-force scanner and
// the KD-tree. Indexes are non-owning views over a Matrix whose lifetime
// must exceed the index.
#ifndef GBX_INDEX_NEIGHBOR_INDEX_H_
#define GBX_INDEX_NEIGHBOR_INDEX_H_

#include <algorithm>
#include <vector>

#include "common/matrix.h"

namespace gbx {

struct Neighbor {
  int index = -1;
  double distance = 0.0;  // Euclidean

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;  // deterministic tie-break
  }
};

/// A neighbor in squared-distance space. Distance-heavy hot loops
/// (granulation above all) order candidates by (dist2, index) and defer
/// the sqrt until a radius is actually assigned; sqrt can merge distinct
/// squared distances into ties, so the squared order — not the Euclidean
/// order — is the one those loops must reproduce exactly.
struct SquaredNeighbor {
  double dist2 = 0.0;
  int index = -1;

  friend bool operator<(const SquaredNeighbor& a, const SquaredNeighbor& b) {
    if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
    return a.index < b.index;  // deterministic tie-break
  }
};

/// Offers `cand` to a max-heap holding the k best (smallest by
/// operator<) candidates seen so far — the selection idiom every index
/// implementation shares. After all offers, std::sort_heap with the same
/// order yields the k best ascending. Keeping the one copy here is what
/// lets the cross-index bit-identity contracts (KdTree/DynamicKdTree vs
/// BruteForceIndex) rest on a single piece of code.
template <typename T>
void OfferToBoundedHeap(std::vector<T>* heap, const T& cand, int k) {
  const auto worse = [](const T& a, const T& b) { return a < b; };
  if (static_cast<int>(heap->size()) < k) {
    heap->push_back(cand);
    std::push_heap(heap->begin(), heap->end(), worse);
  } else if (cand < heap->front()) {
    std::pop_heap(heap->begin(), heap->end(), worse);
    heap->back() = cand;
    std::push_heap(heap->begin(), heap->end(), worse);
  }
}

/// Smallest squared distance from `query` to the axis-aligned box
/// [lo, hi] (0 inside), summed dimension 0..d-1 — the SAME summation
/// order as SquaredDistance. That shared order is load-bearing: every
/// box-pruned index (DynamicKdTree, BallSurfaceIndex)
/// relies on the box distance dominating each member's SquaredDistance
/// term by term in identical order, which is what makes pruning
/// floating-point-exact. Keeping the one copy here is what lets that
/// argument rest on a single piece of code, exactly like
/// OfferToBoundedHeap below.
inline double BoxMinSquaredDistance(const double* lo, const double* hi,
                                    const double* query, int d) {
  double s = 0.0;
  for (int j = 0; j < d; ++j) {
    double diff = 0.0;
    if (query[j] < lo[j]) {
      diff = lo[j] - query[j];
    } else if (query[j] > hi[j]) {
      diff = query[j] - hi[j];
    }
    s += diff * diff;
  }
  return s;
}

class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  /// The k nearest points to `query`, sorted by (distance, index)
  /// ascending. Returns fewer than k when the index holds fewer points.
  virtual std::vector<Neighbor> KNearest(const double* query,
                                         int k) const = 0;

  /// All points within `radius` (inclusive) of `query`, sorted by
  /// (distance, index).
  virtual std::vector<Neighbor> RadiusSearch(const double* query,
                                             double radius) const = 0;

  virtual int size() const = 0;
  virtual int dims() const = 0;
};

}  // namespace gbx

#endif  // GBX_INDEX_NEIGHBOR_INDEX_H_
