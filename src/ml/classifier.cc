#include "ml/classifier.h"

#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/lgbm.h"
#include "ml/random_forest.h"
#include "ml/xgb.h"

namespace gbx {

std::vector<int> Classifier::PredictBatch(const Matrix& x) const {
  std::vector<int> out(x.rows());
  for (int i = 0; i < x.rows(); ++i) out[i] = Predict(x.Row(i));
  return out;
}

std::string ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kKnn:
      return "kNN";
    case ClassifierKind::kDecisionTree:
      return "DT";
    case ClassifierKind::kRandomForest:
      return "RF";
    case ClassifierKind::kXgBoost:
      return "XGBoost";
    case ClassifierKind::kLightGbm:
      return "LightGBM";
  }
  return "?";
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind, bool fast) {
  switch (kind) {
    case ClassifierKind::kKnn:
      return std::make_unique<KnnClassifier>();
    case ClassifierKind::kDecisionTree:
      return std::make_unique<DecisionTreeClassifier>();
    case ClassifierKind::kRandomForest: {
      RandomForestConfig cfg;
      if (fast) cfg.num_trees = 40;
      // Runner-level parallelism owns the cores in fast mode.
      if (fast) cfg.num_threads = 1;
      return std::make_unique<RandomForestClassifier>(cfg);
    }
    case ClassifierKind::kXgBoost: {
      XgBoostConfig cfg;
      if (fast) {
        cfg.num_rounds = 20;
        cfg.colsample_bytree = 0.5;
      }
      return std::make_unique<XgBoostClassifier>(cfg);
    }
    case ClassifierKind::kLightGbm: {
      LightGbmConfig cfg;
      if (fast) cfg.num_rounds = 20;
      return std::make_unique<LightGbmClassifier>(cfg);
    }
  }
  GBX_CHECK(false && "unknown classifier kind");
  return nullptr;
}

std::vector<ClassifierKind> AllClassifierKinds() {
  return {ClassifierKind::kDecisionTree, ClassifierKind::kXgBoost,
          ClassifierKind::kLightGbm, ClassifierKind::kKnn,
          ClassifierKind::kRandomForest};
}

}  // namespace gbx
