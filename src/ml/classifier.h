// Common interface for the five classifiers of §V-A1: kNN, decision tree
// (CART), random forest, and the two gradient-boosting machines standing
// in for XGBoost and LightGBM. All are implemented from scratch with
// scikit-learn-like defaults (see each header).
#ifndef GBX_ML_CLASSIFIER_H_
#define GBX_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace gbx {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`. `rng` drives any randomized component (forests,
  /// boosting subsampling); deterministic given (train, rng state).
  virtual void Fit(const Dataset& train, Pcg32* rng) = 0;

  /// Predicts the class of a single feature vector (num_features doubles).
  ///
  /// Contract: Fit (or a classifier's Restore) must have been called
  /// first. Calling Predict/PredictBatch on an unfitted classifier is a
  /// programming error and fails a GBX_CHECK with a "called before Fit"
  /// message — uniformly across every implementation, never UB.
  virtual int Predict(const double* x) const = 0;

  /// Batch prediction; the default loops over Predict. Same
  /// fit-before-predict contract as Predict.
  virtual std::vector<int> PredictBatch(const Matrix& x) const;

  virtual std::string name() const = 0;
};

enum class ClassifierKind {
  kKnn,
  kDecisionTree,
  kRandomForest,
  kXgBoost,
  kLightGbm,
};

std::string ClassifierKindName(ClassifierKind kind);

/// Factory with default hyperparameters. `fast` trims ensemble sizes for
/// the scaled experiment mode (see exp/experiment_config.h).
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind,
                                           bool fast = false);

/// All five paper classifiers, in the order used by Table IV.
std::vector<ClassifierKind> AllClassifierKinds();

}  // namespace gbx

#endif  // GBX_ML_CLASSIFIER_H_
