#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace gbx {

namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

DecisionTreeClassifier::DecisionTreeClassifier(DecisionTreeConfig config)
    : config_(config) {
  GBX_CHECK_GE(config.min_samples_split, 2);
  GBX_CHECK_GE(config.min_samples_leaf, 1);
}

void DecisionTreeClassifier::Fit(const Dataset& train, Pcg32* rng) {
  std::vector<int> indices(train.size());
  for (int i = 0; i < train.size(); ++i) indices[i] = i;
  FitIndices(train, indices, rng);
}

void DecisionTreeClassifier::FitIndices(const Dataset& train,
                                        const std::vector<int>& indices,
                                        Pcg32* rng) {
  GBX_CHECK(!indices.empty());
  nodes_.clear();
  depth_ = 0;
  num_classes_ = train.num_classes();
  std::vector<int> work = indices;
  Build(train, &work, 0, static_cast<int>(work.size()), 0, rng);
}

int DecisionTreeClassifier::Build(const Dataset& train,
                                  std::vector<int>* indices, int begin,
                                  int end, int depth, Pcg32* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  depth_ = std::max(depth_, depth);

  const int n = end - begin;
  std::vector<double> counts(num_classes_, 0.0);
  for (int i = begin; i < end; ++i) counts[train.label((*indices)[i])] += 1.0;
  int majority = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (counts[c] > counts[majority]) majority = c;
  }
  nodes_[node_id].label = majority;

  const double node_gini = GiniFromCounts(counts, n);
  const bool stop = node_gini == 0.0 || n < config_.min_samples_split ||
                    (config_.max_depth >= 0 && depth >= config_.max_depth);
  if (stop) return node_id;

  // Candidate features: all, or a random subset (forest mode).
  const int p = train.num_features();
  std::vector<int> features;
  if (config_.max_features > 0 && config_.max_features < p) {
    GBX_CHECK(rng != nullptr);
    features = rng->SampleWithoutReplacement(p, config_.max_features);
  } else {
    features.resize(p);
    for (int j = 0; j < p; ++j) features[j] = j;
  }

  // Exact best split: sort the node's rows by each candidate feature and
  // scan boundaries between distinct values.
  double best_score = node_gini;  // must strictly improve
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<int> sorted(indices->begin() + begin, indices->begin() + end);
  std::vector<double> left_counts(num_classes_);
  for (int feature : features) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      const double va = train.feature(a, feature);
      const double vb = train.feature(b, feature);
      if (va != vb) return va < vb;
      return a < b;
    });
    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    for (int i = 0; i + 1 < n; ++i) {
      left_counts[train.label(sorted[i])] += 1.0;
      const double v = train.feature(sorted[i], feature);
      const double v_next = train.feature(sorted[i + 1], feature);
      if (v == v_next) continue;  // not a boundary
      const int n_left = i + 1;
      const int n_right = n - n_left;
      if (n_left < config_.min_samples_leaf ||
          n_right < config_.min_samples_leaf) {
        continue;
      }
      double right_sq = 0.0;
      double left_sq = 0.0;
      for (int c = 0; c < num_classes_; ++c) {
        left_sq += left_counts[c] * left_counts[c];
        const double rc = counts[c] - left_counts[c];
        right_sq += rc * rc;
      }
      const double gini_left = 1.0 - left_sq / (static_cast<double>(n_left) *
                                                n_left);
      const double gini_right =
          1.0 - right_sq / (static_cast<double>(n_right) * n_right);
      const double weighted =
          (n_left * gini_left + n_right * gini_right) / n;
      if (weighted < best_score - 1e-12) {
        best_score = weighted;
        best_feature = feature;
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no improving split: leaf

  // Partition the node's index range in place.
  auto mid_it = std::stable_partition(
      indices->begin() + begin, indices->begin() + end, [&](int idx) {
        return train.feature(idx, best_feature) <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - indices->begin());
  GBX_CHECK(mid > begin && mid < end);

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(train, indices, begin, mid, depth + 1, rng);
  const int right = Build(train, indices, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

int DecisionTreeClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(!nodes_.empty(), "DT: Predict called before Fit (no tree)");
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].label;
}

}  // namespace gbx
