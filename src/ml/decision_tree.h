// CART decision-tree classifier (Breiman et al., 1984) with scikit-learn's
// defaults: gini impurity, best-first exact splits, unlimited depth,
// min_samples_split = 2, min_samples_leaf = 1. Random forests reuse the
// same builder with per-node feature subsampling and bootstrap rows.
#ifndef GBX_ML_DECISION_TREE_H_
#define GBX_ML_DECISION_TREE_H_

#include "ml/classifier.h"

namespace gbx {

struct DecisionTreeConfig {
  int max_depth = -1;         // -1 = unlimited
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Number of features considered per split; -1 = all (plain CART),
  /// otherwise a fresh random subset per node (random forest mode).
  int max_features = -1;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(DecisionTreeConfig config = {});

  void Fit(const Dataset& train, Pcg32* rng) override;

  /// Fits on a row subset (with repetitions allowed — bootstrap bags).
  void FitIndices(const Dataset& train, const std::vector<int>& indices,
                  Pcg32* rng);

  int Predict(const double* x) const override;
  std::string name() const override { return "DT"; }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;       // -1 marks a leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    int label = -1;          // majority label (valid for every node)
  };

  int Build(const Dataset& train, std::vector<int>* indices, int begin,
            int end, int depth, Pcg32* rng);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
  int depth_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_DECISION_TREE_H_
