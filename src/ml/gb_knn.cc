#include "ml/gb_knn.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "index/index_strategy.h"
#include "simd/simd.h"

namespace gbx {

namespace {

// Phase timers share the gbx_core_phase_ms family with RD-GBG
// (core/rd_gbg.cc). Call sites gate on metrics::Enabled() and cache the
// histogram pointer in a function-local static, so the armed cost is
// two clock reads and the disarmed cost is one relaxed atomic load.
metrics::Histogram* PhaseHistogram(const char* phase) {
  return metrics::MetricsRegistry::Default().GetHistogram(
      "gbx_core_phase_ms", {{"phase", phase}},
      "Core algorithm phase durations (ms); phases: rdgbg_fit, "
      "rdgbg_rconf, gbknn_fit, gbknn_index_build, gbknn_predict_batch");
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Applies the training min-max transform to one raw query.
std::vector<double> ScaleQuery(const MinMaxScaler& scaler, const double* x,
                               int p) {
  Matrix tmp(1, p);
  for (int j = 0; j < p; ++j) tmp.At(0, j) = x[j];
  const Matrix scaled = scaler.Transform(tmp);
  std::vector<double> q(p);
  for (int j = 0; j < p; ++j) q[j] = scaled.At(0, j);
  return q;
}

}  // namespace

GbKnnClassifier::GbKnnClassifier(RdGbgConfig gbg, int k)
    : gbg_config_(gbg), k_(k), effective_seed_(gbg.seed) {
  GBX_CHECK_GE(k, 1);
}

void GbKnnClassifier::Fit(const Dataset& train, Pcg32* rng) {
  GBX_CHECK_GT(train.size(), 0);
  const bool metrics_on = metrics::Enabled();
  const auto fit_start = std::chrono::steady_clock::now();
  RdGbgConfig cfg = gbg_config_;
  if (rng != nullptr) {
    cfg.seed = (static_cast<std::uint64_t>(rng->NextU32()) << 32) |
               rng->NextU32();
  }
  // Provenance for model artifacts; gbg_config_ itself stays the
  // caller's immutable input.
  effective_seed_ = cfg.seed;
  // The balls live in min-max-scaled space; remember the transform so
  // queries are scaled consistently.
  scaler_ = MinMaxScaler();
  scaler_.Fit(train.x());
  cfg.scale_features = true;
  RdGbgResult result = GenerateRdGbg(train, cfg);
  balls_ = std::move(result.balls);
  num_classes_ = train.num_classes();
  RebuildCenterIndex();
  if (metrics_on) {
    static metrics::Histogram* h = PhaseHistogram("gbknn_fit");
    h->Observe(MsSince(fit_start));
  }
}

void GbKnnClassifier::Restore(GranularBallSet balls, MinMaxScaler scaler,
                              int num_classes) {
  GBX_CHECK(!balls.empty());
  GBX_CHECK(scaler.fitted());
  GBX_CHECK_EQ(static_cast<int>(scaler.mins().size()),
               balls.scaled_features().cols());
  GBX_CHECK_GE(num_classes, balls.num_classes());
  for (const GranularBall& ball : balls.balls()) {
    GBX_CHECK(ball.label >= 0 && ball.label < num_classes);
  }
  balls_ = std::move(balls);
  scaler_ = std::move(scaler);
  num_classes_ = num_classes;
  RebuildCenterIndex();
}

void GbKnnClassifier::set_index_strategy(IndexStrategy strategy) {
  if (strategy == gbg_config_.index_strategy) return;  // already resolved for this strategy
  gbg_config_.index_strategy = strategy;
  RebuildCenterIndex();
}

IndexStrategy GbKnnClassifier::resolved_index_strategy() const {
  return resolved_;
}

void GbKnnClassifier::set_recall_target(double recall) {
  GBX_CHECK_MSG(recall > 0.0 && recall <= 1.0,
                "GB-kNN: recall target must be in (0, 1]");
  recall_target_ = recall;
}

void GbKnnClassifier::RebuildCenterIndex() {
  // RAII: the early returns below (unfitted, flat backend) are builds
  // too, just trivial ones.
  static metrics::Histogram* build_hist = PhaseHistogram("gbknn_index_build");
  metrics::ScopedTimerMs build_timer(metrics::Enabled() ? build_hist
                                                        : nullptr);
  center_index_.reset();
  flat_centers_.reset();
  resolved_ = IndexStrategy::kFlat;
  if (!fitted()) return;
  const int m = balls_.size();
  const int p = balls_.scaled_features().cols();
  const int threads = ResolveNumThreads(gbg_config_.num_threads);
  const auto materialize = [&](Matrix* centers, std::vector<double>* radii) {
    *centers = Matrix(m, p);
    radii->resize(m);
    for (int i = 0; i < m; ++i) {
      const GranularBall& ball = balls_.ball(i);
      for (int j = 0; j < p; ++j) centers->At(i, j) = ball.center[j];
      (*radii)[i] = ball.radius;
    }
  };
  // Resolve before materializing: only kAuto's EffectiveDimension-gated
  // ball-tree tier inspects the centers, so the common flat path skips
  // the O(m·p) copy entirely.
  Matrix centers;
  std::vector<double> radii;
  IndexStrategy backend;
  if (gbg_config_.index_strategy == IndexStrategy::kAuto &&
      CenterResolutionWantsCenters(m, p)) {
    materialize(&centers, &radii);
    backend = ResolveCenterIndexStrategy(gbg_config_.index_strategy, m, p,
                                         threads, &centers);
  } else {
    backend = ResolveCenterIndexStrategy(gbg_config_.index_strategy, m, p,
                                         threads);
    if (backend == IndexStrategy::kTree ||
        backend == IndexStrategy::kBallTree) {
      materialize(&centers, &radii);
    }
  }
  if (backend == IndexStrategy::kTree || backend == IndexStrategy::kBallTree) {
    center_index_ = std::make_shared<const CenterIndex>(
        std::move(centers), std::move(radii), backend);
    resolved_ = backend;
    return;
  }
  // Flat or sampled: pack the centers into the SoA blocked layout the
  // SIMD surface-score kernel streams (src/simd/simd.h).
  auto flat = std::make_shared<FlatCenters>();
  flat->soa = SoaMatrix(p);
  flat->soa.Reserve(m);
  flat->radii.resize(m);
  if (backend == IndexStrategy::kSampled) {
    flat->order.resize(m);
    for (int i = 0; i < m; ++i) flat->order[i] = i;
    // Seed keyed on the ball count alone, so the same model gives the
    // same permutation in every process — a restored artifact served
    // under kSampled predicts identically wherever it runs.
    Pcg32 perm_rng(0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(m));
    perm_rng.Shuffle(&flat->order);
    resolved_ = IndexStrategy::kSampled;
  }
  for (int t = 0; t < m; ++t) {
    const GranularBall& ball =
        balls_.ball(flat->order.empty() ? t : flat->order[t]);
    flat->soa.AppendRow(ball.center.data());
    flat->radii[t] = ball.radius;
  }
  flat_centers_ = std::move(flat);
}

int GbKnnClassifier::VoteOverNearest(
    const std::vector<std::pair<double, int>>& dists, int k) const {
  std::vector<int> votes(num_classes_, 0);
  for (int i = 0; i < k; ++i) ++votes[balls_.ball(dists[i].second).label];
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  for (int i = 0; i < k; ++i) {
    const int cls = balls_.ball(dists[i].second).label;
    if (votes[cls] == votes[best]) return cls;
  }
  return best;
}

std::vector<std::pair<double, int>> GbKnnClassifier::ScoredTopK(
    const std::vector<double>& q, int k, double recall) const {
  const std::shared_ptr<const CenterIndex> index = center_index_;
  if (index != nullptr) {
    // KNearestSurface ranks balls by the flat scan's exact (score,
    // index) order — score = dist - r inside, dist outside, computed
    // with the identical arithmetic — so its top-k IS the flat
    // partial_sort's top-k, bit for bit, whichever tree backend is
    // behind it.
    const std::vector<Neighbor> top = index->KNearestSurface(q.data(), k);
    GBX_DCHECK(static_cast<int>(top.size()) == k);
    std::vector<std::pair<double, int>> dists;
    dists.reserve(top.size());
    for (const Neighbor& nb : top) dists.emplace_back(nb.distance, nb.index);
    return dists;
  }

  // Flat scan through the SIMD surface-score kernel. The score fill
  // writes disjoint slots, so it parallelizes over the pool without
  // changing the values (the kernel is bit-exact on every dispatch
  // level); the partial_sort stays serial and deterministic. Under
  // PredictBatch the outer per-query loop already owns the workers and
  // this inner loop runs serially (nested parallel regions serialize) —
  // the fan-out only matters for single large-model Predict calls (the
  // latency-bound serving path).
  const std::shared_ptr<const FlatCenters> flat = flat_centers_;
  GBX_CHECK(flat != nullptr);
  const int m = flat->soa.rows();
  const int p = flat->soa.cols();
  // kSampled scans the permutation prefix sized by the recall knob; at
  // recall 1.0 the prefix is everything and the result is bit-identical
  // to the exact scan (same pair set, same total order).
  int scan = m;
  if (resolved_ == IndexStrategy::kSampled && recall < 1.0) {
    scan =
        std::min(m, std::max(k, static_cast<int>(std::ceil(recall * m))));
  }
  std::vector<double> scores(scan);
  std::vector<std::pair<double, int>> dists(scan);
  ParallelForRange(
      scan, ParallelGrain(p),
      ParallelThreads(scan, p, ResolveNumThreads(gbg_config_.num_threads)),
      [&](int begin, int end) {
        simd::SurfaceScores(q.data(), flat->soa, flat->radii.data(), begin,
                            end, scores.data());
        if (flat->order.empty()) {
          for (int i = begin; i < end; ++i) dists[i] = {scores[i], i};
        } else {
          for (int i = begin; i < end; ++i) {
            dists[i] = {scores[i], flat->order[i]};
          }
        }
      });
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  dists.resize(k);
  return dists;
}

int GbKnnClassifier::Predict(const double* x) const {
  return PredictWithRecall(x, recall_target_);
}

int GbKnnClassifier::PredictWithRecall(const double* x, double recall) const {
  GBX_CHECK_MSG(fitted(),
                "GB-kNN: Predict called before Fit/Restore (empty ball set)");
  GBX_CHECK_MSG(recall > 0.0 && recall <= 1.0,
                "GB-kNN: per-call recall must be in (0, 1]");
  const int p = balls_.scaled_features().cols();
  // Ball score: a query inside a ball (pure, non-overlapping region) is
  // decided by it — score = dist - r < 0, unique by the non-overlap
  // invariant. Outside every ball, the nearest *center* wins. (Plain
  // dist - r for far queries lets large-radius balls dominate under
  // high-dimensional distance concentration.)
  const int k = std::min(k_, balls_.size());
  return VoteOverNearest(ScoredTopK(ScaleQuery(scaler_, x, p), k, recall), k);
}

std::vector<std::pair<double, int>> GbKnnClassifier::TopScoredBalls(
    const double* x, int k) const {
  GBX_CHECK_MSG(fitted(), "GB-kNN: TopScoredBalls before Fit/Restore");
  GBX_CHECK_GE(k, 1);
  const int p = balls_.scaled_features().cols();
  return ScoredTopK(ScaleQuery(scaler_, x, p), std::min(k, balls_.size()),
                    recall_target_);
}

std::vector<int> GbKnnClassifier::PredictBatch(const Matrix& x) const {
  return PredictBatchWithRecall(x, recall_target_);
}

std::vector<int> GbKnnClassifier::PredictBatchWithRecall(const Matrix& x,
                                                         double recall) const {
  static metrics::Histogram* predict_hist =
      PhaseHistogram("gbknn_predict_batch");
  metrics::ScopedTimerMs predict_timer(metrics::Enabled() ? predict_hist
                                                          : nullptr);
  std::vector<int> out(x.rows());
  ParallelFor(x.rows(), gbg_config_.num_threads,
              [&](int i) { out[i] = PredictWithRecall(x.Row(i), recall); });
  return out;
}

}  // namespace gbx
