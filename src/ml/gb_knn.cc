#include "ml/gb_knn.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/parallel.h"
#include "index/index_strategy.h"

namespace gbx {

namespace {

// Phase timers share the gbx_core_phase_ms family with RD-GBG
// (core/rd_gbg.cc). Call sites gate on metrics::Enabled() and cache the
// histogram pointer in a function-local static, so the armed cost is
// two clock reads and the disarmed cost is one relaxed atomic load.
metrics::Histogram* PhaseHistogram(const char* phase) {
  return metrics::MetricsRegistry::Default().GetHistogram(
      "gbx_core_phase_ms", {{"phase", phase}},
      "Core algorithm phase durations (ms); phases: rdgbg_fit, "
      "rdgbg_rconf, gbknn_fit, gbknn_index_build, gbknn_predict_batch");
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

GbKnnClassifier::GbKnnClassifier(RdGbgConfig gbg, int k)
    : gbg_config_(gbg), k_(k), effective_seed_(gbg.seed) {
  GBX_CHECK_GE(k, 1);
}

void GbKnnClassifier::Fit(const Dataset& train, Pcg32* rng) {
  GBX_CHECK_GT(train.size(), 0);
  const bool metrics_on = metrics::Enabled();
  const auto fit_start = std::chrono::steady_clock::now();
  RdGbgConfig cfg = gbg_config_;
  if (rng != nullptr) {
    cfg.seed = (static_cast<std::uint64_t>(rng->NextU32()) << 32) |
               rng->NextU32();
  }
  // Provenance for model artifacts; gbg_config_ itself stays the
  // caller's immutable input.
  effective_seed_ = cfg.seed;
  // The balls live in min-max-scaled space; remember the transform so
  // queries are scaled consistently.
  scaler_ = MinMaxScaler();
  scaler_.Fit(train.x());
  cfg.scale_features = true;
  RdGbgResult result = GenerateRdGbg(train, cfg);
  balls_ = std::move(result.balls);
  num_classes_ = train.num_classes();
  RebuildCenterIndex();
  if (metrics_on) {
    static metrics::Histogram* h = PhaseHistogram("gbknn_fit");
    h->Observe(MsSince(fit_start));
  }
}

void GbKnnClassifier::Restore(GranularBallSet balls, MinMaxScaler scaler,
                              int num_classes) {
  GBX_CHECK(!balls.empty());
  GBX_CHECK(scaler.fitted());
  GBX_CHECK_EQ(static_cast<int>(scaler.mins().size()),
               balls.scaled_features().cols());
  GBX_CHECK_GE(num_classes, balls.num_classes());
  for (const GranularBall& ball : balls.balls()) {
    GBX_CHECK(ball.label >= 0 && ball.label < num_classes);
  }
  balls_ = std::move(balls);
  scaler_ = std::move(scaler);
  num_classes_ = num_classes;
  RebuildCenterIndex();
}

void GbKnnClassifier::set_index_strategy(IndexStrategy strategy) {
  if (strategy == gbg_config_.index_strategy) return;  // already resolved for this strategy
  gbg_config_.index_strategy = strategy;
  RebuildCenterIndex();
}

IndexStrategy GbKnnClassifier::resolved_index_strategy() const {
  if (center_index_ == nullptr) return IndexStrategy::kFlat;
  return center_index_->kd != nullptr ? IndexStrategy::kTree
                                      : IndexStrategy::kBallTree;
}

void GbKnnClassifier::RebuildCenterIndex() {
  // RAII: the early returns below (unfitted, flat backend) are builds
  // too, just trivial ones.
  static metrics::Histogram* build_hist = PhaseHistogram("gbknn_index_build");
  metrics::ScopedTimerMs build_timer(metrics::Enabled() ? build_hist
                                                        : nullptr);
  center_index_.reset();
  if (!fitted()) return;
  const int m = balls_.size();
  const int p = balls_.scaled_features().cols();
  const int threads = ResolveNumThreads(gbg_config_.num_threads);
  const auto materialize = [&](Matrix* centers, std::vector<double>* radii) {
    *centers = Matrix(m, p);
    radii->resize(m);
    for (int i = 0; i < m; ++i) {
      const GranularBall& ball = balls_.ball(i);
      for (int j = 0; j < p; ++j) centers->At(i, j) = ball.center[j];
      (*radii)[i] = ball.radius;
    }
  };
  // Resolve before materializing: only kAuto's EffectiveDimension-gated
  // ball-tree tier inspects the centers, so the common flat path skips
  // the O(m·p) copy entirely.
  Matrix centers;
  std::vector<double> radii;
  IndexStrategy backend;
  if (gbg_config_.index_strategy == IndexStrategy::kAuto &&
      CenterResolutionWantsCenters(m, p)) {
    materialize(&centers, &radii);
    backend = ResolveCenterIndexStrategy(gbg_config_.index_strategy, m, p,
                                         threads, &centers);
  } else {
    backend = ResolveCenterIndexStrategy(gbg_config_.index_strategy, m, p,
                                         threads);
    if (backend == IndexStrategy::kTree ||
        backend == IndexStrategy::kBallTree) {
      materialize(&centers, &radii);
    }
  }
  if (backend != IndexStrategy::kTree &&
      backend != IndexStrategy::kBallTree) {
    return;
  }
  center_index_ = std::make_shared<const CenterIndex>(
      std::move(centers), std::move(radii), backend);
}

int GbKnnClassifier::VoteOverNearest(
    const std::vector<std::pair<double, int>>& dists, int k) const {
  std::vector<int> votes(num_classes_, 0);
  for (int i = 0; i < k; ++i) ++votes[balls_.ball(dists[i].second).label];
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  for (int i = 0; i < k; ++i) {
    const int cls = balls_.ball(dists[i].second).label;
    if (votes[cls] == votes[best]) return cls;
  }
  return best;
}

int GbKnnClassifier::PredictWithCenterTree(const CenterIndex& index,
                                           const std::vector<double>& q,
                                           int k) const {
  // KNearestSurface ranks balls by the flat scan's exact (score, index)
  // order — score = dist - r inside, dist outside, computed with the
  // identical arithmetic — so its top-k IS the flat partial_sort's
  // top-k, bit for bit, whichever tree backend is behind it.
  const std::vector<Neighbor> top = index.KNearestSurface(q.data(), k);
  GBX_DCHECK(static_cast<int>(top.size()) == k);
  std::vector<std::pair<double, int>> dists;
  dists.reserve(top.size());
  for (const Neighbor& nb : top) dists.emplace_back(nb.distance, nb.index);
  return VoteOverNearest(dists, k);
}

int GbKnnClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(fitted(),
                "GB-kNN: Predict called before Fit/Restore (empty ball set)");
  const int p = balls_.scaled_features().cols();
  // Scale the query like the training features.
  std::vector<double> q(p);
  {
    Matrix tmp(1, p);
    for (int j = 0; j < p; ++j) tmp.At(0, j) = x[j];
    const Matrix scaled = scaler_.Transform(tmp);
    for (int j = 0; j < p; ++j) q[j] = scaled.At(0, j);
  }

  // Ball score: a query inside a ball (pure, non-overlapping region) is
  // decided by it — score = dist - r < 0, unique by the non-overlap
  // invariant. Outside every ball, the nearest *center* wins. (Plain
  // dist - r for far queries lets large-radius balls dominate under
  // high-dimensional distance concentration.)
  const int k = std::min(k_, balls_.size());
  const std::shared_ptr<const CenterIndex> index = center_index_;
  if (index != nullptr) return PredictWithCenterTree(*index, q, k);

  // Flat scan: the score fill writes disjoint per-ball slots, so it
  // parallelizes over the pool without changing the values; the
  // partial_sort stays serial and deterministic. Under PredictBatch the
  // outer per-query loop already owns the workers and this inner loop
  // runs serially (nested parallel regions serialize) — the fan-out
  // only matters for single large-model Predict calls (the
  // latency-bound serving path).
  const int m = balls_.size();
  std::vector<std::pair<double, int>> dists(m);
  ParallelForRange(
      m, ParallelGrain(p),
      ParallelThreads(m, p, ResolveNumThreads(gbg_config_.num_threads)),
      [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
          const GranularBall& ball = balls_.ball(i);
          const double dist =
              EuclideanDistance(q.data(), ball.center.data(), p);
          dists[i] = {dist <= ball.radius ? dist - ball.radius : dist, i};
        }
      });
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  return VoteOverNearest(dists, k);
}

std::vector<int> GbKnnClassifier::PredictBatch(const Matrix& x) const {
  static metrics::Histogram* predict_hist =
      PhaseHistogram("gbknn_predict_batch");
  metrics::ScopedTimerMs predict_timer(metrics::Enabled() ? predict_hist
                                                          : nullptr);
  std::vector<int> out(x.rows());
  ParallelFor(x.rows(), gbg_config_.num_threads,
              [&](int i) { out[i] = Predict(x.Row(i)); });
  return out;
}

}  // namespace gbx
