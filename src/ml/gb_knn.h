// Granular-ball nearest-neighbor classifier (GB-kNN, after Xia et al.,
// Information Sciences 2019 [22] — the original granular-ball classifier).
// Training granulates the data with RD-GBG; prediction assigns the label
// of the ball whose *surface* is nearest to the query:
//     d(x, gb) = ||x - c|| - r.
// Because balls are pure and noise was removed during granulation, GB-kNN
// inherits RD-GBG's noise robustness, and inference touches m balls
// instead of N samples. This is an extension beyond the paper's five
// evaluation classifiers, exercising the GranularBallSet as a model.
#ifndef GBX_ML_GB_KNN_H_
#define GBX_ML_GB_KNN_H_

#include "core/rd_gbg.h"
#include "data/scaler.h"
#include "ml/classifier.h"

namespace gbx {

class GbKnnClassifier : public Classifier {
 public:
  /// `k` balls vote; k = 1 reproduces the classic GB-kNN rule.
  explicit GbKnnClassifier(RdGbgConfig gbg = {}, int k = 1);

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  /// Queries are independent, so batch prediction fans out over the
  /// shared thread pool (RdGbgConfig::num_threads; <= 0 = GBX_THREADS or
  /// hardware). Output is identical to the serial per-query loop.
  std::vector<int> PredictBatch(const Matrix& x) const override;
  std::string name() const override { return "GB-kNN"; }

  /// Restores a fitted state without re-granulating (model
  /// deserialization; see serve/model_io.h). `balls` must be non-empty,
  /// `scaler` fitted over the same dimensionality, and `num_classes`
  /// must cover every ball label. Predictions after Restore are
  /// bit-identical to the classifier the state was captured from.
  void Restore(GranularBallSet balls, MinMaxScaler scaler, int num_classes);

  bool fitted() const { return !balls_.empty(); }
  int k() const { return k_; }
  int num_classes() const { return num_classes_; }
  const RdGbgConfig& config() const { return gbg_config_; }
  /// The seed the last granulation actually ran with: the configured
  /// seed, or the rng-derived one when Fit received a non-null rng.
  /// Model artifacts persist it as provenance (serve/model_io.h).
  std::uint64_t effective_seed() const { return effective_seed_; }
  const MinMaxScaler& scaler() const { return scaler_; }

  /// Number of balls in the fitted model (0 before Fit).
  int num_balls() const { return balls_.size(); }
  const GranularBallSet& balls() const { return balls_; }

 private:
  RdGbgConfig gbg_config_;
  int k_;
  std::uint64_t effective_seed_;
  GranularBallSet balls_;
  MinMaxScaler scaler_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_GB_KNN_H_
