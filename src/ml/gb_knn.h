// Granular-ball nearest-neighbor classifier (GB-kNN, after Xia et al.,
// Information Sciences 2019 [22] — the original granular-ball classifier).
// Training granulates the data with RD-GBG; prediction assigns the label
// of the ball whose *surface* is nearest to the query:
//     d(x, gb) = ||x - c|| - r.
// Because balls are pure and noise was removed during granulation, GB-kNN
// inherits RD-GBG's noise robustness, and inference touches m balls
// instead of N samples. This is an extension beyond the paper's five
// evaluation classifiers, exercising the GranularBallSet as a model.
#ifndef GBX_ML_GB_KNN_H_
#define GBX_ML_GB_KNN_H_

#include "core/rd_gbg.h"
#include "data/scaler.h"
#include "ml/classifier.h"

namespace gbx {

class GbKnnClassifier : public Classifier {
 public:
  /// `k` balls vote; k = 1 reproduces the classic GB-kNN rule.
  explicit GbKnnClassifier(RdGbgConfig gbg = {}, int k = 1);

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  /// Queries are independent, so batch prediction fans out over the
  /// shared thread pool (RdGbgConfig::num_threads; <= 0 = GBX_THREADS or
  /// hardware). Output is identical to the serial per-query loop.
  std::vector<int> PredictBatch(const Matrix& x) const override;
  std::string name() const override { return "GB-kNN"; }

  /// Number of balls in the fitted model (0 before Fit).
  int num_balls() const { return balls_.size(); }
  const GranularBallSet& balls() const { return balls_; }

 private:
  RdGbgConfig gbg_config_;
  int k_;
  GranularBallSet balls_;
  MinMaxScaler scaler_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_GB_KNN_H_
