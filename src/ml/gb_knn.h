// Granular-ball nearest-neighbor classifier (GB-kNN, after Xia et al.,
// Information Sciences 2019 [22] — the original granular-ball classifier).
// Training granulates the data with RD-GBG; prediction assigns the label
// of the ball whose *surface* is nearest to the query:
//     d(x, gb) = ||x - c|| - r.
// Because balls are pure and noise was removed during granulation, GB-kNN
// inherits RD-GBG's noise robustness, and inference touches m balls
// instead of N samples. This is an extension beyond the paper's five
// evaluation classifiers, exercising the GranularBallSet as a model.
#ifndef GBX_ML_GB_KNN_H_
#define GBX_ML_GB_KNN_H_

#include <memory>

#include "core/rd_gbg.h"
#include "data/scaler.h"
#include "index/ball_tree.h"
#include "index/dynamic_kd_tree.h"
#include "ml/classifier.h"

namespace gbx {

class GbKnnClassifier : public Classifier {
 public:
  /// `k` balls vote; k = 1 reproduces the classic GB-kNN rule.
  explicit GbKnnClassifier(RdGbgConfig gbg = {}, int k = 1);

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  /// Queries are independent, so batch prediction fans out over the
  /// shared thread pool (RdGbgConfig::num_threads; <= 0 = GBX_THREADS or
  /// hardware). Output is identical to the serial per-query loop.
  std::vector<int> PredictBatch(const Matrix& x) const override;
  std::string name() const override { return "GB-kNN"; }

  /// Per-call recall variants: predict as if set_recall_target(recall)
  /// were in effect, WITHOUT touching the fitted-model knob — the
  /// serving engine threads a per-request recall through these so a
  /// degradation controller can lower quality for some requests while
  /// concurrent full-quality requests are in flight (the member knob is
  /// not safe to flip mid-prediction; these are, being pure reads).
  /// `recall` must be in (0, 1]. Only the kSampled tier interprets it:
  /// under every exact strategy the override is ignored and the result
  /// is bit-identical to Predict/PredictBatch, as it is at recall 1.0
  /// (the prefix is everything). Prefixes nest, so the same monotone
  /// recall contract as set_recall_target applies per call.
  int PredictWithRecall(const double* x, double recall) const;
  std::vector<int> PredictBatchWithRecall(const Matrix& x,
                                          double recall) const;
  /// True when a per-call recall override below 1.0 would change the
  /// scan (i.e. the sampled tier is the resolved backend).
  bool SupportsRecallOverride() const {
    return resolved_ == IndexStrategy::kSampled;
  }

  /// Restores a fitted state without re-granulating (model
  /// deserialization; see serve/model_io.h). `balls` must be non-empty,
  /// `scaler` fitted over the same dimensionality, and `num_classes`
  /// must cover every ball label. Predictions after Restore are
  /// bit-identical to the classifier the state was captured from.
  void Restore(GranularBallSet balls, MinMaxScaler scaler, int num_classes);

  bool fitted() const { return !balls_.empty(); }
  int k() const { return k_; }
  int num_classes() const { return num_classes_; }
  const RdGbgConfig& config() const { return gbg_config_; }
  /// The seed the last granulation actually ran with: the configured
  /// seed, or the rng-derived one when Fit received a non-null rng.
  /// Model artifacts persist it as provenance (serve/model_io.h).
  std::uint64_t effective_seed() const { return effective_seed_; }
  const MinMaxScaler& scaler() const { return scaler_; }

  /// Number of balls in the fitted model (0 before Fit).
  int num_balls() const { return balls_.size(); }
  const GranularBallSet& balls() const { return balls_; }

  /// Chooses how Predict scans the ball centers: kFlat is the exhaustive
  /// per-query scan (SIMD surface-score kernel over the SoA center
  /// layout, parallelized over the pool for large ball sets), kTree a
  /// KD-tree and kBallTree a metric ball-tree over the centers, built
  /// once at Fit/Restore and shared by Predict / PredictBatch / the
  /// serving engine; kAuto resolves by ball count, dimensionality, and
  /// worker count; kSampled scans a seeded fixed-permutation prefix
  /// sized by set_recall_target. Every EXACT strategy returns
  /// bit-identical predictions — both trees rank balls by the flat
  /// scan's exact (score, index) order via KNearestSurface, whose
  /// subtree bound is a certain score lower bound — and kSampled at
  /// recall 1.0 scans everything, so it is bit-identical too (the pair
  /// total order makes the permuted fill converge to the same top-k).
  /// The knob is pure runtime state: model artifacts never persist it,
  /// and a model saved under one strategy predicts identically under
  /// the other exact ones (tests/roundtrip_fuzz_test.cc). Re-resolves
  /// and rebuilds/drops the backend immediately when fitted; a no-op
  /// when `strategy` is already set. NOT safe to call concurrently with
  /// in-flight Predict/PredictBatch — flip the knob before serving
  /// starts (as gbx_serve does at load).
  void set_index_strategy(IndexStrategy strategy);
  IndexStrategy index_strategy() const { return gbg_config_.index_strategy; }
  /// What Predict will actually use: kTree / kBallTree when a center
  /// index is built, kSampled when the sampled tier is active, kFlat
  /// otherwise (always kFlat before Fit/Restore).
  IndexStrategy resolved_index_strategy() const;

  /// Target recall of the kSampled tier, in (0, 1]; default 1.0. The
  /// candidate prefix scanned per query is max(k, ceil(recall * m)) of
  /// the m balls — a uniform sample via the fixed permutation, so the
  /// expected fraction of the exact top-k recovered is >= recall, and
  /// prefixes nest: raising the knob can only add candidates, making
  /// measured recall monotone in it (tests/recall_test.cc). Ignored by
  /// every other strategy. Pure runtime state, never persisted; safe to
  /// change between (not during) predictions without a rebuild.
  void set_recall_target(double recall);
  double recall_target() const { return recall_target_; }

  /// The k (score, ball-index) pairs Predict votes over, ascending by
  /// the (score, index) total order. Exposes the candidate ranking so
  /// tests can measure the sampled tier's recall against the exact
  /// scan; `x` is an unscaled query like Predict's.
  std::vector<std::pair<double, int>> TopScoredBalls(const double* x,
                                                     int k) const;

 private:
  // Ball centers as a matrix, radii as per-center weights, and one tree
  // backend over them serving the surface-distance query
  // (KNearestSurface) — a KD-tree up to the box-pruning crossover, a
  // metric ball-tree past it. Heap-allocated as one block so the tree's
  // pointers into `centers`/`radii` survive moves of the classifier;
  // shared_ptr keeps the classifier copyable (the index is immutable
  // after construction, so sharing is safe — queries never mutate the
  // tree).
  struct CenterIndex {
    Matrix centers;
    std::vector<double> radii;
    std::unique_ptr<DynamicKdTree> kd;  // exactly one backend is set
    std::unique_ptr<BallTree> ball;
    CenterIndex(Matrix centers_in, std::vector<double> radii_in,
                IndexStrategy backend)
        : centers(std::move(centers_in)), radii(std::move(radii_in)) {
      if (backend == IndexStrategy::kBallTree) {
        ball = std::make_unique<BallTree>(&centers, radii.data());
      } else {
        kd = std::make_unique<DynamicKdTree>(&centers, radii.data());
      }
    }
    std::vector<Neighbor> KNearestSurface(const double* query, int k) const {
      return kd != nullptr ? kd->KNearestSurface(query, k)
                           : ball->KNearestSurface(query, k);
    }
  };

  // Flat-scan backend: centers and radii in the SoA blocked layout the
  // SIMD kernels stream (src/simd/simd.h). `order[t]` maps SoA row t
  // back to its ball index — identity (empty vector) for the exact
  // scan, a seeded fixed permutation under kSampled so every candidate
  // prefix is a uniform sample and prefixes nest (recall monotone in
  // the knob by construction, and the same across processes: the seed
  // derives from the ball count alone). shared_ptr for the same
  // copyability/move-stability reasons as CenterIndex.
  struct FlatCenters {
    SoaMatrix soa;
    std::vector<double> radii;
    std::vector<int> order;  // empty = identity
  };

  /// (Re)derives the resolved strategy and builds the center tree or
  /// the SoA flat backend. Called by Fit/Restore/set_index_strategy.
  void RebuildCenterIndex();
  /// The top-k (score, ball) pairs for a scaled query — the shared core
  /// of Predict and TopScoredBalls, dispatching on the resolved
  /// backend. `recall` sizes the sampled tier's candidate prefix
  /// (callers pass recall_target_ or a per-call override; ignored
  /// outside kSampled).
  std::vector<std::pair<double, int>> ScoredTopK(const std::vector<double>& q,
                                                 int k, double recall) const;
  int VoteOverNearest(const std::vector<std::pair<double, int>>& dists,
                      int k) const;

  RdGbgConfig gbg_config_;
  int k_;
  std::uint64_t effective_seed_;
  GranularBallSet balls_;
  MinMaxScaler scaler_;
  int num_classes_ = 0;
  std::shared_ptr<const CenterIndex> center_index_;
  std::shared_ptr<const FlatCenters> flat_centers_;
  IndexStrategy resolved_ = IndexStrategy::kFlat;
  double recall_target_ = 1.0;
};

}  // namespace gbx

#endif  // GBX_ML_GB_KNN_H_
