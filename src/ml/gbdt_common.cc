#include "ml/gbdt_common.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace gbx {

void HistogramBinner::Fit(const Matrix& x, int max_bins) {
  GBX_CHECK_GE(max_bins, 2);
  GBX_CHECK_LE(max_bins, 65535);
  const int n = x.rows();
  const int p = x.cols();
  edges_.assign(p, {});
  std::vector<double> values(n);
  for (int j = 0; j < p; ++j) {
    for (int i = 0; i < n; ++i) values[i] = x.At(i, j);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    const int distinct = static_cast<int>(values.size());
    std::vector<double>& edges = edges_[j];
    if (distinct <= max_bins) {
      // One bin per distinct value; edges at the values themselves
      // (v <= edge goes left).
      for (int i = 0; i + 1 < distinct; ++i) edges.push_back(values[i]);
    } else {
      // Evenly spaced ranks through the distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const int rank = static_cast<int>(
            static_cast<std::int64_t>(b) * distinct / max_bins);
        const double edge = values[rank - 1];
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
}

std::vector<std::uint16_t> HistogramBinner::Transform(const Matrix& x) const {
  GBX_CHECK_EQ(x.cols(), num_features());
  std::vector<std::uint16_t> out(
      static_cast<std::size_t>(x.rows()) * x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (int j = 0; j < x.cols(); ++j) {
      const auto& edges = edges_[j];
      const auto it = std::lower_bound(edges.begin(), edges.end(), row[j]);
      // Values equal to an edge belong to that edge's bin (v <= edge).
      out[static_cast<std::size_t>(i) * x.cols() + j] =
          static_cast<std::uint16_t>(it - edges.begin());
    }
  }
  return out;
}

double RegressionTree::Predict(const double* x) const {
  GBX_CHECK(!nodes.empty());
  int node = 0;
  while (nodes[node].feature >= 0) {
    node = x[nodes[node].feature] <= nodes[node].threshold
               ? nodes[node].left
               : nodes[node].right;
  }
  return nodes[node].value;
}

int RegressionTree::num_leaves() const {
  int count = 0;
  for (const auto& node : nodes) {
    if (node.feature < 0) ++count;
  }
  return count;
}

void Softmax(double* scores, int k) {
  double max_score = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < k; ++c) max_score = std::max(max_score, scores[c]);
  double sum = 0.0;
  for (int c = 0; c < k; ++c) {
    scores[c] = std::exp(scores[c] - max_score);
    sum += scores[c];
  }
  for (int c = 0; c < k; ++c) scores[c] /= sum;
}

namespace {

struct SplitInfo {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;  // rows with bin <= this go left
  bool valid() const { return feature >= 0; }
};

struct LeafState {
  int node_id = 0;
  int begin = 0;  // range in the shared row array
  int end = 0;
  int depth = 0;
  double sum_grad = 0.0;
  double sum_hess = 0.0;
  SplitInfo best;
};

/// Finds the best split of a leaf by building per-feature histograms over
/// its rows and scanning bins.
SplitInfo FindBestSplit(const HistogramBinner& binner,
                        const std::vector<std::uint16_t>& binned, int p,
                        const std::vector<double>& grad,
                        const std::vector<double>& hess,
                        const std::vector<int>& rows, int begin, int end,
                        double sum_grad, double sum_hess,
                        const GbdtTreeConfig& cfg,
                        const std::vector<int>* feature_subset) {
  SplitInfo best;
  const int n = end - begin;
  if (n < 2 * cfg.min_child_samples) return best;
  const double parent_score =
      sum_grad * sum_grad / (sum_hess + cfg.lambda);

  std::vector<double> hist_grad;
  std::vector<double> hist_hess;
  std::vector<int> hist_count;
  const int num_candidates =
      feature_subset ? static_cast<int>(feature_subset->size()) : p;
  for (int fi = 0; fi < num_candidates; ++fi) {
    const int j = feature_subset ? (*feature_subset)[fi] : fi;
    const int bins = binner.num_bins(j);
    if (bins < 2) continue;
    hist_grad.assign(bins, 0.0);
    hist_hess.assign(bins, 0.0);
    hist_count.assign(bins, 0);
    for (int i = begin; i < end; ++i) {
      const int row = rows[i];
      const int b = binned[static_cast<std::size_t>(row) * p + j];
      hist_grad[b] += grad[row];
      hist_hess[b] += hess[row];
      ++hist_count[b];
    }
    double left_grad = 0.0;
    double left_hess = 0.0;
    int left_count = 0;
    for (int b = 0; b + 1 < bins; ++b) {
      left_grad += hist_grad[b];
      left_hess += hist_hess[b];
      left_count += hist_count[b];
      if (left_count < cfg.min_child_samples) continue;
      const int right_count = n - left_count;
      if (right_count < cfg.min_child_samples) break;
      const double right_hess = sum_hess - left_hess;
      if (left_hess < cfg.min_child_weight ||
          right_hess < cfg.min_child_weight) {
        continue;
      }
      const double right_grad = sum_grad - left_grad;
      const double gain =
          left_grad * left_grad / (left_hess + cfg.lambda) +
          right_grad * right_grad / (right_hess + cfg.lambda) -
          parent_score;
      if (gain > best.gain + 1e-12 && gain > cfg.gamma) {
        best.gain = gain;
        best.feature = j;
        best.bin = b;
      }
    }
  }
  return best;
}

}  // namespace

RegressionTree BuildHistTree(const HistogramBinner& binner,
                             const std::vector<std::uint16_t>& binned,
                             int num_columns,
                             const std::vector<double>& gradients,
                             const std::vector<double>& hessians,
                             std::vector<int> rows,
                             const GbdtTreeConfig& config,
                             const std::vector<int>* feature_subset) {
  GBX_CHECK(!rows.empty());
  GBX_CHECK_EQ(num_columns, binner.num_features());
  const int p = num_columns;
  const bool leaf_wise = config.max_leaves > 0;

  RegressionTree tree;
  tree.nodes.emplace_back();

  auto leaf_value = [&](double g, double h) {
    return -config.learning_rate * g / (h + config.lambda);
  };

  LeafState root;
  root.node_id = 0;
  root.begin = 0;
  root.end = static_cast<int>(rows.size());
  for (int row : rows) {
    root.sum_grad += gradients[row];
    root.sum_hess += hessians[row];
  }
  tree.nodes[0].value = leaf_value(root.sum_grad, root.sum_hess);
  root.best = FindBestSplit(binner, binned, p, gradients, hessians, rows,
                            root.begin, root.end, root.sum_grad,
                            root.sum_hess, config, feature_subset);

  // Best-first priority queue (leaf-wise); for depth-wise we simply split
  // every splittable leaf until the depth limit, which a FIFO-ish queue
  // with a depth check also achieves.
  auto cmp = [](const LeafState& a, const LeafState& b) {
    return a.best.gain < b.best.gain;
  };
  std::priority_queue<LeafState, std::vector<LeafState>, decltype(cmp)> heap(
      cmp);
  heap.push(root);
  int leaves = 1;

  while (!heap.empty()) {
    if (leaf_wise && leaves >= config.max_leaves) break;
    LeafState leaf = heap.top();
    heap.pop();
    if (!leaf.best.valid()) continue;
    if (!leaf_wise && leaf.depth >= config.max_depth) continue;

    const int feature = leaf.best.feature;
    const int split_bin = leaf.best.bin;
    // Partition this leaf's rows.
    auto mid_it = std::stable_partition(
        rows.begin() + leaf.begin, rows.begin() + leaf.end, [&](int row) {
          return binned[static_cast<std::size_t>(row) * p + feature] <=
                 split_bin;
        });
    const int mid = static_cast<int>(mid_it - rows.begin());
    GBX_CHECK(mid > leaf.begin && mid < leaf.end);

    LeafState left;
    LeafState right;
    left.begin = leaf.begin;
    left.end = mid;
    right.begin = mid;
    right.end = leaf.end;
    left.depth = right.depth = leaf.depth + 1;
    for (int i = left.begin; i < left.end; ++i) {
      left.sum_grad += gradients[rows[i]];
      left.sum_hess += hessians[rows[i]];
    }
    right.sum_grad = leaf.sum_grad - left.sum_grad;
    right.sum_hess = leaf.sum_hess - left.sum_hess;

    left.node_id = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    right.node_id = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();

    RegressionTree::Node& parent = tree.nodes[leaf.node_id];
    parent.feature = feature;
    parent.threshold = binner.SplitThreshold(feature, split_bin);
    parent.left = left.node_id;
    parent.right = right.node_id;
    tree.nodes[left.node_id].value = leaf_value(left.sum_grad, left.sum_hess);
    tree.nodes[right.node_id].value =
        leaf_value(right.sum_grad, right.sum_hess);
    ++leaves;

    left.best = FindBestSplit(binner, binned, p, gradients, hessians, rows,
                              left.begin, left.end, left.sum_grad,
                              left.sum_hess, config, feature_subset);
    right.best = FindBestSplit(binner, binned, p, gradients, hessians, rows,
                               right.begin, right.end, right.sum_grad,
                               right.sum_hess, config, feature_subset);
    heap.push(left);
    heap.push(right);
  }
  return tree;
}

}  // namespace gbx
