// Shared machinery for the two gradient-boosted tree classifiers:
//   * HistogramBinner — global quantile feature binning (LightGBM-style),
//   * RegressionTree  — additive-model tree with real-valued thresholds,
//   * BuildHistTree   — second-order histogram tree grower supporting
//     depth-wise growth (the XGBoost stand-in) and best-first leaf-wise
//     growth (the LightGBM stand-in),
//   * softmax objective helpers for multi-class boosting.
#ifndef GBX_ML_GBDT_COMMON_H_
#define GBX_ML_GBDT_COMMON_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace gbx {

/// Quantile-bins every feature into at most `max_bins` buckets. Bin edges
/// are chosen from the sorted distinct values so each bucket holds roughly
/// equal mass; bin index = number of edges strictly below the value.
class HistogramBinner {
 public:
  void Fit(const Matrix& x, int max_bins);

  /// Bins one matrix (typically the training matrix passed to Fit).
  /// Result is row-major rows x cols of bin ids.
  std::vector<std::uint16_t> Transform(const Matrix& x) const;

  int num_features() const { return static_cast<int>(edges_.size()); }
  int num_bins(int feature) const {
    return static_cast<int>(edges_[feature].size()) + 1;
  }
  /// Real-valued threshold for the split "bin <= b": values <= edge go
  /// left. Requires b < num_bins(feature) - 1.
  double SplitThreshold(int feature, int bin) const {
    return edges_[feature][bin];
  }

 private:
  std::vector<std::vector<double>> edges_;
};

/// Regression tree producing an additive margin contribution.
struct RegressionTree {
  struct Node {
    int feature = -1;        // -1 marks a leaf
    double threshold = 0.0;  // x[feature] <= threshold -> left
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf output (already scaled by the learner)
  };
  std::vector<Node> nodes;

  double Predict(const double* x) const;
  int num_leaves() const;
};

struct GbdtTreeConfig {
  /// Depth-wise limit; used when max_leaves <= 0.
  int max_depth = 6;
  /// Leaf-wise (best-first) growth to this many leaves when > 0.
  int max_leaves = -1;
  double lambda = 1.0;            // L2 regularization on leaf weights
  double gamma = 0.0;             // minimum split gain
  double min_child_weight = 1.0;  // minimum hessian sum per child
  int min_child_samples = 1;
  double learning_rate = 0.3;     // folded into leaf values
};

/// Grows one tree on gradients/hessians over the rows in `rows`. `binned`
/// is the binner's Transform of the training matrix, `num_columns` its
/// width. `feature_subset`, when non-null, restricts split search to those
/// feature ids (column subsampling).
RegressionTree BuildHistTree(const HistogramBinner& binner,
                             const std::vector<std::uint16_t>& binned,
                             int num_columns,
                             const std::vector<double>& gradients,
                             const std::vector<double>& hessians,
                             std::vector<int> rows,
                             const GbdtTreeConfig& config,
                             const std::vector<int>* feature_subset = nullptr);

/// In-place softmax over `k` scores.
void Softmax(double* scores, int k);

}  // namespace gbx

#endif  // GBX_ML_GBDT_COMMON_H_
