#include "ml/knn.h"

#include <algorithm>

namespace gbx {

KnnClassifier::KnnClassifier(int k) : k_(k) { GBX_CHECK_GE(k, 1); }

void KnnClassifier::Fit(const Dataset& train, Pcg32* rng) {
  (void)rng;  // deterministic
  GBX_CHECK_GT(train.size(), 0);
  train_ = train;
  tree_ = std::make_unique<KdTree>(&train_.x());
}

void KnnClassifier::Restore(Dataset train) {
  GBX_CHECK_GT(train.size(), 0);
  train_ = std::move(train);
  tree_ = std::make_unique<KdTree>(&train_.x());
}

int KnnClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(fitted(),
                "kNN: Predict called before Fit/Restore (no KD-tree)");
  const std::vector<Neighbor> nns = tree_->KNearest(x, k_);
  std::vector<int> votes(train_.num_classes(), 0);
  for (const Neighbor& nb : nns) ++votes[train_.label(nb.index)];
  // Majority vote; tie -> class of the nearest neighbor among tied classes.
  int best = -1;
  for (int c = 0; c < train_.num_classes(); ++c) {
    if (best < 0 || votes[c] > votes[best]) best = c;
  }
  for (const Neighbor& nb : nns) {
    const int cls = train_.label(nb.index);
    if (votes[cls] == votes[best]) return cls;
  }
  return best;
}

}  // namespace gbx
