// k-nearest-neighbors classifier (Cover & Hart, 1967) with scikit-learn's
// default k = 5 and uniform vote; the KD-tree accelerates queries. Ties
// break toward the class of the nearer neighbor, matching the behaviour of
// a distance-sorted majority vote.
#ifndef GBX_ML_KNN_H_
#define GBX_ML_KNN_H_

#include "index/kd_tree.h"
#include "ml/classifier.h"

namespace gbx {

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5);

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "kNN"; }

  int k() const { return k_; }

 private:
  int k_;
  Dataset train_;
  std::unique_ptr<KdTree> tree_;
};

}  // namespace gbx

#endif  // GBX_ML_KNN_H_
