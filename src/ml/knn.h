// k-nearest-neighbors classifier (Cover & Hart, 1967) with scikit-learn's
// default k = 5 and uniform vote; the KD-tree accelerates queries. Ties
// break toward the class of the nearer neighbor, matching the behaviour of
// a distance-sorted majority vote.
#ifndef GBX_ML_KNN_H_
#define GBX_ML_KNN_H_

#include "index/kd_tree.h"
#include "ml/classifier.h"

namespace gbx {

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5);

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "kNN"; }

  /// Restores a fitted state from a stored training set (model
  /// deserialization; see serve/model_io.h). Equivalent to Fit(train)
  /// — kNN's "model" is the training data plus the rebuilt KD-tree.
  void Restore(Dataset train);

  bool fitted() const { return tree_ != nullptr; }
  int k() const { return k_; }
  /// The stored training set (empty before Fit/Restore).
  const Dataset& train() const { return train_; }

 private:
  int k_;
  Dataset train_;
  std::unique_ptr<KdTree> tree_;
};

}  // namespace gbx

#endif  // GBX_ML_KNN_H_
