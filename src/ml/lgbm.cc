#include "ml/lgbm.h"

#include <algorithm>
#include <cmath>

namespace gbx {

LightGbmClassifier::LightGbmClassifier(LightGbmConfig config)
    : config_(config) {
  GBX_CHECK_GE(config.num_rounds, 1);
  GBX_CHECK_GE(config.num_leaves, 2);
}

void LightGbmClassifier::Fit(const Dataset& train, Pcg32* rng) {
  (void)rng;  // no stochastic component at these defaults
  GBX_CHECK_GT(train.size(), 0);
  const int n = train.size();
  const int p = train.num_features();
  num_classes_ = std::max(2, train.num_classes());

  binner_ = HistogramBinner();
  binner_.Fit(train.x(), config_.max_bins);
  const std::vector<std::uint16_t> binned = binner_.Transform(train.x());

  GbdtTreeConfig tree_cfg;
  tree_cfg.max_leaves = config_.num_leaves;  // leaf-wise growth
  tree_cfg.min_child_samples = config_.min_child_samples;
  tree_cfg.lambda = config_.lambda;
  tree_cfg.learning_rate = config_.learning_rate;

  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.num_rounds) * num_classes_);

  std::vector<double> margins(static_cast<std::size_t>(n) * num_classes_,
                              0.0);
  std::vector<double> probs(num_classes_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  std::vector<int> all_rows(n);
  for (int i = 0; i < n; ++i) all_rows[i] = i;

  for (int round = 0; round < config_.num_rounds; ++round) {
    for (int c = 0; c < num_classes_; ++c) {
      for (int i = 0; i < n; ++i) {
        const double* m = &margins[static_cast<std::size_t>(i) * num_classes_];
        std::copy(m, m + num_classes_, probs.begin());
        Softmax(probs.data(), num_classes_);
        const double pc = probs[c];
        const double y = train.label(i) == c ? 1.0 : 0.0;
        grad[i] = pc - y;
        hess[i] = std::max(pc * (1.0 - pc), 1e-6);
      }
      RegressionTree tree =
          BuildHistTree(binner_, binned, p, grad, hess, all_rows, tree_cfg);
      for (int i = 0; i < n; ++i) {
        margins[static_cast<std::size_t>(i) * num_classes_ + c] +=
            tree.Predict(train.row(i));
      }
      trees_.push_back(std::move(tree));
    }
  }
}

std::vector<double> LightGbmClassifier::PredictMargin(const double* x) const {
  std::vector<double> margin(num_classes_, 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    margin[t % num_classes_] += trees_[t].Predict(x);
  }
  return margin;
}

int LightGbmClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(!trees_.empty(),
                "LightGBM: Predict called before Fit (no trees)");
  const std::vector<double> margin = PredictMargin(x);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (margin[c] > margin[best]) best = c;
  }
  return best;
}

}  // namespace gbx
