// LightGBM-style gradient boosting (Ke et al., 2017): histogram split
// finding with best-first *leaf-wise* tree growth (num_leaves = 31),
// learning rate 0.1, min_child_samples = 20 — the library defaults used by
// the paper's scikit pipeline. Contrast with the XGBoost stand-in, which
// grows depth-wise.
#ifndef GBX_ML_LGBM_H_
#define GBX_ML_LGBM_H_

#include "ml/classifier.h"
#include "ml/gbdt_common.h"

namespace gbx {

struct LightGbmConfig {
  int num_rounds = 100;
  double learning_rate = 0.1;
  int num_leaves = 31;
  int min_child_samples = 20;
  double lambda = 0.0;
  int max_bins = 63;
};

class LightGbmClassifier : public Classifier {
 public:
  explicit LightGbmClassifier(LightGbmConfig config = {});

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "LightGBM"; }

  std::vector<double> PredictMargin(const double* x) const;

 private:
  LightGbmConfig config_;
  HistogramBinner binner_;
  std::vector<RegressionTree> trees_;  // trees_[round * num_classes_ + c]
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_LGBM_H_
