#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>

namespace gbx {

LinearSvmClassifier::LinearSvmClassifier(LinearSvmConfig config)
    : config_(config) {
  GBX_CHECK_GT(config.lambda, 0.0);
  GBX_CHECK_GE(config.epochs, 1);
}

void LinearSvmClassifier::Fit(const Dataset& train, Pcg32* rng) {
  GBX_CHECK(rng != nullptr);
  GBX_CHECK_GT(train.size(), 0);
  const int n = train.size();
  const int p = train.num_features();
  num_classes_ = std::max(2, train.num_classes());

  Matrix x = train.x();
  if (config_.standardize) {
    scaler_ = StandardScaler();
    x = scaler_.FitTransform(x);
  }

  weights_ = Matrix(num_classes_, p);
  biases_.assign(num_classes_, 0.0);

  // Pegasos per class (one-vs-rest): at step t, with learning rate
  // 1/(lambda*t):   w <- (1 - 1/t) w + [margin violated] y x / (lambda t).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int cls = 0; cls < num_classes_; ++cls) {
    double* w = weights_.Row(cls);
    double& b = biases_[cls];
    std::int64_t t = 0;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      rng->Shuffle(&order);
      for (int i : order) {
        ++t;
        const double eta = 1.0 / (config_.lambda * t);
        const double y = train.label(i) == cls ? 1.0 : -1.0;
        const double* xi = x.Row(i);
        double margin = b;
        for (int j = 0; j < p; ++j) margin += w[j] * xi[j];
        const double shrink = 1.0 - eta * config_.lambda;
        for (int j = 0; j < p; ++j) w[j] *= shrink;
        if (y * margin < 1.0) {
          const double step = eta * y;
          for (int j = 0; j < p; ++j) w[j] += step * xi[j];
          b += step;  // unregularized bias
        }
      }
    }
  }
}

double LinearSvmClassifier::DecisionValue(const double* x, int cls) const {
  GBX_CHECK(cls >= 0 && cls < num_classes_);
  const int p = weights_.cols();
  std::vector<double> q(x, x + p);
  if (config_.standardize && scaler_.fitted()) {
    Matrix tmp(1, p);
    for (int j = 0; j < p; ++j) tmp.At(0, j) = x[j];
    const Matrix scaled = scaler_.Transform(tmp);
    for (int j = 0; j < p; ++j) q[j] = scaled.At(0, j);
  }
  const double* w = weights_.Row(cls);
  double v = biases_[cls];
  for (int j = 0; j < p; ++j) v += w[j] * q[j];
  return v;
}

int LinearSvmClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(num_classes_ > 0,
                "LinearSVM: Predict called before Fit (no weights)");
  int best = 0;
  double best_v = DecisionValue(x, 0);
  for (int c = 1; c < num_classes_; ++c) {
    const double v = DecisionValue(x, c);
    if (v > best_v) {
      best_v = v;
      best = c;
    }
  }
  return best;
}

}  // namespace gbx
