// Linear support-vector machine trained with Pegasos (Shalev-Shwartz et
// al., 2007): stochastic sub-gradient descent on the L2-regularized hinge
// loss, one-vs-rest for multi-class. Included because borderline sampling
// was historically motivated by SVM training-set reduction (§I of the
// paper cites [24]-[26]): max-margin models depend exactly on the
// boundary samples GBABS keeps. See examples/svm_borderline.cpp.
#ifndef GBX_ML_LINEAR_SVM_H_
#define GBX_ML_LINEAR_SVM_H_

#include "data/scaler.h"
#include "ml/classifier.h"

namespace gbx {

struct LinearSvmConfig {
  /// Regularization strength lambda of Pegasos (1 / (n * C)).
  double lambda = 1e-4;
  int epochs = 20;
  /// Standardize features internally (recommended; hinge loss is not
  /// scale-invariant).
  bool standardize = true;
};

class LinearSvmClassifier : public Classifier {
 public:
  explicit LinearSvmClassifier(LinearSvmConfig config = {});

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "LinearSVM"; }

  /// Decision value of class c for a raw (unstandardized) input.
  double DecisionValue(const double* x, int cls) const;

 private:
  LinearSvmConfig config_;
  StandardScaler scaler_;
  Matrix weights_;             // one row per class (one-vs-rest)
  std::vector<double> biases_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_LINEAR_SVM_H_
