#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gbx {

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  GBX_CHECK_EQ(y_true.size(), y_pred.size());
  GBX_CHECK(!y_true.empty());
  int correct = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++correct;
  }
  return static_cast<double>(correct) / y_true.size();
}

Matrix ConfusionMatrix(const std::vector<int>& y_true,
                       const std::vector<int>& y_pred, int num_classes) {
  GBX_CHECK_EQ(y_true.size(), y_pred.size());
  Matrix cm(num_classes, num_classes);
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    GBX_CHECK(y_true[i] >= 0 && y_true[i] < num_classes);
    GBX_CHECK(y_pred[i] >= 0 && y_pred[i] < num_classes);
    cm.At(y_true[i], y_pred[i]) += 1.0;
  }
  return cm;
}

std::vector<double> PerClassRecall(const std::vector<int>& y_true,
                                   const std::vector<int>& y_pred,
                                   int num_classes) {
  const Matrix cm = ConfusionMatrix(y_true, y_pred, num_classes);
  std::vector<double> recall(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    double support = 0.0;
    for (int j = 0; j < num_classes; ++j) support += cm.At(c, j);
    recall[c] = support > 0 ? cm.At(c, c) / support
                            : std::numeric_limits<double>::quiet_NaN();
  }
  return recall;
}

double GMean(const std::vector<int>& y_true, const std::vector<int>& y_pred,
             int num_classes) {
  const std::vector<double> recall =
      PerClassRecall(y_true, y_pred, num_classes);
  double log_sum = 0.0;
  int present = 0;
  for (double r : recall) {
    if (std::isnan(r)) continue;
    ++present;
    if (r <= 0.0) return 0.0;
    log_sum += std::log(r);
  }
  if (present == 0) return 0.0;
  return std::exp(log_sum / present);
}

double BalancedAccuracy(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred, int num_classes) {
  const std::vector<double> recall =
      PerClassRecall(y_true, y_pred, num_classes);
  double sum = 0.0;
  int present = 0;
  for (double r : recall) {
    if (std::isnan(r)) continue;
    sum += r;
    ++present;
  }
  return present > 0 ? sum / present : 0.0;
}

double BinaryAuc(const std::vector<int>& y_true,
                 const std::vector<double>& scores, int positive_class) {
  GBX_CHECK_EQ(y_true.size(), scores.size());
  // Mann-Whitney U via rank sum with midranks for ties.
  const std::size_t n = y_true.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(n);
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = (i + 1 + j) / 2.0;
    for (std::size_t k = i; k < j; ++k) ranks[order[k]] = midrank;
    i = j;
  }
  double positive_rank_sum = 0.0;
  std::size_t positives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (y_true[i] == positive_class) {
      positive_rank_sum += ranks[i];
      ++positives;
    }
  }
  const std::size_t negatives = n - positives;
  GBX_CHECK_GT(positives, 0u);
  GBX_CHECK_GT(negatives, 0u);
  const double u = positive_rank_sum -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes) {
  const Matrix cm = ConfusionMatrix(y_true, y_pred, num_classes);
  double f1_sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    double support = 0.0;
    double predicted = 0.0;
    for (int j = 0; j < num_classes; ++j) {
      support += cm.At(c, j);
      predicted += cm.At(j, c);
    }
    if (support == 0.0) continue;
    ++present;
    const double tp = cm.At(c, c);
    const double precision = predicted > 0 ? tp / predicted : 0.0;
    const double recall = tp / support;
    f1_sum += (precision + recall) > 0
                  ? 2.0 * precision * recall / (precision + recall)
                  : 0.0;
  }
  return present > 0 ? f1_sum / present : 0.0;
}

}  // namespace gbx
