// Evaluation metrics used by the paper: Accuracy for the main tables and
// G-mean (geometric mean of per-class recall) for the imbalanced study
// (Fig. 9).
#ifndef GBX_ML_METRICS_H_
#define GBX_ML_METRICS_H_

#include <vector>

#include "common/matrix.h"

namespace gbx {

/// Fraction of equal entries. Requires equal non-zero lengths.
double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Row = true class, column = predicted class.
Matrix ConfusionMatrix(const std::vector<int>& y_true,
                       const std::vector<int>& y_pred, int num_classes);

/// Recall of each class; classes absent from y_true get recall NaN and are
/// skipped by GMean.
std::vector<double> PerClassRecall(const std::vector<int>& y_true,
                                   const std::vector<int>& y_pred,
                                   int num_classes);

/// Geometric mean of per-class recall over the classes present in y_true.
/// Zero when any present class has zero recall (the standard convention).
double GMean(const std::vector<int>& y_true, const std::vector<int>& y_pred,
             int num_classes);

/// Macro-averaged F1 over classes present in y_true.
double MacroF1(const std::vector<int>& y_true, const std::vector<int>& y_pred,
               int num_classes);

/// Mean of per-class recall over classes present in y_true (the arithmetic
/// sibling of GMean; robust under imbalance).
double BalancedAccuracy(const std::vector<int>& y_true,
                        const std::vector<int>& y_pred, int num_classes);

/// Area under the ROC curve for binary problems, computed from real-valued
/// scores for the positive class (higher score = more positive). Ties get
/// the standard 0.5 credit (Mann-Whitney formulation). Requires both
/// classes present.
double BinaryAuc(const std::vector<int>& y_true,
                 const std::vector<double>& scores, int positive_class = 1);

}  // namespace gbx

#endif  // GBX_ML_METRICS_H_
