#include "ml/naive_bayes.h"

#include <cmath>
#include <limits>

namespace gbx {

GaussianNbClassifier::GaussianNbClassifier(NaiveBayesConfig config)
    : config_(config) {
  GBX_CHECK_GE(config.var_smoothing, 0.0);
}

void GaussianNbClassifier::Fit(const Dataset& train, Pcg32* rng) {
  (void)rng;  // deterministic
  GBX_CHECK_GT(train.size(), 0);
  const int n = train.size();
  const int p = train.num_features();
  num_classes_ = train.num_classes();

  means_ = Matrix(num_classes_, p);
  variances_ = Matrix(num_classes_, p);
  log_priors_.assign(num_classes_, 0.0);
  class_present_.assign(num_classes_, false);

  const std::vector<int> counts = train.ClassCounts();
  for (int i = 0; i < n; ++i) {
    const double* row = train.row(i);
    double* mean = means_.Row(train.label(i));
    for (int j = 0; j < p; ++j) mean[j] += row[j];
  }
  for (int c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0) continue;
    class_present_[c] = true;
    double* mean = means_.Row(c);
    for (int j = 0; j < p; ++j) mean[j] /= counts[c];
    log_priors_[c] = std::log(static_cast<double>(counts[c]) / n);
  }
  for (int i = 0; i < n; ++i) {
    const double* row = train.row(i);
    const double* mean = means_.Row(train.label(i));
    double* var = variances_.Row(train.label(i));
    for (int j = 0; j < p; ++j) {
      const double d = row[j] - mean[j];
      var[j] += d * d;
    }
  }
  // Smooth by a fraction of the largest per-feature variance (pooled).
  double max_var = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0) continue;
    double* var = variances_.Row(c);
    for (int j = 0; j < p; ++j) {
      var[j] /= counts[c];
      max_var = std::max(max_var, var[j]);
    }
  }
  const double epsilon = std::max(config_.var_smoothing * max_var, 1e-12);
  for (int c = 0; c < num_classes_; ++c) {
    double* var = variances_.Row(c);
    for (int j = 0; j < p; ++j) var[j] += epsilon;
  }
}

double GaussianNbClassifier::LogPosterior(const double* x, int cls) const {
  GBX_CHECK(cls >= 0 && cls < num_classes_);
  if (!class_present_[cls]) {
    return -std::numeric_limits<double>::infinity();
  }
  const int p = means_.cols();
  const double* mean = means_.Row(cls);
  const double* var = variances_.Row(cls);
  double log_likelihood = log_priors_[cls];
  for (int j = 0; j < p; ++j) {
    const double d = x[j] - mean[j];
    log_likelihood +=
        -0.5 * (std::log(2.0 * M_PI * var[j]) + d * d / var[j]);
  }
  return log_likelihood;
}

int GaussianNbClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(num_classes_ > 0,
                "GaussianNB: Predict called before Fit (no class stats)");
  int best = 0;
  double best_v = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < num_classes_; ++c) {
    const double v = LogPosterior(x, c);
    if (v > best_v) {
      best_v = v;
      best = c;
    }
  }
  return best;
}

}  // namespace gbx
