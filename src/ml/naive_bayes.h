// Gaussian Naive Bayes: per-class feature means/variances with independent
// Gaussian likelihoods and class priors. A cheap, well-calibrated baseline
// that rounds out the classifier suite (it reacts to sampling differently
// from trees/kNN: it models class-conditional densities, so borderline
// sampling deliberately biases its estimates — a useful contrast case).
#ifndef GBX_ML_NAIVE_BAYES_H_
#define GBX_ML_NAIVE_BAYES_H_

#include "ml/classifier.h"

namespace gbx {

struct NaiveBayesConfig {
  /// Additive variance smoothing, as a fraction of the largest feature
  /// variance (scikit-learn's var_smoothing).
  double var_smoothing = 1e-9;
};

class GaussianNbClassifier : public Classifier {
 public:
  explicit GaussianNbClassifier(NaiveBayesConfig config = {});

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "GaussianNB"; }

  /// Unnormalized log posterior of class c for input x.
  double LogPosterior(const double* x, int cls) const;

 private:
  NaiveBayesConfig config_;
  Matrix means_;       // class x feature
  Matrix variances_;   // class x feature (smoothed)
  std::vector<double> log_priors_;
  std::vector<bool> class_present_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_NAIVE_BAYES_H_
