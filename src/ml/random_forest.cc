#include "ml/random_forest.h"

#include <cmath>
#include <thread>

namespace gbx {

RandomForestClassifier::RandomForestClassifier(RandomForestConfig config)
    : config_(config) {
  GBX_CHECK_GE(config.num_trees, 1);
}

void RandomForestClassifier::Fit(const Dataset& train, Pcg32* rng) {
  GBX_CHECK(rng != nullptr);
  GBX_CHECK_GT(train.size(), 0);
  num_classes_ = train.num_classes();
  const int n = train.size();
  const int p = train.num_features();

  DecisionTreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.max_features =
      config_.max_features > 0
          ? config_.max_features
          : std::max(1, static_cast<int>(std::sqrt(static_cast<double>(p))));

  trees_.assign(config_.num_trees, DecisionTreeClassifier(tree_config));

  // One independent RNG stream per tree, all derived from the caller's
  // stream up front: results do not depend on thread interleaving.
  std::vector<std::uint64_t> seeds(config_.num_trees);
  for (auto& seed : seeds) {
    seed = (static_cast<std::uint64_t>(rng->NextU32()) << 32) | rng->NextU32();
  }

  auto fit_tree = [&](int t) {
    Pcg32 tree_rng(seeds[t], /*stream=*/t + 1);
    std::vector<int> bag(n);
    if (config_.bootstrap) {
      for (int i = 0; i < n; ++i) {
        bag[i] = static_cast<int>(
            tree_rng.NextBounded(static_cast<std::uint32_t>(n)));
      }
    } else {
      for (int i = 0; i < n; ++i) bag[i] = i;
    }
    trees_[t].FitIndices(train, bag, &tree_rng);
  };

  int threads = config_.num_threads > 0
                    ? config_.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min(threads, config_.num_trees));
  if (threads == 1) {
    for (int t = 0; t < config_.num_trees; ++t) fit_tree(t);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      for (int t = w; t < config_.num_trees; t += threads) fit_tree(t);
    });
  }
  for (auto& th : pool) th.join();
}

int RandomForestClassifier::Predict(const double* x) const {
  GBX_CHECK_MSG(!trees_.empty(), "RF: Predict called before Fit (no trees)");
  std::vector<int> votes(num_classes_, 0);
  for (const auto& tree : trees_) ++votes[tree.Predict(x)];
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

}  // namespace gbx
