// Random forest (Breiman, 2001): bagged CART trees with sqrt(p) features
// per split and majority vote. Defaults follow scikit-learn
// (n_estimators = 100, bootstrap = true). Trees are trained in parallel
// with deterministic per-tree RNG streams, so results are independent of
// thread scheduling.
#ifndef GBX_ML_RANDOM_FOREST_H_
#define GBX_ML_RANDOM_FOREST_H_

#include "ml/decision_tree.h"

namespace gbx {

struct RandomForestConfig {
  int num_trees = 100;
  int max_depth = -1;
  /// Features per split; -1 = floor(sqrt(p)).
  int max_features = -1;
  bool bootstrap = true;
  /// Worker threads; -1 = hardware concurrency.
  int num_threads = -1;
};

class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(RandomForestConfig config = {});

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "RF"; }

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTreeClassifier> trees_;
  int num_classes_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_RANDOM_FOREST_H_
