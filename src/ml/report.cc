#include "ml/report.h"

#include <cstdio>

#include "common/matrix.h"
#include "ml/metrics.h"

namespace gbx {

ClassificationReport BuildClassificationReport(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    int num_classes) {
  ClassificationReport report;
  const Matrix cm = ConfusionMatrix(y_true, y_pred, num_classes);
  for (int c = 0; c < num_classes; ++c) {
    double support = 0.0;
    double predicted = 0.0;
    for (int j = 0; j < num_classes; ++j) {
      support += cm.At(c, j);
      predicted += cm.At(j, c);
    }
    if (support == 0.0) continue;
    ClassReportRow row;
    row.cls = c;
    row.support = static_cast<int>(support);
    const double tp = cm.At(c, c);
    row.precision = predicted > 0 ? tp / predicted : 0.0;
    row.recall = tp / support;
    row.f1 = (row.precision + row.recall) > 0
                 ? 2.0 * row.precision * row.recall /
                       (row.precision + row.recall)
                 : 0.0;
    report.per_class.push_back(row);
  }
  report.accuracy = Accuracy(y_true, y_pred);
  report.balanced_accuracy = BalancedAccuracy(y_true, y_pred, num_classes);
  report.g_mean = GMean(y_true, y_pred, num_classes);
  report.macro_f1 = MacroF1(y_true, y_pred, num_classes);
  return report;
}

std::string ClassificationReport::ToString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-8s %10s %10s %10s %10s\n", "class",
                "precision", "recall", "f1", "support");
  out += buf;
  for (const ClassReportRow& row : per_class) {
    std::snprintf(buf, sizeof(buf), "%-8d %10.4f %10.4f %10.4f %10d\n",
                  row.cls, row.precision, row.recall, row.f1, row.support);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "accuracy %.4f  balanced %.4f  g-mean %.4f  macro-F1 %.4f\n",
                accuracy, balanced_accuracy, g_mean, macro_f1);
  out += buf;
  return out;
}

}  // namespace gbx
