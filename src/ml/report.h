// Human-readable classification report (per-class precision / recall / F1
// / support, plus accuracy, balanced accuracy and G-mean) in the spirit of
// scikit-learn's classification_report. Used by the examples and handy for
// downstream users.
#ifndef GBX_ML_REPORT_H_
#define GBX_ML_REPORT_H_

#include <string>
#include <vector>

namespace gbx {

struct ClassReportRow {
  int cls = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int support = 0;
};

struct ClassificationReport {
  std::vector<ClassReportRow> per_class;  // classes present in y_true
  double accuracy = 0.0;
  double balanced_accuracy = 0.0;
  double g_mean = 0.0;
  double macro_f1 = 0.0;

  /// Fixed-width text rendering.
  std::string ToString() const;
};

/// Builds the report from labels and predictions.
ClassificationReport BuildClassificationReport(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    int num_classes);

}  // namespace gbx

#endif  // GBX_ML_REPORT_H_
