// XGBoost-style gradient boosting (Chen & Guestrin, 2016): second-order
// softmax objective, depth-wise trees (default depth 6), shrinkage 0.3 and
// L2 lambda = 1 — the library defaults the paper's scikit pipeline uses.
// Split finding uses histogram approximation (xgboost's `hist` tree
// method) rather than exact enumeration.
#ifndef GBX_ML_XGB_H_
#define GBX_ML_XGB_H_

#include "ml/gbdt_common.h"
#include "ml/classifier.h"

namespace gbx {

struct XgBoostConfig {
  int num_rounds = 100;
  double learning_rate = 0.3;
  int max_depth = 6;
  double lambda = 1.0;
  double gamma = 0.0;
  double min_child_weight = 1.0;
  int max_bins = 64;
  /// Fraction of features considered per tree (1.0 = all).
  double colsample_bytree = 1.0;
};

class XgBoostClassifier : public Classifier {
 public:
  explicit XgBoostClassifier(XgBoostConfig config = {});

  void Fit(const Dataset& train, Pcg32* rng) override;
  int Predict(const double* x) const override;
  std::string name() const override { return "XGBoost"; }

  /// Raw class margins for a single sample (useful in tests).
  std::vector<double> PredictMargin(const double* x) const;

 private:
  XgBoostConfig config_;
  HistogramBinner binner_;
  /// trees_[round * num_classes_ + c]
  std::vector<RegressionTree> trees_;
  /// Per-tree feature id remap when colsample < 1 (empty = identity).
  std::vector<std::vector<int>> tree_features_;
  int num_classes_ = 0;
  int num_features_ = 0;
};

}  // namespace gbx

#endif  // GBX_ML_XGB_H_
