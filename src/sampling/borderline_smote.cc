#include "sampling/borderline_smote.h"

#include <algorithm>

#include "index/kd_tree.h"
#include "sampling/smote.h"

namespace gbx {

BorderlineSmoteSampler::BorderlineSmoteSampler(int m_neighbors,
                                               int k_neighbors)
    : m_neighbors_(m_neighbors), k_neighbors_(k_neighbors) {
  GBX_CHECK_GE(m_neighbors, 1);
  GBX_CHECK_GE(k_neighbors, 1);
}

std::vector<int> BorderlineSmoteSampler::DangerSamples(
    const Dataset& train, const std::vector<int>& class_indices,
    int cls) const {
  KdTree tree(&train.x());
  std::vector<int> danger;
  const int m = std::min(m_neighbors_, train.size() - 1);
  for (int idx : class_indices) {
    const std::vector<Neighbor> nns = tree.KNearest(train.row(idx), m + 1);
    int heterogeneous = 0;
    int considered = 0;
    for (const Neighbor& nb : nns) {
      if (nb.index == idx) continue;  // skip the query itself
      if (train.label(nb.index) != cls) ++heterogeneous;
      if (++considered == m) break;
    }
    // DANGER: m/2 <= heterogeneous < m. heterogeneous == m means the
    // sample is likely noise; fewer than half means it is safe interior.
    if (2 * heterogeneous >= considered && heterogeneous < considered) {
      danger.push_back(idx);
    }
  }
  return danger;
}

Dataset BorderlineSmoteSampler::Sample(const Dataset& train,
                                       Pcg32* rng) const {
  GBX_CHECK(rng != nullptr);
  Dataset out = train;
  const std::vector<int> counts = train.ClassCounts();
  const int majority = *std::max_element(counts.begin(), counts.end());
  for (int cls = 0; cls < train.num_classes(); ++cls) {
    if (counts[cls] == 0 || counts[cls] >= majority) continue;
    const std::vector<int> members = train.IndicesOfClass(cls);
    std::vector<int> danger = DangerSamples(train, members, cls);
    // No borderline samples: fall back to plain SMOTE seeds so heavily
    // imbalanced folds still get rebalanced (imblearn raises instead; a
    // fallback keeps experiment pipelines total).
    const std::vector<int>& seeds = danger.empty() ? members : danger;
    AppendSyntheticSamples(train, seeds, members, cls,
                           majority - counts[cls], k_neighbors_, rng, &out);
  }
  return out;
}

}  // namespace gbx
