// Borderline-SMOTE (Han et al., 2005), variant 1. Only minority samples in
// "DANGER" — more than half of their m nearest neighbors (over the whole
// training set) heterogeneous, but not all — seed synthetic generation;
// interpolation targets are same-class nearest neighbors, so new samples
// strengthen the borderline region rather than the class interior.
#ifndef GBX_SAMPLING_BORDERLINE_SMOTE_H_
#define GBX_SAMPLING_BORDERLINE_SMOTE_H_

#include "sampling/sampler.h"

namespace gbx {

class BorderlineSmoteSampler : public Sampler {
 public:
  /// `m_neighbors` sizes the danger test; `k_neighbors` the interpolation
  /// pool (defaults follow the original paper / imbalanced-learn).
  explicit BorderlineSmoteSampler(int m_neighbors = 10, int k_neighbors = 5);

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "BSM"; }

  /// The DANGER subset of `class_indices`: borderline minority samples.
  /// Exposed for tests.
  std::vector<int> DangerSamples(const Dataset& train,
                                 const std::vector<int>& class_indices,
                                 int cls) const;

 private:
  int m_neighbors_;
  int k_neighbors_;
};

}  // namespace gbx

#endif  // GBX_SAMPLING_BORDERLINE_SMOTE_H_
