// Sampler adapter for GBABS so the paper's method plugs into the same
// experiment pipelines as the baselines.
#ifndef GBX_SAMPLING_GBABS_SAMPLER_H_
#define GBX_SAMPLING_GBABS_SAMPLER_H_

#include "core/gbabs.h"
#include "sampling/sampler.h"

namespace gbx {

class GbabsSampler : public Sampler {
 public:
  explicit GbabsSampler(GbabsConfig config = {}) : config_(config) {}

  Dataset Sample(const Dataset& train, Pcg32* rng) const override {
    GBX_CHECK(rng != nullptr);
    GbabsConfig cfg = config_;
    cfg.gbg.seed = (static_cast<std::uint64_t>(rng->NextU32()) << 32) |
                   rng->NextU32();
    return GbabsSample(train, cfg);
  }

  std::string name() const override { return "GBABS"; }

  const GbabsConfig& config() const { return config_; }

 private:
  GbabsConfig config_;
};

}  // namespace gbx

#endif  // GBX_SAMPLING_GBABS_SAMPLER_H_
