#include "sampling/ggbs.h"

#include <algorithm>
#include <limits>
#include <set>

namespace gbx {

std::vector<int> LargeBallAxisSamples(const GranularBall& ball,
                                      const Matrix& scaled_features,
                                      const std::vector<int>& labels) {
  const int d = scaled_features.cols();
  std::set<int> picked;
  std::vector<double> target(ball.center.begin(), ball.center.end());
  for (int j = 0; j < d; ++j) {
    for (int sign = -1; sign <= 1; sign += 2) {
      target[j] = ball.center[j] + sign * ball.radius;
      // Homogeneous member closest to the intersection point c ± r·e_j.
      double best = std::numeric_limits<double>::infinity();
      int best_idx = -1;
      for (int idx : ball.members) {
        if (labels[idx] != ball.label) continue;
        const double dist = SquaredDistance(scaled_features.Row(idx),
                                            target.data(), d);
        if (dist < best || (dist == best && idx < best_idx)) {
          best = dist;
          best_idx = idx;
        }
      }
      if (best_idx >= 0) picked.insert(best_idx);
      target[j] = ball.center[j];
    }
  }
  return std::vector<int>(picked.begin(), picked.end());
}

GgbsSampler::GgbsSampler(PurityGbgConfig config) : config_(config) {}

std::vector<int> GgbsSampler::SampleIndices(const Dataset& train,
                                            Pcg32* rng) const {
  GBX_CHECK(rng != nullptr);
  PurityGbgConfig cfg = config_;
  cfg.seed = (static_cast<std::uint64_t>(rng->NextU32()) << 32) |
             rng->NextU32();
  const PurityGbgResult gbg = GeneratePurityGbg(train, cfg);
  const int p = train.num_features();
  std::set<int> sampled;
  for (const GranularBall& ball : gbg.balls.balls()) {
    if (IsSmallBall(ball, p)) {
      sampled.insert(ball.members.begin(), ball.members.end());
    } else {
      const std::vector<int> axis = LargeBallAxisSamples(
          ball, gbg.balls.scaled_features(), train.y());
      sampled.insert(axis.begin(), axis.end());
    }
  }
  return std::vector<int>(sampled.begin(), sampled.end());
}

Dataset GgbsSampler::Sample(const Dataset& train, Pcg32* rng) const {
  return train.Subset(SampleIndices(train, rng));
}

}  // namespace gbx
