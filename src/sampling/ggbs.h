// GGBS: the general granular-ball sampling baseline of Xia et al. [23]
// (§III-B of the paper). After purity-threshold GBG:
//   * every sample of a small ball (<= 2p members) enters the sample set;
//   * each large ball contributes the 2p homogeneous samples closest to
//     the 2p axis intersection points c ± r·e_i of the ball.
#ifndef GBX_SAMPLING_GGBS_H_
#define GBX_SAMPLING_GGBS_H_

#include "sampling/purity_gbg.h"
#include "sampling/sampler.h"

namespace gbx {

class GgbsSampler : public Sampler {
 public:
  explicit GgbsSampler(PurityGbgConfig config = {});

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "GGBS"; }

  /// Indices selected by GGBS on `train` (sorted). Exposed for ratio
  /// studies (Fig. 6).
  std::vector<int> SampleIndices(const Dataset& train, Pcg32* rng) const;

 private:
  PurityGbgConfig config_;
};

/// Shared by GGBS and IGBS: the <=2p samples of a large ball nearest to
/// its axis intersection points, restricted to members homogeneous with
/// the ball label. Returned sorted and deduplicated.
std::vector<int> LargeBallAxisSamples(const GranularBall& ball,
                                      const Matrix& scaled_features,
                                      const std::vector<int>& labels);

}  // namespace gbx

#endif  // GBX_SAMPLING_GGBS_H_
