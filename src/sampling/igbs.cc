#include "sampling/igbs.h"

#include <algorithm>
#include <set>

#include "sampling/ggbs.h"

namespace gbx {

IgbsSampler::IgbsSampler(PurityGbgConfig config) : config_(config) {}

std::vector<int> IgbsSampler::SampleIndices(const Dataset& train,
                                            Pcg32* rng) const {
  GBX_CHECK(rng != nullptr);
  PurityGbgConfig cfg = config_;
  cfg.seed = (static_cast<std::uint64_t>(rng->NextU32()) << 32) |
             rng->NextU32();
  const PurityGbgResult gbg = GeneratePurityGbg(train, cfg);
  const int p = train.num_features();
  const int majority_class = train.MajorityClass();
  std::set<int> sampled;

  for (const GranularBall& ball : gbg.balls.balls()) {
    if (IsSmallBall(ball, p)) {
      sampled.insert(ball.members.begin(), ball.members.end());
    } else if (ball.label != majority_class) {
      // Large minority-class ball: keep all its minority samples.
      for (int idx : ball.members) {
        if (train.label(idx) == ball.label) sampled.insert(idx);
      }
    } else {
      const std::vector<int> axis = LargeBallAxisSamples(
          ball, gbg.balls.scaled_features(), train.y());
      sampled.insert(axis.begin(), axis.end());
    }
  }

  // Rebalance: top each class up toward the largest per-class count in S
  // using random not-yet-sampled training samples of that class.
  std::vector<int> counts(train.num_classes(), 0);
  for (int idx : sampled) ++counts[train.label(idx)];
  const int target = *std::max_element(counts.begin(), counts.end());
  for (int cls = 0; cls < train.num_classes(); ++cls) {
    if (counts[cls] >= target) continue;
    std::vector<int> pool;
    for (int idx : train.IndicesOfClass(cls)) {
      if (sampled.find(idx) == sampled.end()) pool.push_back(idx);
    }
    rng->Shuffle(&pool);
    const int need = std::min<int>(target - counts[cls],
                                   static_cast<int>(pool.size()));
    for (int i = 0; i < need; ++i) sampled.insert(pool[i]);
  }

  return std::vector<int>(sampled.begin(), sampled.end());
}

Dataset IgbsSampler::Sample(const Dataset& train, Pcg32* rng) const {
  return train.Subset(SampleIndices(train, rng));
}

}  // namespace gbx
