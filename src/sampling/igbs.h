// IGBS: granular-ball sampling for imbalanced datasets (Xia et al. [23],
// §III-B). Same GBG as GGBS, but minority-class large balls keep all their
// minority samples while majority-class large balls keep only the 2p axis
// samples; if the result is still skewed, random extra majority samples
// top the classes up toward balance.
#ifndef GBX_SAMPLING_IGBS_H_
#define GBX_SAMPLING_IGBS_H_

#include "sampling/purity_gbg.h"
#include "sampling/sampler.h"

namespace gbx {

class IgbsSampler : public Sampler {
 public:
  explicit IgbsSampler(PurityGbgConfig config = {});

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "IGBS"; }

  std::vector<int> SampleIndices(const Dataset& train, Pcg32* rng) const;

 private:
  PurityGbgConfig config_;
};

}  // namespace gbx

#endif  // GBX_SAMPLING_IGBS_H_
