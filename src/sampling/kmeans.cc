#include "sampling/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"

namespace gbx {

KMeansResult RunKMeans(const Matrix& points, const KMeansConfig& config,
                       Pcg32* rng, const Matrix* initial_centers) {
  const int n = points.rows();
  const int d = points.cols();
  const int k = config.num_clusters;
  GBX_CHECK_GE(n, 1);
  GBX_CHECK_GE(k, 1);
  GBX_CHECK(rng != nullptr);

  KMeansResult result;
  if (initial_centers != nullptr) {
    GBX_CHECK_EQ(initial_centers->rows(), k);
    GBX_CHECK_EQ(initial_centers->cols(), d);
    result.centers = *initial_centers;
  } else {
    const std::vector<int> seeds =
        rng->SampleWithoutReplacement(n, std::min(k, n));
    result.centers = Matrix(k, d);
    for (int c = 0; c < k; ++c) {
      // With k > n, reuse points cyclically (degenerate but defined).
      const double* src = points.Row(seeds[c % seeds.size()]);
      double* dst = result.centers.Row(c);
      for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
  }

  result.assignments.assign(n, 0);
  std::vector<int> counts(k, 0);
  Matrix sums(k, d);
  const int threads = ResolveNumThreads(config.num_threads);
  const std::int64_t unit_cost = static_cast<std::int64_t>(k) * d;
  const int grain = ParallelGrain(unit_cost);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: rows are independent and write disjoint slots, so
    // the result is identical at any thread count.
    ParallelForRange(
        n, grain, ParallelThreads(n, unit_cost, threads),
        [&](int begin, int end) {
          for (int i = begin; i < end; ++i) {
            const double* x = points.Row(i);
            double best = std::numeric_limits<double>::infinity();
            int best_c = 0;
            for (int c = 0; c < k; ++c) {
              const double d2 = SquaredDistance(x, result.centers.Row(c), d);
              if (d2 < best) {
                best = d2;
                best_c = c;
              }
            }
            result.assignments[i] = best_c;
          }
        });
    // Update step.
    std::fill(counts.begin(), counts.end(), 0);
    std::fill(sums.mutable_data().begin(), sums.mutable_data().end(), 0.0);
    for (int i = 0; i < n; ++i) {
      const int c = result.assignments[i];
      ++counts[c];
      const double* x = points.Row(i);
      double* s = sums.Row(c);
      for (int j = 0; j < d; ++j) s[j] += x[j];
    }
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      double* center = result.centers.Row(c);
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its center.
        double worst = -1.0;
        int worst_i = 0;
        for (int i = 0; i < n; ++i) {
          const double d2 = SquaredDistance(
              points.Row(i), result.centers.Row(result.assignments[i]), d);
          if (d2 > worst) {
            worst = d2;
            worst_i = i;
          }
        }
        const double* x = points.Row(worst_i);
        for (int j = 0; j < d; ++j) {
          movement += std::fabs(center[j] - x[j]);
          center[j] = x[j];
        }
        continue;
      }
      for (int j = 0; j < d; ++j) {
        const double next = sums.At(c, j) / counts[c];
        movement += std::fabs(center[j] - next);
        center[j] = next;
      }
    }
    if (movement <= config.tolerance) break;
  }
  return result;
}

}  // namespace gbx
