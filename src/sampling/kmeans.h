// Lloyd's k-means, used by the k-division step of the classic purity-
// threshold GBG (the GGBS/IGBS baseline granulation of §III-B). Supports
// caller-provided initial centers so the k-division variant can seed with
// one random sample per class, as in [27].
#ifndef GBX_SAMPLING_KMEANS_H_
#define GBX_SAMPLING_KMEANS_H_

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace gbx {

struct KMeansConfig {
  int num_clusters = 2;
  int max_iterations = 20;
  /// Convergence threshold on total center movement.
  double tolerance = 1e-6;
  /// Worker threads for the assignment step (<= 0 = GBX_THREADS or
  /// hardware concurrency; see common/parallel.h). The center update
  /// stays sequential so accumulation order — and thus the result — is
  /// bit-identical at every thread count.
  int num_threads = 0;
};

struct KMeansResult {
  /// Cluster assignment per input row, in [0, k).
  std::vector<int> assignments;
  /// Final centers, one row per cluster.
  Matrix centers;
  int iterations = 0;
};

/// Runs k-means on `points`. If `initial_centers` is non-null it provides
/// the starting centers (rows == k); otherwise k distinct random points
/// are chosen. Empty clusters are re-seeded with the point farthest from
/// its assigned center.
KMeansResult RunKMeans(const Matrix& points, const KMeansConfig& config,
                       Pcg32* rng, const Matrix* initial_centers = nullptr);

}  // namespace gbx

#endif  // GBX_SAMPLING_KMEANS_H_
