#include "sampling/purity_gbg.h"

#include <algorithm>
#include <deque>

#include "common/rng.h"
#include "data/scaler.h"
#include "sampling/kmeans.h"

namespace gbx {

namespace {

struct PendingBall {
  std::vector<int> members;
};

/// Majority label and purity of a member set.
void MajorityAndPurity(const std::vector<int>& members,
                       const std::vector<int>& labels, int num_classes,
                       int* majority, double* purity) {
  std::vector<int> counts(num_classes, 0);
  for (int idx : members) ++counts[labels[idx]];
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  *majority = best;
  *purity = static_cast<double>(counts[best]) / members.size();
}

/// Distinct classes present in a member set, ascending.
std::vector<int> DistinctClasses(const std::vector<int>& members,
                                 const std::vector<int>& labels,
                                 int num_classes) {
  std::vector<char> present(num_classes, 0);
  for (int idx : members) present[labels[idx]] = 1;
  std::vector<int> out;
  for (int c = 0; c < num_classes; ++c) {
    if (present[c]) out.push_back(c);
  }
  return out;
}

GranularBall Finalize(const std::vector<int>& members, const Matrix& x,
                      int majority) {
  const int d = x.cols();
  GranularBall ball;
  ball.members = members;
  ball.label = majority;
  ball.center_index = -1;  // centroid, not a sample (Eq.1)
  ball.center.assign(d, 0.0);
  for (int idx : members) {
    const double* row = x.Row(idx);
    for (int j = 0; j < d; ++j) ball.center[j] += row[j];
  }
  for (int j = 0; j < d; ++j) ball.center[j] /= members.size();
  double sum = 0.0;
  for (int idx : members) {
    sum += EuclideanDistance(x.Row(idx), ball.center.data(), d);
  }
  ball.radius = sum / members.size();  // classic *average* radius
  return ball;
}

}  // namespace

PurityGbgResult GeneratePurityGbg(const Dataset& dataset,
                                  const PurityGbgConfig& config) {
  GBX_CHECK_GT(dataset.size(), 0);
  GBX_CHECK(config.purity_threshold > 0.0 && config.purity_threshold <= 1.0);
  const int p = dataset.num_features();
  const int q = dataset.num_classes();
  Matrix x = config.scale_features ? MinMaxScaler().FitTransform(dataset.x())
                                   : dataset.x();
  const std::vector<int>& labels = dataset.y();
  Pcg32 rng(config.seed);

  std::deque<PendingBall> queue;
  {
    PendingBall root;
    root.members.resize(dataset.size());
    for (int i = 0; i < dataset.size(); ++i) root.members[i] = i;
    queue.push_back(std::move(root));
  }

  std::vector<GranularBall> final_balls;
  std::vector<double> purities;

  while (!queue.empty()) {
    PendingBall ball = std::move(queue.front());
    queue.pop_front();
    int majority = 0;
    double purity = 0.0;
    MajorityAndPurity(ball.members, labels, q, &majority, &purity);

    const bool small = static_cast<int>(ball.members.size()) <= 2 * p;
    if (purity >= config.purity_threshold || small) {
      final_balls.push_back(Finalize(ball.members, x, majority));
      purities.push_back(purity);
      continue;
    }

    // k-division: k-means with one random sample per class in the ball.
    const std::vector<int> classes = DistinctClasses(ball.members, labels, q);
    const int k = static_cast<int>(classes.size());
    GBX_CHECK_GE(k, 2);  // purity < 1 implies >= 2 classes

    Matrix points(static_cast<int>(ball.members.size()), x.cols());
    for (std::size_t i = 0; i < ball.members.size(); ++i) {
      const double* src = x.Row(ball.members[i]);
      double* dst = points.Row(static_cast<int>(i));
      for (int j = 0; j < x.cols(); ++j) dst[j] = src[j];
    }
    Matrix init(k, x.cols());
    for (int c = 0; c < k; ++c) {
      // Random member of class classes[c].
      std::vector<int> of_class;
      for (std::size_t i = 0; i < ball.members.size(); ++i) {
        if (labels[ball.members[i]] == classes[c]) {
          of_class.push_back(static_cast<int>(i));
        }
      }
      const int pick =
          of_class[rng.NextBounded(static_cast<std::uint32_t>(of_class.size()))];
      const double* src = points.Row(pick);
      double* dst = init.Row(c);
      for (int j = 0; j < x.cols(); ++j) dst[j] = src[j];
    }

    KMeansConfig km;
    km.num_clusters = k;
    km.max_iterations = 10;
    const KMeansResult split = RunKMeans(points, km, &rng, &init);

    std::vector<PendingBall> children(k);
    for (std::size_t i = 0; i < ball.members.size(); ++i) {
      children[split.assignments[i]].members.push_back(ball.members[i]);
    }
    int non_empty = 0;
    for (const auto& child : children) {
      if (!child.members.empty()) ++non_empty;
    }
    if (non_empty <= 1) {
      // Degenerate split (duplicate points): stop here to guarantee
      // termination.
      final_balls.push_back(Finalize(ball.members, x, majority));
      purities.push_back(purity);
      continue;
    }
    for (auto& child : children) {
      if (!child.members.empty()) queue.push_back(std::move(child));
    }
  }

  PurityGbgResult result;
  result.balls = GranularBallSet(std::move(final_balls), std::move(x), q);
  result.purities = std::move(purities);
  return result;
}

}  // namespace gbx
