// Classic purity-threshold granular-ball generation — the granulation used
// by the GGBS / IGBS baselines (§III-B of the paper, after [23]/[27]).
//
// The whole training set starts as one ball. Any ball whose purity is
// below the threshold and which holds more than 2·p samples is split by
// k-division (k-means seeded with one random sample per class present in
// the ball). Finalized balls use the classic definition of Eq.1: center =
// sample mean, radius = *average* distance to the center — which is
// exactly why classic GBs can overlap and leave members outside the ball,
// the deficiency RD-GBG removes.
#ifndef GBX_SAMPLING_PURITY_GBG_H_
#define GBX_SAMPLING_PURITY_GBG_H_

#include <cstdint>

#include "core/granular_ball.h"
#include "data/dataset.h"

namespace gbx {

struct PurityGbgConfig {
  /// Minimum purity a ball must reach to stop splitting.
  double purity_threshold = 1.0;
  std::uint64_t seed = 42;
  bool scale_features = true;
};

struct PurityGbgResult {
  GranularBallSet balls;
  /// Purity of each ball (same order as balls), since classic GBs are not
  /// necessarily pure.
  std::vector<double> purities;
};

/// Runs the classic GBG. A ball with <= 2*p samples is never split ("small
/// GB"), matching the preset-sample-count stop rule the paper criticizes.
PurityGbgResult GeneratePurityGbg(const Dataset& dataset,
                                  const PurityGbgConfig& config);

/// True if the ball counts as "small" for the GGBS/IGBS sampling rules.
inline bool IsSmallBall(const GranularBall& ball, int num_features) {
  return ball.size() <= 2 * num_features;
}

}  // namespace gbx

#endif  // GBX_SAMPLING_PURITY_GBG_H_
