#include "sampling/sampler.h"

#include "sampling/borderline_smote.h"
#include "sampling/gbabs_sampler.h"
#include "sampling/ggbs.h"
#include "sampling/igbs.h"
#include "sampling/smote.h"
#include "sampling/smotenc.h"
#include "sampling/srs.h"
#include "sampling/tomek.h"

namespace gbx {

Dataset NoneSampler::Sample(const Dataset& train, Pcg32* rng) const {
  (void)rng;
  return train;
}

std::string SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kNone:
      return "Ori";
    case SamplerKind::kGbabs:
      return "GBABS";
    case SamplerKind::kGgbs:
      return "GGBS";
    case SamplerKind::kIgbs:
      return "IGBS";
    case SamplerKind::kSrs:
      return "SRS";
    case SamplerKind::kSmote:
      return "SM";
    case SamplerKind::kBorderlineSmote:
      return "BSM";
    case SamplerKind::kSmotenc:
      return "SMNC";
    case SamplerKind::kTomek:
      return "Tomek";
  }
  return "?";
}

std::unique_ptr<Sampler> MakeSampler(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kNone:
      return std::make_unique<NoneSampler>();
    case SamplerKind::kGbabs:
      return std::make_unique<GbabsSampler>();
    case SamplerKind::kGgbs:
      return std::make_unique<GgbsSampler>();
    case SamplerKind::kIgbs:
      return std::make_unique<IgbsSampler>();
    case SamplerKind::kSrs:
      return std::make_unique<SrsSampler>();
    case SamplerKind::kSmote:
      return std::make_unique<SmoteSampler>();
    case SamplerKind::kBorderlineSmote:
      return std::make_unique<BorderlineSmoteSampler>();
    case SamplerKind::kSmotenc:
      return std::make_unique<SmotencSampler>();
    case SamplerKind::kTomek:
      return std::make_unique<TomekLinksSampler>();
  }
  GBX_CHECK(false && "unknown sampler kind");
  return nullptr;
}

}  // namespace gbx
