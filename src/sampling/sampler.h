// Common interface for all sampling methods compared in the paper
// (§V-A1): GBABS plus the baselines GGBS, IGBS, SRS, SMOTE,
// Borderline-SMOTE, SMOTENC, and Tomek links. A sampler maps a training
// dataset to a (smaller or rebalanced) training dataset; classifiers are
// then fit on the output.
#ifndef GBX_SAMPLING_SAMPLER_H_
#define GBX_SAMPLING_SAMPLER_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"

namespace gbx {

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Produces the sampled training set. `rng` drives any randomized step;
  /// implementations must be deterministic given (train, rng state).
  virtual Dataset Sample(const Dataset& train, Pcg32* rng) const = 0;

  /// Short display name used in experiment tables ("GBABS", "SRS", ...).
  virtual std::string name() const = 0;
};

enum class SamplerKind {
  kNone,             // identity: classifier trained on the raw data ("Ori")
  kGbabs,
  kGgbs,
  kIgbs,
  kSrs,
  kSmote,
  kBorderlineSmote,
  kSmotenc,
  kTomek,
};

/// Display name of a SamplerKind.
std::string SamplerKindName(SamplerKind kind);

/// Factory with each method's paper-default parameters. For kSrs the ratio
/// defaults to 1.0; experiments overwrite it with the GBABS ratio per
/// §V-A3 via SrsSampler directly.
std::unique_ptr<Sampler> MakeSampler(SamplerKind kind);

/// Identity sampler (the "Ori" column of Fig. 9).
class NoneSampler : public Sampler {
 public:
  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "Ori"; }
};

}  // namespace gbx

#endif  // GBX_SAMPLING_SAMPLER_H_
