#include "sampling/smote.h"

#include <algorithm>

#include "index/kd_tree.h"

namespace gbx {

void AppendSyntheticSamples(const Dataset& train,
                            const std::vector<int>& seed_indices,
                            const std::vector<int>& neighbor_pool, int cls,
                            int count, int k_neighbors, Pcg32* rng,
                            Dataset* out) {
  GBX_CHECK(out != nullptr);
  GBX_CHECK(rng != nullptr);
  if (count <= 0 || seed_indices.empty() || neighbor_pool.empty()) return;
  const int p = train.num_features();

  Matrix pool = train.x().SelectRows(neighbor_pool);
  KdTree tree(&pool);

  std::vector<double> synthetic(p);
  for (int s = 0; s < count; ++s) {
    const int seed =
        seed_indices[rng->NextBounded(
            static_cast<std::uint32_t>(seed_indices.size()))];
    const double* x = train.row(seed);
    // k+1 since the seed itself may be in the pool at distance 0.
    std::vector<Neighbor> nns =
        tree.KNearest(x, std::min<int>(k_neighbors + 1,
                                       static_cast<int>(neighbor_pool.size())));
    // Drop the self-match if present.
    std::vector<int> candidates;
    for (const Neighbor& nb : nns) {
      if (neighbor_pool[nb.index] != seed) {
        candidates.push_back(neighbor_pool[nb.index]);
      }
      if (static_cast<int>(candidates.size()) == k_neighbors) break;
    }
    if (candidates.empty()) candidates.push_back(seed);  // lone sample
    const int nn = candidates[rng->NextBounded(
        static_cast<std::uint32_t>(candidates.size()))];
    const double* xn = train.row(nn);
    const double u = rng->NextDouble();
    for (int j = 0; j < p; ++j) synthetic[j] = x[j] + u * (xn[j] - x[j]);
    out->AppendSample(synthetic.data(), p, cls);
  }
}

SmoteSampler::SmoteSampler(int k_neighbors) : k_neighbors_(k_neighbors) {
  GBX_CHECK_GE(k_neighbors, 1);
}

Dataset SmoteSampler::Sample(const Dataset& train, Pcg32* rng) const {
  GBX_CHECK(rng != nullptr);
  Dataset out = train;
  const std::vector<int> counts = train.ClassCounts();
  const int majority = *std::max_element(counts.begin(), counts.end());
  for (int cls = 0; cls < train.num_classes(); ++cls) {
    if (counts[cls] == 0 || counts[cls] >= majority) continue;
    const std::vector<int> members = train.IndicesOfClass(cls);
    AppendSyntheticSamples(train, members, members, cls,
                           majority - counts[cls], k_neighbors_, rng, &out);
  }
  return out;
}

}  // namespace gbx
