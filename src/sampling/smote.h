// SMOTE: Synthetic Minority Over-sampling Technique (Chawla et al., 2002).
// Every class except the majority is oversampled to the majority count by
// interpolating each minority sample toward one of its k nearest
// same-class neighbors: x_new = x + u·(x_nn − x), u ~ U[0,1).
#ifndef GBX_SAMPLING_SMOTE_H_
#define GBX_SAMPLING_SMOTE_H_

#include "sampling/sampler.h"

namespace gbx {

class SmoteSampler : public Sampler {
 public:
  explicit SmoteSampler(int k_neighbors = 5);

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "SM"; }

  int k_neighbors() const { return k_neighbors_; }

 private:
  int k_neighbors_;
};

/// Helper shared by the SMOTE family: appends `count` synthetic samples of
/// class `cls` to `out`, interpolating members of `class_indices` toward
/// their k nearest neighbors *within the given candidate set*.
/// `seed_indices` are the samples interpolation starts from (the DANGER
/// set for Borderline-SMOTE; all class members for plain SMOTE).
void AppendSyntheticSamples(const Dataset& train,
                            const std::vector<int>& seed_indices,
                            const std::vector<int>& neighbor_pool, int cls,
                            int count, int k_neighbors, Pcg32* rng,
                            Dataset* out);

}  // namespace gbx

#endif  // GBX_SAMPLING_SMOTE_H_
