#include "sampling/smotenc.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace gbx {

std::vector<bool> SmotencSampler::DetectNominal(const Dataset& train,
                                                int max_cardinality) {
  const int p = train.num_features();
  std::vector<bool> nominal(p, false);
  for (int j = 0; j < p; ++j) {
    std::map<double, int> distinct;
    bool integral = true;
    for (int i = 0; i < train.size(); ++i) {
      const double v = train.feature(i, j);
      if (v != std::floor(v)) {
        integral = false;
        break;
      }
      if (static_cast<int>(distinct.size()) <= max_cardinality) {
        distinct[v] = 1;
      }
    }
    nominal[j] = integral &&
                 static_cast<int>(distinct.size()) <= max_cardinality &&
                 !distinct.empty();
  }
  return nominal;
}

SmotencSampler::SmotencSampler(std::vector<bool> nominal_mask,
                               int k_neighbors, int max_nominal_cardinality)
    : nominal_mask_(std::move(nominal_mask)),
      k_neighbors_(k_neighbors),
      max_nominal_cardinality_(max_nominal_cardinality) {
  GBX_CHECK_GE(k_neighbors, 1);
}

Dataset SmotencSampler::Sample(const Dataset& train, Pcg32* rng) const {
  GBX_CHECK(rng != nullptr);
  const int p = train.num_features();
  std::vector<bool> nominal = nominal_mask_;
  if (nominal.empty()) {
    nominal = DetectNominal(train, max_nominal_cardinality_);
  }
  GBX_CHECK_EQ(static_cast<int>(nominal.size()), p);

  // Median of the continuous features' standard deviations: the nominal
  // mismatch penalty of the original SMOTENC formulation.
  std::vector<double> stds;
  for (int j = 0; j < p; ++j) {
    if (nominal[j]) continue;
    double mean = 0.0;
    for (int i = 0; i < train.size(); ++i) mean += train.feature(i, j);
    mean /= train.size();
    double var = 0.0;
    for (int i = 0; i < train.size(); ++i) {
      const double d = train.feature(i, j) - mean;
      var += d * d;
    }
    stds.push_back(std::sqrt(var / train.size()));
  }
  double penalty = 1.0;
  if (!stds.empty()) {
    std::sort(stds.begin(), stds.end());
    penalty = stds[stds.size() / 2];
  }
  const double penalty2 = penalty * penalty;

  auto mixed_distance2 = [&](const double* a, const double* b) {
    double s = 0.0;
    for (int j = 0; j < p; ++j) {
      if (nominal[j]) {
        if (a[j] != b[j]) s += penalty2;
      } else {
        const double d = a[j] - b[j];
        s += d * d;
      }
    }
    return s;
  };

  Dataset out = train;
  const std::vector<int> counts = train.ClassCounts();
  const int majority = *std::max_element(counts.begin(), counts.end());
  std::vector<double> synthetic(p);
  for (int cls = 0; cls < train.num_classes(); ++cls) {
    if (counts[cls] == 0 || counts[cls] >= majority) continue;
    const std::vector<int> members = train.IndicesOfClass(cls);
    const int need = majority - counts[cls];
    const int k = std::min<int>(k_neighbors_,
                                static_cast<int>(members.size()) - 1);
    for (int s = 0; s < need; ++s) {
      const int seed = members[rng->NextBounded(
          static_cast<std::uint32_t>(members.size()))];
      const double* x = train.row(seed);
      if (k < 1) {
        out.AppendSample(x, p, cls);  // lone sample: duplicate it
        continue;
      }
      // k nearest same-class neighbors under the mixed metric.
      std::vector<std::pair<double, int>> dists;
      dists.reserve(members.size());
      for (int idx : members) {
        if (idx == seed) continue;
        dists.emplace_back(mixed_distance2(x, train.row(idx)), idx);
      }
      std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
      const int nn = dists[rng->NextBounded(static_cast<std::uint32_t>(k))]
                         .second;
      const double* xn = train.row(nn);
      const double u = rng->NextDouble();
      for (int j = 0; j < p; ++j) {
        if (nominal[j]) {
          // Mode of the k neighbors' nominal values (ties: smallest).
          std::map<double, int> votes;
          for (int t = 0; t < k; ++t) {
            ++votes[train.feature(dists[t].second, j)];
          }
          double best_v = x[j];
          int best_n = 0;
          for (const auto& [v, cnt] : votes) {
            if (cnt > best_n) {
              best_n = cnt;
              best_v = v;
            }
          }
          synthetic[j] = best_v;
        } else {
          synthetic[j] = x[j] + u * (xn[j] - x[j]);
        }
      }
      out.AppendSample(synthetic.data(), p, cls);
    }
  }
  return out;
}

}  // namespace gbx
