// SMOTENC: SMOTE for mixed Nominal + Continuous features (Chawla et al.,
// 2002, §6.1). Nominal features contribute a fixed penalty (the median of
// the continuous features' standard deviations) to the neighbor distance,
// and synthetic samples take the *mode* of the neighbors' nominal values
// while interpolating continuous ones.
//
// The synthetic datasets here are fully continuous, so by default nominal
// features are auto-detected as integer-valued columns with at most
// `max_nominal_cardinality` distinct values — mirroring how discretized
// UCI attributes (e.g. Car Evaluation) behave.
#ifndef GBX_SAMPLING_SMOTENC_H_
#define GBX_SAMPLING_SMOTENC_H_

#include "sampling/sampler.h"

namespace gbx {

class SmotencSampler : public Sampler {
 public:
  /// `nominal_mask` marks nominal features; empty means auto-detect.
  explicit SmotencSampler(std::vector<bool> nominal_mask = {},
                          int k_neighbors = 5,
                          int max_nominal_cardinality = 10);

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "SMNC"; }

  /// Auto-detection used when the mask is empty. Exposed for tests.
  static std::vector<bool> DetectNominal(const Dataset& train,
                                         int max_cardinality);

 private:
  std::vector<bool> nominal_mask_;
  int k_neighbors_;
  int max_nominal_cardinality_;
};

}  // namespace gbx

#endif  // GBX_SAMPLING_SMOTENC_H_
