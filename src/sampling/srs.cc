#include "sampling/srs.h"

#include <algorithm>

namespace gbx {

SrsSampler::SrsSampler(double ratio) : ratio_(ratio) { set_ratio(ratio); }

void SrsSampler::set_ratio(double ratio) {
  GBX_CHECK(ratio > 0.0 && ratio <= 1.0);
  ratio_ = ratio;
}

Dataset SrsSampler::Sample(const Dataset& train, Pcg32* rng) const {
  GBX_CHECK(rng != nullptr);
  const int n = train.size();
  const int keep = std::max(1, static_cast<int>(n * ratio_));
  if (keep >= n) return train;
  std::vector<int> idx = rng->SampleWithoutReplacement(n, keep);
  std::sort(idx.begin(), idx.end());
  return train.Subset(idx);
}

}  // namespace gbx
