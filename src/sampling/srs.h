// Simple random sampling (SRS): the unbiased general baseline. Draws
// floor(ratio * n) samples without replacement, uniformly. The paper pins
// SRS's ratio to GBABS's realized ratio on each dataset for a fair
// comparison (§V-A3).
#ifndef GBX_SAMPLING_SRS_H_
#define GBX_SAMPLING_SRS_H_

#include "sampling/sampler.h"

namespace gbx {

class SrsSampler : public Sampler {
 public:
  /// `ratio` in (0, 1]: the fraction of the training set to keep.
  explicit SrsSampler(double ratio = 1.0);

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "SRS"; }

  double ratio() const { return ratio_; }
  void set_ratio(double ratio);

 private:
  double ratio_;
};

}  // namespace gbx

#endif  // GBX_SAMPLING_SRS_H_
