#include "sampling/tomek.h"

#include <algorithm>

#include "index/kd_tree.h"

namespace gbx {

TomekLinksSampler::TomekLinksSampler(bool remove_both)
    : remove_both_(remove_both) {}

std::vector<std::pair<int, int>> TomekLinksSampler::FindLinks(
    const Dataset& train) {
  const int n = train.size();
  std::vector<std::pair<int, int>> links;
  if (n < 2) return links;
  KdTree tree(&train.x());
  // Nearest distinct neighbor of each sample.
  std::vector<int> nn(n, -1);
  for (int i = 0; i < n; ++i) {
    const std::vector<Neighbor> res = tree.KNearest(train.row(i), 2);
    for (const Neighbor& nb : res) {
      if (nb.index != i) {
        nn[i] = nb.index;
        break;
      }
    }
    // Duplicate points make every result index i itself impossible; but if
    // coordinates tie exactly the second hit is a distinct id, so nn[i] is
    // always set for n >= 2.
    GBX_DCHECK(nn[i] >= 0);
  }
  for (int i = 0; i < n; ++i) {
    const int j = nn[i];
    if (j > i && nn[j] == i && train.label(i) != train.label(j)) {
      links.emplace_back(i, j);
    }
  }
  return links;
}

Dataset TomekLinksSampler::Sample(const Dataset& train, Pcg32* rng) const {
  (void)rng;  // deterministic method; interface kept uniform
  const std::vector<std::pair<int, int>> links = FindLinks(train);
  const int majority_class = train.MajorityClass();
  std::vector<bool> removed(train.size(), false);
  for (const auto& [a, b] : links) {
    if (remove_both_) {
      removed[a] = removed[b] = true;
      continue;
    }
    if (train.label(a) == majority_class) {
      removed[a] = true;
    } else if (train.label(b) == majority_class) {
      removed[b] = true;
    }
    // Links between two minority classes are left intact under the
    // majority-only policy, as in imbalanced-learn.
  }
  std::vector<int> keep;
  keep.reserve(train.size());
  for (int i = 0; i < train.size(); ++i) {
    if (!removed[i]) keep.push_back(i);
  }
  return train.Subset(keep);
}

}  // namespace gbx
