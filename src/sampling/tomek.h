// Tomek links undersampling (Tomek, 1976). A Tomek link is a pair of
// mutually nearest neighbors with different labels; such pairs straddle
// the class boundary or are noise. The sampler removes the majority-class
// member of every link (imbalanced-learn's default policy), cleaning the
// boundary without synthesizing data.
#ifndef GBX_SAMPLING_TOMEK_H_
#define GBX_SAMPLING_TOMEK_H_

#include <utility>

#include "sampling/sampler.h"

namespace gbx {

class TomekLinksSampler : public Sampler {
 public:
  /// When `remove_both` is set, both endpoints of a link are removed
  /// (imblearn's sampling_strategy='all'); otherwise only the
  /// majority-class endpoint.
  explicit TomekLinksSampler(bool remove_both = false);

  Dataset Sample(const Dataset& train, Pcg32* rng) const override;
  std::string name() const override { return "Tomek"; }

  /// All Tomek links as (i, j) pairs with i < j. Exposed for tests.
  static std::vector<std::pair<int, int>> FindLinks(const Dataset& train);

 private:
  bool remove_both_;
};

}  // namespace gbx

#endif  // GBX_SAMPLING_TOMEK_H_
