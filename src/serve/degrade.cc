#include "serve/degrade.h"

#include <algorithm>

#include "common/check.h"

namespace gbx {

DegradeController::DegradeController(DegradeOptions opts) : opts_(opts) {
  GBX_CHECK_MSG(opts_.min_recall > 0.0 && opts_.min_recall <= 1.0,
                "DegradeController: min_recall must be in (0, 1]");
  GBX_CHECK_MSG(opts_.low_watermark >= 0.0 &&
                    opts_.low_watermark < opts_.high_watermark,
                "DegradeController: need 0 <= low_watermark < high_watermark");
  GBX_CHECK_GE(opts_.down_ticks, 1);
  GBX_CHECK_GE(opts_.up_ticks, 1);
  GBX_CHECK_MSG(opts_.batch_delay_scale_floor > 0.0 &&
                    opts_.batch_delay_scale_floor <= 1.0,
                "DegradeController: batch_delay_scale_floor must be in (0, 1]");
}

double DegradeController::RecallAt(int level) const {
  if (level <= 0) return 1.0;
  if (level >= kRecallSteps) return opts_.min_recall;
  // Evenly-spaced rungs from full quality down to the floor.
  return 1.0 - (1.0 - opts_.min_recall) *
                   (static_cast<double>(level) / kRecallSteps);
}

int DegradeController::Tick(double now_s, double depth_fraction,
                            double mean_queue_wait_ms) {
  if (last_tick_s_ >= 0.0 &&
      (now_s - last_tick_s_) * 1e3 < opts_.tick_interval_ms) {
    return 0;  // coalesce: the event loop ticks opportunistically
  }
  last_tick_s_ = now_s;

  double pressure = std::max(0.0, depth_fraction);
  if (opts_.queue_wait_ref_ms > 0.0 && mean_queue_wait_ms >= 0.0) {
    pressure = std::max(pressure, mean_queue_wait_ms / opts_.queue_wait_ref_ms);
  }

  if (pressure >= opts_.high_watermark) {
    ++high_streak_;
    low_streak_ = 0;
  } else if (pressure <= opts_.low_watermark) {
    ++low_streak_;
    high_streak_ = 0;
  } else {
    // Dead band: hold the level, and require the next excursion to be
    // sustained from scratch.
    high_streak_ = 0;
    low_streak_ = 0;
  }

  const int level = level_.load(std::memory_order_relaxed);
  if (high_streak_ >= opts_.down_ticks && level < kMaxLevel) {
    level_.store(level + 1, std::memory_order_relaxed);
    high_streak_ = 0;
    low_streak_ = 0;
    return +1;
  }
  if (low_streak_ >= opts_.up_ticks && level > 0) {
    level_.store(level - 1, std::memory_order_relaxed);
    high_streak_ = 0;
    low_streak_ = 0;
    return -1;
  }
  return 0;
}

}  // namespace gbx
