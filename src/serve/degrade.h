// Overload-aware graceful degradation: the feedback controller behind
// the serving front-end's quality ladder (ServerOptions::degrade_auto).
//
// The server serves full-quality answers right up until the bounded
// worker queue hard-sheds — the worst possible degradation curve for a
// production system. This controller closes the loop between the PR-8
// pressure signals (queue depth, queue-wait) and the PR-9 quality knob
// (the GB-kNN sampled tier's per-call recall): under sustained pressure
// it steps down an explicit ladder, trading recall for scan time and
// finally batching latency for throughput, so the server *degrades
// before it denies*:
//
//   level 0                 full quality (recall 1.0, full batch window)
//   level 1..kRecallSteps   per-request recall reduction, interpolated
//                           from 1.0 down to DegradeOptions::min_recall
//   level kMaxLevel         recall at the floor AND the micro-batch
//                           coalescing window shrunk by
//                           batch_delay_scale_floor — the last rung
//                           before the bounded queue sheds
//
// Hysteresis: one Tick per tick_interval_ms; stepping DOWN requires
// `down_ticks` consecutive ticks of pressure >= high_watermark,
// stepping UP (recovery) requires `up_ticks` consecutive ticks of
// pressure <= low_watermark, and each transition moves exactly one
// level and resets both streaks — the ladder can never oscillate
// per-tick, and recovery is gradual by construction. Pressure between
// the watermarks holds the current level (the dead band).
//
// Thread contract: Tick() is called from one thread (the server's event
// loop); level()/recall()/batch_delay_scale() are lock-free reads from
// any thread (the predict workers).
#ifndef GBX_SERVE_DEGRADE_H_
#define GBX_SERVE_DEGRADE_H_

#include <atomic>

namespace gbx {

struct DegradeOptions {
  /// Ladder floor for per-request recall, in (0, 1]. 1.0 makes the
  /// recall rungs no-ops (the ladder goes straight to window shrink).
  double min_recall = 0.5;
  /// Pressure at or above this for `down_ticks` consecutive ticks steps
  /// the ladder down one level. Pressure is max(queue depth / shed
  /// line, mean queue wait / queue_wait_ref_ms), so 1.0 = "at the shed
  /// line".
  double high_watermark = 0.5;
  /// Pressure at or below this for `up_ticks` consecutive ticks steps
  /// the ladder back up one level.
  double low_watermark = 0.15;
  int down_ticks = 3;
  int up_ticks = 8;
  /// Control-loop period; Tick() calls closer together than this are
  /// coalesced (the event loop ticks opportunistically).
  double tick_interval_ms = 20.0;
  /// Mean queue wait (ms, over the last tick interval) that counts as
  /// pressure 1.0. <= 0 disables the wait signal.
  double queue_wait_ref_ms = 50.0;
  /// Coalescing-window scale at the last rung, in (0, 1].
  double batch_delay_scale_floor = 0.25;
};

class DegradeController {
 public:
  /// Recall rungs between full quality and the floor.
  static constexpr int kRecallSteps = 3;
  /// Last rung: recall floor + batch-window shrink.
  static constexpr int kMaxLevel = kRecallSteps + 1;

  explicit DegradeController(DegradeOptions opts);

  /// One control-loop step. `depth_fraction` is worker-queue depth over
  /// the shed line (>= 0, may exceed 1 transiently);
  /// `mean_queue_wait_ms` is the mean queue wait observed since the
  /// previous tick (< 0 = no samples). Returns +1 when this tick
  /// stepped down (degraded further), -1 when it stepped up
  /// (recovered), 0 otherwise.
  int Tick(double now_s, double depth_fraction, double mean_queue_wait_ms);

  /// Current ladder level in [0, kMaxLevel]. Lock-free.
  int level() const { return level_.load(std::memory_order_relaxed); }
  /// Per-request recall at the current level (1.0 at level 0, the floor
  /// at kRecallSteps and above). Lock-free.
  double recall() const { return RecallAt(level()); }
  /// Micro-batch coalescing-window scale at the current level (1.0
  /// everywhere except the last rung). Lock-free.
  double batch_delay_scale() const {
    return level() >= kMaxLevel ? opts_.batch_delay_scale_floor : 1.0;
  }

  double RecallAt(int level) const;
  const DegradeOptions& options() const { return opts_; }

 private:
  DegradeOptions opts_;
  std::atomic<int> level_{0};
  // Tick-thread-only state (no concurrent access).
  double last_tick_s_ = -1.0;
  int high_streak_ = 0;
  int low_streak_ = 0;
};

}  // namespace gbx

#endif  // GBX_SERVE_DEGRADE_H_
