#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/failpoint.h"
#include "ml/gb_knn.h"

namespace gbx {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

InferenceEngine::InferenceEngine(LoadedModel model,
                                 InferenceEngineOptions options)
    : model_(std::move(model)), options_(options) {
  GBX_CHECK_MSG(model_.classifier != nullptr,
                "InferenceEngine needs a loaded classifier");
  GBX_CHECK_GT(model_.dims, 0);
  options_.max_batch_size = std::max(1, options_.max_batch_size);
  options_.latency_window = std::max(1, options_.latency_window);
  gbknn_ = dynamic_cast<const GbKnnClassifier*>(model_.classifier.get());
  auto& reg = metrics::MetricsRegistry::Default();
  m_requests_ = reg.GetCounter("gbx_engine_requests_total", {},
                               "Predictions served by inference engines");
  m_batches_ = reg.GetCounter("gbx_engine_batches_total", {},
                              "Micro-batches dispatched");
  m_latency_ms_ =
      reg.GetHistogram("gbx_engine_request_ms", {},
                       "Predict latency: enqueue to label available (ms)");
  m_batch_size_ = reg.GetHistogram(
      "gbx_engine_batch_size", {}, "Queries per dispatched micro-batch",
      metrics::Histogram::ExponentialBounds(1.0, 2.0, 12));
  m_coalesce_delay_ms_ =
      reg.GetHistogram("gbx_engine_coalesce_delay_ms", {},
                       "Batch open to dispatch: leader coalescing wait (ms)");
  m_compute_ms_ = reg.GetHistogram(
      "gbx_engine_compute_ms", {}, "Classifier::PredictBatch duration (ms)");
}

Status InferenceEngine::ValidateQuery(const double* x, int dims) const {
  if (dims != model_.dims) {
    return Status::InvalidArgument(
        "query has " + std::to_string(dims) + " features, model expects " +
        std::to_string(model_.dims));
  }
  for (int j = 0; j < dims; ++j) {
    if (!std::isfinite(x[j])) {
      return Status::InvalidArgument("non-finite query feature " +
                                     std::to_string(j));
    }
  }
  return Status::Ok();
}

StatusOr<int> InferenceEngine::Predict(const double* x, int dims,
                                       PredictTiming* timing,
                                       const PredictOverrides* overrides) {
  // Chaos site: "engine.predict" with delay(ms) stretches the predict
  // path (overload/deadline batteries); error fails the prediction.
  GBX_FAILPOINT_RETURN_ERROR("engine.predict");
  // Chaos site: delay(ms) here stalls the *calling worker thread*
  // inside the predict path — the watchdog battery's stuck-worker
  // simulation (tests/chaos_test.cc, the CI health smoke).
  GBX_FAILPOINT("engine.predict.stall");
  GBX_RETURN_IF_ERROR(ValidateQuery(x, dims));
  double recall_override = 0.0;
  double delay_scale = 1.0;
  if (overrides != nullptr) {
    if (overrides->recall < 0.0 ||
        (overrides->recall != 0.0 && overrides->recall > 1.0)) {
      return Status::InvalidArgument(
          "recall override must be in (0, 1], got " +
          std::to_string(overrides->recall));
    }
    if (overrides->batch_delay_scale <= 0.0 ||
        overrides->batch_delay_scale > 1.0) {
      return Status::InvalidArgument(
          "batch_delay_scale must be in (0, 1], got " +
          std::to_string(overrides->batch_delay_scale));
    }
    // recall >= 1.0 is full quality, i.e. no override; a model whose
    // resolved strategy has no sampled tier serves full quality too.
    if (overrides->recall > 0.0 && overrides->recall < 1.0 &&
        gbknn_ != nullptr && gbknn_->SupportsRecallOverride()) {
      recall_override = overrides->recall;
    }
    delay_scale = overrides->batch_delay_scale;
  }
  Stopwatch watch;
  const auto entry_tp = std::chrono::steady_clock::now();

  std::shared_ptr<MicroBatch> batch;
  int slot = 0;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    double expected = -1.0;
    first_enqueue_s_.compare_exchange_strong(
        expected, lifetime_.ElapsedSeconds(), std::memory_order_relaxed);
    if (pending_ != nullptr &&
        pending_->recall_override != recall_override) {
      // Quality boundary: a batch serves every rider at one recall, so
      // an arrival with a different override closes the open batch
      // (waking its leader) and leads a fresh one. Transitions are
      // controller-tick-rare; steady state never splits.
      pending_->closed = true;
      pending_.reset();
      cv_.notify_all();
    }
    if (pending_ == nullptr) {
      pending_ = std::make_shared<MicroBatch>();
      pending_->created_tp = entry_tp;
      pending_->recall_override = recall_override;
      pending_->delay_scale = delay_scale;
      leader = true;
    }
    batch = pending_;
    slot = batch->count++;
    batch->queries.insert(batch->queries.end(), x, x + dims);
    if (batch->count >= options_.max_batch_size) {
      // Full: detach so the next arrival starts a fresh batch, and wake
      // the leader if it is still inside its coalescing window.
      batch->closed = true;
      pending_.reset();
      cv_.notify_all();
    }
  }

  if (leader) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!batch->closed && options_.max_batch_delay_ms > 0) {
        cv_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                options_.max_batch_delay_ms * batch->delay_scale),
            [&] { return batch->closed; });
      }
      if (!batch->closed) {
        batch->closed = true;
        if (pending_ == batch) pending_.reset();
      }
    }
    Dispatch(batch);
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return batch->done; });
  }

  const double ms = watch.ElapsedMillis();
  RecordCompletion(ms, 1);
  if (timing != nullptr) {
    // `batch` is done: its timing fields are immutable now.
    timing->batch_assembly_ms =
        std::max(0.0, MsBetween(entry_tp, batch->dispatch_tp));
    timing->compute_ms = batch->compute_ms;
    timing->batch_size = batch->count;
    timing->total_ms = ms;
    timing->applied_recall = batch->recall_override;
  }
  return batch->labels[slot];
}

StatusOr<std::vector<int>> InferenceEngine::PredictBatch(const Matrix& x) {
  if (x.cols() != model_.dims && x.rows() > 0) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(x.cols()) +
        " features per row, model expects " + std::to_string(model_.dims));
  }
  for (int i = 0; i < x.rows(); ++i) {
    GBX_RETURN_IF_ERROR(ValidateQuery(x.Row(i), x.cols()));
  }
  if (x.rows() == 0) return std::vector<int>{};

  Stopwatch watch;
  double expected = -1.0;
  first_enqueue_s_.compare_exchange_strong(
      expected, lifetime_.ElapsedSeconds(), std::memory_order_relaxed);
  std::vector<int> labels = model_.classifier->PredictBatch(x);
  const double ms = watch.ElapsedMillis();
  for (int i = 0; i < x.rows(); ++i) {
    latency_.Observe(ms);
    m_latency_ms_->Observe(ms);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  m_batches_->Inc();
  m_batch_size_->Observe(static_cast<double>(x.rows()));
  m_compute_ms_->Observe(ms);
  requests_.fetch_add(x.rows(), std::memory_order_relaxed);
  m_requests_->Inc(x.rows());
  metrics::detail::AtomicMax(last_complete_s_, lifetime_.ElapsedSeconds());
  return labels;
}

void InferenceEngine::Dispatch(const std::shared_ptr<MicroBatch>& batch) {
  // `batch` is closed: no appender can touch it anymore, so reading the
  // queries outside the lock is safe.
  const auto dispatch_tp = std::chrono::steady_clock::now();
  Matrix m(batch->count, model_.dims);
  std::copy(batch->queries.begin(), batch->queries.end(),
            m.mutable_data().begin());
  // recall_override > 0 implies gbknn_ (Predict only arms it for a
  // sampled-tier GB-kNN); everything else takes the virtual full-quality
  // path untouched.
  std::vector<int> labels =
      batch->recall_override > 0.0
          ? gbknn_->PredictBatchWithRecall(m, batch->recall_override)
          : model_.classifier->PredictBatch(m);
  const double compute_ms =
      MsBetween(dispatch_tp, std::chrono::steady_clock::now());
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->labels = std::move(labels);
    batch->dispatch_tp = dispatch_tp;
    batch->compute_ms = compute_ms;
    batch->done = true;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  m_batches_->Inc();
  m_batch_size_->Observe(static_cast<double>(batch->count));
  m_coalesce_delay_ms_->Observe(
      std::max(0.0, MsBetween(batch->created_tp, dispatch_tp)));
  m_compute_ms_->Observe(compute_ms);
  cv_.notify_all();
}

void InferenceEngine::RecordCompletion(double ms, std::int64_t n_requests) {
  requests_.fetch_add(n_requests, std::memory_order_relaxed);
  m_requests_->Inc(n_requests);
  latency_.Observe(ms);
  m_latency_ms_->Observe(ms);
  metrics::detail::AtomicMax(last_complete_s_, lifetime_.ElapsedSeconds());
}

InferenceEngineStats InferenceEngine::Stats() const {
  // Lock-free: relaxed loads and a histogram snapshot. Never contends
  // with Predict() callers (the old implementation sorted a 16k-entry
  // sliding window under mu_ on every call).
  InferenceEngineStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(s.requests) / s.batches : 0.0;
  const metrics::HistogramSnapshot snap = latency_.Snapshot();
  if (snap.count > 0) {
    s.p50_ms = snap.Quantile(0.50);
    s.p99_ms = snap.Quantile(0.99);
    s.max_ms = snap.max;
  }
  const double first = first_enqueue_s_.load(std::memory_order_relaxed);
  const double last = last_complete_s_.load(std::memory_order_relaxed);
  if (s.requests > 0 && first >= 0 && last > first) {
    s.qps = static_cast<double>(s.requests) / (last - first);
  }
  return s;
}

}  // namespace gbx
