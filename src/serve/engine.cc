#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/failpoint.h"

namespace gbx {

InferenceEngine::InferenceEngine(LoadedModel model,
                                 InferenceEngineOptions options)
    : model_(std::move(model)), options_(options) {
  GBX_CHECK_MSG(model_.classifier != nullptr,
                "InferenceEngine needs a loaded classifier");
  GBX_CHECK_GT(model_.dims, 0);
  options_.max_batch_size = std::max(1, options_.max_batch_size);
  options_.latency_window = std::max(1, options_.latency_window);
}

Status InferenceEngine::ValidateQuery(const double* x, int dims) const {
  if (dims != model_.dims) {
    return Status::InvalidArgument(
        "query has " + std::to_string(dims) + " features, model expects " +
        std::to_string(model_.dims));
  }
  for (int j = 0; j < dims; ++j) {
    if (!std::isfinite(x[j])) {
      return Status::InvalidArgument("non-finite query feature " +
                                     std::to_string(j));
    }
  }
  return Status::Ok();
}

StatusOr<int> InferenceEngine::Predict(const double* x, int dims) {
  // Chaos site: "engine.predict" with delay(ms) stretches the predict
  // path (overload/deadline batteries); error fails the prediction.
  GBX_FAILPOINT_RETURN_ERROR("engine.predict");
  GBX_RETURN_IF_ERROR(ValidateQuery(x, dims));
  Stopwatch watch;

  std::shared_ptr<MicroBatch> batch;
  int slot = 0;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_enqueue_s_ < 0) first_enqueue_s_ = lifetime_.ElapsedSeconds();
    if (pending_ == nullptr) {
      pending_ = std::make_shared<MicroBatch>();
      leader = true;
    }
    batch = pending_;
    slot = batch->count++;
    batch->queries.insert(batch->queries.end(), x, x + dims);
    if (batch->count >= options_.max_batch_size) {
      // Full: detach so the next arrival starts a fresh batch, and wake
      // the leader if it is still inside its coalescing window.
      batch->closed = true;
      pending_.reset();
      cv_.notify_all();
    }
  }

  if (leader) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!batch->closed && options_.max_batch_delay_ms > 0) {
        cv_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                options_.max_batch_delay_ms),
            [&] { return batch->closed; });
      }
      if (!batch->closed) {
        batch->closed = true;
        if (pending_ == batch) pending_.reset();
      }
    }
    Dispatch(batch);
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return batch->done; });
  }

  const double ms = watch.ElapsedMillis();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    RecordLatency(ms);
    last_complete_s_ = lifetime_.ElapsedSeconds();
  }
  return batch->labels[slot];
}

StatusOr<std::vector<int>> InferenceEngine::PredictBatch(const Matrix& x) {
  if (x.cols() != model_.dims && x.rows() > 0) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(x.cols()) +
        " features per row, model expects " + std::to_string(model_.dims));
  }
  for (int i = 0; i < x.rows(); ++i) {
    GBX_RETURN_IF_ERROR(ValidateQuery(x.Row(i), x.cols()));
  }
  if (x.rows() == 0) return std::vector<int>{};

  Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_enqueue_s_ < 0) first_enqueue_s_ = lifetime_.ElapsedSeconds();
  }
  std::vector<int> labels = model_.classifier->PredictBatch(x);
  const double ms = watch.ElapsedMillis();
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests_ += x.rows();
    ++batches_;
    for (int i = 0; i < x.rows(); ++i) RecordLatency(ms);
    last_complete_s_ = lifetime_.ElapsedSeconds();
  }
  return labels;
}

void InferenceEngine::Dispatch(const std::shared_ptr<MicroBatch>& batch) {
  // `batch` is closed: no appender can touch it anymore, so reading the
  // queries outside the lock is safe.
  Matrix m(batch->count, model_.dims);
  std::copy(batch->queries.begin(), batch->queries.end(),
            m.mutable_data().begin());
  std::vector<int> labels = model_.classifier->PredictBatch(m);
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->labels = std::move(labels);
    batch->done = true;
    ++batches_;
  }
  cv_.notify_all();
}

void InferenceEngine::RecordLatency(double ms) {
  const std::size_t window =
      static_cast<std::size_t>(options_.latency_window);
  if (latencies_ms_.size() < window) {
    latencies_ms_.push_back(ms);
  } else {
    latencies_ms_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % window;
  }
}

InferenceEngineStats InferenceEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  InferenceEngineStats s;
  s.requests = requests_;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(requests_) / batches_ : 0.0;
  if (!latencies_ms_.empty()) {
    std::vector<double> sorted = latencies_ms_;
    std::sort(sorted.begin(), sorted.end());
    const auto nearest_rank = [&](double q) {
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(sorted.size())));
      return sorted[std::min(sorted.size() - 1, std::max<std::size_t>(rank, 1) - 1)];
    };
    s.p50_ms = nearest_rank(0.50);
    s.p99_ms = nearest_rank(0.99);
    s.max_ms = sorted.back();
  }
  if (requests_ > 0 && first_enqueue_s_ >= 0 &&
      last_complete_s_ > first_enqueue_s_) {
    s.qps = static_cast<double>(requests_) /
            (last_complete_s_ - first_enqueue_s_);
  }
  return s;
}

}  // namespace gbx
