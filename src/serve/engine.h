// Batched inference engine: the online half of the serving subsystem.
//
// An InferenceEngine owns one loaded model (serve/model_io.h) and serves
// Predict() calls from any number of caller threads. Concurrent requests
// are coalesced into micro-batches: the first caller into an empty batch
// becomes its *leader* and waits up to `max_batch_delay_ms` for
// followers (or until the batch holds `max_batch_size` queries), then
// dispatches the whole batch through Classifier::PredictBatch — which
// fans the independent queries out over the shared thread pool
// (common/parallel.h) — and wakes the followers with their labels.
//
// Each query's label depends only on the model and the query, never on
// which micro-batch it landed in, so engine output is identical to a
// serial Predict() loop at any thread count and any batching window
// (enforced by tests/serve_test.cc).
//
// The engine tracks request count, batch count, request latency
// percentiles (p50/p99/max estimated from a fixed-bucket histogram —
// common/metrics.h), and sustained QPS, exposed as an
// InferenceEngineStats snapshot. Stats() is lock-free: it never
// contends with Predict() callers. The engine also feeds the
// process-wide metrics registry (gbx_engine_* families) for `!metrics`
// exposition.
#ifndef GBX_SERVE_ENGINE_H_
#define GBX_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "serve/model_io.h"

namespace gbx {

class GbKnnClassifier;

struct InferenceEngineOptions {
  /// A micro-batch is dispatched as soon as it holds this many queries.
  int max_batch_size = 64;
  /// How long a batch leader waits for followers before dispatching a
  /// partial batch. 0 disables coalescing (every request dispatches
  /// immediately).
  double max_batch_delay_ms = 0.2;
  /// Deprecated: the percentile window was replaced by a fixed-bucket
  /// histogram (common/metrics.h); the field is kept so existing
  /// construction sites keep compiling. Ignored.
  int latency_window = 1 << 14;
};

/// Per-request latency attribution filled in by Predict() when the
/// caller passes a non-null out-param (the serving front-end attaches
/// these to its request traces — common/trace.h).
struct PredictTiming {
  /// Enqueue into the micro-batch -> the batch's dispatch began
  /// (leader coalescing wait, from this request's perspective).
  double batch_assembly_ms = 0.0;
  /// Classifier::PredictBatch duration for the batch this request rode.
  double compute_ms = 0.0;
  /// Queries in that batch.
  int batch_size = 0;
  /// Enqueue -> label available (what the latency histogram records).
  double total_ms = 0.0;
  /// The per-call recall this request was actually served at: 0 when no
  /// override was in effect (model-default quality), else the override
  /// the classifier honored. The serving front-end turns values below
  /// 1.0 into the wire-level "degraded recall=F" tag.
  double applied_recall = 0.0;
};

/// Per-call quality/latency knobs threaded through Predict() by the
/// serving front-end's degradation controller (serve/degrade.h). A
/// null overrides pointer (the default) is the fitted-model fast path —
/// bit-identical to pre-override behavior.
struct PredictOverrides {
  /// 0 = serve at the model's configured quality. Else must be in
  /// (0, 1]: requests are served through the GB-kNN sampled tier's
  /// per-call recall path (GbKnnClassifier::PredictBatchWithRecall).
  /// Classifiers without a sampled tier — and exact-strategy GB-kNN —
  /// ignore the override (applied_recall stays 0). Values >= 1.0 are
  /// treated as "no override": full quality is not "degraded".
  double recall = 0.0;
  /// Scales InferenceEngineOptions::max_batch_delay_ms for the batch
  /// this request leads — the ladder's batch-window-shrink rung. Must
  /// be in (0, 1]; followers inherit the leader's window.
  double batch_delay_scale = 1.0;
};

/// Point-in-time engine statistics.
struct InferenceEngineStats {
  std::int64_t requests = 0;
  std::int64_t batches = 0;
  /// Mean queries per dispatched batch.
  double mean_batch_size = 0.0;
  /// Request latency (enqueue -> label available), milliseconds, over
  /// the sliding window.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Completed requests per second between the first enqueue and the
  /// last completion (0 until the first request finishes).
  double qps = 0.0;
};

class InferenceEngine {
 public:
  /// Takes ownership of the loaded model. `model.classifier` must be
  /// non-null and `model.dims` positive.
  explicit InferenceEngine(LoadedModel model,
                           InferenceEngineOptions options = {});

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Predicts the label of one query of `dims` doubles. Safe to call
  /// from any number of threads concurrently; blocks until the query's
  /// micro-batch has been dispatched. Rejects wrong-arity and
  /// non-finite queries with InvalidArgument instead of poisoning the
  /// batch.
  /// `overrides` (optional) carries the degradation controller's
  /// per-call quality knobs; requests with different effective recall
  /// never share a micro-batch (a mismatched arrival closes the pending
  /// batch), so every response's applied_recall is exact.
  StatusOr<int> Predict(const double* x, int dims,
                        PredictTiming* timing = nullptr,
                        const PredictOverrides* overrides = nullptr);
  StatusOr<int> Predict(const std::vector<double>& x) {
    return Predict(x.data(), static_cast<int>(x.size()));
  }

  /// Whole-batch entry point for callers that already hold a batch
  /// (bulk scoring, the CLI's CSV path). Bypasses coalescing — the
  /// matrix is dispatched as one batch — but is counted in the stats.
  StatusOr<std::vector<int>> PredictBatch(const Matrix& x);

  InferenceEngineStats Stats() const;

  const Classifier& classifier() const { return *model_.classifier; }
  const LoadedModel& model() const { return model_; }
  int dims() const { return model_.dims; }
  int num_classes() const { return model_.num_classes; }
  const InferenceEngineOptions& options() const { return options_; }

 private:
  struct MicroBatch {
    std::vector<double> queries;  // count x dims, row-major
    int count = 0;
    bool closed = false;  // no longer accepting followers
    bool done = false;    // labels are ready
    std::vector<int> labels;
    std::chrono::steady_clock::time_point created_tp{};
    std::chrono::steady_clock::time_point dispatch_tp{};
    double compute_ms = 0.0;  // PredictBatch duration (set with done)
    /// Effective per-call recall for every query in this batch (0 =
    /// model default). Set by the leader; arrivals with a different
    /// value start their own batch so the value is batch-invariant.
    double recall_override = 0.0;
    /// Leader's coalescing-window scale (the shrink rung).
    double delay_scale = 1.0;
  };

  /// Validates query arity and finiteness.
  Status ValidateQuery(const double* x, int dims) const;

  /// Runs `batch` through the model and publishes the labels.
  void Dispatch(const std::shared_ptr<MicroBatch>& batch);

  /// Completion-side bookkeeping shared by Predict/PredictBatch.
  void RecordCompletion(double ms, std::int64_t n_requests);

  LoadedModel model_;
  InferenceEngineOptions options_;
  /// Non-null when the classifier is a GB-kNN: the per-call recall
  /// entry point lives on the concrete class, not the Classifier
  /// interface, so the engine resolves it once at construction.
  const GbKnnClassifier* gbknn_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<MicroBatch> pending_;  // open batch accepting queries

  // Stats: all atomic / lock-free so Stats() never contends with the
  // predict path. `latency_` is a per-instance histogram (NOT shared
  // through the registry, whose families outlive any one engine).
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> batches_{0};
  metrics::Histogram latency_;
  Stopwatch lifetime_;
  std::atomic<double> first_enqueue_s_{-1.0};
  std::atomic<double> last_complete_s_{-1.0};

  // Registry-side families (process totals for `!metrics`). Cached at
  // construction; owned by MetricsRegistry::Default().
  metrics::Counter* m_requests_;
  metrics::Counter* m_batches_;
  metrics::Histogram* m_latency_ms_;
  metrics::Histogram* m_batch_size_;
  metrics::Histogram* m_coalesce_delay_ms_;
  metrics::Histogram* m_compute_ms_;
};

}  // namespace gbx

#endif  // GBX_SERVE_ENGINE_H_
