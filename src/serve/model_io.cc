#include "serve/model_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "core/gb_io.h"

namespace gbx {

namespace {

// Artifact I/O metrics: save/load durations plus failures broken down
// by op and status code (gbx_model_io_* families). The per-code
// counters are registered lazily — failures are rare, so the registry
// lock on that path costs nothing that matters.
metrics::Histogram* SaveMsHistogram() {
  static metrics::Histogram* h = metrics::MetricsRegistry::Default().GetHistogram(
      "gbx_model_io_save_ms", {}, "SaveModel duration (ms)");
  return h;
}

metrics::Histogram* LoadMsHistogram() {
  static metrics::Histogram* h = metrics::MetricsRegistry::Default().GetHistogram(
      "gbx_model_io_load_ms", {}, "LoadModel duration (ms)");
  return h;
}

void RecordIoFailure(const char* op, const Status& status) {
  metrics::MetricsRegistry::Default()
      .GetCounter("gbx_model_io_errors_total",
                  {{"op", op}, {"code", StatusCodeName(status.code())}},
                  "Model artifact I/O failures by op and status code")
      ->Inc();
  GBX_SLOG(kWarn, "model_io.failed")
      .Kv("op", op)
      .Kv("error", status.ToString());
}

constexpr char kMagic[] = "gbx-model v1";
constexpr char kChecksumPrefix[] = "checksum fnv1a ";

std::string ChecksumLine(const std::string& body) {
  std::ostringstream out;
  out << kChecksumPrefix << std::hex << std::setw(16) << std::setfill('0')
      << Fnv1a64(body) << "\n";
  return out.str();
}

void WriteVector(std::ostream& out, const std::vector<double>& v) {
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (j > 0) out << " ";
    out << v[j];
  }
  out << "\n";
}

Status ErrnoStatus(const std::string& what) {
  const int err = errno;
  const std::string msg = what + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::Internal(msg);
}

/// write(2) the whole buffer with EINTR retry. Honors the
/// "model_io.save.write" failpoint: `error` fails as ENOSPC after zero
/// bytes; `partial_write(N)` persists exactly the first N bytes of the
/// remaining buffer, then fails as ENOSPC — the torn-write fault the
/// atomic rename must mask.
Status WriteAll(int fd, const char* data, std::size_t size,
                const std::string& path) {
  const FailpointHit fault = GBX_FAILPOINT_EVAL("model_io.save.write");
  if (fault.partial_write()) {
    size = std::min(size, static_cast<std::size_t>(fault.arg));
  }
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (fault.fired()) {
    errno = ENOSPC;
    return ErrnoStatus("write " + path);
  }
  return Status::Ok();
}

/// Atomic, crash-safe artifact write: the full text goes to a
/// same-directory temp file, is fsync'd, and only then rename(2)'d over
/// `path`. A reader (or a crash-recovery restart) therefore sees either
/// the complete old artifact or the complete new one — never a torn
/// mix; on any failure the temp file is unlinked and the destination is
/// untouched. The parent directory is fsync'd after the rename so the
/// new name itself survives a power cut.
Status WriteFileAtomic(const std::string& text, const std::string& path) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  GBX_FAILPOINT_RETURN_ERROR("model_io.save.open");
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return ErrnoStatus("open " + tmp);

  auto fail = [&](Status status) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };

  const Status written = WriteAll(fd, text.data(), text.size(), tmp);
  if (!written.ok()) return fail(written);

  const FailpointHit fsync_fault = GBX_FAILPOINT_EVAL("model_io.save.fsync");
  if (fsync_fault.error() || ::fsync(fd) != 0) {
    if (fsync_fault.error()) errno = EIO;
    return fail(ErrnoStatus("fsync " + tmp));
  }
  if (::close(fd) != 0) {
    fd = -1;
    const Status status = ErrnoStatus("close " + tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  fd = -1;

  // The mid-save kill point: the complete new bytes exist under the
  // temp name, the destination still holds the old artifact — exactly
  // the state tests/chaos_test.cc proves a restart recovers from.
  GBX_FAILPOINT("model_io.save.crash_before_rename");

  const FailpointHit rename_fault = GBX_FAILPOINT_EVAL("model_io.save.rename");
  if (rename_fault.error() || ::rename(tmp.c_str(), path.c_str()) != 0) {
    if (rename_fault.error()) errno = EIO;
    const Status status = ErrnoStatus("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return status;
  }

  // Persist the directory entry; best-effort (some filesystems refuse
  // directory fsync), the data itself is already durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  int dir_fd = -1;
  do {
    dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (dir_fd < 0 && errno == EINTR);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

/// Splits `text` into the checksum-covered body and verifies the final
/// checksum line. Returns the body on success.
// Checksum-envelope failures are kDataLoss: the artifact's delivery is
// damaged (truncated or bit-flipped in storage/transit). Parse failures
// *after* the checksum verifies are kInvalidArgument instead — the
// bytes arrived exactly as written, the format itself is wrong.
StatusOr<std::string> VerifyChecksum(const std::string& text) {
  const std::size_t pos = text.rfind(kChecksumPrefix);
  if (pos == std::string::npos) {
    return Status::DataLoss(
        "truncated artifact: missing checksum trailer line");
  }
  if (pos == 0 || text[pos - 1] != '\n') {
    return Status::DataLoss("corrupt artifact: checksum not at line start");
  }
  // Exactly 16 lowercase hex digits, parsed case-sensitively (istream
  // hex extraction would silently accept case-flipped digits).
  const std::size_t hex_begin = pos + sizeof(kChecksumPrefix) - 1;
  if (text.size() < hex_begin + 16) {
    return Status::DataLoss("truncated artifact: cut mid-checksum");
  }
  std::uint64_t stored = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = text[hex_begin + i];
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::DataLoss("corrupt artifact: malformed checksum value");
    }
    stored = stored << 4 | static_cast<std::uint64_t>(digit);
  }
  for (std::size_t i = hex_begin + 16; i < text.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) {
      return Status::DataLoss("corrupt artifact: trailing data after checksum");
    }
  }
  const std::string body = text.substr(0, pos);
  if (Fnv1a64(body) != stored) {
    return Status::DataLoss("corrupt artifact: checksum mismatch");
  }
  return body;
}

Status ReadFiniteVector(std::istream& in, int n, const char* what,
                        std::vector<double>* out) {
  out->resize(n);
  for (int j = 0; j < n; ++j) {
    if (!(in >> (*out)[j])) {
      return Status::InvalidArgument(std::string("truncated ") + what);
    }
    if (!std::isfinite((*out)[j])) {
      return Status::InvalidArgument(std::string("non-finite value in ") +
                                     what);
    }
  }
  return Status::Ok();
}

StatusOr<LoadedModel> ParseGbKnn(std::istringstream& in,
                                 const std::string& body,
                                 const std::string& config_line, int classes,
                                 int dims) {
  // The scaler section holds two dims-length vectors of >= 2 bytes per
  // value; reject headers promising more than the artifact holds before
  // allocating.
  if (static_cast<long long>(dims) * 4 > static_cast<long long>(body.size())) {
    return Status::InvalidArgument("header declares more data than input");
  }
  std::string tok, kind;
  if (!(in >> tok >> kind) || tok != "scaler" || kind != "minmax") {
    return Status::InvalidArgument("expected 'scaler minmax' section");
  }
  std::vector<double> mins, maxs;
  GBX_RETURN_IF_ERROR(ReadFiniteVector(in, dims, "scaler mins", &mins));
  GBX_RETURN_IF_ERROR(ReadFiniteVector(in, dims, "scaler maxs", &maxs));
  for (int j = 0; j < dims; ++j) {
    if (mins[j] > maxs[j]) {
      return Status::InvalidArgument("scaler min exceeds max at feature " +
                                     std::to_string(j));
    }
  }

  if (!(in >> tok) || tok != "balls") {
    return Status::InvalidArgument("expected 'balls' section");
  }
  // The remainder of the body (from the next line on) is an embedded
  // gbx-granular-balls document; hand it to the gb_io parser whole.
  std::string line_rest;
  std::getline(in, line_rest);
  const std::streampos pos = in.tellg();
  if (pos < 0) return Status::InvalidArgument("truncated balls section");
  StatusOr<GranularBallSet> balls =
      GranularBallsFromString(body.substr(static_cast<std::size_t>(pos)));
  if (!balls.ok()) {
    return Status(balls.status().code(),
                  "embedded ball set: " + balls.status().message());
  }
  if (balls->empty()) {
    return Status::InvalidArgument("gb-knn artifact has no balls");
  }
  if (balls->scaled_features().cols() != dims) {
    return Status::InvalidArgument("ball dims disagree with model dims");
  }
  if (balls->num_classes() != classes) {
    return Status::InvalidArgument("ball classes disagree with model classes");
  }

  int k = 0, rho = 0;
  std::uint64_t seed = 0;
  {
    std::istringstream cfg(config_line);
    std::string c, kk, kr, ks;
    if (!(cfg >> c >> kk >> k >> kr >> rho >> ks >> seed) || kk != "k" ||
        kr != "rho" || ks != "seed" || k < 1 || rho < 1) {
      return Status::InvalidArgument("bad gb-knn config line");
    }
  }

  RdGbgConfig gbg;
  gbg.density_tolerance = rho;
  gbg.seed = seed;
  LoadedModel model;
  MinMaxScaler scaler;
  scaler.Restore(mins, maxs);
  auto classifier = std::make_unique<GbKnnClassifier>(gbg, k);
  classifier->Restore(std::move(balls).value(), std::move(scaler), classes);
  model.classifier = std::move(classifier);
  model.kind = "gb-knn";
  model.dims = dims;
  model.num_classes = classes;
  model.config = config_line;
  model.feature_mins = std::move(mins);
  model.feature_maxs = std::move(maxs);
  return model;
}

StatusOr<LoadedModel> ParseKnn(std::istringstream& in,
                               const std::string& body,
                               const std::string& config_line, int classes,
                               int dims) {
  std::string tok;
  int n = 0;
  if (!(in >> tok >> n) || tok != "data" || n < 1) {
    return Status::InvalidArgument("expected 'data <n>' section with n >= 1");
  }
  // Every value needs at least two input bytes; reject headers that
  // promise more data than the artifact holds before allocating.
  if (static_cast<long long>(n) * (dims + 1) * 2 >
      static_cast<long long>(body.size())) {
    return Status::InvalidArgument("header declares more data than input");
  }
  Matrix x(n, dims);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dims; ++j) {
      if (!(in >> x.At(i, j))) {
        return Status::InvalidArgument("truncated training row " +
                                       std::to_string(i));
      }
      if (!std::isfinite(x.At(i, j))) {
        return Status::InvalidArgument("non-finite feature in row " +
                                       std::to_string(i));
      }
    }
    if (!(in >> y[i])) {
      return Status::InvalidArgument("truncated label in row " +
                                     std::to_string(i));
    }
    if (y[i] < 0 || y[i] >= classes) {
      return Status::OutOfRange("label out of range in row " +
                                std::to_string(i));
    }
  }
  if (in >> tok) {
    return Status::InvalidArgument("trailing data after training rows");
  }

  int k = 0;
  {
    std::istringstream cfg(config_line);
    std::string c, kk;
    if (!(cfg >> c >> kk >> k) || kk != "k" || k < 1) {
      return Status::InvalidArgument("bad knn config line");
    }
  }

  LoadedModel model;
  model.feature_mins.assign(dims, std::numeric_limits<double>::infinity());
  model.feature_maxs.assign(dims, -std::numeric_limits<double>::infinity());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dims; ++j) {
      model.feature_mins[j] = std::min(model.feature_mins[j], x.At(i, j));
      model.feature_maxs[j] = std::max(model.feature_maxs[j], x.At(i, j));
    }
  }
  auto classifier = std::make_unique<KnnClassifier>(k);
  classifier->Restore(Dataset(std::move(x), std::move(y), classes));
  model.classifier = std::move(classifier);
  model.kind = "knn";
  model.dims = dims;
  model.num_classes = classes;
  model.config = config_line;
  return model;
}

}  // namespace

std::uint64_t Fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ModelToString(const GbKnnClassifier& model) {
  GBX_CHECK_MSG(model.fitted(),
                "GB-kNN: ModelToString called before Fit/Restore");
  std::ostringstream out;
  out.precision(17);
  const int dims = model.balls().scaled_features().cols();
  out << kMagic << "\n";
  out << "classifier gb-knn\n";
  out << "config k " << model.k() << " rho "
      << model.config().density_tolerance << " seed "
      << model.effective_seed() << "\n";
  out << "classes " << model.num_classes() << " dims " << dims << "\n";
  out << "scaler minmax\n";
  WriteVector(out, model.scaler().mins());
  WriteVector(out, model.scaler().maxs());
  out << "balls\n";
  out << GranularBallsToString(model.balls());
  std::string body = out.str();
  return body + ChecksumLine(body);
}

std::string ModelToString(const KnnClassifier& model) {
  GBX_CHECK_MSG(model.fitted(),
                "kNN: ModelToString called before Fit/Restore");
  std::ostringstream out;
  out.precision(17);
  const Dataset& train = model.train();
  out << kMagic << "\n";
  out << "classifier knn\n";
  out << "config k " << model.k() << "\n";
  out << "classes " << train.num_classes() << " dims "
      << train.num_features() << "\n";
  out << "data " << train.size() << "\n";
  for (int i = 0; i < train.size(); ++i) {
    for (int j = 0; j < train.num_features(); ++j) {
      out << train.feature(i, j) << " ";
    }
    out << train.label(i) << "\n";
  }
  std::string body = out.str();
  return body + ChecksumLine(body);
}

Status SaveModel(const GbKnnClassifier& model, const std::string& path) {
  metrics::ScopedTimerMs timer(SaveMsHistogram());
  const Status status = WriteFileAtomic(ModelToString(model), path);
  if (!status.ok()) RecordIoFailure("save", status);
  return status;
}

Status SaveModel(const KnnClassifier& model, const std::string& path) {
  metrics::ScopedTimerMs timer(SaveMsHistogram());
  const Status status = WriteFileAtomic(ModelToString(model), path);
  if (!status.ok()) RecordIoFailure("save", status);
  return status;
}

Status SaveModel(const Classifier& model, const std::string& path) {
  if (const auto* gbknn = dynamic_cast<const GbKnnClassifier*>(&model)) {
    return SaveModel(*gbknn, path);
  }
  if (const auto* knn = dynamic_cast<const KnnClassifier*>(&model)) {
    return SaveModel(*knn, path);
  }
  const Status status = Status::InvalidArgument(
      "no gbx-model serialization for " + model.name());
  RecordIoFailure("save", status);
  return status;
}

StatusOr<LoadedModel> ModelFromString(const std::string& text) {
  StatusOr<std::string> body = VerifyChecksum(text);
  if (!body.ok()) return body.status();

  std::istringstream in(*body);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::InvalidArgument("bad magic line");
  }
  std::string tok, kind;
  if (!(in >> tok >> kind) || tok != "classifier") {
    return Status::InvalidArgument("missing classifier line");
  }
  std::getline(in, line);  // consume the rest of the classifier line

  std::string config_line;
  if (!std::getline(in, config_line) ||
      config_line.rfind("config ", 0) != 0) {
    return Status::InvalidArgument("missing config line");
  }

  int classes = 0, dims = 0;
  {
    std::string k1, k2;
    if (!(in >> k1 >> classes >> k2 >> dims) || k1 != "classes" ||
        k2 != "dims" || classes < 1 || dims < 1) {
      return Status::InvalidArgument("bad classes/dims line");
    }
  }
  StatusOr<LoadedModel> model =
      kind == "gb-knn" ? ParseGbKnn(in, *body, config_line, classes, dims)
      : kind == "knn"
          ? ParseKnn(in, *body, config_line, classes, dims)
          : StatusOr<LoadedModel>(Status::InvalidArgument(
                "unknown classifier kind '" + kind + "'"));
  if (model.ok()) model->checksum = Fnv1a64(*body);
  return model;
}

StatusOr<LoadedModel> LoadModel(const std::string& path) {
  metrics::ScopedTimerMs timer(LoadMsHistogram());
  const auto fail = [&](Status status) {
    RecordIoFailure("load", status);
    return status;
  };
  std::ifstream in(path);
  if (!in) return fail(Status::NotFound("cannot open " + path));
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return fail(Status::Internal("read error on " + path));
  StatusOr<LoadedModel> model = ModelFromString(buffer.str());
  if (!model.ok()) return fail(model.status());
  return model;
}

}  // namespace gbx
