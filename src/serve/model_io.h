// Persistence for *trained* classifiers — the train-once / serve-forever
// boundary of the serving subsystem. A fitted model is captured in a
// versioned, self-describing text artifact and restored in another
// process with bit-identical predictions; this module round-trips it
// through the `gbx-model v1` format:
//
//   gbx-model v1
//   classifier gb-knn                  # or: knn
//   config k <k> rho <rho> seed <s>    # training-config fingerprint
//   classes <q> dims <p>
//   --- gb-knn payload ---
//   scaler minmax
//   <p per-feature mins>               # MinMaxScaler state, %.17g
//   <p per-feature maxs>
//   balls
//   gbx-granular-balls v1              # embedded gb_io block (gb_io.h)
//   ...
//   --- knn payload ---
//   config k <k>
//   data <n>
//   <p features + label per row>       # the stored training set
//   --- both ---
//   checksum fnv1a <16 hex digits>     # FNV-1a 64 over every prior byte
//
// All numeric fields are written with 17 significant digits, so doubles
// round-trip losslessly and a loaded model's PredictBatch output is
// bit-identical to the fitted model it was saved from (enforced by
// tests/serve_test.cc).
//
// Loading treats the artifact as untrusted input, mirroring gb_io.h:
// truncation, a corrupted byte (checksum mismatch), non-finite values,
// negative radii, dimension/class mismatches between sections, and
// trailing garbage all yield a descriptive error Status — never UB.
// The failure classes carry distinct codes so callers can react
// (serve/registry.h rollback, operator triage):
//
//   kNotFound         the artifact file does not exist
//   kDataLoss         the checksum envelope is damaged — truncated file
//                     or corrupted bytes (retry from a replica/backup)
//   kInvalidArgument  the bytes are intact (checksum verifies) but the
//                     format is wrong (version skew, handcrafted file)
//
// Saving is atomic and crash-safe: SaveModel writes the full artifact
// to a same-directory temp file, fsyncs, then rename(2)s it over the
// destination — a concurrently-loading replica or a post-crash restart
// sees either the complete old artifact or the complete new one, never
// a torn write. On any save failure (disk full, fsync error, injected
// failpoint — see common/failpoint.h sites model_io.save.*) the temp
// file is removed and the destination is untouched; ENOSPC surfaces as
// kResourceExhausted. Enforced by tests/chaos_test.cc.
#ifndef GBX_SERVE_MODEL_IO_H_
#define GBX_SERVE_MODEL_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/classifier.h"
#include "ml/gb_knn.h"
#include "ml/knn.h"

namespace gbx {

/// A classifier restored from a gbx-model artifact, plus the artifact
/// metadata serving needs without downcasting.
struct LoadedModel {
  std::unique_ptr<Classifier> classifier;
  /// "gb-knn" or "knn".
  std::string kind;
  int dims = 0;
  int num_classes = 0;
  /// The artifact's `config ...` fingerprint line, verbatim (which
  /// hyperparameters / granulation seed produced this model).
  std::string config;
  /// The artifact's verified FNV-1a-64 checksum — a content-addressed
  /// version id. The serving front-end tags every prediction response
  /// with it so clients can pin which model version answered
  /// (serve/registry.h hot-swap). 0 for a LoadedModel assembled by hand.
  std::uint64_t checksum = 0;
  /// Per-feature value ranges observed at training time (the scaler
  /// bounds for gb-knn, the training-data bounds for knn). Used by load
  /// generators (gbx_serve bench) to synthesize in-distribution queries.
  std::vector<double> feature_mins;
  std::vector<double> feature_maxs;
};

/// Serializes a fitted classifier. The classifier must be fitted.
std::string ModelToString(const GbKnnClassifier& model);
std::string ModelToString(const KnnClassifier& model);

/// Writes the artifact to `path`. The const-ref Classifier overload
/// dispatches on the dynamic type and returns InvalidArgument for
/// classifier types without a serialization (only GB-kNN and kNN ship
/// in format v1).
Status SaveModel(const GbKnnClassifier& model, const std::string& path);
Status SaveModel(const KnnClassifier& model, const std::string& path);
Status SaveModel(const Classifier& model, const std::string& path);

/// Parses an artifact produced by ModelToString / SaveModel.
StatusOr<LoadedModel> ModelFromString(const std::string& text);

/// Reads an artifact written by SaveModel.
StatusOr<LoadedModel> LoadModel(const std::string& path);

/// FNV-1a 64-bit hash, the artifact checksum primitive (exposed for
/// tests).
std::uint64_t Fnv1a64(const std::string& bytes);

}  // namespace gbx

#endif  // GBX_SERVE_MODEL_IO_H_
