#include "serve/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace gbx {

namespace {

std::uint32_t DecodeLength(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) << 24 |
         static_cast<std::uint32_t>(u[1]) << 16 |
         static_cast<std::uint32_t>(u[2]) << 8 | static_cast<std::uint32_t>(u[3]);
}

}  // namespace

void AppendFrame(std::string_view payload, std::string* out) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  const char header[kFrameHeaderBytes] = {
      static_cast<char>(n >> 24), static_cast<char>(n >> 16),
      static_cast<char>(n >> 8), static_cast<char>(n)};
  out->append(header, kFrameHeaderBytes);
  out->append(payload);
}

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &out);
  return out;
}

void FrameDecoder::Feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
}

FrameDecoder::Result FrameDecoder::Next(std::string* payload,
                                        std::string* error) {
  if (failed_) {
    *error = error_;
    return Result::kError;
  }
  if (buffer_.size() - pos_ < kFrameHeaderBytes) {
    // Reclaim consumed bytes while waiting; cheap because the pending
    // remainder is at most 3 header bytes.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    return Result::kNeedMore;
  }
  const std::uint32_t length = DecodeLength(buffer_.data() + pos_);
  if (length == 0) {
    failed_ = true;
    error_ = "zero-length frame";
    *error = error_;
    return Result::kError;
  }
  if (length > max_frame_bytes_) {
    failed_ = true;
    error_ = "declared frame length " + std::to_string(length) +
             " exceeds the " + std::to_string(max_frame_bytes_) +
             "-byte limit";
    *error = error_;
    return Result::kError;
  }
  if (buffer_.size() - pos_ - kFrameHeaderBytes < length) {
    return Result::kNeedMore;
  }
  payload->assign(buffer_, pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Result::kFrame;
}

Status ParsePredictPayload(std::string_view payload, std::string* model,
                           double* timeout_ms, std::vector<double>* query) {
  model->clear();
  if (timeout_ms != nullptr) *timeout_ms = 0.0;
  query->clear();
  std::string line(payload);
  if (!line.empty() && line[0] == '@') {
    const std::size_t sep = line.find_first_of(" \t,");
    if (sep == std::string::npos || sep == 1) {
      return Status::InvalidArgument(
          "malformed @model prefix (want '@name <features>')");
    }
    *model = line.substr(1, sep - 1);
    line.erase(0, sep + 1);
  }
  constexpr std::string_view kTimeoutKey = "timeout_ms=";
  while (!line.empty() && (line[0] == ' ' || line[0] == '\t')) line.erase(0, 1);
  if (line.compare(0, kTimeoutKey.size(), kTimeoutKey) == 0) {
    const std::size_t sep = line.find_first_of(" \t,", kTimeoutKey.size());
    const std::string value =
        line.substr(kTimeoutKey.size(), sep == std::string::npos
                                            ? std::string::npos
                                            : sep - kTimeoutKey.size());
    char* end = nullptr;
    errno = 0;
    const double t = std::strtod(value.c_str(), &end);
    if (value.empty() || end == nullptr || *end != '\0' || errno != 0 ||
        !(t > 0.0)) {
      return Status::InvalidArgument(
          "malformed timeout_ms field '" + value +
          "' (want a positive number of milliseconds)");
    }
    if (timeout_ms != nullptr) *timeout_ms = t;
    if (sep == std::string::npos) {
      return Status::InvalidArgument("query payload has no features");
    }
    line.erase(0, sep + 1);
  }
  for (char& c : line) {
    if (c == ',' || c == '\t') c = ' ';
  }
  std::istringstream fields(line);
  double v = 0.0;
  while (fields >> v) query->push_back(v);
  std::string rest;
  if (fields.bad() || (fields.clear(), fields >> rest)) {
    return Status::InvalidArgument("unparseable query payload");
  }
  if (query->empty()) {
    return Status::InvalidArgument("query payload has no features");
  }
  return Status::Ok();
}

std::string FormatPredictPayload(std::string_view model, const double* x,
                                 int dims, double timeout_ms) {
  std::string out;
  if (!model.empty()) {
    out += '@';
    out += model;
    out += ' ';
  }
  char buf[40];
  if (timeout_ms > 0.0) {
    std::snprintf(buf, sizeof(buf), "timeout_ms=%.17g ", timeout_ms);
    out += buf;
  }
  for (int j = 0; j < dims; ++j) {
    std::snprintf(buf, sizeof(buf), "%s%.17g", j > 0 ? "," : "", x[j]);
    out += buf;
  }
  return out;
}

StatusOr<int> ConnectTcp(const std::string& host, int port,
                         double timeout_s) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_s);
  tv.tv_usec = static_cast<long>((timeout_s - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) {
      // POSIX: an EINTR'd connect keeps completing asynchronously and
      // must NOT be retried (a second connect yields EALREADY/EISCONN
      // races). Wait for writability, then read the real outcome from
      // SO_ERROR.
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1e3));
      } while (rc < 0 && errno == EINTR);
      int so_error = rc == 1 ? 0 : ETIMEDOUT;
      socklen_t len = sizeof(so_error);
      if (rc == 1) ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        ::close(fd);
        return Status::Internal("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(so_error));
      }
      return fd;
    }
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + err);
  }
  return fd;
}

Status SendFrame(int fd, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
  }
  return Status::Ok();
}

namespace {

/// Reads exactly `n` bytes. `*eof_clean` is true when EOF arrived before
/// the first byte (a frame-boundary close, not a truncation).
Status RecvExactly(int fd, char* out, std::size_t n, bool* eof_clean) {
  *eof_clean = false;
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
    } else if (r == 0) {
      *eof_clean = got == 0;
      return Status::Internal(got == 0 ? "connection closed"
                                       : "connection closed mid-frame");
    } else if (errno == EINTR) {
      continue;
    } else {
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> RecvFrame(int fd, std::uint32_t max_frame_bytes) {
  char header[kFrameHeaderBytes];
  bool eof_clean = false;
  GBX_RETURN_IF_ERROR(RecvExactly(fd, header, sizeof(header), &eof_clean));
  const std::uint32_t length = DecodeLength(header);
  if (length == 0 || length > max_frame_bytes) {
    return Status::InvalidArgument("bad response frame length " +
                                   std::to_string(length));
  }
  std::string payload(length, '\0');
  GBX_RETURN_IF_ERROR(RecvExactly(fd, payload.data(), length, &eof_clean));
  return payload;
}

}  // namespace gbx
