// gbx-wire v1: the length-prefixed request protocol of the network
// serving front-end (serve/server.h). One frame is
//
//   [4-byte big-endian payload length][payload bytes]
//
// with the payload a UTF-8 text line. Request payloads reuse the
// gbx_serve stdin predict wire format:
//
//   predict   "[@MODEL ][timeout_ms=T ]F1[,F2 ...]"
//             comma/space/tab-separated features, optionally prefixed
//             with "@MODEL" to route the query to a named ModelRegistry
//             entry (no prefix = the server's default model) and/or a
//             "timeout_ms=T" deadline: if the server cannot start the
//             prediction within T ms of receiving the frame it answers
//             "error DEADLINE_EXCEEDED: ..." instead of serving a
//             result the client has already given up on.
//   admin     "!ping"                   liveness probe -> "ok pong"
//             "!list"                   registry contents
//             "!stat NAME"              engine stats for one model plus
//                                       server overload counters (shed /
//                                       deadline_expired / queue depth)
//             "!swap NAME PATH"         load the artifact at PATH and
//                                       atomically publish it as NAME
//                                       (the hot-swap control path)
//             "!fail set NAME=SPEC"     arm a failpoint (common/
//             "!fail clear NAME|*"      failpoint.h) in the serving
//             "!fail list"              process; FAILED_PRECONDITION
//                                       when sites are compiled out
//             "!metrics [prom|json]"    scrape the process metrics
//                                       registry (common/metrics.h) ->
//                                       "ok metrics FORMAT" on line 1,
//                                       exposition body from line 2
//             "!trace last|slow [N]"    the N most recent / slowest
//                                       request span trees (common/
//                                       trace.h) -> "ok traces N" then
//                                       one formatted tree per trace
//             "!health"                 readiness probe for load
//                                       balancers -> "ok health
//                                       ready|unready [reasons R1,R2]
//                                       models N workers A stalled S
//                                       queue D/CAP degrade off|L
//                                       recall F". Ready iff the
//                                       registry serves >= 1 model,
//                                       every worker is alive, and the
//                                       queue is below the shed line;
//                                       unready lists machine-readable
//                                       reasons (no-models,
//                                       workers-stalled, no-workers,
//                                       queue-full). Always "ok", so a
//                                       probe distinguishes "unready"
//                                       from "down".
//
// Response payloads are one frame per request, in request order per
// connection:
//
//   "ok LABEL fnv1a CHECKSUM16"         prediction, tagged with the
//                                       serving artifact's checksum so a
//                                       client can pin which model
//                                       version answered (hot-swap
//                                       consistency; tests/hot_swap_test)
//                                       Under --degrade auto a reply
//                                       served at reduced quality
//                                       appends " degraded recall=F"
//                                       (F in (0,1), %.2f) AFTER the
//                                       checksum, so fixed-field
//                                       parsers keep working and
//                                       quality-aware clients can count
//                                       what they got (serve/degrade.h)
//   "ok ..."                            admin success
//   "error CODE: message"               structured error; the connection
//                                       stays open for payload-level
//                                       errors. Framing-level errors
//                                       (zero or oversized declared
//                                       length) poison the byte stream,
//                                       so the server answers the error
//                                       frame and then closes.
//                                       Notable CODEs under fault:
//                                       UNAVAILABLE ("overloaded ...")
//                                       when a bounded request queue
//                                       sheds the request — resend with
//                                       backoff; DEADLINE_EXCEEDED when
//                                       a timeout_ms deadline expired
//                                       in queue; DATA_LOSS when !swap
//                                       hit a corrupt artifact.
//
// A declared length of 0 or more than `max_frame_bytes` is a framing
// error: the stream cannot be resynchronized, so FrameDecoder reports it
// sticky (every later Next() fails too).
#ifndef GBX_SERVE_PROTOCOL_H_
#define GBX_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gbx {

/// Bytes in the length prefix.
inline constexpr int kFrameHeaderBytes = 4;
/// Default cap on a declared payload length (1 MiB). A predict query is
/// tens of bytes; the cap only exists to bound a malicious header.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;

/// Appends one length-prefixed frame carrying `payload` to `*out`.
void AppendFrame(std::string_view payload, std::string* out);
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder over a received byte stream. Feed() bytes
/// as they arrive; Next() pops complete frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, std::size_t n);

  enum class Result {
    kFrame,     // *payload holds the next complete frame
    kNeedMore,  // a partial header/frame is buffered; feed more bytes
    kError,     // framing is unrecoverable; *error says why (sticky)
  };
  Result Next(std::string* payload, std::string* error);

  /// Bytes buffered but not yet consumed as a complete frame (> 0 means
  /// a partial header or partial frame is pending — the slow-loris
  /// signal the server's idle sweep keys on).
  std::size_t buffered_bytes() const { return buffer_.size() - pos_; }
  bool failed() const { return failed_; }

 private:
  std::uint32_t max_frame_bytes_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// Parses a predict payload: an optional "@MODEL" first token, an
/// optional "timeout_ms=T" token (T a positive number of milliseconds),
/// then the stdin predict line format (comma/space/tab-separated
/// doubles). `*model` is empty when no "@" prefix was present;
/// `*timeout_ms` is 0 when no deadline was requested (pass nullptr to
/// accept-and-ignore the token). Rejects payloads with no features,
/// trailing garbage, or a malformed prefix.
Status ParsePredictPayload(std::string_view payload, std::string* model,
                           double* timeout_ms, std::vector<double>* query);
inline Status ParsePredictPayload(std::string_view payload,
                                  std::string* model,
                                  std::vector<double>* query) {
  return ParsePredictPayload(payload, model, nullptr, query);
}

/// Formats one predict payload ("@model timeout_ms=T f1,f2,..."), %.17g
/// per feature so queries round-trip doubles losslessly — socket
/// predictions stay bit-identical to the in-process path. Empty `model`
/// omits the prefix; `timeout_ms <= 0` omits the deadline field.
std::string FormatPredictPayload(std::string_view model, const double* x,
                                 int dims, double timeout_ms = 0.0);

// --- blocking client-side helpers (gbx_loadgen, test batteries) ---
// The server itself is nonblocking; these wrap a connected socket fd.

/// Opens a blocking TCP connection to host:port with `timeout_s` applied
/// to connect, reads, and writes. Returns the connected fd.
StatusOr<int> ConnectTcp(const std::string& host, int port,
                         double timeout_s = 10.0);

/// Writes one frame, handling partial writes.
Status SendFrame(int fd, std::string_view payload);

/// Reads one complete frame payload. EOF at a frame boundary and EOF
/// mid-frame both return an error Status (distinct messages).
StatusOr<std::string> RecvFrame(
    int fd, std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace gbx

#endif  // GBX_SERVE_PROTOCOL_H_
