#include "serve/registry.h"

#include <cctype>
#include <vector>

#include "common/failpoint.h"

namespace gbx {

namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '.' || c == '-')) return false;
  }
  return true;
}

/// End-to-end pre-publication validation: a probe query (the midpoint
/// of the training-time feature ranges, or the origin when ranges are
/// absent) must flow through the candidate engine and produce an
/// in-range label. A model that cannot answer one prediction must
/// never be allowed to evict a version that can.
Status ValidateEngine(InferenceEngine& engine, const std::string& name) {
  GBX_FAILPOINT_RETURN_ERROR("registry.publish.validate");
  const int dims = engine.dims();
  std::vector<double> probe(dims, 0.0);
  const LoadedModel& model = engine.model();
  if (static_cast<int>(model.feature_mins.size()) == dims &&
      static_cast<int>(model.feature_maxs.size()) == dims) {
    for (int j = 0; j < dims; ++j) {
      probe[j] = 0.5 * (model.feature_mins[j] + model.feature_maxs[j]);
    }
  }
  const StatusOr<int> label = engine.Predict(probe);
  if (!label.ok()) {
    return Status::FailedPrecondition(
        "refusing to publish '" + name +
        "': probe prediction failed: " + label.status().ToString());
  }
  if (*label < 0 || *label >= engine.num_classes()) {
    return Status::FailedPrecondition(
        "refusing to publish '" + name + "': probe prediction label " +
        std::to_string(*label) + " is outside [0, " +
        std::to_string(engine.num_classes()) + ")");
  }
  return Status::Ok();
}

}  // namespace

ModelRegistry::ModelRegistry(InferenceEngineOptions engine_options)
    : engine_options_(engine_options) {}

StatusOr<std::shared_ptr<const ServedModel>> ModelRegistry::Publish(
    const std::string& name, LoadedModel model) {
  if (!ValidName(name)) {
    return Status::InvalidArgument(
        "model name '" + name +
        "' is not a routing token ([A-Za-z0-9_.-]+ required)");
  }
  if (model.classifier == nullptr) {
    return Status::InvalidArgument("model '" + name + "' has no classifier");
  }
  if (model.dims < 1 || model.num_classes < 1) {
    return Status::InvalidArgument(
        "model '" + name + "' declares dims=" + std::to_string(model.dims) +
        " classes=" + std::to_string(model.num_classes) +
        " (both must be >= 1)");
  }
  auto entry = std::make_shared<ServedModel>();
  entry->name = name;
  entry->checksum = model.checksum;
  // Engine construction (center-index build etc.) and the end-to-end
  // probe prediction happen outside the lock; only the pointer swap
  // below is serialized. Any failure before that swap leaves the
  // currently-published version — and its next version number —
  // completely untouched: a bad artifact can never evict a serving
  // model (the rollback oracle in tests/hot_swap_test.cc).
  entry->engine =
      std::make_unique<InferenceEngine>(std::move(model), engine_options_);
  GBX_RETURN_IF_ERROR(ValidateEngine(*entry->engine, name));
  std::lock_guard<std::mutex> lock(mu_);
  entry->version = ++next_version_[name];
  std::shared_ptr<const ServedModel> published = std::move(entry);
  models_[name] = published;
  return published;
}

std::shared_ptr<const ServedModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no model named '" + name + "'");
  }
  return Status::Ok();
}

std::vector<std::shared_ptr<const ServedModel>> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const ServedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, entry] : models_) out.push_back(entry);
  return out;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(models_.size());
}

}  // namespace gbx
