#include "serve/registry.h"

#include <cctype>

namespace gbx {

namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '.' || c == '-')) return false;
  }
  return true;
}

}  // namespace

ModelRegistry::ModelRegistry(InferenceEngineOptions engine_options)
    : engine_options_(engine_options) {}

StatusOr<std::shared_ptr<const ServedModel>> ModelRegistry::Publish(
    const std::string& name, LoadedModel model) {
  if (!ValidName(name)) {
    return Status::InvalidArgument(
        "model name '" + name +
        "' is not a routing token ([A-Za-z0-9_.-]+ required)");
  }
  if (model.classifier == nullptr) {
    return Status::InvalidArgument("model '" + name + "' has no classifier");
  }
  auto entry = std::make_shared<ServedModel>();
  entry->name = name;
  entry->checksum = model.checksum;
  // Engine construction (center-index build etc.) happens outside the
  // lock; only the pointer swap below is serialized.
  entry->engine =
      std::make_unique<InferenceEngine>(std::move(model), engine_options_);
  std::lock_guard<std::mutex> lock(mu_);
  entry->version = ++next_version_[name];
  std::shared_ptr<const ServedModel> published = std::move(entry);
  models_[name] = published;
  return published;
}

std::shared_ptr<const ServedModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no model named '" + name + "'");
  }
  return Status::Ok();
}

std::vector<std::shared_ptr<const ServedModel>> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const ServedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, entry] : models_) out.push_back(entry);
  return out;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(models_.size());
}

}  // namespace gbx
