#include "serve/registry.h"

#include <cctype>
#include <vector>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"

namespace gbx {

namespace {

/// Registry-lifecycle metrics (gbx_registry_* families): publish
/// attempts by result, publish latency (engine build + validation
/// probe), swaps (publishes that replaced a live version) and rollbacks
/// (failed publishes that left the live version untouched).
struct RegistryMetrics {
  metrics::Counter* publish_ok;
  metrics::Counter* publish_error;
  metrics::Counter* swaps;
  metrics::Counter* rollbacks;
  metrics::Histogram* publish_ms;

  static RegistryMetrics& Get() {
    static RegistryMetrics* m = [] {
      auto& reg = metrics::MetricsRegistry::Default();
      auto* out = new RegistryMetrics();
      out->publish_ok =
          reg.GetCounter("gbx_registry_publish_total", {{"result", "ok"}},
                         "Model publishes by result");
      out->publish_error =
          reg.GetCounter("gbx_registry_publish_total", {{"result", "error"}},
                         "Model publishes by result");
      out->swaps = reg.GetCounter(
          "gbx_registry_swaps_total", {},
          "Publishes that replaced an already-serving version");
      out->rollbacks = reg.GetCounter(
          "gbx_registry_rollbacks_total", {},
          "Failed publishes rejected before the version swap");
      out->publish_ms = reg.GetHistogram(
          "gbx_registry_publish_ms", {},
          "Publish latency: engine build + validation probe (ms)");
      return out;
    }();
    return *m;
  }
};

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '.' || c == '-')) return false;
  }
  return true;
}

/// End-to-end pre-publication validation: a probe query (the midpoint
/// of the training-time feature ranges, or the origin when ranges are
/// absent) must flow through the candidate engine and produce an
/// in-range label. A model that cannot answer one prediction must
/// never be allowed to evict a version that can.
Status ValidateEngine(InferenceEngine& engine, const std::string& name) {
  GBX_FAILPOINT_RETURN_ERROR("registry.publish.validate");
  const int dims = engine.dims();
  std::vector<double> probe(dims, 0.0);
  const LoadedModel& model = engine.model();
  if (static_cast<int>(model.feature_mins.size()) == dims &&
      static_cast<int>(model.feature_maxs.size()) == dims) {
    for (int j = 0; j < dims; ++j) {
      probe[j] = 0.5 * (model.feature_mins[j] + model.feature_maxs[j]);
    }
  }
  const StatusOr<int> label = engine.Predict(probe);
  if (!label.ok()) {
    return Status::FailedPrecondition(
        "refusing to publish '" + name +
        "': probe prediction failed: " + label.status().ToString());
  }
  if (*label < 0 || *label >= engine.num_classes()) {
    return Status::FailedPrecondition(
        "refusing to publish '" + name + "': probe prediction label " +
        std::to_string(*label) + " is outside [0, " +
        std::to_string(engine.num_classes()) + ")");
  }
  return Status::Ok();
}

}  // namespace

ModelRegistry::ModelRegistry(InferenceEngineOptions engine_options)
    : engine_options_(engine_options) {}

StatusOr<std::shared_ptr<const ServedModel>> ModelRegistry::Publish(
    const std::string& name, LoadedModel model) {
  RegistryMetrics& rm = RegistryMetrics::Get();
  metrics::ScopedTimerMs publish_timer(rm.publish_ms);
  // A failed publish of a name that is already serving leaves the live
  // version untouched — the rollback the counters below account for.
  const auto fail = [&](Status status) {
    rm.publish_error->Inc();
    if (Get(name) != nullptr) rm.rollbacks->Inc();
    GBX_SLOG(kWarn, "registry.publish.failed")
        .Kv("model", name)
        .Kv("error", status.ToString());
    return status;
  };
  if (!ValidName(name)) {
    return fail(Status::InvalidArgument(
        "model name '" + name +
        "' is not a routing token ([A-Za-z0-9_.-]+ required)"));
  }
  if (model.classifier == nullptr) {
    return fail(
        Status::InvalidArgument("model '" + name + "' has no classifier"));
  }
  if (model.dims < 1 || model.num_classes < 1) {
    return fail(Status::InvalidArgument(
        "model '" + name + "' declares dims=" + std::to_string(model.dims) +
        " classes=" + std::to_string(model.num_classes) +
        " (both must be >= 1)"));
  }
  auto entry = std::make_shared<ServedModel>();
  entry->name = name;
  entry->checksum = model.checksum;
  // Engine construction (center-index build etc.) and the end-to-end
  // probe prediction happen outside the lock; only the pointer swap
  // below is serialized. Any failure before that swap leaves the
  // currently-published version — and its next version number —
  // completely untouched: a bad artifact can never evict a serving
  // model (the rollback oracle in tests/hot_swap_test.cc).
  entry->engine =
      std::make_unique<InferenceEngine>(std::move(model), engine_options_);
  const Status validated = ValidateEngine(*entry->engine, name);
  if (!validated.ok()) return fail(validated);
  std::shared_ptr<const ServedModel> published;
  bool swapped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->version = ++next_version_[name];
    published = std::move(entry);
    swapped = models_.count(name) > 0;
    models_[name] = published;
  }
  rm.publish_ok->Inc();
  if (swapped) rm.swaps->Inc();
  publish_timer.StopAndRecord();
  GBX_SLOG(kInfo, "registry.publish")
      .Kv("model", name)
      .Kv("version", published->version)
      .Kv("swapped", swapped);
  return published;
}

std::shared_ptr<const ServedModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no model named '" + name + "'");
  }
  return Status::Ok();
}

std::vector<std::shared_ptr<const ServedModel>> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const ServedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, entry] : models_) out.push_back(entry);
  return out;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(models_.size());
}

}  // namespace gbx
