// ModelRegistry: named, versioned serving models with atomic hot-swap —
// the model-lifecycle half of the network serving front-end.
//
// One registry serves many named gbx-model artifacts from a single
// process (the per-tenant shape). Each published entry wraps the loaded
// model in its own micro-batching InferenceEngine and is immutable after
// publication; Publish() with an existing name atomically replaces the
// entry, bumping a per-name version counter.
//
// Hot-swap contract (tests/hot_swap_test.cc): a request takes one
// Get() snapshot — a shared_ptr pinning exactly one model version — and
// predicts through it, so a concurrent swap can never mix versions
// within a request or drop it. The old version stays alive until the
// last in-flight snapshot drops (drain-before-release), then its engine
// is destroyed. Responses are tagged with the artifact checksum
// (serve/model_io.h) so clients can verify which version answered.
#ifndef GBX_SERVE_REGISTRY_H_
#define GBX_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/engine.h"

namespace gbx {

/// One published model version. Immutable once published; the engine's
/// internal batching state is the only thing that mutates.
struct ServedModel {
  std::string name;
  /// Per-name version, 1 for the first Publish and monotonically
  /// increasing across swaps (survives Remove + re-Publish).
  int version = 0;
  /// The artifact's FNV-1a-64 checksum (LoadedModel::checksum); 0 for
  /// models constructed in-process rather than loaded from an artifact.
  std::uint64_t checksum = 0;
  std::unique_ptr<InferenceEngine> engine;
};

class ModelRegistry {
 public:
  /// `engine_options` apply to the engine of every published model.
  explicit ModelRegistry(InferenceEngineOptions engine_options = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Inserts or atomically replaces `name`. Names are routing tokens in
  /// the wire protocol, so they must be non-empty and contain only
  /// [A-Za-z0-9_.-]. Returns the published entry.
  ///
  /// Publication is validated end-to-end and rolls back atomically: the
  /// model must carry a classifier with dims/classes >= 1, and a probe
  /// query must predict an in-range label through the freshly-built
  /// engine *before* the registry map is touched. Any failure —
  /// including an injected registry.publish.validate failpoint — leaves
  /// the currently-serving version and its version counter exactly as
  /// they were, so a corrupt or unloadable artifact can never evict a
  /// serving model (tests/hot_swap_test.cc, tests/chaos_test.cc).
  StatusOr<std::shared_ptr<const ServedModel>> Publish(
      const std::string& name, LoadedModel model);

  /// Snapshot for one request: pins the current version of `name` (or
  /// nullptr if absent). Predict through the snapshot, never through a
  /// second Get() — one request, one version.
  std::shared_ptr<const ServedModel> Get(const std::string& name) const;

  Status Remove(const std::string& name);

  /// Current entries, name-ordered.
  std::vector<std::shared_ptr<const ServedModel>> List() const;

  int size() const;
  bool empty() const { return size() == 0; }
  /// Readiness predicate for the serving health probe ("!health"): a
  /// registry with no published model cannot answer predict traffic.
  bool ready() const { return size() > 0; }

  const InferenceEngineOptions& engine_options() const {
    return engine_options_;
  }

 private:
  InferenceEngineOptions engine_options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServedModel>> models_;
  std::map<std::string, int> next_version_;
};

}  // namespace gbx

#endif  // GBX_SERVE_REGISTRY_H_
