#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "index/index_strategy.h"
#include "ml/gb_knn.h"
#include "serve/model_io.h"
#include "simd/simd.h"

namespace gbx {

namespace {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Readiness backend: which fds are ready, level-triggered. The server
/// asks for readability on every registered fd and toggles write
/// interest per connection as output queues up.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual void Add(int fd, bool want_write) = 0;
  virtual void Update(int fd, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  /// Appends ready events to *out. timeout_ms < 0 blocks indefinitely.
  virtual void Wait(int timeout_ms, std::vector<PollEvent>* out) = 0;
};

/// Portable poll(2) backend — the fallback on non-Linux builds and the
/// ServerOptions::force_poll test path.
class PollPoller : public Poller {
 public:
  void Add(int fd, bool want_write) override {
    index_[fd] = fds_.size();
    fds_.push_back({fd, WantedEvents(want_write), 0});
  }

  void Update(int fd, bool want_write) override {
    const auto it = index_.find(fd);
    GBX_CHECK(it != index_.end());
    fds_[it->second].events = WantedEvents(want_write);
  }

  void Remove(int fd) override {
    const auto it = index_.find(fd);
    GBX_CHECK(it != index_.end());
    const std::size_t pos = it->second;
    index_.erase(it);
    if (pos + 1 != fds_.size()) {
      fds_[pos] = fds_.back();
      index_[fds_[pos].fd] = pos;
    }
    fds_.pop_back();
  }

  void Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    // Retry EINTR here (not in the caller): a signal mid-wait must not
    // be mistaken for "no events". "server.poll.eintr" simulates the
    // interruption (arm with :every(K>=2) — every(1) never stops).
    int n;
    do {
      if (GBX_FAILPOINT_EVAL("server.poll.eintr").error()) {
        errno = EINTR;
        n = -1;
        continue;
      }
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(ev);
    }
  }

 private:
  static short WantedEvents(bool want_write) {
    return static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

#ifdef __linux__
class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    GBX_CHECK_MSG(epfd_ >= 0, "epoll_create1 failed");
  }
  ~EpollPoller() override { ::close(epfd_); }

  void Add(int fd, bool want_write) override { Ctl(EPOLL_CTL_ADD, fd, want_write); }
  void Update(int fd, bool want_write) override {
    Ctl(EPOLL_CTL_MOD, fd, want_write);
  }
  void Remove(int fd) override {
    epoll_event ev{};
    GBX_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev) == 0);
  }

  void Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    epoll_event events[64];
    int n;
    do {
      if (GBX_FAILPOINT_EVAL("server.poll.eintr").error()) {
        errno = EINTR;
        n = -1;
        continue;
      }
      n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out->push_back(ev);
    }
  }

 private:
  void Ctl(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    GBX_CHECK(::epoll_ctl(epfd_, op, fd, &ev) == 0);
  }

  int epfd_;
};
#endif  // __linux__

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  GBX_CHECK(flags >= 0);
  GBX_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

std::string ErrorPayload(const Status& status) {
  return std::string("error ") + StatusCodeName(status.code()) + ": " +
         status.message();
}

std::string ChecksumHex(std::uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

// --- syscall wrappers with EINTR-simulation failpoints ---------------
// An armed `error` action makes the call report EINTR without touching
// the socket, exercising every retry loop in this file under an
// "EINTR storm" (tests/chaos_test.cc). Arm with :every(K>=2): the retry
// loops re-evaluate the site, so every(1) would never stop firing.

ssize_t RecvFp(int fd, char* buf, std::size_t n) {
  if (GBX_FAILPOINT_EVAL("server.recv.eintr").error()) {
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, n, 0);
}

ssize_t SendFp(int fd, const char* buf, std::size_t n) {
  if (GBX_FAILPOINT_EVAL("server.send.eintr").error()) {
    errno = EINTR;
    return -1;
  }
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

int AcceptFp(int fd) {
  if (GBX_FAILPOINT_EVAL("server.accept.eintr").error()) {
    errno = EINTR;
    return -1;
  }
  return ::accept(fd, nullptr, nullptr);
}

}  // namespace

Status ValidateRecall(double recall, const char* what) {
  // NaN must fail too, so express the valid range positively.
  if (!(recall > 0.0 && recall <= 1.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be in (0, 1], got " +
                                   std::to_string(recall));
  }
  return Status::Ok();
}

Status ValidateServerOptions(const ServerOptions& options) {
  GBX_RETURN_IF_ERROR(ValidateRecall(options.degrade.min_recall,
                                     "--min-recall (degrade.min_recall)"));
  const DegradeOptions& d = options.degrade;
  if (!(d.low_watermark >= 0.0 && d.low_watermark < d.high_watermark)) {
    return Status::InvalidArgument(
        "degrade watermarks need 0 <= low < high");
  }
  if (d.down_ticks < 1 || d.up_ticks < 1) {
    return Status::InvalidArgument("degrade tick counts must be >= 1");
  }
  if (!(d.tick_interval_ms > 0.0)) {
    return Status::InvalidArgument("degrade tick interval must be > 0 ms");
  }
  if (!(d.batch_delay_scale_floor > 0.0 && d.batch_delay_scale_floor <= 1.0)) {
    return Status::InvalidArgument(
        "degrade batch_delay_scale_floor must be in (0, 1]");
  }
  if (options.worker_stall_ms < 0.0) {
    return Status::InvalidArgument("worker_stall_ms must be >= 0");
  }
  return Status::Ok();
}

struct Server::Impl {
  struct Request {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string payload;
    /// clock time at enqueue — the reference point for "timeout_ms="
    /// deadlines (time spent queued counts against the deadline).
    double enqueue_s = 0.0;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string payload;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    // Responses must leave in request order: completions park in
    // `ready` until every lower seq has been appended to `outbuf`.
    std::uint64_t next_seq = 0;      // next request seq to assign
    std::uint64_t next_to_send = 0;  // next response seq to append
    std::map<std::uint64_t, std::string> ready;  // seq -> encoded frame
    std::uint64_t in_flight = 0;
    std::string outbuf;
    std::size_t out_pos = 0;
    bool want_write = false;
    bool closing = false;  // close once responses are assigned + flushed
    bool peer_eof = false;
    double last_progress_s = 0.0;

    explicit Connection(std::uint32_t max_frame) : decoder(max_frame) {}
    bool flushed() const { return out_pos == outbuf.size(); }
  };

  std::shared_ptr<ModelRegistry> registry;
  ServerOptions opts;

  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;
  int bound_port = 0;
  std::unique_ptr<Poller> poller;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;       // by fd
  std::unordered_map<std::uint64_t, Connection*> conns_by_id;
  std::uint64_t next_conn_id = 1;

  std::thread loop;
  std::vector<std::thread> workers;

  // --- worker watchdog -------------------------------------------------
  //
  // One slot per worker thread (including watchdog-spawned
  // replacements). `busy_since_s` is the whole protocol:
  //   -1            idle (waiting on the queue)
  //   t >= 0        busy on one request since clock time t
  //   kStalledSlot  flagged by the watchdog; the worker must exit after
  //                 finishing its current request
  // The watchdog flags with a CAS from the observed busy timestamp, and
  // the worker finishes with an exchange(-1) — whichever side wins the
  // race, the bookkeeping (workers_stalled_/workers_alive_) stays
  // exact. Slots are created on the Start()/event-loop thread only and
  // outlive their worker (unique_ptr in a grow-only vector).
  static constexpr double kStalledSlot = -2.0;
  struct WorkerSlot {
    std::atomic<double> busy_since_s{-1.0};
  };
  std::vector<std::unique_ptr<WorkerSlot>> worker_slots;
  std::atomic<int> workers_alive{0};
  std::atomic<int> workers_stalled{0};

  std::unique_ptr<DegradeController> degrade;  // null when degrade_auto off

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Request> queue;
  bool queue_closed = false;

  std::mutex comp_mu;
  std::vector<Completion> completions;

  std::atomic<bool> stop_requested{false};
  std::atomic<bool> running{false};
  /// Requests enqueued but whose completion has not yet been delivered
  /// to (or dropped with) their connection — the drain gate.
  std::atomic<std::int64_t> outstanding{0};

  Stopwatch clock;

  // --- stats: a view over the process-wide metrics registry ------------
  //
  // The counters are process totals (gbx_server_* families, shared by
  // every Server in the process and scraped via "!metrics"); Stats()
  // reports per-server numbers by subtracting the baseline snapshotted
  // at Start(). queue_peak is a high-water mark, not a counter, so the
  // per-server value lives in a local atomic (the registry gauge keeps
  // the process-wide peak).
  metrics::Counter* m_accepted;
  metrics::Counter* m_closed;
  metrics::Counter* m_frames_rx;
  metrics::Counter* m_frames_tx;
  metrics::Counter* m_proto_err;
  metrics::Counter* m_shed;
  metrics::Counter* m_deadline;
  metrics::Counter* m_req_ok;
  metrics::Counter* m_req_error;
  metrics::Counter* m_degraded;
  metrics::Counter* m_degrade_down;
  metrics::Counter* m_degrade_up;
  metrics::Counter* m_worker_stalls;
  metrics::Counter* m_workers_replaced;
  metrics::Gauge* g_queue_depth;
  metrics::Gauge* g_queue_peak;
  metrics::Gauge* g_conns_open;
  metrics::Gauge* g_degrade_level;
  metrics::Gauge* g_workers_alive;
  metrics::Gauge* g_workers_stalled;
  metrics::Histogram* h_queue_wait;
  metrics::Histogram* h_decode;
  metrics::Histogram* h_batch_assembly;
  metrics::Histogram* h_compute;
  metrics::Histogram* h_encode;
  metrics::Histogram* h_request;
  ServerStats baseline;  // registry counter values at Start()
  std::atomic<std::int64_t> queue_peak_local{0};
  std::atomic<std::uint64_t> next_trace_id{1};
  // Controller-tick state (event-loop thread only): the queue-wait
  // histogram's count/sum at the previous tick, for the delta mean.
  std::int64_t tick_wait_count = 0;
  double tick_wait_sum = 0.0;
  double last_ctl_tick_s = -1.0;

  Impl() {
    auto& reg = metrics::MetricsRegistry::Default();
    m_accepted = reg.GetCounter("gbx_server_connections_accepted_total", {},
                                "TCP connections accepted");
    m_closed = reg.GetCounter("gbx_server_connections_closed_total", {},
                              "TCP connections closed");
    m_frames_rx = reg.GetCounter("gbx_server_frames_received_total", {},
                                 "Request frames decoded");
    m_frames_tx = reg.GetCounter("gbx_server_frames_sent_total", {},
                                 "Response frames queued for send");
    m_proto_err = reg.GetCounter("gbx_server_protocol_errors_total", {},
                                 "Framing and payload errors");
    m_shed = reg.GetCounter("gbx_server_requests_shed_total", {},
                            "Requests shed by overload control");
    m_deadline = reg.GetCounter("gbx_server_deadlines_expired_total", {},
                                "Requests expired in queue");
    m_req_ok = reg.GetCounter("gbx_server_requests_total",
                              {{"result", "ok"}}, "Predict requests handled");
    m_req_error = reg.GetCounter("gbx_server_requests_total",
                                 {{"result", "error"}},
                                 "Predict requests handled");
    m_degraded = reg.GetCounter(
        "gbx_server_requests_degraded_total", {},
        "Predict responses served at reduced recall (degradation ladder)");
    m_degrade_down = reg.GetCounter(
        "gbx_server_degrade_transitions_total", {{"direction", "down"}},
        "Degradation-ladder transitions");
    m_degrade_up = reg.GetCounter(
        "gbx_server_degrade_transitions_total", {{"direction", "up"}},
        "Degradation-ladder transitions");
    m_worker_stalls = reg.GetCounter(
        "gbx_server_worker_stalls_total", {},
        "Predict workers declared stalled by the watchdog");
    m_workers_replaced = reg.GetCounter(
        "gbx_server_workers_replaced_total", {},
        "Replacement workers spawned by the watchdog");
    g_queue_depth = reg.GetGauge("gbx_server_queue_depth", {},
                                 "Worker queue depth");
    g_queue_peak = reg.GetGauge("gbx_server_queue_peak", {},
                                "Worker queue high-water mark");
    g_conns_open = reg.GetGauge("gbx_server_connections_open", {},
                                "Currently open connections");
    g_degrade_level = reg.GetGauge(
        "gbx_server_degrade_level", {},
        "Current degradation-ladder level (0 = full quality)");
    g_workers_alive = reg.GetGauge("gbx_server_workers_alive", {},
                                   "Healthy predict workers");
    g_workers_stalled = reg.GetGauge(
        "gbx_server_workers_stalled", {},
        "Workers currently stuck past the watchdog deadline");
    const std::string stage_help =
        "Per-stage serving latency (ms); stages: queue_wait, decode, "
        "batch_assembly, compute, encode";
    h_queue_wait = reg.GetHistogram("gbx_server_stage_ms",
                                    {{"stage", "queue_wait"}}, stage_help);
    h_decode = reg.GetHistogram("gbx_server_stage_ms", {{"stage", "decode"}},
                                stage_help);
    h_batch_assembly = reg.GetHistogram(
        "gbx_server_stage_ms", {{"stage", "batch_assembly"}}, stage_help);
    h_compute = reg.GetHistogram("gbx_server_stage_ms", {{"stage", "compute"}},
                                 stage_help);
    h_encode = reg.GetHistogram("gbx_server_stage_ms", {{"stage", "encode"}},
                                stage_help);
    h_request = reg.GetHistogram(
        "gbx_server_request_ms", {},
        "End-to-end server time per predict request (ms)");
  }

  // --- lifecycle -------------------------------------------------------

  Status Start() {
    GBX_CHECK_MSG(!running.load(), "Server::Start called twice");
    GBX_RETURN_IF_ERROR(ValidateServerOptions(opts));
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return ErrnoStatus("socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
      CloseStartupFds();
      return Status::InvalidArgument("bad IPv4 host '" + opts.host + "'");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status status = ErrnoStatus(
          "bind " + opts.host + ":" + std::to_string(opts.port));
      CloseStartupFds();
      return status;
    }
    if (::listen(listen_fd, opts.backlog) != 0) {
      const Status status = ErrnoStatus("listen");
      CloseStartupFds();
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    GBX_CHECK(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                            &len) == 0);
    bound_port = ntohs(bound.sin_port);
    SetNonBlocking(listen_fd);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      const Status status = ErrnoStatus("pipe");
      CloseStartupFds();
      return status;
    }
    wake_r = pipe_fds[0];
    wake_w = pipe_fds[1];
    SetNonBlocking(wake_r);
    SetNonBlocking(wake_w);

#ifdef __linux__
    if (opts.force_poll) {
      poller = std::make_unique<PollPoller>();
    } else {
      poller = std::make_unique<EpollPoller>();
    }
#else
    poller = std::make_unique<PollPoller>();
#endif
    poller->Add(listen_fd, false);
    poller->Add(wake_r, false);

    // Per-server stats = registry totals minus this baseline.
    baseline.connections_accepted = m_accepted->Value();
    baseline.connections_closed = m_closed->Value();
    baseline.frames_received = m_frames_rx->Value();
    baseline.frames_sent = m_frames_tx->Value();
    baseline.protocol_errors = m_proto_err->Value();
    baseline.requests_shed = m_shed->Value();
    baseline.deadlines_expired = m_deadline->Value();
    baseline.requests_degraded = m_degraded->Value();
    baseline.degrade_transitions = m_degrade_down->Value() + m_degrade_up->Value();
    baseline.worker_stalls = m_worker_stalls->Value();
    queue_peak_local.store(0);
    trace::TraceRing::Default().set_slow_threshold_ms(opts.slow_trace_ms);

    if (opts.degrade_auto) {
      degrade = std::make_unique<DegradeController>(opts.degrade);
      g_degrade_level->Set(0);
    }
    tick_wait_count = h_queue_wait->Count();
    tick_wait_sum = h_queue_wait->Sum();

    const int n_workers =
        std::max(1, std::min(ResolveNumThreads(opts.num_workers), 64));
    stop_requested.store(false);
    queue_closed = false;
    running.store(true);
    worker_slots.clear();
    workers_alive.store(0);
    workers_stalled.store(0);
    workers.reserve(n_workers);
    for (int i = 0; i < n_workers; ++i) SpawnWorker();
    loop = std::thread([this] { LoopMain(); });
    GBX_SLOG(kInfo, "server.start")
        .Kv("host", opts.host)
        .Kv("port", bound_port)
        .Kv("workers", n_workers)
        .Kv("max_queue_depth", static_cast<std::int64_t>(opts.max_queue_depth))
        .Kv("slow_trace_ms", opts.slow_trace_ms)
        .Kv("degrade", opts.degrade_auto ? "auto" : "off")
        .Kv("min_recall", opts.degrade.min_recall)
        .Kv("worker_stall_ms", opts.worker_stall_ms);
    return Status::Ok();
  }

  /// Spawns one worker thread with its own watchdog slot. Called from
  /// Start() and from the watchdog (event-loop thread) when replacing a
  /// stalled worker.
  void SpawnWorker() {
    worker_slots.push_back(std::make_unique<WorkerSlot>());
    WorkerSlot* slot = worker_slots.back().get();
    workers_alive.fetch_add(1, std::memory_order_relaxed);
    g_workers_alive->Add(1);
    workers.emplace_back([this, slot] { WorkerLoop(slot); });
  }

  void Stop() {
    if (!running.exchange(false)) return;
    GBX_SLOG(kInfo, "server.stop").Kv("port", bound_port);
    stop_requested.store(true);
    Wake();
    loop.join();
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      queue_closed = true;
    }
    queue_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    worker_slots.clear();
    degrade.reset();
    // Completions pushed after the loop exited belong to closed
    // connections; drop them.
    {
      std::lock_guard<std::mutex> lock(comp_mu);
      completions.clear();
    }
    queue.clear();
    ::close(wake_r);
    ::close(wake_w);
    wake_r = wake_w = -1;
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    poller.reset();
  }

  void CloseStartupFds() {
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
  }

  void Wake() {
    const char b = 'w';
    // EAGAIN means the pipe already holds a pending wakeup — fine. A
    // lost EINTR'd wakeup is NOT fine (the loop could sleep a full
    // poll timeout with completions pending), so retry those.
    ssize_t n;
    do {
      n = ::write(wake_w, &b, 1);
    } while (n < 0 && errno == EINTR);
  }

  // --- event loop ------------------------------------------------------

  void LoopMain() {
    std::vector<PollEvent> events;
    double drain_deadline_s = -1.0;
    for (;;) {
      events.clear();
      poller->Wait(WaitTimeoutMs(drain_deadline_s >= 0), &events);
      const double now_s = clock.ElapsedSeconds();
      for (const PollEvent& ev : events) {
        if (ev.fd == listen_fd && listen_fd >= 0) {
          AcceptAll(now_s);
        } else if (ev.fd == wake_r) {
          DrainWakePipe();
        } else {
          HandleConnEvent(ev, now_s);
        }
      }
      DeliverCompletions(now_s);
      TickControl(now_s);
      if (opts.idle_timeout_ms > 0) SweepIdle(now_s);
      if (stop_requested.load()) {
        if (drain_deadline_s < 0) {
          // Stop accepting; keep serving until in-flight work drains.
          if (listen_fd >= 0) {
            poller->Remove(listen_fd);
            ::close(listen_fd);
            listen_fd = -1;
          }
          drain_deadline_s = now_s + opts.drain_timeout_s;
        }
        if ((outstanding.load() == 0 && AllFlushed()) ||
            now_s > drain_deadline_s) {
          break;
        }
      }
    }
    // Close whatever is left (drain finished or timed out).
    while (!conns.empty()) CloseConn(conns.begin()->second.get());
  }

  int WaitTimeoutMs(bool draining) const {
    if (draining) return 10;
    // Bounded so Stop() is never waiting on a quiet socket.
    int t = 200;
    if (opts.idle_timeout_ms > 0) {
      t = std::max(1, static_cast<int>(opts.idle_timeout_ms / 2));
    }
    // The control loop must keep ticking on a quiet socket too: the
    // ladder recovers and the watchdog fires from these timeouts.
    if (degrade != nullptr) {
      t = std::min(t,
                   std::max(1, static_cast<int>(opts.degrade.tick_interval_ms)));
    }
    if (opts.worker_stall_ms > 0) {
      t = std::min(t, std::max(1, static_cast<int>(opts.worker_stall_ms / 2)));
    }
    return t;
  }

  /// Degradation-controller tick + watchdog sweep, from the event loop.
  void TickControl(double now_s) {
    if (degrade != nullptr &&
        (last_ctl_tick_s < 0.0 ||
         (now_s - last_ctl_tick_s) * 1e3 >= opts.degrade.tick_interval_ms)) {
      last_ctl_tick_s = now_s;
      std::size_t depth = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        depth = queue.size();
      }
      const double shed_line = opts.max_queue_depth > 0
                                   ? static_cast<double>(opts.max_queue_depth)
                                   : 1024.0;
      // Mean queue wait since the previous tick, from the PR-8 stage
      // histogram (exact count/sum deltas, no quantile estimation).
      const std::int64_t wait_count = h_queue_wait->Count();
      const double wait_sum = h_queue_wait->Sum();
      double mean_wait_ms = -1.0;
      if (wait_count > tick_wait_count) {
        mean_wait_ms = (wait_sum - tick_wait_sum) /
                       static_cast<double>(wait_count - tick_wait_count);
      }
      tick_wait_count = wait_count;
      tick_wait_sum = wait_sum;
      const int step = degrade->Tick(
          now_s, static_cast<double>(depth) / shed_line, mean_wait_ms);
      if (step != 0) {
        (step > 0 ? m_degrade_down : m_degrade_up)->Inc();
        g_degrade_level->Set(degrade->level());
        if (step > 0) {
          GBX_SLOG(kWarn, "server.degrade.step")
              .Kv("level", degrade->level())
              .Kv("recall", degrade->recall())
              .Kv("batch_delay_scale", degrade->batch_delay_scale())
              .Kv("queue_depth", static_cast<std::int64_t>(depth))
              .Kv("mean_queue_wait_ms", mean_wait_ms);
        } else {
          GBX_SLOG(kInfo, "server.degrade.recover")
              .Kv("level", degrade->level())
              .Kv("recall", degrade->recall())
              .Kv("queue_depth", static_cast<std::int64_t>(depth));
        }
      }
    }
    if (opts.worker_stall_ms > 0) SweepWorkers(now_s);
  }

  /// Flags workers stuck on one request past the deadline and replaces
  /// them. Event-loop thread only.
  void SweepWorkers(double now_s) {
    const double limit_s = opts.worker_stall_ms / 1e3;
    int replacements = 0;
    const std::size_t n = worker_slots.size();
    for (std::size_t i = 0; i < n; ++i) {
      WorkerSlot* slot = worker_slots[i].get();
      double busy = slot->busy_since_s.load(std::memory_order_relaxed);
      if (busy < 0.0 || now_s - busy <= limit_s) continue;
      // CAS from the observed timestamp: if the worker finished (or
      // started a new request) in between, the flag must not land.
      if (!slot->busy_since_s.compare_exchange_strong(
              busy, kStalledSlot, std::memory_order_relaxed)) {
        continue;
      }
      workers_alive.fetch_sub(1, std::memory_order_relaxed);
      g_workers_alive->Sub(1);
      workers_stalled.fetch_add(1, std::memory_order_relaxed);
      g_workers_stalled->Add(1);
      m_worker_stalls->Inc();
      GBX_SLOG(kError, "server.worker.stalled")
          .Kv("slot", static_cast<std::int64_t>(i))
          .Kv("busy_ms", (now_s - busy) * 1e3)
          .Kv("deadline_ms", opts.worker_stall_ms);
      ++replacements;
    }
    for (int i = 0; i < replacements; ++i) {
      SpawnWorker();
      m_workers_replaced->Inc();
      GBX_SLOG(kWarn, "server.worker.replaced")
          .Kv("workers_alive",
              static_cast<std::int64_t>(
                  workers_alive.load(std::memory_order_relaxed)));
    }
  }

  bool AllFlushed() const {
    for (const auto& [fd, c] : conns) {
      if (!c->flushed() || !c->ready.empty()) return false;
    }
    return true;
  }

  void AcceptAll(double now_s) {
    for (;;) {
      const int fd = AcceptFp(listen_fd);
      if (fd < 0) {
        if (errno == EINTR) continue;  // interrupted, not drained: retry
        return;  // EAGAIN (drained) or transient failure; poll re-arms
      }
      SetNonBlocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>(opts.max_frame_bytes);
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->last_progress_s = now_s;
      conns_by_id[conn->id] = conn.get();
      poller->Add(fd, false);
      conns[fd] = std::move(conn);
      m_accepted->Inc();
      g_conns_open->Add(1);
    }
  }

  void DrainWakePipe() {
    char buf[256];
    for (;;) {
      const ssize_t n = ::read(wake_r, buf, sizeof(buf));
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;  // interrupted != drained
      break;  // EAGAIN: fully drained
    }
  }

  void HandleConnEvent(const PollEvent& ev, double now_s) {
    const auto it = conns.find(ev.fd);
    if (it == conns.end()) return;  // closed earlier in this batch
    Connection* c = it->second.get();
    if (ev.error) {
      CloseConn(c);
      return;
    }
    if (ev.readable) {
      if (!ReadFromConn(c, now_s)) return;  // connection closed
    }
    if (ev.writable) {
      FlushWrites(c, now_s);
    }
  }

  /// Returns false when the connection was closed.
  bool ReadFromConn(Connection* c, double now_s) {
    char buf[65536];
    // Bounded passes per event so one firehose connection cannot starve
    // the rest; level-triggered polling re-notifies for the remainder.
    for (int pass = 0; pass < 16; ++pass) {
      const ssize_t n = RecvFp(c->fd, buf, sizeof(buf));
      if (n > 0) {
        c->decoder.Feed(buf, static_cast<std::size_t>(n));
        c->last_progress_s = now_s;
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      } else if (n == 0) {
        c->peer_eof = true;
        break;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        CloseConn(c);
        return false;
      }
    }

    std::string payload, error;
    for (;;) {
      const FrameDecoder::Result r = c->decoder.Next(&payload, &error);
      if (r == FrameDecoder::Result::kFrame) {
        m_frames_rx->Inc();
        EnqueueRequest(c, std::move(payload), now_s);
        payload.clear();
      } else if (r == FrameDecoder::Result::kNeedMore) {
        break;
      } else {
        // Framing is unrecoverable: answer a structured error *after*
        // the responses already owed on this connection, then close.
        if (!c->closing) {
          m_proto_err->Inc();
          const std::uint64_t seq = c->next_seq++;
          c->ready[seq] =
              EncodeFrame(ErrorPayload(Status::InvalidArgument(error)));
          c->closing = true;
          ::shutdown(c->fd, SHUT_RD);
        }
        break;
      }
    }
    return MaybeFlushAndClose(c, now_s);
  }

  void EnqueueRequest(Connection* c, std::string payload, double now_s) {
    const std::uint64_t seq = c->next_seq++;
    // Overload control: a predict request that would overflow the
    // bounded worker queue (or one connection's pipelining window) is
    // shed — answered right here, in sequence order via `ready`, and
    // never buffered. Admin frames bypass the caps: "!ping" health
    // checks and "!stat" triage must keep working at peak load.
    const bool admin = !payload.empty() && payload[0] == '!';
    if (!admin) {
      const char* reason = nullptr;
      if (opts.max_inflight_per_conn > 0 &&
          c->in_flight >= opts.max_inflight_per_conn) {
        reason = "connection pipeline full";
      } else if (opts.max_queue_depth > 0) {
        std::lock_guard<std::mutex> lock(queue_mu);
        if (queue.size() >= opts.max_queue_depth) reason = "worker queue full";
      }
      if (reason != nullptr) {
        m_shed->Inc();
        c->ready[seq] = EncodeFrame(ErrorPayload(Status::Unavailable(
            std::string("overloaded (") + reason +
            "); retry with backoff")));
        return;  // caller's MaybeFlushAndClose flushes the shed reply
      }
    }
    ++c->in_flight;
    outstanding.fetch_add(1);
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      queue.push_back(Request{c->id, seq, std::move(payload), now_s});
      depth = queue.size();
    }
    g_queue_depth->Set(static_cast<std::int64_t>(depth));
    g_queue_peak->SetMax(static_cast<std::int64_t>(depth));
    std::int64_t peak = queue_peak_local.load(std::memory_order_relaxed);
    while (peak < static_cast<std::int64_t>(depth) &&
           !queue_peak_local.compare_exchange_weak(
               peak, static_cast<std::int64_t>(depth),
               std::memory_order_relaxed)) {
    }
    queue_cv.notify_one();
  }

  void DeliverCompletions(double now_s) {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(comp_mu);
      batch.swap(completions);
    }
    for (Completion& comp : batch) {
      outstanding.fetch_sub(1);
      const auto it = conns_by_id.find(comp.conn_id);
      if (it == conns_by_id.end()) continue;  // connection died meanwhile
      Connection* c = it->second;
      GBX_CHECK_GT(c->in_flight, 0u);
      --c->in_flight;
      c->ready[comp.seq] = EncodeFrame(comp.payload);
      MaybeFlushAndClose(c, now_s);
    }
  }

  /// Moves in-order ready responses into the output buffer, writes what
  /// the socket will take, and closes if this connection is finished.
  /// Returns false when the connection was closed.
  bool MaybeFlushAndClose(Connection* c, double now_s) {
    for (auto it = c->ready.find(c->next_to_send); it != c->ready.end();
         it = c->ready.find(c->next_to_send)) {
      c->outbuf += it->second;
      c->ready.erase(it);
      ++c->next_to_send;
      m_frames_tx->Inc();
    }
    return FlushWrites(c, now_s);
  }

  /// Returns false when the connection was closed.
  bool FlushWrites(Connection* c, double now_s) {
    while (c->out_pos < c->outbuf.size()) {
      const ssize_t n = SendFp(c->fd, c->outbuf.data() + c->out_pos,
                               c->outbuf.size() - c->out_pos);
      if (n > 0) {
        c->out_pos += static_cast<std::size_t>(n);
        c->last_progress_s = now_s;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        CloseConn(c);  // EPIPE / ECONNRESET: peer is gone
        return false;
      }
    }
    if (c->flushed()) {
      c->outbuf.clear();
      c->out_pos = 0;
      if (c->want_write) {
        c->want_write = false;
        poller->Update(c->fd, false);
      }
      const bool finished = c->in_flight == 0 && c->ready.empty();
      if (finished && (c->closing || c->peer_eof)) {
        CloseConn(c);
        return false;
      }
    } else if (!c->want_write) {
      c->want_write = true;
      poller->Update(c->fd, true);
    }
    return true;
  }

  void SweepIdle(double now_s) {
    const double limit_s = opts.idle_timeout_ms / 1e3;
    std::vector<Connection*> victims;
    for (const auto& [fd, c] : conns) {
      // Keep-alive connections idling between complete frames are fine,
      // and in-flight predictions are the server's own latency, not the
      // client's; only stalled partial input (slow loris) or a stalled
      // response flush (unread backlog) count as suspect.
      const bool suspect = c->decoder.buffered_bytes() > 0 || !c->flushed();
      if (suspect && now_s - c->last_progress_s > limit_s) {
        victims.push_back(c.get());
      }
    }
    for (Connection* c : victims) {
      m_proto_err->Inc();
      CloseConn(c);
    }
  }

  void CloseConn(Connection* c) {
    poller->Remove(c->fd);
    ::close(c->fd);
    conns_by_id.erase(c->id);
    conns.erase(c->fd);  // destroys *c
    m_closed->Inc();
    g_conns_open->Sub(1);
  }

  // --- workers ---------------------------------------------------------

  void WorkerLoop(WorkerSlot* slot) {
    for (;;) {
      Request req;
      std::size_t depth = 0;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [this] { return queue_closed || !queue.empty(); });
        if (queue.empty()) break;  // closed and drained
        req = std::move(queue.front());
        queue.pop_front();
        depth = queue.size();
      }
      g_queue_depth->Set(static_cast<std::int64_t>(depth));
      // Heartbeat: busy from here until the completion is pushed. The
      // watchdog's stall clock starts now, so both chaos sites below
      // ("server.worker.delay" and the engine's "engine.predict.stall")
      // count as worker occupancy.
      slot->busy_since_s.store(clock.ElapsedSeconds(),
                               std::memory_order_relaxed);
      // Chaos site: delay(ms) here stretches worker occupancy without
      // touching the engine — how the overload battery fills the queue.
      GBX_FAILPOINT("server.worker.delay");
      Completion comp{req.conn_id, req.seq, HandleRequest(req)};
      {
        std::lock_guard<std::mutex> lock(comp_mu);
        completions.push_back(std::move(comp));
      }
      Wake();
      const double prev =
          slot->busy_since_s.exchange(-1.0, std::memory_order_relaxed);
      if (prev == kStalledSlot) {
        // The watchdog flagged this worker mid-request and already
        // spawned a replacement: undo the stalled mark (the late
        // response WAS delivered) and exit — capacity lives in the
        // replacement now.
        workers_stalled.fetch_sub(1, std::memory_order_relaxed);
        g_workers_stalled->Sub(1);
        GBX_SLOG(kInfo, "server.worker.stall_recovered")
            .Kv("conn", static_cast<std::int64_t>(req.conn_id))
            .Kv("seq", static_cast<std::int64_t>(req.seq));
        return;
      }
    }
    workers_alive.fetch_sub(1, std::memory_order_relaxed);
    g_workers_alive->Sub(1);
  }

  std::string HandleRequest(const Request& req) {
    const std::string& payload = req.payload;
    if (!payload.empty() && payload[0] == '!') return HandleAdmin(payload);

    // Stage attribution: the request's trace origin is its *enqueue*
    // into the worker queue, so queue wait is span one and every stage
    // offset is relative to that instant. Span durations also feed the
    // gbx_server_stage_ms histograms.
    const double dequeue_s = clock.ElapsedSeconds();
    const double queue_wait_ms = std::max(0.0, (dequeue_s - req.enqueue_s) * 1e3);
    h_queue_wait->Observe(queue_wait_ms);
    trace::Trace tr(next_trace_id.fetch_add(1, std::memory_order_relaxed),
                    "predict");
    tr.AddSpan("queue_wait", 0.0, queue_wait_ms);
    Stopwatch server_watch;  // dequeue -> reply encoded
    double cursor_ms = queue_wait_ms;

    const auto finish = [&](std::string reply, bool ok) {
      const double total_ms = queue_wait_ms + server_watch.ElapsedMillis();
      (ok ? m_req_ok : m_req_error)->Inc();
      h_request->Observe(total_ms);
      tr.Finish(total_ms);
      trace::TraceRing::Default().Record(std::move(tr));
      return reply;
    };

    std::string name;
    double timeout_ms = 0.0;
    std::vector<double> query;
    Stopwatch decode_watch;
    const Status parsed =
        ParsePredictPayload(payload, &name, &timeout_ms, &query);
    const double decode_ms = decode_watch.ElapsedMillis();
    h_decode->Observe(decode_ms);
    tr.AddSpan("decode", cursor_ms, decode_ms);
    cursor_ms += decode_ms;
    if (!parsed.ok()) {
      m_proto_err->Inc();
      return finish(ErrorPayload(parsed), false);
    }
    if (timeout_ms > 0.0) {
      // Deadline check at dequeue: if the client's budget was burned
      // waiting in queue, don't burn a worker predicting into the void.
      const double waited_ms = (dequeue_s - req.enqueue_s) * 1e3;
      if (waited_ms > timeout_ms) {
        m_deadline->Inc();
        char msg[128];
        std::snprintf(msg, sizeof(msg),
                      "deadline of %g ms expired after %.1f ms in queue",
                      timeout_ms, waited_ms);
        tr.Annotate(0, "deadline_expired");
        return finish(ErrorPayload(Status::DeadlineExceeded(msg)), false);
      }
    }
    if (name.empty()) name = opts.default_model;
    tr.Annotate(0, "model=" + name);
    // One snapshot pins one model version for the whole request — the
    // hot-swap consistency point.
    const std::shared_ptr<const ServedModel> snapshot = registry->Get(name);
    if (snapshot == nullptr) {
      return finish(
          ErrorPayload(Status::NotFound("no model named '" + name + "'")),
          false);
    }
    PredictTiming timing;
    // Degradation: the controller's current rung rides into the engine
    // as per-call overrides; with the controller off the pointer stays
    // null and the engine path is bit-identical to pre-ladder behavior.
    PredictOverrides overrides;
    if (degrade != nullptr) {
      overrides.recall = degrade->recall();
      overrides.batch_delay_scale = degrade->batch_delay_scale();
    }
    const StatusOr<int> label = snapshot->engine->Predict(
        query.data(), static_cast<int>(query.size()), &timing,
        degrade != nullptr ? &overrides : nullptr);
    h_batch_assembly->Observe(timing.batch_assembly_ms);
    h_compute->Observe(timing.compute_ms);
    tr.AddSpan("batch_assembly", cursor_ms, timing.batch_assembly_ms, 0,
               "batch=" + std::to_string(timing.batch_size));
    cursor_ms += timing.batch_assembly_ms;
    tr.AddSpan("compute", cursor_ms, timing.compute_ms);
    if (!label.ok()) return finish(ErrorPayload(label.status()), false);
    // Encode starts once Predict returns (assembly + compute + wakeup).
    cursor_ms = queue_wait_ms + server_watch.ElapsedMillis();
    Stopwatch encode_watch;
    std::string reply = "ok " + std::to_string(*label) + " fnv1a " +
                        ChecksumHex(snapshot->checksum);
    if (timing.applied_recall > 0.0 && timing.applied_recall < 1.0) {
      // Quality loss is visible on the wire: the tag appends after the
      // existing fields so label/checksum parsers keep working.
      char tag[48];
      std::snprintf(tag, sizeof(tag), " degraded recall=%.2f",
                    timing.applied_recall);
      reply += tag;
      m_degraded->Inc();
      tr.Annotate(0, "degraded");
    }
    const double encode_ms = encode_watch.ElapsedMillis();
    h_encode->Observe(encode_ms);
    tr.AddSpan("encode", cursor_ms, encode_ms);
    return finish(std::move(reply), true);
  }

  std::string HandleAdmin(const std::string& payload) {
    std::istringstream in(payload);
    std::string cmd;
    in >> cmd;
    if (cmd == "!ping") return "ok pong";
    if (cmd == "!health") {
      // Liveness/readiness probe for load balancers. Answering at all
      // is liveness (admin frames bypass the shed caps, and watchdog
      // replacements keep a worker available to serve this even while
      // another is stuck). Readiness means the server can take predict
      // traffic NOW: a routable model, no stalled worker, at least one
      // healthy worker, and the queue below the shed line. Format:
      //   ok health ready|unready [reasons R1,R2] models N workers A
      //   stalled S queue D/LINE degrade off|LEVEL recall F
      std::size_t depth = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        depth = queue.size();
      }
      const int alive = workers_alive.load(std::memory_order_relaxed);
      const int stalled = workers_stalled.load(std::memory_order_relaxed);
      const int models = registry->size();
      std::vector<const char*> reasons;
      if (!registry->ready()) reasons.push_back("no-models");
      if (stalled > 0) reasons.push_back("workers-stalled");
      if (alive < 1) reasons.push_back("no-workers");
      if (opts.max_queue_depth > 0 && depth >= opts.max_queue_depth) {
        reasons.push_back("queue-full");
      }
      std::ostringstream out;
      out << "ok health " << (reasons.empty() ? "ready" : "unready");
      if (!reasons.empty()) {
        out << " reasons ";
        for (std::size_t i = 0; i < reasons.size(); ++i) {
          out << (i > 0 ? "," : "") << reasons[i];
        }
      }
      out << " models " << models << " workers " << alive << " stalled "
          << stalled << " queue " << depth << "/" << opts.max_queue_depth;
      if (degrade != nullptr) {
        out << " degrade " << degrade->level() << " recall "
            << degrade->recall();
      } else {
        out << " degrade off";
      }
      return out.str();
    }
    if (cmd == "!list") {
      std::ostringstream out;
      const auto models = registry->List();
      out << "ok models " << models.size();
      for (const auto& m : models) {
        const LoadedModel& lm = m->engine->model();
        out << "\n"
            << m->name << " v" << m->version << " fnv1a "
            << ChecksumHex(m->checksum) << " " << lm.kind << " dims "
            << lm.dims << " classes " << lm.num_classes;
      }
      return out.str();
    }
    if (cmd == "!stat") {
      std::string name;
      in >> name;
      if (name.empty()) name = opts.default_model;
      const auto snapshot = registry->Get(name);
      if (snapshot == nullptr) {
        return ErrorPayload(Status::NotFound("no model named '" + name + "'"));
      }
      const InferenceEngineStats s = snapshot->engine->Stats();
      const ServerStats ss = Stats();
      std::size_t depth = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        depth = queue.size();
      }
      std::ostringstream out;
      out << "ok stats " << name << " v" << snapshot->version << " requests "
          << s.requests << " batches " << s.batches << " mean_batch "
          << s.mean_batch_size << " p50_ms " << s.p50_ms << " p99_ms "
          << s.p99_ms << " qps " << s.qps << " shed " << ss.requests_shed
          << " deadline_expired " << ss.deadlines_expired << " queue_depth "
          << depth << " queue_peak " << ss.queue_peak << " degraded "
          << ss.requests_degraded << " worker_stalls " << ss.worker_stalls;
      if (degrade != nullptr) {
        out << " degrade_level " << degrade->level() << " degrade_recall "
            << degrade->recall();
      }
      // Scan configuration: the SIMD dispatch level is process-global;
      // strategy/recall are per-model runtime knobs (GB-kNN only —
      // other classifiers have no center scan and report nothing).
      out << " simd " << simd::ActiveName();
      if (const auto* gbknn = dynamic_cast<const GbKnnClassifier*>(
              snapshot->engine->model().classifier.get())) {
        out << " strategy "
            << IndexStrategyName(gbknn->resolved_index_strategy())
            << " recall " << gbknn->recall_target();
      }
      return out.str();
    }
    if (cmd == "!metrics") {
      // Registry exposition. First line is "ok metrics FORMAT"; the
      // scrape body follows verbatim from the second line on.
      std::string fmt;
      in >> fmt;
      if (fmt.empty()) fmt = "prom";
      auto& reg = metrics::MetricsRegistry::Default();
      if (fmt == "prom") return "ok metrics prom\n" + reg.PrometheusText();
      if (fmt == "json") return "ok metrics json\n" + reg.JsonText();
      return ErrorPayload(
          Status::InvalidArgument("usage: !metrics [prom|json]"));
    }
    if (cmd == "!trace") {
      std::string which;
      in >> which;
      std::size_t n = 8;
      if (std::size_t arg = 0; in >> arg) n = std::max<std::size_t>(1, arg);
      auto& ring = trace::TraceRing::Default();
      std::vector<trace::Trace> traces;
      if (which == "last") {
        traces = ring.Recent(n);
      } else if (which == "slow") {
        traces = ring.Slow(n);
      } else {
        return ErrorPayload(
            Status::InvalidArgument("usage: !trace last|slow [N]"));
      }
      std::ostringstream out;
      out << "ok traces " << traces.size();
      for (const trace::Trace& t : traces) {
        out << "\n" << FormatTrace(t);
      }
      return out.str();
    }
    if (cmd == "!fail") {
      // Fault injection shares the !swap trust boundary: both let the
      // network break the serving process on purpose.
      if (!opts.allow_admin_swap) {
        return ErrorPayload(Status::FailedPrecondition(
            "admin fault injection is disabled on this server"));
      }
      std::string sub;
      in >> sub;
      if (sub == "list") {
        const auto infos = Failpoints::Instance().List();
        std::ostringstream out;
        out << "ok failpoints " << infos.size()
            << (Failpoints::kCompiledIn ? "" : " (sites compiled out)");
        for (const auto& i : infos) {
          out << "\n"
              << i.name << "=" << i.spec << " evals " << i.evals << " hits "
              << i.hits;
        }
        return out.str();
      }
      if (sub == "set") {
        std::string arg;
        in >> arg;
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
          return ErrorPayload(
              Status::InvalidArgument("usage: !fail set NAME=SPEC"));
        }
        if (!Failpoints::kCompiledIn) {
          return ErrorPayload(Status::FailedPrecondition(
              "failpoint sites are compiled out of this build "
              "(rebuild with -DGBX_FAILPOINTS=ON)"));
        }
        const Status set =
            Failpoints::Instance().Set(arg.substr(0, eq), arg.substr(eq + 1));
        if (!set.ok()) return ErrorPayload(set);
        return "ok failpoint " + arg;
      }
      if (sub == "clear") {
        std::string name;
        in >> name;
        if (name.empty()) {
          return ErrorPayload(
              Status::InvalidArgument("usage: !fail clear NAME|*"));
        }
        if (name == "*") {
          Failpoints::Instance().ClearAll();
          return "ok failpoints cleared";
        }
        const Status cleared = Failpoints::Instance().Clear(name);
        if (!cleared.ok()) return ErrorPayload(cleared);
        return "ok failpoint " + name + "=off";
      }
      return ErrorPayload(Status::InvalidArgument(
          "usage: !fail set NAME=SPEC | !fail clear NAME|* | !fail list"));
    }
    if (cmd == "!swap") {
      if (!opts.allow_admin_swap) {
        return ErrorPayload(Status::FailedPrecondition(
            "admin swap is disabled on this server"));
      }
      std::string name, path;
      in >> name >> path;
      if (name.empty() || path.empty()) {
        return ErrorPayload(
            Status::InvalidArgument("usage: !swap NAME PATH"));
      }
      StatusOr<LoadedModel> model = LoadModel(path);
      if (!model.ok()) return ErrorPayload(model.status());
      StatusOr<std::shared_ptr<const ServedModel>> published =
          registry->Publish(name, std::move(model).value());
      if (!published.ok()) return ErrorPayload(published.status());
      return "ok swapped " + name + " v" +
             std::to_string((*published)->version) + " fnv1a " +
             ChecksumHex((*published)->checksum);
    }
    return ErrorPayload(
        Status::InvalidArgument("unknown admin command '" + cmd + "'"));
  }

  // --- stats -----------------------------------------------------------

  ServerStats Stats() const {
    // Registry totals minus the Start() baseline: exact per-server
    // counts from the shared process-wide counters.
    ServerStats s;
    s.connections_accepted = m_accepted->Value() - baseline.connections_accepted;
    s.connections_closed = m_closed->Value() - baseline.connections_closed;
    s.frames_received = m_frames_rx->Value() - baseline.frames_received;
    s.frames_sent = m_frames_tx->Value() - baseline.frames_sent;
    s.protocol_errors = m_proto_err->Value() - baseline.protocol_errors;
    s.requests_shed = m_shed->Value() - baseline.requests_shed;
    s.deadlines_expired = m_deadline->Value() - baseline.deadlines_expired;
    s.queue_peak = queue_peak_local.load(std::memory_order_relaxed);
    s.requests_degraded = m_degraded->Value() - baseline.requests_degraded;
    s.degrade_transitions = m_degrade_down->Value() + m_degrade_up->Value() -
                            baseline.degrade_transitions;
    s.worker_stalls = m_worker_stalls->Value() - baseline.worker_stalls;
    return s;
  }
};

Server::Server(std::shared_ptr<ModelRegistry> registry, ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  GBX_CHECK_MSG(registry != nullptr, "Server needs a ModelRegistry");
  impl_->registry = std::move(registry);
  impl_->opts = std::move(options);
}

Server::~Server() { Stop(); }

Status Server::Start() { return impl_->Start(); }
void Server::Stop() { impl_->Stop(); }
bool Server::running() const { return impl_->running.load(); }
int Server::port() const { return impl_->bound_port; }
ModelRegistry& Server::registry() { return *impl_->registry; }
ServerStats Server::Stats() const { return impl_->Stats(); }

}  // namespace gbx
