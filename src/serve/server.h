// Network serving front-end: a single-threaded epoll (poll fallback)
// event loop speaking gbx-wire v1 (serve/protocol.h) over TCP, in front
// of a ModelRegistry (serve/registry.h).
//
// Architecture — one I/O thread, W predict workers:
//
//   event loop (1 thread)          workers (num_workers threads)
//   ---------------------          -----------------------------
//   accept / read / write    --->  pop request, take a registry
//   decode frames, enqueue         snapshot, InferenceEngine::Predict
//   {conn, seq, payload}           (BLOCKS in the engine's micro-batch
//   deliver completions in         coalescing window), push completion,
//   per-connection seq order  <--  wake the loop via the self-pipe
//
// All socket I/O happens on the event-loop thread; workers never touch a
// socket. Because every worker funnels into the same InferenceEngine
// per model, concurrent requests from *different connections* coalesce
// into shared micro-batches — the engine's cross-caller batching becomes
// cross-client batching.
//
// Guarantees (enforced by tests/server_test.cc, protocol_fuzz_test.cc,
// hot_swap_test.cc):
//   * responses arrive in request order per connection (pipelining is
//     safe; out-of-order completions are reordered before writing);
//   * a request is answered by exactly one model version (registry
//     snapshot) and the response carries that version's checksum;
//   * malformed payloads get a structured "error ..." frame and the
//     connection stays open; framing-level corruption (zero/oversized
//     length) gets an error frame and then the connection is closed;
//   * mid-frame disconnects, slow-loris dribbles (see
//     ServerOptions::idle_timeout_ms), and abrupt client exits never
//     crash or leak — completions for dead connections are dropped;
//   * overload sheds instead of buffering: when the worker queue (or a
//     single connection's in-flight window) is full, new predict
//     requests get an immediate "error UNAVAILABLE: overloaded" reply
//     — in sequence order, connection kept open — while admin frames
//     ("!ping", "!stat") always pass, so the server stays observable
//     at peak (tests/chaos_test.cc);
//   * a request carrying "timeout_ms=T" whose deadline passes while it
//     waits in queue is answered "error DEADLINE_EXCEEDED" without
//     wasting a worker on a prediction the client already abandoned;
//   * with ServerOptions::degrade_auto on, sustained queue pressure
//     steps a hysteresis ladder (serve/degrade.h) that lowers
//     per-request recall toward `min_recall` and then shrinks the
//     micro-batch window *before* the bounded queue sheds — every
//     degraded response carries a "degraded recall=F" wire tag; with
//     the controller off (default), responses are bit-identical to a
//     server without it;
//   * a worker watchdog (ServerOptions::worker_stall_ms) detects
//     predict workers stuck past the deadline on one request, logs,
//     replaces them so capacity survives, and feeds the "!health"
//     liveness/readiness probe (tests/chaos_test.cc);
//   * Stop() drains: in-flight requests finish and their responses are
//     flushed (bounded by drain_timeout_s) before sockets close.
#ifndef GBX_SERVE_SERVER_H_
#define GBX_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/degrade.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace gbx {

struct ServerOptions {
  /// IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via Server::port().
  int port = 0;
  /// Predict worker threads = the max concurrent engine callers.
  /// <= 0 resolves via GBX_THREADS / hardware (common/parallel.h).
  int num_workers = 0;
  /// Framing cap forwarded to FrameDecoder.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// > 0: close a connection whose partially-received frame (or
  /// unflushed response backlog) has made no progress for this long —
  /// the slow-loris guard. 0 disables the sweep.
  double idle_timeout_ms = 0.0;
  /// Use the poll() backend even where epoll is available (the fallback
  /// is always used on non-Linux builds).
  bool force_poll = false;
  /// Route for payloads without an "@model" prefix.
  std::string default_model = "default";
  /// Admin "!swap NAME PATH" loads artifacts from the server's
  /// filesystem; disable for untrusted networks.
  bool allow_admin_swap = true;
  /// listen(2) backlog.
  int backlog = 128;
  /// How long Stop() waits for in-flight requests and response flushes.
  double drain_timeout_s = 5.0;
  /// Overload control: cap on predict requests queued for the worker
  /// pool across all connections. A request arriving at a full queue is
  /// *shed* — answered immediately with
  /// "error UNAVAILABLE: overloaded ..." instead of being buffered into
  /// an ever-growing latency queue (admin commands are never shed, so
  /// "!ping" health checks and "!stat" triage still work at peak).
  /// 0 disables the cap.
  std::size_t max_queue_depth = 1024;
  /// Per-connection cap on requests awaiting a response (queued or
  /// predicting). Bounds what one pipelining client can buffer in the
  /// server; excess requests are shed with UNAVAILABLE. 0 disables.
  std::uint64_t max_inflight_per_conn = 256;
  /// Predict requests whose end-to-end server time (queue wait through
  /// encode) reaches this land in the slow-trace ring and are logged
  /// with their full span tree ("!trace slow", common/trace.h).
  /// <= 0 disables slow capture.
  double slow_trace_ms = 100.0;
  /// Graceful degradation ("--degrade auto|off"). Strictly opt-in:
  /// false (the default, "off") keeps every response bit-identical to a
  /// server without the controller. true arms the hysteresis ladder in
  /// serve/degrade.h, ticked from the event loop and fed by queue depth
  /// and queue wait: under sustained pressure predict requests are
  /// served at reduced recall (GB-kNN sampled tier, tagged
  /// "degraded recall=F" on the wire) down to `degrade.min_recall`,
  /// then with a shrunken micro-batch window, before the bounded queue
  /// ever sheds. When max_queue_depth is 0 (shedding disabled) the
  /// depth signal uses a virtual shed line of 1024.
  bool degrade_auto = false;
  /// Ladder tuning; `degrade.min_recall` is the "--min-recall" floor.
  DegradeOptions degrade;
  /// > 0 arms the worker watchdog: a predict worker busy on a single
  /// request for longer than this is declared stalled (structured log +
  /// gbx_server_worker_stalls_total), abandoned, and replaced by a
  /// fresh worker thread so capacity survives; the stalled thread exits
  /// once its request finally completes (the response is still
  /// delivered). "!health" reports unready while any worker is
  /// stalled. 0 (default) disables the watchdog.
  double worker_stall_ms = 0.0;
};

/// Typed validation shared by the server and the CLI flag parsers:
/// recall-like knobs ("--recall", "--min-recall") must be in (0, 1] —
/// out-of-range values are rejected with InvalidArgument, never
/// silently clamped. `what` names the knob in the error message.
Status ValidateRecall(double recall, const char* what);

/// Validates the degradation/watchdog fields of `options` (recall
/// floor, watermark ordering, tick counts, scales). Run by
/// Server::Start() before any socket work, so a bad configuration
/// fails with InvalidArgument instead of serving surprising quality.
Status ValidateServerOptions(const ServerOptions& options);

/// Point-in-time server statistics. Since PR 8 this is a *view* over
/// the process-wide metrics registry (common/metrics.h, the gbx_server_*
/// families): each Server snapshots the registry counters at Start()
/// and reports the deltas, so per-server numbers stay exact while
/// "!metrics" exposes the same source of truth process-wide.
struct ServerStats {
  std::int64_t connections_accepted = 0;
  std::int64_t connections_closed = 0;
  std::int64_t frames_received = 0;
  std::int64_t frames_sent = 0;
  /// Framing + payload-level errors answered (or closed) so far.
  std::int64_t protocol_errors = 0;
  /// Requests answered "error UNAVAILABLE: overloaded" by the bounded
  /// queues (ServerOptions::max_queue_depth / max_inflight_per_conn).
  std::int64_t requests_shed = 0;
  /// Requests whose "timeout_ms=" deadline expired while queued —
  /// answered "error DEADLINE_EXCEEDED: ..." without predicting.
  std::int64_t deadlines_expired = 0;
  /// High-water mark of the worker queue depth since Start().
  std::int64_t queue_peak = 0;
  /// Predict responses served at reduced recall (tagged "degraded
  /// recall=F") by the degradation controller.
  std::int64_t requests_degraded = 0;
  /// Ladder transitions (down + up) since Start().
  std::int64_t degrade_transitions = 0;
  /// Workers declared stalled (and replaced) by the watchdog.
  std::int64_t worker_stalls = 0;
};

class Server {
 public:
  explicit Server(std::shared_ptr<ModelRegistry> registry,
                  ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loop + workers. Fails with a
  /// descriptive Status (port in use, bad host, ...) without leaking.
  Status Start();

  /// Drains and joins everything. Idempotent; also run by ~Server().
  void Stop();

  bool running() const;
  /// The bound port (after Start(); the ephemeral one when port was 0).
  int port() const;
  ModelRegistry& registry();
  ServerStats Stats() const;

 private:
  struct Impl;  // hides the socket/epoll machinery from the header
  std::unique_ptr<Impl> impl_;
};

}  // namespace gbx

#endif  // GBX_SERVE_SERVER_H_
