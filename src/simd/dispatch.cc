#include "simd/simd.h"

#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "common/log.h"
#include "simd/kernels.h"

namespace gbx {
namespace simd {

namespace {

using internal::Ops;

const Ops* OpsFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return internal::ScalarOps();
    case Level::kNeon:
      return internal::NeonOps();
    case Level::kAvx2:
      return internal::Avx2Ops();
    case Level::kAvx512:
      return internal::Avx512Ops();
  }
  return internal::ScalarOps();
}

bool CpuSupports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(__aarch64__)
      // ASIMD is architecturally mandatory on aarch64.
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kAvx512:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

Level BestSupported() {
  for (Level level : {Level::kAvx512, Level::kAvx2, Level::kNeon}) {
    if (Supported(level)) return level;
  }
  return Level::kScalar;
}

// The cached resolution. g_ops is the load-bearing pointer the kernel
// entry points read; g_level mirrors it for Active()/ActiveName().
// Store order (ops release-last) plus acquire loads keeps the pair
// consistent; a benign race on first use re-resolves idempotently.
std::atomic<const Ops*> g_ops{nullptr};
std::atomic<int> g_level{-1};

void Store(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_ops.store(OpsFor(level), std::memory_order_release);
}

Level ResolveFromEnv() { return ResolveLevel(std::getenv("GBX_SIMD")); }

const Ops* ActiveOps() {
  const Ops* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    Store(ResolveFromEnv());
    ops = g_ops.load(std::memory_order_acquire);
  }
  return ops;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool ParseLevel(const std::string& text, Level* out) {
  for (Level level : {Level::kScalar, Level::kNeon, Level::kAvx2,
                      Level::kAvx512}) {
    if (text == LevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool Compiled(Level level) { return OpsFor(level) != nullptr; }

bool Supported(Level level) { return Compiled(level) && CpuSupports(level); }

Level ResolveLevel(const char* requested) {
  const Level best = BestSupported();
  if (requested == nullptr || *requested == '\0') return best;
  const std::string text(requested);
  if (text == "auto") return best;
  Level want;
  if (!ParseLevel(text, &want)) {
    GBX_SLOG(kWarn, "simd.env_unknown")
        .Kv("GBX_SIMD", text)
        .Kv("using", LevelName(best));
    return best;
  }
  if (Supported(want)) return want;
  // Fall back to the best supported level strictly below the request —
  // GBX_SIMD=avx512 on an AVX2-only host degrades to avx2, not to the
  // unrelated best (identical here, but the invariant matters when the
  // request is below best, e.g. neon on x86 -> scalar).
  Level fallback = Level::kScalar;
  for (Level level : {Level::kAvx512, Level::kAvx2, Level::kNeon}) {
    if (static_cast<int>(level) < static_cast<int>(want) &&
        Supported(level)) {
      fallback = level;
      break;
    }
  }
  GBX_SLOG(kWarn, "simd.unsupported")
      .Kv("requested", text)
      .Kv("using", LevelName(fallback));
  return fallback;
}

Level Active() {
  const int cached = g_level.load(std::memory_order_relaxed);
  if (cached >= 0 && g_ops.load(std::memory_order_acquire) != nullptr) {
    return static_cast<Level>(cached);
  }
  const Level level = ResolveFromEnv();
  Store(level);
  return level;
}

const char* ActiveName() { return LevelName(Active()); }

void SetLevelForTest(Level level) {
  GBX_CHECK_MSG(Supported(level),
                "simd: SetLevelForTest on an unsupported level");
  Store(level);
}

void ReresolveFromEnvForTest() { Store(ResolveFromEnv()); }

void SquaredDistanceBatch(const double* q, const SoaMatrix& points, int begin,
                          int end, double* out) {
  ActiveOps()->squared_distance_batch(q, points, begin, end, out);
}

double MinSurfaceGap(const double* q, const SoaMatrix& centers,
                     const double* radii, int begin, int end) {
  return ActiveOps()->min_surface_gap(q, centers, radii, begin, end);
}

void SurfaceScores(const double* q, const SoaMatrix& centers,
                   const double* radii, int begin, int end, double* out) {
  ActiveOps()->surface_scores(q, centers, radii, begin, end, out);
}

}  // namespace simd
}  // namespace gbx
