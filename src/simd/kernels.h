// Internal: per-ISA kernel tables and the shared scalar row helpers.
// Each kernels_<isa>.cc translation unit compiles unconditionally; when
// its ISA macro is absent (wrong arch, or the compiler lacks the flag)
// the TU exports a null table and dispatch skips the level. The scalar
// helpers live here so every level's partial-block (head/tail) path is
// literally the same code as the scalar reference — one definition, no
// drift.
#ifndef GBX_SIMD_KERNELS_H_
#define GBX_SIMD_KERNELS_H_

#include <cmath>
#include <cstddef>

#include "common/matrix.h"

namespace gbx {
namespace simd {
namespace internal {

struct Ops {
  void (*squared_distance_batch)(const double* q, const SoaMatrix& points,
                                 int begin, int end, double* out);
  double (*min_surface_gap)(const double* q, const SoaMatrix& centers,
                            const double* radii, int begin, int end);
  void (*surface_scores)(const double* q, const SoaMatrix& centers,
                         const double* radii, int begin, int end, double* out);
};

/// Null when the level is not compiled into this binary.
const Ops* ScalarOps();
const Ops* NeonOps();
const Ops* Avx2Ops();
const Ops* Avx512Ops();

/// Base of row's lane within its block: element j of the row is at
/// RowBase(...)[j * kSoaBlock].
inline const double* RowBase(const SoaMatrix& m, int row) {
  return m.data() +
         static_cast<std::size_t>(row / kSoaBlock) * m.cols() * kSoaBlock +
         row % kSoaBlock;
}

/// The scalar reference row kernel: the same sequential accumulation as
/// SquaredDistance (common/matrix.h), reading one SoA lane. (q[j]-x[j])²
/// equals (x[j]-q[j])² bitwise, so operand order is free; accumulation
/// order is not, and stays strictly j-ascending.
inline double RowSquaredDistance(const double* q, const SoaMatrix& m,
                                 int row) {
  const double* base = RowBase(m, row);
  double s = 0.0;
  const int d = m.cols();
  for (int j = 0; j < d; ++j) {
    const double diff = q[j] - base[static_cast<std::size_t>(j) * kSoaBlock];
    s += diff * diff;
  }
  return s;
}

inline double RowSurfaceGap(const double* q, const SoaMatrix& m,
                            const double* radii, int row) {
  return std::sqrt(RowSquaredDistance(q, m, row)) - radii[row];
}

inline double RowSurfaceScore(const double* q, const SoaMatrix& m,
                              const double* radii, int row) {
  const double dist = std::sqrt(RowSquaredDistance(q, m, row));
  const double r = radii[row];
  return dist <= r ? dist - r : dist;
}

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#endif  // GBX_SIMD_KERNELS_H_
