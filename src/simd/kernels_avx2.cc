// AVX2 kernels: 8 rows per SoA block as two 4-lane registers. One lane
// = one row; the j-loop carries each lane's accumulation in dimension
// order, so per-row arithmetic is the scalar reference's exactly (see
// simd.h). Explicit mul-then-add (never _mm256_fmadd_pd) plus
// -ffp-contract=off on this TU keep contraction out. Partial blocks at
// the range edges take the shared scalar row helpers — rows are
// independent, so mixing paths is exact.
#include "simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <limits>

namespace gbx {
namespace simd {
namespace internal {
namespace {

inline const double* BlockBase(const SoaMatrix& m, int row) {
  return m.data() +
         static_cast<std::size_t>(row / kSoaBlock) * m.cols() * kSoaBlock;
}

// Accumulates the two 4-row squared-distance vectors for the full block
// starting at row i (i % 8 == 0).
inline void BlockSquaredDistance(const double* q, const double* block, int d,
                                 __m256d* acc0, __m256d* acc1) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  for (int j = 0; j < d; ++j) {
    const __m256d qj = _mm256_set1_pd(q[j]);
    const double* col = block + static_cast<std::size_t>(j) * kSoaBlock;
    const __m256d d0 = _mm256_sub_pd(qj, _mm256_loadu_pd(col));
    const __m256d d1 = _mm256_sub_pd(qj, _mm256_loadu_pd(col + 4));
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
  }
  *acc0 = a0;
  *acc1 = a1;
}

void SquaredDistanceBatchAvx2(const double* q, const SoaMatrix& points,
                              int begin, int end, double* out) {
  const int d = points.cols();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    out[i] = RowSquaredDistance(q, points, i);
  }
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    __m256d acc0, acc1;
    BlockSquaredDistance(q, BlockBase(points, i), d, &acc0, &acc1);
    _mm256_storeu_pd(out + i, acc0);
    _mm256_storeu_pd(out + i + 4, acc1);
  }
  for (; i < end; ++i) out[i] = RowSquaredDistance(q, points, i);
}

double MinSurfaceGapAvx2(const double* q, const SoaMatrix& centers,
                         const double* radii, int begin, int end) {
  double best = std::numeric_limits<double>::infinity();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  __m256d m0 = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d m1 = m0;
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    __m256d acc0, acc1;
    BlockSquaredDistance(q, BlockBase(centers, i), centers.cols(), &acc0,
                         &acc1);
    const __m256d gap0 =
        _mm256_sub_pd(_mm256_sqrt_pd(acc0), _mm256_loadu_pd(radii + i));
    const __m256d gap1 =
        _mm256_sub_pd(_mm256_sqrt_pd(acc1), _mm256_loadu_pd(radii + i + 4));
    // VMINPD returns the SECOND source when either operand is NaN, so
    // min(gap, acc) keeps the accumulator on a NaN gap — exactly the
    // scalar std::min(best, gap) fold.
    m0 = _mm256_min_pd(gap0, m0);
    m1 = _mm256_min_pd(gap1, m1);
  }
  alignas(32) double lanes[kSoaBlock];
  _mm256_store_pd(lanes, m0);
  _mm256_store_pd(lanes + 4, m1);
  for (int l = 0; l < kSoaBlock; ++l) best = std::min(best, lanes[l]);
  for (; i < end; ++i) {
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  return best;
}

void SurfaceScoresAvx2(const double* q, const SoaMatrix& centers,
                       const double* radii, int begin, int end, double* out) {
  const int d = centers.cols();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    out[i] = RowSurfaceScore(q, centers, radii, i);
  }
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    __m256d acc0, acc1;
    BlockSquaredDistance(q, BlockBase(centers, i), d, &acc0, &acc1);
    const __m256d dist0 = _mm256_sqrt_pd(acc0);
    const __m256d dist1 = _mm256_sqrt_pd(acc1);
    const __m256d r0 = _mm256_loadu_pd(radii + i);
    const __m256d r1 = _mm256_loadu_pd(radii + i + 4);
    // Ordered <= is false on NaN, so a NaN dist blends to itself — the
    // scalar ternary's behavior.
    const __m256d le0 = _mm256_cmp_pd(dist0, r0, _CMP_LE_OQ);
    const __m256d le1 = _mm256_cmp_pd(dist1, r1, _CMP_LE_OQ);
    _mm256_storeu_pd(
        out + i, _mm256_blendv_pd(dist0, _mm256_sub_pd(dist0, r0), le0));
    _mm256_storeu_pd(
        out + i + 4, _mm256_blendv_pd(dist1, _mm256_sub_pd(dist1, r1), le1));
  }
  for (; i < end; ++i) out[i] = RowSurfaceScore(q, centers, radii, i);
}

const Ops kAvx2Ops = {
    SquaredDistanceBatchAvx2,
    MinSurfaceGapAvx2,
    SurfaceScoresAvx2,
};

}  // namespace

const Ops* Avx2Ops() { return &kAvx2Ops; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#else  // !defined(__AVX2__)

namespace gbx {
namespace simd {
namespace internal {

const Ops* Avx2Ops() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#endif  // defined(__AVX2__)
