// AVX-512F kernels: one SoA block = one 8-lane register. Same
// lane-per-row design and contraction rules as kernels_avx2.cc; the
// cross-lane min reduction spills to memory and folds with std::min
// rather than trusting _mm512_reduce_min_pd's NaN behavior.
#include "simd/kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>
#include <limits>

namespace gbx {
namespace simd {
namespace internal {
namespace {

inline const double* BlockBase(const SoaMatrix& m, int row) {
  return m.data() +
         static_cast<std::size_t>(row / kSoaBlock) * m.cols() * kSoaBlock;
}

inline __m512d BlockSquaredDistance(const double* q, const double* block,
                                    int d) {
  __m512d acc = _mm512_setzero_pd();
  for (int j = 0; j < d; ++j) {
    const __m512d qj = _mm512_set1_pd(q[j]);
    const __m512d diff = _mm512_sub_pd(
        qj, _mm512_loadu_pd(block + static_cast<std::size_t>(j) * kSoaBlock));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
  }
  return acc;
}

void SquaredDistanceBatchAvx512(const double* q, const SoaMatrix& points,
                                int begin, int end, double* out) {
  const int d = points.cols();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    out[i] = RowSquaredDistance(q, points, i);
  }
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    _mm512_storeu_pd(out + i,
                     BlockSquaredDistance(q, BlockBase(points, i), d));
  }
  for (; i < end; ++i) out[i] = RowSquaredDistance(q, points, i);
}

double MinSurfaceGapAvx512(const double* q, const SoaMatrix& centers,
                           const double* radii, int begin, int end) {
  double best = std::numeric_limits<double>::infinity();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  __m512d m = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  const int d = centers.cols();
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    const __m512d dist =
        _mm512_sqrt_pd(BlockSquaredDistance(q, BlockBase(centers, i), d));
    const __m512d gap = _mm512_sub_pd(dist, _mm512_loadu_pd(radii + i));
    // VMINPD keeps the SECOND source on NaN: min(gap, m) drops NaN gaps
    // like the scalar std::min fold.
    m = _mm512_min_pd(gap, m);
  }
  alignas(64) double lanes[kSoaBlock];
  _mm512_store_pd(lanes, m);
  for (int l = 0; l < kSoaBlock; ++l) best = std::min(best, lanes[l]);
  for (; i < end; ++i) {
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  return best;
}

void SurfaceScoresAvx512(const double* q, const SoaMatrix& centers,
                         const double* radii, int begin, int end,
                         double* out) {
  const int d = centers.cols();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    out[i] = RowSurfaceScore(q, centers, radii, i);
  }
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    const __m512d dist =
        _mm512_sqrt_pd(BlockSquaredDistance(q, BlockBase(centers, i), d));
    const __m512d r = _mm512_loadu_pd(radii + i);
    // Ordered <= is false on NaN: lanes with NaN dist keep dist, as the
    // scalar ternary does.
    const __mmask8 le = _mm512_cmp_pd_mask(dist, r, _CMP_LE_OQ);
    _mm512_storeu_pd(out + i, _mm512_mask_sub_pd(dist, le, dist, r));
  }
  for (; i < end; ++i) out[i] = RowSurfaceScore(q, centers, radii, i);
}

const Ops kAvx512Ops = {
    SquaredDistanceBatchAvx512,
    MinSurfaceGapAvx512,
    SurfaceScoresAvx512,
};

}  // namespace

const Ops* Avx512Ops() { return &kAvx512Ops; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#else  // !defined(__AVX512F__)

namespace gbx {
namespace simd {
namespace internal {

const Ops* Avx512Ops() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#endif  // defined(__AVX512F__)
