// aarch64 NEON (ASIMD) kernels: one SoA block = four 2-lane registers.
// Same lane-per-row design as the x86 TUs (vmul+vadd, never vfma; TU
// builds with -ffp-contract=off). NEON's vminq returns NaN when either
// operand is NaN — NOT the scalar std::min fold's behavior — so min and
// the score blend both go through explicit compare+bit-select, which
// matches the scalar `(g < m) ? g : m` / `dist <= r ? dist - r : dist`
// forms including NaN lanes.
#include "simd/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <limits>

namespace gbx {
namespace simd {
namespace internal {
namespace {

inline const double* BlockBase(const SoaMatrix& m, int row) {
  return m.data() +
         static_cast<std::size_t>(row / kSoaBlock) * m.cols() * kSoaBlock;
}

inline void BlockSquaredDistance(const double* q, const double* block, int d,
                                 float64x2_t acc[4]) {
  for (int v = 0; v < 4; ++v) acc[v] = vdupq_n_f64(0.0);
  for (int j = 0; j < d; ++j) {
    const float64x2_t qj = vdupq_n_f64(q[j]);
    const double* col = block + static_cast<std::size_t>(j) * kSoaBlock;
    for (int v = 0; v < 4; ++v) {
      const float64x2_t diff = vsubq_f64(qj, vld1q_f64(col + 2 * v));
      acc[v] = vaddq_f64(acc[v], vmulq_f64(diff, diff));
    }
  }
}

void SquaredDistanceBatchNeon(const double* q, const SoaMatrix& points,
                              int begin, int end, double* out) {
  const int d = points.cols();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    out[i] = RowSquaredDistance(q, points, i);
  }
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    float64x2_t acc[4];
    BlockSquaredDistance(q, BlockBase(points, i), d, acc);
    for (int v = 0; v < 4; ++v) vst1q_f64(out + i + 2 * v, acc[v]);
  }
  for (; i < end; ++i) out[i] = RowSquaredDistance(q, points, i);
}

// (g < m) ? g : m — false (keep m) on NaN g, the std::min fold exactly.
inline float64x2_t MinFold(float64x2_t m, float64x2_t g) {
  return vbslq_f64(vcltq_f64(g, m), g, m);
}

double MinSurfaceGapNeon(const double* q, const SoaMatrix& centers,
                         const double* radii, int begin, int end) {
  double best = std::numeric_limits<double>::infinity();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  float64x2_t m[4];
  for (int v = 0; v < 4; ++v) {
    m[v] = vdupq_n_f64(std::numeric_limits<double>::infinity());
  }
  const int d = centers.cols();
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    float64x2_t acc[4];
    BlockSquaredDistance(q, BlockBase(centers, i), d, acc);
    for (int v = 0; v < 4; ++v) {
      const float64x2_t gap =
          vsubq_f64(vsqrtq_f64(acc[v]), vld1q_f64(radii + i + 2 * v));
      m[v] = MinFold(m[v], gap);
    }
  }
  double lanes[kSoaBlock];
  for (int v = 0; v < 4; ++v) vst1q_f64(lanes + 2 * v, m[v]);
  for (int l = 0; l < kSoaBlock; ++l) best = std::min(best, lanes[l]);
  for (; i < end; ++i) {
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  return best;
}

void SurfaceScoresNeon(const double* q, const SoaMatrix& centers,
                       const double* radii, int begin, int end, double* out) {
  const int d = centers.cols();
  int i = begin;
  for (; i < end && i % kSoaBlock != 0; ++i) {
    out[i] = RowSurfaceScore(q, centers, radii, i);
  }
  for (; i + kSoaBlock <= end; i += kSoaBlock) {
    float64x2_t acc[4];
    BlockSquaredDistance(q, BlockBase(centers, i), d, acc);
    for (int v = 0; v < 4; ++v) {
      const float64x2_t dist = vsqrtq_f64(acc[v]);
      const float64x2_t r = vld1q_f64(radii + i + 2 * v);
      // dist <= r ? dist - r : dist; vcleq is false on NaN.
      const float64x2_t score =
          vbslq_f64(vcleq_f64(dist, r), vsubq_f64(dist, r), dist);
      vst1q_f64(out + i + 2 * v, score);
    }
  }
  for (; i < end; ++i) out[i] = RowSurfaceScore(q, centers, radii, i);
}

const Ops kNeonOps = {
    SquaredDistanceBatchNeon,
    MinSurfaceGapNeon,
    SurfaceScoresNeon,
};

}  // namespace

const Ops* NeonOps() { return &kNeonOps; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#else  // !aarch64 NEON

namespace gbx {
namespace simd {
namespace internal {

const Ops* NeonOps() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx

#endif  // aarch64 NEON
