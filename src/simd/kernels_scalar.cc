// The scalar reference kernels: plain row loops over the shared helpers
// in kernels.h. Every vector level must match these bit for bit
// (tests/simd_kernel_test.cc); this TU also builds with
// -ffp-contract=off so the reference itself cannot be FMA-contracted
// out from under the contract.
#include <algorithm>
#include <limits>

#include "simd/kernels.h"

namespace gbx {
namespace simd {
namespace internal {
namespace {

void SquaredDistanceBatchScalar(const double* q, const SoaMatrix& points,
                                int begin, int end, double* out) {
  for (int i = begin; i < end; ++i) out[i] = RowSquaredDistance(q, points, i);
}

double MinSurfaceGapScalar(const double* q, const SoaMatrix& centers,
                           const double* radii, int begin, int end) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = begin; i < end; ++i) {
    // std::min drops a NaN gap (returns `best`); the vector levels
    // reproduce this with compare+select, never a bare vector-min with
    // different NaN semantics.
    best = std::min(best, RowSurfaceGap(q, centers, radii, i));
  }
  return best;
}

void SurfaceScoresScalar(const double* q, const SoaMatrix& centers,
                         const double* radii, int begin, int end,
                         double* out) {
  for (int i = begin; i < end; ++i) {
    out[i] = RowSurfaceScore(q, centers, radii, i);
  }
}

const Ops kScalarOps = {
    SquaredDistanceBatchScalar,
    MinSurfaceGapScalar,
    SurfaceScoresScalar,
};

}  // namespace

const Ops* ScalarOps() { return &kScalarOps; }

}  // namespace internal
}  // namespace simd
}  // namespace gbx
