// Batched flat-scan kernels behind a runtime dispatch shim. The three
// kernels cover the system's distance-dominated hot loops — RD-GBG's
// per-candidate squared-distance fill, the Eq.-4 conflict-radius
// (r_conf) gap scan, and GB-kNN's surface-score scan — each streaming a
// SoaMatrix (common/matrix.h) so one vector register holds the same
// coordinate of kSoaBlock rows.
//
// Bit-exactness contract: every level computes, per row, the EXACT
// arithmetic of the scalar reference — a sequential
// `s += (q[j]-x[j])*(q[j]-x[j])` accumulation in dimension order, no
// FMA contraction (kernel TUs build with -ffp-contract=off), sqrt and
// min/compare with IEEE semantics matching the scalar `std::sqrt` /
// `std::min` / ternary forms. Vectorization is across rows (one lane =
// one row), never across dimensions, so no reassociation happens and
// scalar/AVX2/AVX-512/NEON agree bit for bit on every non-NaN output —
// including infinities and signed zeros. NaN outputs are NaN on every
// level, but the payload/sign bits are unspecified: IEEE leaves which
// operand's NaN propagates through `+`/`*` to the implementation, and
// the compiler may commute those operands differently per TU. NaN
// never survives into model artifacts or responses (min folds and
// ordered compares drop it), so payload identity is not part of the
// contract. tests/simd_kernel_test.cc enforces all of this on every
// level the host can run.
//
// Dispatch: the active level resolves once from cpuid, overridable via
// the GBX_SIMD env var (scalar|neon|avx2|avx512|auto). Requesting a
// level the binary or CPU cannot run falls back to the best supported
// level below it (with a warning log), so forcing GBX_SIMD=avx512 on
// an AVX2-only host degrades gracefully — CI exercises exactly that.
// The level is pure runtime state: it never changes any computed value
// (see contract above), so model artifacts and serve responses are
// byte-identical across levels.
#ifndef GBX_SIMD_SIMD_H_
#define GBX_SIMD_SIMD_H_

#include <string>

#include "common/matrix.h"

namespace gbx {
namespace simd {

/// Ordered by preference: dispatch resolution falls DOWN this order.
enum class Level : int {
  kScalar = 0,
  kNeon = 1,    // aarch64 ASIMD (2 doubles/vector)
  kAvx2 = 2,    // x86-64 AVX2 (4 doubles/vector)
  kAvx512 = 3,  // x86-64 AVX-512F (8 doubles/vector)
};

/// "scalar" / "neon" / "avx2" / "avx512".
const char* LevelName(Level level);

/// Parses a LevelName (exact match). Returns false and leaves `*out`
/// untouched on anything else ("auto" is not a Level; see ResolveLevel).
bool ParseLevel(const std::string& text, Level* out);

/// True when the level's kernels are compiled into this binary.
bool Compiled(Level level);

/// True when the level is compiled in AND the host CPU can run it.
bool Supported(Level level);

/// Resolution policy, exposed for tests: nullptr/""/"auto" picks the
/// best supported level; a recognized but unsupported level falls back
/// to the best supported level below it; an unrecognized value warns
/// and picks the best supported level.
Level ResolveLevel(const char* requested);

/// The level the kernel entry points below dispatch to. Resolved from
/// the GBX_SIMD env var (ResolveLevel) on first use, then cached.
Level Active();
const char* ActiveName();

/// Test hooks. SetLevelForTest checks Supported(level);
/// ReresolveFromEnvForTest re-reads GBX_SIMD (setenv + reresolve is how
/// the oracle battery walks every dispatch path in one process). Not
/// safe to call concurrently with in-flight kernel calls.
void SetLevelForTest(Level level);
void ReresolveFromEnvForTest();

/// out[i] = squared Euclidean distance from `q` to row i of `points`,
/// for i in [begin, end). `out` is indexed absolutely (caller provides
/// at least `end` slots). Bit-identical to SquaredDistance(q, row, d)
/// per row on every level.
void SquaredDistanceBatch(const double* q, const SoaMatrix& points, int begin,
                          int end, double* out);

/// The fused Eq.-4 gap scan: min over i in [begin, end) of
/// ||q - center_i|| - radii[i], +infinity for an empty range. NaN gaps
/// are dropped exactly like the scalar std::min fold. Bit-identical to
/// folding EuclideanDistance(q, center, d) - radii[i] in row order.
double MinSurfaceGap(const double* q, const SoaMatrix& centers,
                     const double* radii, int begin, int end);

/// out[i] = GB-kNN surface score of row i: dist <= r ? dist - r : dist
/// with dist = ||q - center_i||, for i in [begin, end); `out` indexed
/// absolutely. Bit-identical to the scalar ternary per row.
void SurfaceScores(const double* q, const SoaMatrix& centers,
                   const double* radii, int begin, int end, double* out);

}  // namespace simd
}  // namespace gbx

#endif  // GBX_SIMD_SIMD_H_
