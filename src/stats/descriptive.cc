#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gbx {

double Mean(const std::vector<double>& values) {
  GBX_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / values.size();
}

double StdDev(const std::vector<double>& values) {
  const double mean = Mean(values);
  double var = 0.0;
  for (double v : values) {
    const double d = v - mean;
    var += d * d;
  }
  return std::sqrt(var / values.size());
}

double Quantile(std::vector<double> values, double q) {
  GBX_CHECK(!values.empty());
  GBX_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * (values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

}  // namespace gbx
