// Descriptive statistics used across experiments.
#ifndef GBX_STATS_DESCRIPTIVE_H_
#define GBX_STATS_DESCRIPTIVE_H_

#include <vector>

namespace gbx {

double Mean(const std::vector<double>& values);

/// Population standard deviation (ddof = 0).
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::vector<double> values, double q);

double Median(std::vector<double> values);

}  // namespace gbx

#endif  // GBX_STATS_DESCRIPTIVE_H_
