#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace gbx {

double SilvermanBandwidth(const std::vector<double>& samples) {
  GBX_CHECK(!samples.empty());
  const double n = static_cast<double>(samples.size());
  const double sd = StdDev(samples);
  const double iqr =
      Quantile(samples, 0.75) - Quantile(samples, 0.25);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(sd, iqr / 1.34);
  if (spread <= 0.0) spread = std::max(1e-3, std::fabs(Mean(samples)) * 0.01);
  return 0.9 * spread * std::pow(n, -0.2);
}

double KdeDensity(const std::vector<double>& samples, double x, double h) {
  GBX_CHECK(!samples.empty());
  if (h <= 0.0) h = SilvermanBandwidth(samples);
  const double norm =
      1.0 / (samples.size() * h * std::sqrt(2.0 * M_PI));
  double sum = 0.0;
  for (double s : samples) {
    const double z = (x - s) / h;
    sum += std::exp(-0.5 * z * z);
  }
  return norm * sum;
}

std::vector<double> KdeCurve(const std::vector<double>& samples, double lo,
                             double hi, int num_points, double h) {
  GBX_CHECK_GE(num_points, 2);
  GBX_CHECK_LT(lo, hi);
  if (h <= 0.0) h = SilvermanBandwidth(samples);
  std::vector<double> out(num_points);
  const double step = (hi - lo) / (num_points - 1);
  for (int i = 0; i < num_points; ++i) {
    out[i] = KdeDensity(samples, lo + i * step, h);
  }
  return out;
}

}  // namespace gbx
