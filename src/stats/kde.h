// Gaussian kernel density estimation — generates the accuracy-distribution
// curves of the ridge plots (Figs. 7 and 8).
#ifndef GBX_STATS_KDE_H_
#define GBX_STATS_KDE_H_

#include <vector>

namespace gbx {

/// Silverman's rule-of-thumb bandwidth; falls back to a small positive
/// value for near-constant data.
double SilvermanBandwidth(const std::vector<double>& samples);

/// Density estimate at `x` using a Gaussian kernel with bandwidth `h`
/// (h <= 0 selects Silverman's rule).
double KdeDensity(const std::vector<double>& samples, double x,
                  double h = -1.0);

/// Density evaluated on `num_points` evenly spaced points spanning
/// [lo, hi]. Returns pairs implicit by position: result[i] is the density
/// at lo + i * (hi - lo) / (num_points - 1).
std::vector<double> KdeCurve(const std::vector<double>& samples, double lo,
                             double hi, int num_points, double h = -1.0);

}  // namespace gbx

#endif  // GBX_STATS_KDE_H_
