#include "stats/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace gbx {

std::vector<int> CompetitionRankDescending(const std::vector<double>& scores) {
  const int m = static_cast<int>(scores.size());
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[a] > scores[b];
  });
  std::vector<int> ranks(m, 0);
  for (int i = 0; i < m; ++i) {
    if (i > 0 && scores[order[i]] == scores[order[i - 1]]) {
      ranks[order[i]] = ranks[order[i - 1]];
    } else {
      ranks[order[i]] = i + 1;
    }
  }
  return ranks;
}

double AdjustedRandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  GBX_CHECK_EQ(a.size(), b.size());
  GBX_CHECK(!a.empty());
  int ka = 0;
  int kb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    GBX_CHECK_GE(a[i], 0);
    GBX_CHECK_GE(b[i], 0);
    ka = std::max(ka, a[i] + 1);
    kb = std::max(kb, b[i] + 1);
  }
  // Contingency table.
  std::vector<std::vector<double>> table(ka, std::vector<double>(kb, 0.0));
  std::vector<double> row_sums(ka, 0.0);
  std::vector<double> col_sums(kb, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    table[a[i]][b[i]] += 1.0;
    row_sums[a[i]] += 1.0;
    col_sums[b[i]] += 1.0;
  }
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& row : table) {
    for (double cell : row) sum_cells += choose2(cell);
  }
  double sum_rows = 0.0;
  for (double r : row_sums) sum_rows += choose2(r);
  double sum_cols = 0.0;
  for (double c : col_sums) sum_cols += choose2(c);
  const double total = choose2(static_cast<double>(a.size()));
  const double expected = sum_rows * sum_cols / total;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / (max_index - expected);
}

std::vector<double> MeanRanks(const std::vector<std::vector<double>>& scores) {
  GBX_CHECK(!scores.empty());
  const std::size_t m = scores[0].size();
  std::vector<double> sums(m, 0.0);
  for (const auto& row : scores) {
    GBX_CHECK_EQ(row.size(), m);
    const std::vector<int> ranks = CompetitionRankDescending(row);
    for (std::size_t j = 0; j < m; ++j) sums[j] += ranks[j];
  }
  for (double& s : sums) s /= scores.size();
  return sums;
}

}  // namespace gbx
