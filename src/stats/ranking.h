// Competition ranking of methods per dataset — the rank heatmaps of
// Fig. 9 (rank 1 = best G-mean).
#ifndef GBX_STATS_RANKING_H_
#define GBX_STATS_RANKING_H_

#include <vector>

namespace gbx {

/// Ranks `scores` descending: the largest score gets rank 1. Ties receive
/// the same (minimum) rank, and the next distinct value skips the tied
/// slots ("1224" competition ranking).
std::vector<int> CompetitionRankDescending(const std::vector<double>& scores);

/// Average rank of each method over multiple datasets. `scores[d][m]` is
/// method m's score on dataset d; returns one mean rank per method.
std::vector<double> MeanRanks(const std::vector<std::vector<double>>& scores);

/// Adjusted Rand Index between two partitions of the same items (labels
/// may use arbitrary non-negative ids). 1 = identical partitions, ~0 =
/// random agreement. Used to score clustering results against ground
/// truth.
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace gbx

#endif  // GBX_STATS_RANKING_H_
