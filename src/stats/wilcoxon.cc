#include "stats/wilcoxon.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gbx {

namespace {

/// P(W+ <= w) under the exact null: each rank 1..n joins W+ independently
/// with probability 1/2. DP over achievable rank sums.
double ExactCdf(int n, double w) {
  const int max_sum = n * (n + 1) / 2;
  std::vector<double> counts(max_sum + 1, 0.0);
  counts[0] = 1.0;
  for (int rank = 1; rank <= n; ++rank) {
    for (int s = max_sum; s >= rank; --s) {
      counts[s] += counts[s - rank];
    }
  }
  double below = 0.0;
  double total = 0.0;
  for (int s = 0; s <= max_sum; ++s) {
    total += counts[s];
    if (s <= w + 1e-9) below += counts[s];
  }
  return below / total;
}

double NormalSf(double z) {  // P(Z >= z)
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

}  // namespace

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  GBX_CHECK_EQ(a.size(), b.size());
  GBX_CHECK(!a.empty());

  struct Diff {
    double abs;
    int sign;
  };
  std::vector<Diff> diffs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(Diff{std::fabs(d), d > 0 ? 1 : -1});
  }
  WilcoxonResult result;
  result.n_effective = static_cast<int>(diffs.size());
  if (diffs.empty()) return result;  // all pairs tied: p = 1

  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& x, const Diff& y) { return x.abs < y.abs; });

  // Average ranks for tied |differences|; track tie groups for the normal
  // variance correction.
  const int n = result.n_effective;
  std::vector<double> ranks(n);
  bool has_ties = false;
  double tie_term = 0.0;  // sum of (t^3 - t) over tie groups
  for (int i = 0; i < n;) {
    int j = i;
    while (j < n && diffs[j].abs == diffs[i].abs) ++j;
    const int t = j - i;
    const double avg_rank = (i + 1 + j) / 2.0;  // mean of ranks i+1..j
    for (int k = i; k < j; ++k) ranks[k] = avg_rank;
    if (t > 1) {
      has_ties = true;
      tie_term += static_cast<double>(t) * t * t - t;
    }
    i = j;
  }

  for (int i = 0; i < n; ++i) {
    if (diffs[i].sign > 0) {
      result.w_plus += ranks[i];
    } else {
      result.w_minus += ranks[i];
    }
  }

  const double w = std::min(result.w_plus, result.w_minus);
  if (!has_ties && n <= 25) {
    result.exact = true;
    // Two-sided: double the lower tail of the smaller statistic.
    result.p_value = std::min(1.0, 2.0 * ExactCdf(n, w));
  } else {
    const double mean = n * (n + 1) / 4.0;
    const double var =
        n * (n + 1) * (2.0 * n + 1) / 24.0 - tie_term / 48.0;
    GBX_CHECK_GT(var, 0.0);
    // Lower-tail statistic with continuity correction toward the mean:
    // two-sided p = 2 * P(Z <= z) where z is negative for small w.
    const double z = (w - mean + 0.5) / std::sqrt(var);
    result.p_value = std::min(1.0, 2.0 * NormalSf(-z));
  }
  return result;
}

}  // namespace gbx
