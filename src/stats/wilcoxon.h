// Wilcoxon signed-rank test for paired samples — Table III of the paper
// compares GBABS-DT against each baseline over the 13 datasets with this
// test at alpha = 0.05. Uses the exact null distribution when there are no
// ties among nonzero |differences| and n <= 25, otherwise the normal
// approximation with tie correction and continuity correction.
#ifndef GBX_STATS_WILCOXON_H_
#define GBX_STATS_WILCOXON_H_

#include <vector>

namespace gbx {

struct WilcoxonResult {
  double w_plus = 0.0;   // rank sum of positive differences
  double w_minus = 0.0;  // rank sum of negative differences
  int n_effective = 0;   // pairs with nonzero difference
  double p_value = 1.0;  // two-sided
  bool exact = false;    // exact distribution vs normal approximation
};

/// Two-sided test of H0: median(a - b) == 0. Zero differences are dropped
/// (the standard Wilcoxon convention). Requires equal sizes and at least
/// one nonzero difference for a meaningful p-value (otherwise p = 1).
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace gbx

#endif  // GBX_STATS_WILCOXON_H_
