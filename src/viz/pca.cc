#include "viz/pca.h"

#include <cmath>

namespace gbx {

PcaResult FitPca(const Matrix& x, int num_components, Pcg32* rng,
                 int power_iterations) {
  GBX_CHECK(rng != nullptr);
  GBX_CHECK_GT(x.rows(), 1);
  const int n = x.rows();
  const int p = x.cols();
  num_components = std::min(num_components, p);

  PcaResult result;
  result.mean.assign(p, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    for (int j = 0; j < p; ++j) result.mean[j] += row[j];
  }
  for (int j = 0; j < p; ++j) result.mean[j] /= n;

  // Covariance (p x p).
  Matrix cov(p, p);
  for (int i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    for (int a = 0; a < p; ++a) {
      const double da = row[a] - result.mean[a];
      double* cov_row = cov.Row(a);
      for (int b = a; b < p; ++b) {
        cov_row[b] += da * (row[b] - result.mean[b]);
      }
    }
  }
  for (int a = 0; a < p; ++a) {
    for (int b = a; b < p; ++b) {
      cov.At(a, b) /= (n - 1);
      cov.At(b, a) = cov.At(a, b);
    }
  }

  result.components = Matrix(num_components, p);
  std::vector<double> v(p);
  std::vector<double> next(p);
  for (int comp = 0; comp < num_components; ++comp) {
    for (int j = 0; j < p; ++j) v[j] = rng->NextGaussian();
    double eigenvalue = 0.0;
    for (int iter = 0; iter < power_iterations; ++iter) {
      // next = cov * v
      for (int a = 0; a < p; ++a) {
        double s = 0.0;
        const double* cov_row = cov.Row(a);
        for (int b = 0; b < p; ++b) s += cov_row[b] * v[b];
        next[a] = s;
      }
      double norm = 0.0;
      for (int a = 0; a < p; ++a) norm += next[a] * next[a];
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;  // null space reached
      eigenvalue = norm;
      for (int a = 0; a < p; ++a) v[a] = next[a] / norm;
    }
    result.explained_variance.push_back(eigenvalue);
    double* dst = result.components.Row(comp);
    for (int j = 0; j < p; ++j) dst[j] = v[j];
    // Deflate: cov -= lambda * v v^T.
    for (int a = 0; a < p; ++a) {
      double* cov_row = cov.Row(a);
      for (int b = 0; b < p; ++b) {
        cov_row[b] -= eigenvalue * v[a] * v[b];
      }
    }
  }
  return result;
}

Matrix PcaTransform(const PcaResult& pca, const Matrix& x) {
  const int k = pca.components.rows();
  const int p = pca.components.cols();
  GBX_CHECK_EQ(x.cols(), p);
  Matrix out(x.rows(), k);
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    double* dst = out.Row(i);
    for (int c = 0; c < k; ++c) {
      const double* axis = pca.components.Row(c);
      double s = 0.0;
      for (int j = 0; j < p; ++j) s += (row[j] - pca.mean[j]) * axis[j];
      dst[c] = s;
    }
  }
  return out;
}

}  // namespace gbx
