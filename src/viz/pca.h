// Principal component analysis via power iteration with deflation — used
// to initialize t-SNE and as a cheap 2-D projector. Exact enough for
// visualization (components converge to the leading eigenvectors of the
// covariance matrix).
#ifndef GBX_VIZ_PCA_H_
#define GBX_VIZ_PCA_H_

#include "common/matrix.h"
#include "common/rng.h"

namespace gbx {

struct PcaResult {
  /// Row i = i-th principal axis (length p), orthonormal.
  Matrix components;
  std::vector<double> explained_variance;
  std::vector<double> mean;
};

/// Fits `num_components` principal axes of `x`.
PcaResult FitPca(const Matrix& x, int num_components, Pcg32* rng,
                 int power_iterations = 100);

/// Projects rows of `x` onto the fitted axes (centers with the fitted
/// mean).
Matrix PcaTransform(const PcaResult& pca, const Matrix& x);

}  // namespace gbx

#endif  // GBX_VIZ_PCA_H_
