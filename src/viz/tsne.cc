#include "viz/tsne.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "viz/pca.h"

namespace gbx {

namespace {

/// Binary-searches the Gaussian precision beta_i so the conditional
/// distribution P(j|i) has the requested perplexity.
void ComputeRowAffinities(const std::vector<double>& d2_row, int i, int n,
                          double perplexity, std::vector<double>* p_row) {
  double beta = 1.0;
  double beta_min = 0.0;
  double beta_max = std::numeric_limits<double>::infinity();
  const double log_perp = std::log(perplexity);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0;
    double weighted = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        (*p_row)[j] = 0.0;
        continue;
      }
      const double w = std::exp(-beta * d2_row[j]);
      (*p_row)[j] = w;
      sum += w;
      weighted += w * d2_row[j];
    }
    if (sum <= 0.0) {
      // All neighbors infinitely far at this beta: soften.
      beta /= 2.0;
      continue;
    }
    const double entropy = std::log(sum) + beta * weighted / sum;
    const double diff = entropy - log_perp;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : (beta + beta_max) / 2.0;
    } else {
      beta_max = beta;
      beta = (beta + beta_min) / 2.0;
    }
  }
  double sum = 0.0;
  for (int j = 0; j < n; ++j) sum += (*p_row)[j];
  if (sum <= 0.0) sum = 1.0;
  for (int j = 0; j < n; ++j) (*p_row)[j] /= sum;
}

}  // namespace

Matrix RunTsne(const Matrix& input, const TsneConfig& config) {
  GBX_CHECK_GT(input.rows(), 2);
  GBX_CHECK_GE(config.output_dims, 1);
  const int n = input.rows();
  Pcg32 rng(config.seed);

  // Optional PCA preprocessing (standard t-SNE practice for p >> 50).
  Matrix x = input;
  if (config.pca_dims > 0 && input.cols() > config.pca_dims) {
    PcaResult pca = FitPca(input, config.pca_dims, &rng);
    x = PcaTransform(pca, input);
  }
  const int p = x.cols();

  // Pairwise squared distances.
  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = SquaredDistance(x.Row(i), x.Row(j), p);
      d2[i][j] = d;
      d2[j][i] = d;
    }
  }

  // Symmetrized affinities P.
  const double perplexity =
      std::min(config.perplexity, (n - 1) / 3.0);  // keep search feasible
  std::vector<std::vector<double>> cond(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    ComputeRowAffinities(d2[i], i, n, perplexity, &cond[i]);
  }
  std::vector<std::vector<double>> P(n, std::vector<double>(n, 0.0));
  double p_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      P[i][j] = (cond[i][j] + cond[j][i]) / (2.0 * n);
      p_sum += P[i][j];
    }
  }
  (void)p_sum;

  const int dims = config.output_dims;
  Matrix y(n, dims);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) y.At(i, d) = rng.NextGaussian() * 1e-4;
  }
  Matrix velocity(n, dims);
  Matrix gains(n, dims, 1.0);
  Matrix grad(n, dims);
  std::vector<std::vector<double>> Q(n, std::vector<double>(n, 0.0));

  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;

    // Student-t low-dimensional affinities Q (unnormalized) and their sum.
    double q_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double d = SquaredDistance(y.Row(i), y.Row(j), dims);
        const double w = 1.0 / (1.0 + d);
        Q[i][j] = w;
        Q[j][i] = w;
        q_sum += 2.0 * w;
      }
      Q[i][i] = 0.0;
    }
    q_sum = std::max(q_sum, 1e-12);

    // Gradient: 4 * sum_j (p_ij * ex - q_ij) * w_ij * (y_i - y_j).
    for (int i = 0; i < n; ++i) {
      double* g = grad.Row(i);
      std::fill(g, g + dims, 0.0);
      const double* yi = y.Row(i);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = Q[i][j];
        const double mult = (exaggeration * P[i][j] - w / q_sum) * w;
        const double* yj = y.Row(j);
        for (int d = 0; d < dims; ++d) g[d] += 4.0 * mult * (yi[d] - yj[d]);
      }
    }

    // Adaptive gains + momentum update (standard t-SNE schedule).
    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < dims; ++d) {
        const bool same_sign =
            (grad.At(i, d) > 0.0) == (velocity.At(i, d) > 0.0);
        double gain = gains.At(i, d);
        gain = same_sign ? gain * 0.8 : gain + 0.2;
        gain = std::max(gain, 0.01);
        gains.At(i, d) = gain;
        velocity.At(i, d) = momentum * velocity.At(i, d) -
                            config.learning_rate * gain * grad.At(i, d);
        y.At(i, d) += velocity.At(i, d);
      }
    }

    // Recenter the embedding.
    for (int d = 0; d < dims; ++d) {
      double mean = 0.0;
      for (int i = 0; i < n; ++i) mean += y.At(i, d);
      mean /= n;
      for (int i = 0; i < n; ++i) y.At(i, d) -= mean;
    }
  }
  return y;
}

}  // namespace gbx
