// Exact t-SNE (van der Maaten & Hinton, 2008) — the visualization used in
// Fig. 5 to show the class geometry of the evaluation datasets. O(n^2)
// per iteration; callers subsample large datasets. Deterministic given the
// seed.
#ifndef GBX_VIZ_TSNE_H_
#define GBX_VIZ_TSNE_H_

#include <cstdint>

#include "common/matrix.h"

namespace gbx {

struct TsneConfig {
  int output_dims = 2;
  double perplexity = 30.0;
  int iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 250;
  /// Reduce the input to this many PCA dimensions first (<= 0 disables).
  int pca_dims = 50;
  std::uint64_t seed = 42;
};

/// Embeds the rows of `x` into config.output_dims dimensions.
Matrix RunTsne(const Matrix& x, const TsneConfig& config = {});

}  // namespace gbx

#endif  // GBX_VIZ_TSNE_H_
