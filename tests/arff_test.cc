#include "data/arff.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace gbx {
namespace {

constexpr char kBananaLikeArff[] = R"(% KEEL-style header
@relation banana
@attribute At1 real [-3.09, 2.81]
@attribute At2 real
@attribute Class {-1.0, 1.0}
@inputs At1, At2
@outputs Class
@data
1.14, -0.11, -1.0
-1.52, -1.15, 1.0
0.12, 0.40, -1.0
)";

TEST(ArffTest, ParsesKeelStyleNumericRelation) {
  const StatusOr<ArffRelation> rel = ParseArff(kBananaLikeArff);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->name, "banana");
  ASSERT_EQ(rel->attributes.size(), 2u);
  EXPECT_EQ(rel->attributes[0].name, "At1");
  EXPECT_FALSE(rel->attributes[0].nominal);
  EXPECT_EQ(rel->class_attribute.name, "Class");
  ASSERT_EQ(rel->class_attribute.categories.size(), 2u);

  const Dataset& ds = rel->data;
  EXPECT_EQ(ds.size(), 3);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_DOUBLE_EQ(ds.feature(0, 0), 1.14);
  EXPECT_EQ(ds.label(0), 0);  // "-1.0" is category 0
  EXPECT_EQ(ds.label(1), 1);
}

TEST(ArffTest, NominalFeaturesMapToCategoryIndices) {
  const char* text = R"(@relation car
@attribute buying {vhigh, high, med, low}
@attribute doors numeric
@attribute class {unacc, acc, good}
@data
med, 4, acc
vhigh, 2, unacc
low, 5, good
)";
  const StatusOr<ArffRelation> rel = ParseArff(text);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->attributes[0].nominal);
  EXPECT_DOUBLE_EQ(rel->data.feature(0, 0), 2);  // med -> index 2
  EXPECT_DOUBLE_EQ(rel->data.feature(1, 0), 0);  // vhigh -> 0
  EXPECT_EQ(rel->data.label(2), 2);              // good -> 2
}

TEST(ArffTest, ClassAttributeByName) {
  const char* text = R"(@relation t
@attribute label {a, b}
@attribute x numeric
@data
a, 1.5
b, 2.5
)";
  ArffOptions options;
  options.class_attribute = "label";
  const StatusOr<ArffRelation> rel = ParseArff(text, options);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->class_attribute.name, "label");
  EXPECT_EQ(rel->data.num_features(), 1);
  EXPECT_DOUBLE_EQ(rel->data.feature(1, 0), 2.5);
  EXPECT_EQ(rel->data.label(1), 1);
}

TEST(ArffTest, QuotedNamesAndComments) {
  const char* text = "@relation 'my data'\n"
                     "% a comment\n"
                     "@attribute 'f one' real\n"
                     "@attribute class {yes, no}\n"
                     "@data\n"
                     "% another comment\n"
                     "3.5, yes\n";
  const StatusOr<ArffRelation> rel = ParseArff(text);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->name, "my data");
  EXPECT_EQ(rel->attributes[0].name, "f one");
}

TEST(ArffTest, Rejections) {
  EXPECT_FALSE(ParseArff("").ok());
  EXPECT_FALSE(ParseArff("@relation t\n@data\n1,2\n").ok());
  // Non-nominal class.
  EXPECT_FALSE(ParseArff("@relation t\n@attribute a real\n"
                         "@attribute b real\n@data\n1,2\n")
                   .ok());
  // Unknown class value.
  EXPECT_FALSE(ParseArff("@relation t\n@attribute a real\n"
                         "@attribute c {x}\n@data\n1,zz\n")
                   .ok());
  // Arity mismatch.
  EXPECT_FALSE(ParseArff("@relation t\n@attribute a real\n"
                         "@attribute c {x,y}\n@data\n1\n")
                   .ok());
  // Unknown nominal category in feature column.
  EXPECT_FALSE(ParseArff("@relation t\n@attribute a {p,q}\n"
                         "@attribute c {x,y}\n@data\nzz,x\n")
                   .ok());
}

TEST(ArffTest, FileRoundTripViaDisk) {
  const std::string path = ::testing::TempDir() + "/gbx_test.arff";
  {
    std::ofstream out(path);
    out << kBananaLikeArff;
  }
  const StatusOr<ArffRelation> rel = LoadArff(path);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->data.size(), 3);
  std::remove(path.c_str());
  EXPECT_EQ(LoadArff(path).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gbx
