// Property battery for BallSurfaceIndex: interleaved Insert/MinSurfaceGap
// schedules cross-checked against the flat gap scan — the exact
// computation RD-GBG's conflict-radius pass performs — over an
// n × d × leaf_size sweep, with exact double equality throughout. The
// adversarial corners ride along: duplicate centers (zero-spread
// leaves), zero radii (orphan-shaped balls), radii that swallow the
// whole cloud (negative gaps everywhere), queries at stored centers, and
// the block-merge boundaries of the logarithmic forest.
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/ball_surface_index.h"
#include "common/matrix.h"

namespace gbx {
namespace {

struct FlatBalls {
  std::vector<std::vector<double>> centers;
  std::vector<double> radii;

  // The flat r_conf gap scan's arithmetic, verbatim.
  double MinGap(const double* q, int d) const {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < radii.size(); ++i) {
      best = std::min(
          best, EuclideanDistance(q, centers[i].data(), d) - radii[i]);
    }
    return best;
  }
};

class BallSurfaceIndexOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BallSurfaceIndexOracleTest, AgreesWithFlatScanUnderInterleavedInserts) {
  const auto [n, d, leaf_size] = GetParam();
  Pcg32 rng(1700 + 13 * n + d + leaf_size);
  BallSurfaceIndex index(d, leaf_size);
  FlatBalls flat;

  EXPECT_EQ(index.size(), 0);
  {
    // Empty index: no balls means no conflict — +infinity, like the
    // flat fold over zero balls.
    std::vector<double> q(d, 0.0);
    EXPECT_EQ(index.MinSurfaceGap(q.data()),
              std::numeric_limits<double>::infinity());
  }

  for (int i = 0; i < n; ++i) {
    std::vector<double> center(d);
    if (i > 0 && rng.NextBounded(8) == 0) {
      // Duplicate center: distinct balls can share a center sample.
      center = flat.centers[rng.NextBounded(static_cast<std::uint32_t>(i))];
    } else {
      for (int j = 0; j < d; ++j) center[j] = rng.NextGaussian();
    }
    const int kind = static_cast<int>(rng.NextBounded(4));
    const double radius = kind == 0   ? 0.0                      // orphan
                          : kind == 1 ? 10.0 + rng.NextDouble()  // swallows
                                      : rng.NextDouble() * 1.5;  // typical
    index.Insert(center.data(), radius);
    flat.centers.push_back(center);
    flat.radii.push_back(radius);
    ASSERT_EQ(index.size(), i + 1);

    // Query after every insert: this sweeps the tail through every fill
    // level and crosses every block-merge boundary of the forest.
    for (int trial = 0; trial < 2; ++trial) {
      std::vector<double> q(d);
      if (trial == 1) {
        // At a stored center: exercises gap = -radius and exact-zero
        // distances.
        q = flat.centers[rng.NextBounded(static_cast<std::uint32_t>(i + 1))];
      } else {
        for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian() * 2.0;
      }
      const double expected = flat.MinGap(q.data(), d);
      const double actual = index.MinSurfaceGap(q.data());
      // Identical arithmetic on identical inputs: exact, not
      // approximate — this is the bit-identity contract the r_conf
      // strategy knob rests on.
      ASSERT_EQ(actual, expected)
          << "n=" << i + 1 << " d=" << d << " leaf=" << leaf_size
          << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BallSurfaceIndexOracleTest,
    ::testing::Combine(::testing::Values(1, 33, 257, 700),
                       ::testing::Values(1, 2, 8, 16),
                       ::testing::Values(1, 4, 16)));

// The forest must fold blocks binary-counter style: sizes strictly
// decreasing front to back, tail always below its cap, and nothing lost
// across merges.
TEST(BallSurfaceIndexTest, ForestShapeStaysLogarithmic) {
  const int d = 3;
  BallSurfaceIndex index(d);
  Pcg32 rng(5);
  std::vector<double> center(d);
  for (int i = 0; i < 1000; ++i) {
    for (int j = 0; j < d; ++j) center[j] = rng.NextGaussian();
    index.Insert(center.data(), 0.1);
    ASSERT_LT(index.tail_size(), 32) << "tail past its cap at insert " << i;
    ASSERT_LE(index.num_blocks(), 6)
        << "forest must stay logarithmic (1000 balls, 32-cap tail)";
  }
  EXPECT_EQ(index.size(), 1000);
}

// All-duplicate input: one zero-spread leaf per block, min over
// different radii at distance zero.
TEST(BallSurfaceIndexTest, AllDuplicateCenters) {
  const int d = 2;
  BallSurfaceIndex index(d, /*leaf_size=*/4);
  const double center[] = {1.5, -2.5};
  FlatBalls flat;
  Pcg32 rng(9);
  for (int i = 0; i < 100; ++i) {
    const double radius = rng.NextDouble();
    index.Insert(center, radius);
    flat.centers.emplace_back(center, center + d);
    flat.radii.push_back(radius);
  }
  const double at_center[] = {1.5, -2.5};
  const double away[] = {4.0, 4.0};
  EXPECT_EQ(index.MinSurfaceGap(at_center), flat.MinGap(at_center, d));
  EXPECT_EQ(index.MinSurfaceGap(away), flat.MinGap(away, d));
}

}  // namespace
}  // namespace gbx
