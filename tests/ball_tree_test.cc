// Property battery for the metric BallTree, mirroring
// tests/index_dynamic_test.cc's DynamicKdTree coverage: randomized
// interleavings of Remove and all query families, cross-checked against
// a live-filtered brute-force oracle (BruteForceIndex semantics) over an
// n × d × leaf_size sweep — the sweep deliberately reaches the
// moderate dimensionalities (d up to 24) the ball-tree exists for —
// plus the adversarial corners: duplicate rows, every point removed, the
// amortized-rebuild boundary, oversized k, and the weighted surface
// query. Equality is exact double equality everywhere: the deflated
// triangle bound must never prune a candidate the exhaustive scan keeps.
#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/ball_tree.h"
#include "index/brute_force.h"

namespace gbx {
namespace {

Matrix RandomPoints(int n, int d, std::uint64_t seed) {
  Pcg32 rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m.At(i, j) = rng.NextGaussian();
  }
  return m;
}

std::vector<Neighbor> OracleKnn(const Matrix& pts,
                                const std::vector<char>& alive,
                                const double* q, int k) {
  std::vector<Neighbor> all;
  for (int i = 0; i < pts.rows(); ++i) {
    if (!alive[i]) continue;
    all.push_back(Neighbor{i, SquaredDistance(q, pts.Row(i), pts.cols())});
  }
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) > k) all.resize(k);
  for (Neighbor& nb : all) nb.distance = std::sqrt(nb.distance);
  return all;
}

std::vector<SquaredNeighbor> OracleKnnSquared(const Matrix& pts,
                                              const std::vector<char>& alive,
                                              const double* q, int k,
                                              int exclude) {
  std::vector<SquaredNeighbor> all;
  for (int i = 0; i < pts.rows(); ++i) {
    if (!alive[i] || i == exclude) continue;
    all.push_back(
        SquaredNeighbor{SquaredDistance(q, pts.Row(i), pts.cols()), i});
  }
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<Neighbor> OracleRadius(const Matrix& pts,
                                   const std::vector<char>& alive,
                                   const double* q, double radius) {
  std::vector<Neighbor> all;
  const double r2 = radius * radius;
  for (int i = 0; i < pts.rows(); ++i) {
    if (!alive[i]) continue;
    const double d2 = SquaredDistance(q, pts.Row(i), pts.cols());
    if (d2 <= r2) all.push_back(Neighbor{i, std::sqrt(d2)});
  }
  std::sort(all.begin(), all.end());
  return all;
}

void ExpectNeighborsEqual(const std::vector<Neighbor>& actual,
                          const std::vector<Neighbor>& expected,
                          const char* what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].index, expected[i].index) << what << " at " << i;
    ASSERT_EQ(actual[i].distance, expected[i].distance) << what << " at " << i;
  }
}

void ExpectSquaredEqual(const std::vector<SquaredNeighbor>& actual,
                        const std::vector<SquaredNeighbor>& expected,
                        const char* what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].index, expected[i].index) << what << " at " << i;
    ASSERT_EQ(actual[i].dist2, expected[i].dist2) << what << " at " << i;
  }
}

class BallTreeOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BallTreeOracleTest, AgreesWithOracleUnderInterleavedRemovals) {
  const auto [n, d, leaf_size] = GetParam();
  const Matrix pts = RandomPoints(n, d, 4100 + n * 7 + d);
  BallTree tree(&pts, leaf_size);
  std::vector<char> alive(n, 1);
  std::vector<int> live_ids(n);
  for (int i = 0; i < n; ++i) live_ids[i] = i;
  Pcg32 rng(29 * n + d + leaf_size);

  const auto check_all = [&](const char* when) {
    ASSERT_EQ(tree.size(), static_cast<int>(live_ids.size())) << when;
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<double> q(d);
      for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
      // Query at a stored (sometimes removed) point half the time:
      // distance-0 hits and tombstone positions are the hard cases.
      if (n > 0 && trial % 2 == 1) {
        const int at = static_cast<int>(rng.NextBounded(n));
        for (int j = 0; j < d; ++j) q[j] = pts.At(at, j);
      }
      const int k = 1 + static_cast<int>(rng.NextBounded(12));
      ExpectNeighborsEqual(tree.KNearest(q.data(), k),
                           OracleKnn(pts, alive, q.data(), k), when);
      const int exclude =
          trial % 2 == 0 ? -1 : static_cast<int>(rng.NextBounded(n));
      ExpectSquaredEqual(
          tree.KNearestSquared(q.data(), k, exclude),
          OracleKnnSquared(pts, alive, q.data(), k, exclude), when);
      const double radius = 0.25 + rng.NextDouble() * 2.0;
      ExpectNeighborsEqual(tree.RadiusSearch(q.data(), radius),
                           OracleRadius(pts, alive, q.data(), radius), when);
    }
  };

  check_all("before removals");
  while (!live_ids.empty()) {
    const int batch = 1 + static_cast<int>(rng.NextBounded(
                              static_cast<std::uint32_t>(
                                  std::max<std::size_t>(live_ids.size() / 6,
                                                        1))));
    for (int b = 0; b < batch && !live_ids.empty(); ++b) {
      const std::size_t pick = rng.NextBounded(
          static_cast<std::uint32_t>(live_ids.size()));
      const int id = live_ids[pick];
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
      ASSERT_TRUE(tree.alive(id));
      tree.Remove(id);
      alive[id] = 0;
      ASSERT_FALSE(tree.alive(id));
    }
    check_all("after removal batch");
  }
  ASSERT_EQ(tree.size(), 0);
  std::vector<double> q(d, 0.0);
  EXPECT_TRUE(tree.KNearest(q.data(), 5).empty());
  EXPECT_TRUE(tree.KNearestSquared(q.data(), 5).empty());
  EXPECT_TRUE(tree.RadiusSearch(q.data(), 100.0).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BallTreeOracleTest,
    ::testing::Combine(::testing::Values(1, 5, 64, 257, 800),
                       ::testing::Values(1, 2, 8, 24),
                       ::testing::Values(1, 16, 64)));

// A full-tree comparison against BruteForceIndex on the NeighborIndex
// interface — the same cross-index contract the static KdTree sweep in
// index_test.cc enforces.
TEST(BallTreeTest, MatchesBruteForceIndexSweep) {
  for (const auto& [n, d] : {std::pair{300, 4}, {500, 12}, {800, 20}}) {
    const Matrix pts = RandomPoints(n, d, 600 + n + d);
    BallTree tree(&pts, /*leaf_size=*/8);
    const BruteForceIndex brute(&pts);
    Pcg32 rng(77 + n);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> q(d);
      for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian() * 1.5;
      const int k = 1 + static_cast<int>(rng.NextBounded(10));
      ExpectNeighborsEqual(tree.KNearest(q.data(), k),
                           brute.KNearest(q.data(), k), "vs brute knn");
      const double radius = 0.5 + rng.NextDouble() * 2.5;
      ExpectNeighborsEqual(tree.RadiusSearch(q.data(), radius),
                           brute.RadiusSearch(q.data(), radius),
                           "vs brute radius");
    }
  }
}

// Duplicate rows stress the index tie-breaks and the zero-spread leaf
// path; removing individual duplicates must surface the remaining ones
// in index order.
TEST(BallTreeTest, DuplicateRowsRemoveOneAtATime) {
  Matrix pts(12, 2);
  for (int i = 0; i < 12; ++i) {
    pts.At(i, 0) = i < 8 ? 1.0 : 2.0;  // ids 0..7 identical, 8..11 identical
    pts.At(i, 1) = i < 8 ? -3.0 : 4.0;
  }
  BallTree tree(&pts, /*leaf_size=*/2);
  const double q[] = {1.0, -3.0};

  std::vector<char> alive(12, 1);
  for (int removed = 0; removed < 8; ++removed) {
    const std::vector<Neighbor> nns = tree.KNearest(q, 3);
    ExpectNeighborsEqual(nns, OracleKnn(pts, alive, q, 3), "duplicates");
    ASSERT_GE(nns.size(), 1u);
    EXPECT_EQ(nns[0].index, removed);
    EXPECT_EQ(nns[0].distance, 0.0);
    tree.Remove(removed);
    alive[removed] = 0;
  }
  const std::vector<Neighbor> rest = tree.KNearest(q, 100);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0].index, 8);
}

// The amortized rebuild fires exactly when tombstones first exceed half
// of the indexed points, resetting the accounting to the survivors —
// DynamicKdTree's exact contract.
TEST(BallTreeTest, RebuildBoundaryAtExactlyHalf) {
  const Matrix pts = RandomPoints(8, 3, 42);
  BallTree tree(&pts, /*leaf_size=*/2);
  ASSERT_EQ(tree.indexed_points(), 8);

  for (int i = 0; i < 4; ++i) tree.Remove(i);
  EXPECT_EQ(tree.rebuilds(), 0);
  EXPECT_EQ(tree.tombstones(), 4);
  EXPECT_EQ(tree.indexed_points(), 8);
  EXPECT_EQ(tree.size(), 4);

  tree.Remove(4);
  EXPECT_EQ(tree.rebuilds(), 1);
  EXPECT_EQ(tree.tombstones(), 0);
  EXPECT_EQ(tree.indexed_points(), 3);
  EXPECT_EQ(tree.size(), 3);

  std::vector<char> alive(8, 0);
  alive[5] = alive[6] = alive[7] = 1;
  const double q[] = {0.0, 0.0, 0.0};
  ExpectNeighborsEqual(tree.KNearest(q, 8), OracleKnn(pts, alive, q, 8),
                       "post-rebuild");

  tree.Remove(5);
  tree.Remove(6);
  tree.Remove(7);
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.KNearest(q, 3).empty());
  EXPECT_TRUE(tree.RadiusSearch(q, 10.0).empty());
}

// k beyond the live count degrades to "all live points", in order.
TEST(BallTreeTest, OversizedKReturnsAllLivePoints) {
  const Matrix pts = RandomPoints(10, 2, 7);
  BallTree tree(&pts, /*leaf_size=*/4);
  const double q[] = {0.3, -0.1};

  ASSERT_EQ(tree.KNearest(q, 1000).size(), 10u);
  for (int i = 0; i < 7; ++i) tree.Remove(i);
  const std::vector<Neighbor> live = tree.KNearest(q, 1000);
  ASSERT_EQ(live.size(), 3u);
  std::vector<char> alive(10, 0);
  alive[7] = alive[8] = alive[9] = 1;
  ExpectNeighborsEqual(live, OracleKnn(pts, alive, q, 1000), "oversized k");

  EXPECT_EQ(tree.KNearestSquared(q, 1000, /*exclude=*/8).size(), 2u);
  EXPECT_EQ(tree.KNearestSquared(q, 1000, /*exclude=*/0).size(), 3u)
      << "excluding an already-removed point must not shrink the result";
  EXPECT_TRUE(tree.KNearest(q, 0).empty());
}

// The weighted surface query (GB-kNN's ranking: score = dist - w inside
// the ball, dist outside) must match the exhaustive scan exactly through
// removals and rebuilds, including zero weights, oversized weights that
// swallow the whole cloud, and duplicate centers.
TEST(BallTreeTest, SurfaceQueryAgreesWithOracleUnderRemovals) {
  for (const int n : {1, 7, 120, 600}) {
    const int d = 2 + n % 7;
    Matrix pts = RandomPoints(n, d, 5200 + n);
    for (int i = 0; i < std::min(n, 10); ++i) {
      for (int j = 0; j < d; ++j) pts.At(n - 1 - i, j) = pts.At(i, j);
    }
    Pcg32 rng(43 + n);
    std::vector<double> weights(n);
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.NextBounded(4));
      weights[i] = kind == 0   ? 0.0                       // orphan ball
                   : kind == 1 ? 10.0 + rng.NextDouble()   // swallows all
                               : rng.NextDouble() * 1.5;   // typical
    }
    BallTree tree(&pts, weights.data(), /*leaf_size=*/4);
    std::vector<char> alive(n, 1);

    const auto oracle = [&](const double* q, int k) {
      std::vector<Neighbor> all;
      for (int i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        const double dist = std::sqrt(SquaredDistance(q, pts.Row(i), d));
        all.push_back(Neighbor{
            i, dist <= weights[i] ? dist - weights[i] : dist});
      }
      std::sort(all.begin(), all.end());
      if (static_cast<int>(all.size()) > k) all.resize(k);
      return all;
    };

    int live = n;
    while (live > 0) {
      for (int trial = 0; trial < 3; ++trial) {
        std::vector<double> q(d);
        for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
        const int k = 1 + static_cast<int>(rng.NextBounded(8));
        ExpectNeighborsEqual(tree.KNearestSurface(q.data(), k),
                             oracle(q.data(), k), "surface");
      }
      int id;
      do {
        id = static_cast<int>(rng.NextBounded(n));
      } while (!alive[id]);
      tree.Remove(id);
      alive[id] = 0;
      --live;
    }
    EXPECT_TRUE(tree.KNearestSurface(pts.Row(0), 5).empty());
  }
}

// Without weights the surface query is a contract violation.
TEST(BallTreeDeathTest, SurfaceQueryWithoutWeightsAsserts) {
  const Matrix pts = RandomPoints(4, 2, 5);
  BallTree tree(&pts);
  EXPECT_DEATH(tree.KNearestSurface(pts.Row(0), 1), "requires point weights");
}

TEST(BallTreeTest, EmptyMatrix) {
  const Matrix empty(0, 3);
  BallTree tree(&empty);
  const double q[] = {0.0, 0.0, 0.0};
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.KNearest(q, 5).empty());
  EXPECT_TRUE(tree.KNearestSquared(q, 5).empty());
  EXPECT_TRUE(tree.RadiusSearch(q, 1.0).empty());
}

// Removing a removed point is a contract violation, not UB.
TEST(BallTreeDeathTest, DoubleRemoveAsserts) {
  const Matrix pts = RandomPoints(4, 2, 3);
  BallTree tree(&pts);
  tree.Remove(2);
  EXPECT_DEATH(tree.Remove(2), "already removed");
}

}  // namespace
}  // namespace gbx
