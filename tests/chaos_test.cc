// Chaos battery: every fault class the failpoint framework
// (common/failpoint.h) can inject, driven end-to-end through the
// serving stack, asserting the robustness contracts:
//
//   * a failed or torn SaveModel leaves the destination artifact
//     bit-identical and loadable (atomic temp+rename, model_io.h);
//   * a crash mid-save (before rename) cannot damage the old artifact;
//   * a failed Publish/!swap rolls back atomically — the old version
//     keeps serving, over the wire, and the :once modifier disarms;
//   * an EINTR storm across recv/send/accept/poll never corrupts a
//     response or drops a request;
//   * overload sheds with typed UNAVAILABLE replies while admin
//     commands still answer, and deadlines expire with typed
//     DEADLINE_EXCEEDED — both observable via Stats() and "!stat";
//   * under --degrade auto, sustained pressure walks the recall ladder
//     to its floor BEFORE the bounded queue sheds, recovery restores
//     full quality, and the default-off controller never tags a reply;
//   * the worker watchdog flags a predict worker stuck past its
//     deadline, replaces it (capacity survives), and drives the
//     "!health" probe unready -> ready across the stall.
//
// The whole battery GTEST_SKIPs when sites are compiled out
// (GBX_FAILPOINTS=OFF — the default plain-Release configuration); the
// CI chaos leg builds with -DGBX_FAILPOINTS=ON to run it.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "data/split.h"
#include "ml/gb_knn.h"
#include "serve/model_io.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace gbx {
namespace {

using servetest::MakeGbKnnBundle;
using servetest::ModelBundle;
using servetest::ParsePredictReply;
using servetest::PredictReply;
using servetest::SmallBatchOptions;
using servetest::SuiteSplit;
using servetest::TestClient;

GbKnnClassifier FitModel(std::uint64_t gbg_seed, int k = 3) {
  const TrainTestSplitResult split = SuiteSplit("S5");
  RdGbgConfig gbg;
  gbg.seed = gbg_seed;
  GbKnnClassifier model(gbg, k);
  Pcg32 fit_rng(5);
  model.Fit(split.train, &fit_rng);
  return model;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Failpoints::kCompiledIn) {
      GTEST_SKIP()
          << "failpoint sites are compiled out (build with -DGBX_FAILPOINTS=ON)";
    }
    Failpoints::Instance().ClearAll();
  }
  void TearDown() override { Failpoints::Instance().ClearAll(); }
};

// --- crash-safe artifact writes --------------------------------------

TEST_F(ChaosTest, TornWriteFailsTypedAndPreservesOldArtifact) {
  const GbKnnClassifier old_model = FitModel(17);
  const GbKnnClassifier new_model = FitModel(29, 5);
  const std::string path = ::testing::TempDir() + "/gbx_chaos_torn.gbx";
  ASSERT_TRUE(SaveModel(old_model, path).ok());
  const std::string old_bytes = ReadFileOrDie(path);
  ASSERT_NE(old_bytes, ModelToString(new_model)) << "bundles must differ";

  // partial_write(64): the replacement save persists 64 bytes of the
  // temp file, then fails as if the disk filled.
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("model_io.save.write", "partial_write(64):once")
                  .ok());
  const Status saved = SaveModel(new_model, path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kResourceExhausted)
      << saved.ToString();
  EXPECT_GT(Failpoints::Instance().HitCount("model_io.save.write"), 0);

  // The destination never saw the torn write: bit-identical, loadable,
  // and the temp file was cleaned up.
  EXPECT_EQ(ReadFileOrDie(path), old_bytes);
  EXPECT_TRUE(LoadModel(path).ok());
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0) << "temp file left behind";

  // Disarmed (:once): the very next save goes through.
  ASSERT_TRUE(SaveModel(new_model, path).ok());
  EXPECT_EQ(ReadFileOrDie(path), ModelToString(new_model));
}

TEST_F(ChaosTest, SaveFaultsSurfaceTypedAndNeverTouchDestination) {
  const GbKnnClassifier old_model = FitModel(17);
  const GbKnnClassifier new_model = FitModel(29, 5);
  const std::string path = ::testing::TempDir() + "/gbx_chaos_enospc.gbx";
  ASSERT_TRUE(SaveModel(old_model, path).ok());
  const std::string old_bytes = ReadFileOrDie(path);

  const struct {
    const char* point;
    StatusCode want;
  } kFaults[] = {
      {"model_io.save.write", StatusCode::kResourceExhausted},  // ENOSPC
      {"model_io.save.open", StatusCode::kInternal},
      {"model_io.save.fsync", StatusCode::kInternal},
      {"model_io.save.rename", StatusCode::kInternal},
  };
  for (const auto& fault : kFaults) {
    SCOPED_TRACE(fault.point);
    ASSERT_TRUE(Failpoints::Instance().Set(fault.point, "error:once").ok());
    const Status saved = SaveModel(new_model, path);
    ASSERT_FALSE(saved.ok());
    EXPECT_EQ(saved.code(), fault.want) << saved.ToString();
    EXPECT_EQ(ReadFileOrDie(path), old_bytes);
    const StatusOr<LoadedModel> reloaded = LoadModel(path);
    ASSERT_TRUE(reloaded.ok());
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    EXPECT_NE(::access(tmp.c_str(), F_OK), 0)
        << "temp file left behind after " << fault.point;
  }
}

TEST_F(ChaosTest, CrashMidSaveLeavesOldArtifactBitIdentical) {
  const GbKnnClassifier old_model = FitModel(17);
  const GbKnnClassifier new_model = FitModel(29, 5);
  const std::string path = ::testing::TempDir() + "/gbx_chaos_crash.gbx";
  ASSERT_TRUE(SaveModel(old_model, path).ok());
  const std::string old_bytes = ReadFileOrDie(path);
  const StatusOr<LoadedModel> before = LoadModel(path);
  ASSERT_TRUE(before.ok());

  // The process dies via _exit(86) after the temp file is fully
  // written and fsynced but before rename — the worst crash instant
  // for a non-atomic writer.
  EXPECT_EXIT(
      {
        (void)Failpoints::Instance().Set("model_io.save.crash_before_rename",
                                         "crash");
        (void)SaveModel(new_model, path);
        ::_exit(0);  // unreachable: the failpoint must kill us first
      },
      ::testing::ExitedWithCode(kFailpointCrashExitCode), "");

  // The survivor restarts on the old artifact, bit-identically.
  EXPECT_EQ(ReadFileOrDie(path), old_bytes);
  const StatusOr<LoadedModel> after = LoadModel(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->checksum, before->checksum);
}

// --- publish rollback over the wire ----------------------------------

TEST_F(ChaosTest, SwapFailureRollsBackAndOnceModifierDisarms) {
  const ModelBundle a = MakeGbKnnBundle("S5", 3, 17);
  const ModelBundle b = MakeGbKnnBundle("S5", 5, 29);
  const std::string path_b = ::testing::TempDir() + "/gbx_chaos_swap_b.gbx";
  { std::ofstream(path_b) << b.artifact; }

  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(registry->Publish("default", servetest::LoadBundle(a)).ok());
  Server server(registry);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());

  // Arm over the wire, exactly one failure.
  StatusOr<std::string> reply =
      client.Call("!fail set registry.publish.validate=error:once");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "ok failpoint registry.publish.validate=error:once");

  reply = client.Call("!swap default " + path_b);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("error INTERNAL", 0), 0) << *reply;
  EXPECT_NE(reply->find("failpoint"), std::string::npos) << *reply;

  // Rollback oracle: version a still serves, same checksum, loop alive.
  const Dataset& test = a.split.test;
  const std::string query =
      FormatPredictPayload("", test.row(0), test.num_features());
  reply = client.Call(query);
  ASSERT_TRUE(reply.ok());
  StatusOr<PredictReply> predict = ParsePredictReply(*reply);
  ASSERT_TRUE(predict.ok()) << *reply;
  EXPECT_EQ(predict->label, a.expected[0]);
  EXPECT_EQ(predict->checksum, a.checksum);

  // :once disarmed itself after firing.
  reply = client.Call("!fail list");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "ok failpoints 0");

  // The retry succeeds and actually swaps.
  reply = client.Call("!swap default " + path_b);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("ok swapped default v2", 0), 0) << *reply;
  reply = client.Call(query);
  ASSERT_TRUE(reply.ok());
  predict = ParsePredictReply(*reply);
  ASSERT_TRUE(predict.ok()) << *reply;
  EXPECT_EQ(predict->checksum, b.checksum);

  server.Stop();
}

// --- EINTR storm ------------------------------------------------------

TEST_F(ChaosTest, EintrStormAcrossAllSyscallSitesServesCorrectly) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  const int n = std::min(test.size(), 40);

  for (const bool force_poll : {false, true}) {
    SCOPED_TRACE(force_poll ? "poll backend" : "epoll backend");
    auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
    ASSERT_TRUE(
        registry->Publish("default", servetest::LoadBundle(bundle)).ok());
    ServerOptions opts;
    opts.force_poll = force_poll;
    Server server(registry, opts);

    // every(K >= 2), never every(1): the retry loops re-evaluate the
    // site, so a site that fires on every evaluation would livelock.
    Failpoints& fps = Failpoints::Instance();
    ASSERT_TRUE(fps.Set("server.recv.eintr", "error:every(2)").ok());
    ASSERT_TRUE(fps.Set("server.send.eintr", "error:every(3)").ok());
    ASSERT_TRUE(fps.Set("server.accept.eintr", "error:every(2)").ok());
    ASSERT_TRUE(fps.Set("server.poll.eintr", "error:every(3)").ok());
    ASSERT_TRUE(server.Start().ok());

    {
      TestClient client(server.port());
      for (int i = 0; i < n; ++i) {
        const StatusOr<std::string> reply = client.Call(
            FormatPredictPayload("", test.row(i), test.num_features()));
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        const StatusOr<PredictReply> predict = ParsePredictReply(*reply);
        ASSERT_TRUE(predict.ok()) << *reply;
        EXPECT_EQ(predict->label, bundle.expected[i]) << "query " << i;
        EXPECT_EQ(predict->checksum, bundle.checksum);
      }
    }
    server.Stop();

    // The storm must actually have rained on every site.
    EXPECT_GT(fps.HitCount("server.recv.eintr"), 0);
    EXPECT_GT(fps.HitCount("server.send.eintr"), 0);
    EXPECT_GT(fps.HitCount("server.accept.eintr"), 0);
    EXPECT_GT(fps.HitCount("server.poll.eintr"), 0);
    fps.ClearAll();
  }
}

// --- overload control and deadlines ----------------------------------

TEST_F(ChaosTest, OverloadShedsTypedRepliesAndAdminStaysResponsive) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(
      registry->Publish("default", servetest::LoadBundle(bundle)).ok());
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 4;
  Server server(registry, opts);
  ASSERT_TRUE(server.Start().ok());

  // Each request occupies the single worker for >= 20 ms: a 64-request
  // burst must overflow the 4-deep queue.
  ASSERT_TRUE(
      Failpoints::Instance().Set("server.worker.delay", "delay(20)").ok());

  TestClient client(server.port());
  const std::string query =
      FormatPredictPayload("", test.row(0), test.num_features());
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.Send(query).ok());
  }

  // Admin commands bypass the shed path: the server stays observable
  // while it grinds through (and sheds) the burst.
  TestClient admin(server.port());
  const StatusOr<std::string> pong = admin.Call("!ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "ok pong");

  int ok = 0, unavailable = 0;
  for (int i = 0; i < kBurst; ++i) {
    const StatusOr<std::string> reply = client.Recv();
    ASSERT_TRUE(reply.ok()) << "reply " << i << ": "
                            << reply.status().ToString();
    if (reply->rfind("ok ", 0) == 0) {
      const StatusOr<PredictReply> predict = ParsePredictReply(*reply);
      ASSERT_TRUE(predict.ok()) << *reply;
      EXPECT_EQ(predict->label, bundle.expected[0]);
      ++ok;
    } else {
      EXPECT_EQ(reply->rfind("error UNAVAILABLE", 0), 0) << *reply;
      EXPECT_NE(reply->find("overloaded"), std::string::npos) << *reply;
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(unavailable, 0);
  EXPECT_EQ(ok + unavailable, kBurst);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_shed, unavailable);
  EXPECT_GE(stats.queue_peak, 1);

  const StatusOr<std::string> stat = admin.Call("!stat");
  ASSERT_TRUE(stat.ok());
  EXPECT_NE(stat->find(" shed " + std::to_string(unavailable)),
            std::string::npos)
      << *stat;
  EXPECT_NE(stat->find(" queue_peak "), std::string::npos) << *stat;

  server.Stop();
}

TEST_F(ChaosTest, QueuedDeadlineExpiresWithTypedReply) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(
      registry->Publish("default", servetest::LoadBundle(bundle)).ok());
  ServerOptions opts;
  opts.num_workers = 1;
  Server server(registry, opts);
  ASSERT_TRUE(server.Start().ok());

  // Request 1 (no deadline) parks the single worker for >= 30 ms;
  // request 2's 1 ms budget burns in the queue behind it.
  ASSERT_TRUE(
      Failpoints::Instance().Set("server.worker.delay", "delay(30)").ok());
  TestClient client(server.port());
  ASSERT_TRUE(
      client
          .Send(FormatPredictPayload("", test.row(0), test.num_features()))
          .ok());
  ASSERT_TRUE(
      client
          .Send(FormatPredictPayload("", test.row(1), test.num_features(),
                                     /*timeout_ms=*/1.0))
          .ok());

  StatusOr<std::string> reply = client.Recv();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("ok ", 0), 0) << *reply;
  reply = client.Recv();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("error DEADLINE_EXCEEDED", 0), 0) << *reply;
  EXPECT_NE(reply->find("expired"), std::string::npos) << *reply;

  EXPECT_EQ(server.Stats().deadlines_expired, 1);
  const StatusOr<std::string> stat = client.Call("!stat");
  ASSERT_TRUE(stat.ok());
  EXPECT_NE(stat->find(" deadline_expired 1"), std::string::npos) << *stat;

  // A generous deadline still predicts normally.
  reply = client.Call(FormatPredictPayload("", test.row(2),
                                           test.num_features(), 5000.0));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("ok ", 0), 0) << *reply;

  server.Stop();
}

// --- graceful degradation ladder --------------------------------------

/// Publishes `bundle` under "default" with the sampled quality tier
/// resolved — the strategy the degradation ladder lowers recall through.
std::shared_ptr<ModelRegistry> SampledRegistry(const ModelBundle& bundle) {
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  LoadedModel model = servetest::LoadBundle(bundle);
  auto* gbknn = dynamic_cast<GbKnnClassifier*>(model.classifier.get());
  GBX_CHECK(gbknn != nullptr);
  gbknn->set_index_strategy(IndexStrategy::kSampled);
  GBX_CHECK(registry->Publish("default", std::move(model)).ok());
  return registry;
}

/// Fast-ticking ladder over a 1-worker, 4-deep-queue server: pressure
/// signals respond within tens of milliseconds instead of seconds.
ServerOptions LadderOptions() {
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 4;
  opts.degrade.min_recall = 0.5;
  opts.degrade.tick_interval_ms = 5.0;
  opts.degrade.down_ticks = 2;
  opts.degrade.up_ticks = 2;
  opts.degrade.queue_wait_ref_ms = 5.0;
  // Low watermark above an occasional 1-deep queue (admin probes pass
  // through the worker queue too), so recovery is not dead-banded by
  // the act of observing it.
  opts.degrade.low_watermark = 0.3;
  return opts;
}

TEST_F(ChaosTest, DegradationLadderDropsRecallBeforeShedAndRecovers) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  ServerOptions opts = LadderOptions();
  opts.degrade_auto = true;
  Server server(SampledRegistry(bundle), opts);
  ASSERT_TRUE(server.Start().ok());

  // Every predict occupies the single worker for >= 8 ms; a 3-deep
  // pipelined window sustains queue pressure above the high watermark
  // WITHOUT ever overflowing the 4-deep queue.
  ASSERT_TRUE(
      Failpoints::Instance().Set("server.worker.delay", "delay(8)").ok());

  TestClient client(server.port());
  const std::string query =
      FormatPredictPayload("", test.row(0), test.num_features());

  // Phase 1 — sustained pressure below the shed line: the ladder must
  // walk to the recall floor with ZERO sheds.
  constexpr int kWindow = 3;
  for (int i = 0; i < kWindow; ++i) ASSERT_TRUE(client.Send(query).ok());
  bool at_floor = false;
  for (int i = 0; i < 2000 && !at_floor; ++i) {
    const StatusOr<std::string> reply = client.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->rfind("ok ", 0), 0)
        << "shed before the ladder reached its floor: " << *reply;
    at_floor = reply->find(" degraded recall=0.50") != std::string::npos;
    ASSERT_TRUE(client.Send(query).ok());
  }
  EXPECT_TRUE(at_floor) << "ladder never reached the recall floor";
  EXPECT_EQ(server.Stats().requests_shed, 0)
      << "queue shed before degradation bottomed out";
  EXPECT_GE(server.Stats().degrade_transitions, 3);  // >= 3 down steps
  EXPECT_GT(server.Stats().requests_degraded, 0);

  // Phase 2 — a burst past the queue bound: only NOW may the server
  // shed (the floor preceded the first shed in stream order).
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) ASSERT_TRUE(client.Send(query).ok());
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst + kWindow; ++i) {
    const StatusOr<std::string> reply = client.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->rfind("ok ", 0) == 0) {
      ++ok;
    } else {
      EXPECT_EQ(reply->rfind("error UNAVAILABLE", 0), 0) << *reply;
      ++shed;
    }
  }
  EXPECT_GT(shed, 0) << "burst never overflowed the queue";
  EXPECT_EQ(ok + shed, kBurst + kWindow);

  // Phase 3 — pressure off: the ladder steps back to full quality
  // (hysteresis: gradually, via up_ticks) and "!health" reports it.
  Failpoints::Instance().ClearAll();
  TestClient admin(server.port());
  bool recovered = false;
  for (int i = 0; i < 800 && !recovered; ++i) {
    const StatusOr<std::string> health = admin.Call("!health");
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    recovered = health->find(" degrade 0 recall 1") != std::string::npos;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(recovered) << "ladder never recovered after the burst";

  // Full quality restored on the wire: an exact, untagged answer.
  const StatusOr<std::string> reply = client.Call(query);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->rfind("ok ", 0), 0) << *reply;
  EXPECT_EQ(reply->find("degraded"), std::string::npos) << *reply;
  const StatusOr<PredictReply> predict = ParsePredictReply(*reply);
  ASSERT_TRUE(predict.ok()) << *reply;
  EXPECT_EQ(predict->label, bundle.expected[0]);

  server.Stop();
}

TEST_F(ChaosTest, DegradeOffNeverTagsOrReducesQuality) {
  // The identical overload with the controller off (the default): every
  // served reply is the exact "ok LABEL fnv1a CHECKSUM" of PR-6/9 — no
  // tags, no transitions, bit-identical labels — and the queue sheds as
  // before. Opt-in means OFF changes nothing.
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  Server server(SampledRegistry(bundle), LadderOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      Failpoints::Instance().Set("server.worker.delay", "delay(8)").ok());

  TestClient client(server.port());
  const std::string query =
      FormatPredictPayload("", test.row(0), test.num_features());
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) ASSERT_TRUE(client.Send(query).ok());
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const StatusOr<std::string> reply = client.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->rfind("ok ", 0) == 0) {
      EXPECT_EQ(reply->find("degraded"), std::string::npos) << *reply;
      const StatusOr<PredictReply> predict = ParsePredictReply(*reply);
      ASSERT_TRUE(predict.ok()) << *reply;
      EXPECT_EQ(predict->label, bundle.expected[0]);
      EXPECT_EQ(predict->checksum, bundle.checksum);
      ++ok;
    } else {
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(server.Stats().requests_degraded, 0);
  EXPECT_EQ(server.Stats().degrade_transitions, 0);

  const StatusOr<std::string> health = TestClient(server.port()).Call("!health");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find(" degrade off"), std::string::npos) << *health;

  server.Stop();
}

// --- worker watchdog --------------------------------------------------

TEST_F(ChaosTest, WatchdogReplacesStalledWorkerAndHealthRecovers) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(
      registry->Publish("default", servetest::LoadBundle(bundle)).ok());
  ServerOptions opts;
  opts.num_workers = 1;
  opts.worker_stall_ms = 50.0;
  Server server(registry, opts);
  ASSERT_TRUE(server.Start().ok());

  // One request stalls the ONLY worker inside the predict path for
  // 400 ms — eight times the watchdog deadline.
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("engine.predict.stall", "delay(400):once")
                  .ok());
  TestClient victim(server.port());
  ASSERT_TRUE(
      victim.Send(FormatPredictPayload("", test.row(0), test.num_features()))
          .ok());

  // The watchdog must flag the stuck worker and spawn a replacement —
  // which is exactly what keeps this "!health" probe answerable at all:
  // admin frames run through the same worker queue.
  TestClient admin(server.port());
  bool saw_unready = false;
  for (int i = 0; i < 400 && !saw_unready; ++i) {
    const StatusOr<std::string> health = admin.Call("!health");
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    saw_unready = health->rfind("ok health unready", 0) == 0 &&
                  health->find("workers-stalled") != std::string::npos;
    if (!saw_unready) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_unready) << "watchdog never flagged the stuck worker";

  // The stalled request is late, not lost: its response still arrives,
  // correct, once the failpoint delay elapses.
  const StatusOr<std::string> reply = victim.Recv();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const StatusOr<PredictReply> predict = ParsePredictReply(*reply);
  ASSERT_TRUE(predict.ok()) << *reply;
  EXPECT_EQ(predict->label, bundle.expected[0]);

  // With the stuck worker's request completed, the stalled count clears
  // and the probe flips back to ready (the replacement keeps serving).
  bool recovered = false;
  for (int i = 0; i < 400 && !recovered; ++i) {
    const StatusOr<std::string> health = admin.Call("!health");
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    recovered = health->rfind("ok health ready", 0) == 0;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(recovered) << "health never recovered after the stall";

  EXPECT_EQ(server.Stats().worker_stalls, 1);
  const StatusOr<std::string> stat = admin.Call("!stat");
  ASSERT_TRUE(stat.ok());
  EXPECT_NE(stat->find(" worker_stalls 1"), std::string::npos) << *stat;

  server.Stop();
}

}  // namespace
}  // namespace gbx
