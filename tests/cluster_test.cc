#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/dpc.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "stats/ranking.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, std::uint64_t seed, double spread = 10.0,
              double std_dev = 0.6) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 2;
  cfg.center_spread = spread;
  cfg.cluster_std = std_dev;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(UnsupervisedGbgTest, BallsPartitionPoints) {
  const Dataset ds = Blobs(300, 3, 1);
  const UnsupervisedGbgResult result = GenerateUnsupervisedGbg(ds.x());
  std::set<int> covered;
  for (std::size_t b = 0; b < result.balls.size(); ++b) {
    for (int idx : result.balls[b].members) {
      EXPECT_TRUE(covered.insert(idx).second);
      EXPECT_EQ(result.ball_of_point[idx], static_cast<int>(b));
    }
  }
  EXPECT_EQ(static_cast<int>(covered.size()), ds.size());
}

TEST(UnsupervisedGbgTest, RespectsSizeCap) {
  const Dataset ds = Blobs(400, 2, 2);
  UnsupervisedGbgConfig cfg;
  cfg.max_ball_size = 25;
  const UnsupervisedGbgResult result =
      GenerateUnsupervisedGbg(ds.x(), cfg);
  for (const auto& ball : result.balls) {
    EXPECT_LE(ball.size(), 25);
    EXPECT_GE(ball.size(), 1);
  }
}

TEST(UnsupervisedGbgTest, CentroidAndRadiusAreConsistent) {
  const Dataset ds = Blobs(200, 2, 3);
  const UnsupervisedGbgResult result = GenerateUnsupervisedGbg(ds.x());
  for (const auto& ball : result.balls) {
    std::vector<double> mean(2, 0.0);
    for (int idx : ball.members) {
      mean[0] += ds.feature(idx, 0);
      mean[1] += ds.feature(idx, 1);
    }
    mean[0] /= ball.size();
    mean[1] /= ball.size();
    EXPECT_NEAR(ball.center[0], mean[0], 1e-9);
    EXPECT_NEAR(ball.center[1], mean[1], 1e-9);
    EXPECT_GE(ball.radius, 0.0);
  }
}

TEST(DpcTest, RecoversWellSeparatedBlobs) {
  const Dataset ds = Blobs(240, 3, 4);
  DpcConfig cfg;
  cfg.num_clusters = 3;
  const DpcResult result = RunDpc(ds.x(), cfg);
  EXPECT_EQ(result.peaks.size(), 3u);
  const double ari = AdjustedRandIndex(ds.y(), result.assignments);
  EXPECT_GT(ari, 0.9);
}

TEST(DpcTest, AssignmentsAreCompleteAndInRange) {
  const Dataset ds = Blobs(150, 2, 5);
  DpcConfig cfg;
  cfg.num_clusters = 4;
  const DpcResult result = RunDpc(ds.x(), cfg);
  for (int c : result.assignments) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(DpcTest, PeaksHaveTopGamma) {
  const Dataset ds = Blobs(120, 2, 6);
  DpcConfig cfg;
  cfg.num_clusters = 2;
  const DpcResult result = RunDpc(ds.x(), cfg);
  double min_peak_gamma = 1e300;
  for (int peak : result.peaks) {
    min_peak_gamma = std::min(min_peak_gamma,
                              result.density[peak] * result.delta[peak]);
  }
  int above = 0;
  for (std::size_t i = 0; i < result.density.size(); ++i) {
    if (result.density[i] * result.delta[i] > min_peak_gamma + 1e-12) {
      ++above;
    }
  }
  EXPECT_LT(above, 2);  // at most the other peak
}

TEST(GbDpcTest, MatchesGroundTruthOnBlobs) {
  const Dataset ds = Blobs(600, 3, 7);
  DpcConfig cfg;
  cfg.num_clusters = 3;
  const GbDpcResult result = RunGbDpc(ds.x(), cfg);
  EXPECT_GT(AdjustedRandIndex(ds.y(), result.assignments), 0.9);
  // The granulation actually compressed the problem.
  EXPECT_LT(static_cast<int>(result.granulation.balls.size()),
            ds.size() / 4);
}

TEST(GbDpcTest, AgreesWithPlainDpcOnEasyData) {
  const Dataset ds = Blobs(300, 2, 8);
  DpcConfig cfg;
  cfg.num_clusters = 2;
  const DpcResult plain = RunDpc(ds.x(), cfg);
  const GbDpcResult gb = RunGbDpc(ds.x(), cfg);
  // Same partition up to label permutation.
  EXPECT_GT(AdjustedRandIndex(plain.assignments, gb.assignments), 0.9);
}

TEST(AdjustedRandIndexTest, KnownValues) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1}, {0, 0, 1, 1}), 1.0);
  EXPECT_LT(AdjustedRandIndex({0, 0, 1, 1}, {0, 1, 0, 1}), 0.01);
  // Everything in one cluster vs ground truth: ARI 0 by convention-ish
  // (max_index == expected handled as 1 only when both trivial).
  EXPECT_LE(AdjustedRandIndex({0, 0, 1, 1}, {0, 0, 0, 0}), 0.0 + 1e-12);
}

TEST(AdjustedRandIndexTest, BothTrivialPartitionsAgree) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 0}, {0, 0, 0}), 1.0);
}

}  // namespace
}  // namespace gbx
