#include "data/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(CsvTest, ParseBasic) {
  const std::string text = "f0,f1,label\n1.5,2.5,0\n3.0,4.0,1\n";
  const StatusOr<Dataset> ds = ParseCsv(text);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 2);
  EXPECT_EQ(ds->num_features(), 2);
  EXPECT_DOUBLE_EQ(ds->feature(0, 1), 2.5);
  EXPECT_EQ(ds->label(1), 1);
}

TEST(CsvTest, ParseWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  const StatusOr<Dataset> ds = ParseCsv("1,2,0\n3,4,1\n", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2);
}

TEST(CsvTest, ParseLabelColumnNotLast) {
  CsvOptions options;
  options.has_header = false;
  options.label_column = 0;
  const StatusOr<Dataset> ds = ParseCsv("1,2.5,3.5\n0,4.5,5.5\n", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->label(0), 1);
  EXPECT_DOUBLE_EQ(ds->feature(0, 0), 2.5);
}

TEST(CsvTest, ParseSkipsBlankLinesAndCrLf) {
  const StatusOr<Dataset> ds = ParseCsv("f0,label\r\n1,0\r\n\r\n2,1\r\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2);
}

TEST(CsvTest, RejectsInconsistentFieldCount) {
  const StatusOr<Dataset> ds = ParseCsv("f0,f1,label\n1,2,0\n1,2\n");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumeric) {
  const StatusOr<Dataset> ds = ParseCsv("f0,label\nabc,0\n");
  ASSERT_FALSE(ds.ok());
}

TEST(CsvTest, RejectsNegativeLabel) {
  const StatusOr<Dataset> ds = ParseCsv("f0,label\n1,-2\n");
  ASSERT_FALSE(ds.ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("f0,label\n").ok());
}

TEST(CsvTest, LoadMissingFileIsNotFound) {
  const StatusOr<Dataset> ds = LoadCsv("/nonexistent/path/x.csv");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, SaveLoadRoundTrip) {
  const Dataset original(
      Matrix::FromRows({{0.125, -3.75}, {1e-9, 42.0}, {7.0, 8.0}}),
      {0, 2, 1});
  const std::string path = ::testing::TempDir() + "/gbx_csv_roundtrip.csv";
  ASSERT_TRUE(SaveCsv(original, path).ok());
  const StatusOr<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->num_features(), original.num_features());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->label(i), original.label(i));
    for (int j = 0; j < original.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(loaded->feature(i, j), original.feature(i, j));
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gbx
