#include "data/dataset.h"

#include <gtest/gtest.h>

namespace gbx {
namespace {

Dataset TinyDataset() {
  return Dataset(Matrix::FromRows({{0, 0}, {1, 0}, {0, 1}, {5, 5}, {6, 5}}),
                 {0, 0, 0, 1, 1});
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = TinyDataset();
  EXPECT_EQ(ds.size(), 5);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.label(3), 1);
  EXPECT_DOUBLE_EQ(ds.feature(4, 0), 6);
  EXPECT_DOUBLE_EQ(ds.row(1)[0], 1);
}

TEST(DatasetTest, NumClassesOverride) {
  const Dataset ds(Matrix::FromRows({{0.0}}), {0}, 4);
  EXPECT_EQ(ds.num_classes(), 4);
}

TEST(DatasetTest, SubsetPreservesClassesAndOrder) {
  const Dataset ds = TinyDataset();
  const Dataset sub = ds.Subset({4, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.num_classes(), 2);  // even though only visiting both
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_DOUBLE_EQ(sub.feature(1, 0), 0);
}

TEST(DatasetTest, SubsetSingleClassKeepsArity) {
  const Dataset ds = TinyDataset();
  const Dataset sub = ds.Subset({0, 1});
  EXPECT_EQ(sub.num_classes(), 2);
  EXPECT_EQ(sub.ClassCounts()[1], 0);
}

TEST(DatasetTest, ClassCounts) {
  const std::vector<int> counts = TinyDataset().ClassCounts();
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
}

TEST(DatasetTest, ImbalanceRatio) {
  EXPECT_DOUBLE_EQ(TinyDataset().ImbalanceRatio(), 1.5);
}

TEST(DatasetTest, ImbalanceRatioSingleClass) {
  const Dataset ds(Matrix::FromRows({{0.0}, {1.0}}), {0, 0});
  EXPECT_DOUBLE_EQ(ds.ImbalanceRatio(), 1.0);
}

TEST(DatasetTest, MajorityMinority) {
  const Dataset ds = TinyDataset();
  EXPECT_EQ(ds.MajorityClass(), 0);
  EXPECT_EQ(ds.MinorityClass(), 1);
}

TEST(DatasetTest, IndicesOfClass) {
  const std::vector<int> idx = TinyDataset().IndicesOfClass(1);
  EXPECT_EQ(idx, (std::vector<int>{3, 4}));
}

TEST(DatasetTest, AppendSample) {
  Dataset ds = TinyDataset();
  const double x[] = {9.0, 9.0};
  ds.AppendSample(x, 2, 2);
  EXPECT_EQ(ds.size(), 6);
  EXPECT_EQ(ds.num_classes(), 3);
  EXPECT_EQ(ds.label(5), 2);
}

TEST(DatasetTest, AppendDataset) {
  Dataset a = TinyDataset();
  const Dataset b = TinyDataset();
  a.Append(b);
  EXPECT_EQ(a.size(), 10);
  EXPECT_EQ(a.label(9), 1);
}

TEST(DatasetTest, SetLabel) {
  Dataset ds = TinyDataset();
  ds.set_label(0, 1);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_EQ(ds.ClassCounts()[1], 3);
}

TEST(DatasetDeathTest, MismatchedLabelCountAborts) {
  EXPECT_DEATH(Dataset(Matrix::FromRows({{1.0}}), {0, 1}), "GBX_CHECK");
}

TEST(DatasetDeathTest, NegativeLabelAborts) {
  EXPECT_DEATH(Dataset(Matrix::FromRows({{1.0}}), {-1}), "GBX_CHECK");
}

}  // namespace
}  // namespace gbx
