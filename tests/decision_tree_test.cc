#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

namespace gbx {
namespace {

TEST(DecisionTreeTest, MemorizesConsistentData) {
  BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 3;
  cfg.num_features = 3;
  Pcg32 gen(1);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  DecisionTreeClassifier dt;
  Pcg32 rng(2);
  dt.Fit(ds, &rng);
  EXPECT_DOUBLE_EQ(Accuracy(ds.y(), dt.PredictBatch(ds.x())), 1.0);
}

TEST(DecisionTreeTest, LearnsAxisAlignedRule) {
  // y = 1 iff x0 > 0.5; a single split suffices.
  Matrix x(40, 2);
  std::vector<int> y(40);
  Pcg32 gen(3);
  for (int i = 0; i < 40; ++i) {
    x.At(i, 0) = gen.NextDouble();
    x.At(i, 1) = gen.NextDouble();
    y[i] = x.At(i, 0) > 0.5 ? 1 : 0;
  }
  const Dataset ds(std::move(x), std::move(y));
  DecisionTreeClassifier dt;
  Pcg32 rng(4);
  dt.Fit(ds, &rng);
  const double a[] = {0.95, 0.1};
  const double b[] = {0.05, 0.9};
  EXPECT_EQ(dt.Predict(a), 1);
  EXPECT_EQ(dt.Predict(b), 0);
}

TEST(DecisionTreeTest, MaxDepthLimitsDepth) {
  BlobsConfig cfg;
  cfg.num_samples = 300;
  cfg.num_classes = 2;
  cfg.center_spread = 1.0;  // overlapping, forces deep trees otherwise
  cfg.cluster_std = 1.5;
  Pcg32 gen(5);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  DecisionTreeConfig config;
  config.max_depth = 3;
  DecisionTreeClassifier dt(config);
  Pcg32 rng(6);
  dt.Fit(ds, &rng);
  EXPECT_LE(dt.depth(), 3);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  BlobsConfig cfg;
  cfg.num_samples = 100;
  cfg.num_classes = 2;
  Pcg32 gen(7);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  DecisionTreeConfig config;
  config.min_samples_leaf = 20;
  DecisionTreeClassifier dt(config);
  Pcg32 rng(8);
  dt.Fit(ds, &rng);
  // With 100 samples and >= 20 per leaf, at most 5 leaves -> few nodes.
  EXPECT_LE(dt.node_count(), 2 * 5 - 1);
}

TEST(DecisionTreeTest, PureNodeIsLeaf) {
  const Dataset ds(Matrix::FromRows({{0.0}, {1.0}, {2.0}}), {1, 1, 1});
  DecisionTreeClassifier dt;
  Pcg32 rng(9);
  dt.Fit(ds, &rng);
  EXPECT_EQ(dt.node_count(), 1);
  const double q[] = {5.0};
  EXPECT_EQ(dt.Predict(q), 1);
}

TEST(DecisionTreeTest, ConstantFeaturesYieldMajorityLeaf) {
  Matrix x(10, 2, 3.0);
  std::vector<int> y = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1};
  const Dataset ds(std::move(x), std::move(y));
  DecisionTreeClassifier dt;
  Pcg32 rng(10);
  dt.Fit(ds, &rng);
  EXPECT_EQ(dt.node_count(), 1);
  const double q[] = {3.0, 3.0};
  EXPECT_EQ(dt.Predict(q), 0);
}

TEST(DecisionTreeTest, FitIndicesWithRepeats) {
  BlobsConfig cfg;
  cfg.num_samples = 50;
  cfg.num_classes = 2;
  Pcg32 gen(11);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  std::vector<int> bag;
  for (int i = 0; i < 50; ++i) bag.push_back(i % 25);  // repeated rows
  DecisionTreeClassifier dt;
  Pcg32 rng(12);
  dt.FitIndices(ds, bag, &rng);
  // Tree fits only the first 25 rows; must memorize them.
  int correct = 0;
  for (int i = 0; i < 25; ++i) {
    if (dt.Predict(ds.row(i)) == ds.label(i)) ++correct;
  }
  EXPECT_EQ(correct, 25);
}

TEST(DecisionTreeTest, GeneralizesOnBlobs) {
  BlobsConfig cfg;
  cfg.num_samples = 500;
  cfg.num_classes = 2;
  cfg.num_features = 5;
  cfg.center_spread = 6.0;
  Pcg32 gen(13);
  const Dataset all = MakeGaussianBlobs(cfg, &gen);
  Pcg32 split_rng(14);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  DecisionTreeClassifier dt;
  Pcg32 rng(15);
  dt.Fit(split.train, &rng);
  EXPECT_GT(Accuracy(split.test.y(), dt.PredictBatch(split.test.x())), 0.9);
}

TEST(DecisionTreeTest, RandomFeatureSubsetStillLearns) {
  BlobsConfig cfg;
  cfg.num_samples = 300;
  cfg.num_classes = 2;
  cfg.num_features = 8;
  cfg.center_spread = 6.0;
  Pcg32 gen(16);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  DecisionTreeConfig config;
  config.max_features = 2;
  DecisionTreeClassifier dt(config);
  Pcg32 rng(17);
  dt.Fit(ds, &rng);
  EXPECT_GT(Accuracy(ds.y(), dt.PredictBatch(ds.x())), 0.95);
}

TEST(DecisionTreeTest, Deterministic) {
  BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 2;
  Pcg32 gen(18);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  DecisionTreeClassifier a;
  DecisionTreeClassifier b;
  Pcg32 rng_a(19);
  Pcg32 rng_b(19);
  a.Fit(ds, &rng_a);
  b.Fit(ds, &rng_b);
  EXPECT_EQ(a.PredictBatch(ds.x()), b.PredictBatch(ds.x()));
  EXPECT_EQ(a.node_count(), b.node_count());
}

}  // namespace
}  // namespace gbx
