// The failpoint registry contract (common/failpoint.h): spec grammar,
// firing modifiers, hit accounting, and the macro fast path. The
// registry itself compiles in every build, so this suite always runs;
// only the macro-behavior tests depend on whether sites are compiled in
// (Failpoints::kCompiledIn).
#include "common/failpoint.h"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace gbx {
namespace {

using Action = FailpointHit::Action;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().ClearAll(); }
  void TearDown() override { Failpoints::Instance().ClearAll(); }
};

TEST_F(FailpointTest, SpecGrammarAcceptsEveryAction) {
  Failpoints& fp = Failpoints::Instance();
  EXPECT_TRUE(fp.Set("a", "error").ok());
  EXPECT_TRUE(fp.Set("b", "delay(25)").ok());
  EXPECT_TRUE(fp.Set("c", "partial_write(128)").ok());
  EXPECT_TRUE(fp.Set("d", "crash").ok());
  EXPECT_TRUE(fp.Set("e", "error:once").ok());
  EXPECT_TRUE(fp.Set("f", "error:every(3)").ok());
  EXPECT_EQ(fp.List().size(), 6u);
  EXPECT_TRUE(fp.armed());
}

TEST_F(FailpointTest, SpecGrammarRejectsMalformedInput) {
  Failpoints& fp = Failpoints::Instance();
  for (const char* bad :
       {"", "bogus", "delay", "delay()", "delay(x)", "error(3)",
        "partial_write", "crash(1)", "error:twice", "error:every(0)",
        "error:every()", "off(1)"}) {
    EXPECT_EQ(fp.Set("p", bad).code(), StatusCode::kInvalidArgument)
        << "spec '" << bad << "' accepted";
  }
  EXPECT_EQ(fp.Set("", "error").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Set("has space", "error").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(fp.armed());
}

TEST_F(FailpointTest, OffAndClearDisarm) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "error").ok());
  EXPECT_TRUE(fp.armed());
  EXPECT_TRUE(fp.Set("p", "off").ok());
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(fp.Set("p", "off").ok());  // idempotent

  ASSERT_TRUE(fp.Set("p", "error").ok());
  EXPECT_TRUE(fp.Clear("p").ok());
  EXPECT_EQ(fp.Clear("p").code(), StatusCode::kNotFound);
  EXPECT_FALSE(fp.armed());
}

TEST_F(FailpointTest, ConfigureAppliesListsAndStopsAtFirstError) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Configure("a=error, b=delay(5);c=error:every(2)").ok());
  EXPECT_EQ(fp.List().size(), 3u);

  fp.ClearAll();
  const Status bad = fp.Configure("a=error,oops,b=error");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.List().size(), 1u) << "entries before the error must stick";
  EXPECT_EQ(fp.List()[0].name, "a");
}

TEST_F(FailpointTest, EvalFiresAndCounts) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "error").ok());
  const std::int64_t before = fp.HitCount("p");
  for (int i = 0; i < 3; ++i) {
    const FailpointHit hit = fp.Eval("p");
    EXPECT_EQ(hit.action, Action::kError);
    EXPECT_TRUE(hit.fired());
    EXPECT_TRUE(hit.error());
  }
  EXPECT_EQ(fp.HitCount("p"), before + 3);
  EXPECT_FALSE(fp.Eval("unarmed").fired());
}

TEST_F(FailpointTest, OnceFiresExactlyOnceThenDisarms) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "error:once").ok());
  EXPECT_TRUE(fp.Eval("p").fired());
  EXPECT_FALSE(fp.Eval("p").fired());
  EXPECT_FALSE(fp.armed());
  // Lifetime hit counts survive the disarm.
  EXPECT_GE(fp.HitCount("p"), 1);
}

TEST_F(FailpointTest, EveryKFiresOnEveryKthEvaluation) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "error:every(3)").ok());
  int fired = 0;
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) {
    const bool hit = fp.Eval("p").fired();
    pattern.push_back(hit);
    fired += hit;
  }
  EXPECT_EQ(fired, 3);
  // Fires on the 3rd, 6th, 9th evaluation.
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
}

TEST_F(FailpointTest, DelayActionSleepsInline) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "delay(30)").ok());
  Stopwatch watch;
  const FailpointHit hit = fp.Eval("p");
  EXPECT_EQ(hit.action, Action::kDelay);
  EXPECT_EQ(hit.arg, 30);
  EXPECT_GE(watch.ElapsedMillis(), 25.0);
}

TEST_F(FailpointTest, PartialWriteCarriesByteBudget) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "partial_write(64)").ok());
  const FailpointHit hit = fp.Eval("p");
  EXPECT_TRUE(hit.partial_write());
  EXPECT_EQ(hit.arg, 64);
}

TEST_F(FailpointTest, ListReportsSpecAndCounters) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("p", "error:every(2)").ok());
  fp.Eval("p");
  fp.Eval("p");
  const auto infos = fp.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "p");
  EXPECT_EQ(infos[0].spec, "error:every(2)");
  EXPECT_EQ(infos[0].evals, 2);
  EXPECT_EQ(infos[0].hits, 1);
}

TEST_F(FailpointTest, FailpointErrorIsTyped) {
  const Status s = FailpointError("model_io.save.write");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("model_io.save.write"), std::string::npos);
}

TEST_F(FailpointTest, MacroHonorsCompileGate) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("macro.site", "error").ok());
  const FailpointHit hit = GBX_FAILPOINT_EVAL("macro.site");
  if (Failpoints::kCompiledIn) {
    EXPECT_TRUE(hit.error());
    EXPECT_EQ(fp.HitCount("macro.site"), 1);
  } else {
    // Compiled out: the macro is a constant no-op and the registry
    // never sees an evaluation.
    EXPECT_FALSE(hit.fired());
    EXPECT_EQ(fp.HitCount("macro.site"), 0);
  }
  GBX_FAILPOINT("macro.site");  // must compile to a statement either way
}

}  // namespace
}  // namespace gbx
