#include "core/gb_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/rd_gbg.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

GranularBallSet MakeBalls(std::uint64_t seed = 1) {
  BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 3;
  cfg.num_features = 2;
  cfg.center_spread = 5.0;
  cfg.cluster_std = 0.8;
  Pcg32 rng(seed);
  const Dataset ds = MakeGaussianBlobs(cfg, &rng);
  return GenerateRdGbg(ds, RdGbgConfig{}).balls;
}

void ExpectEqualBallSets(const GranularBallSet& a, const GranularBallSet& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ball(i).members, b.ball(i).members);
    EXPECT_EQ(a.ball(i).label, b.ball(i).label);
    EXPECT_EQ(a.ball(i).center_index, b.ball(i).center_index);
    EXPECT_DOUBLE_EQ(a.ball(i).radius, b.ball(i).radius);
    for (std::size_t j = 0; j < a.ball(i).center.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.ball(i).center[j], b.ball(i).center[j]);
    }
  }
  ASSERT_EQ(a.scaled_features().rows(), b.scaled_features().rows());
  for (int i = 0; i < a.scaled_features().rows(); ++i) {
    for (int j = 0; j < a.scaled_features().cols(); ++j) {
      EXPECT_DOUBLE_EQ(a.scaled_features().At(i, j),
                       b.scaled_features().At(i, j));
    }
  }
}

TEST(GbIoTest, StringRoundTripIsExact) {
  const GranularBallSet balls = MakeBalls();
  const std::string text = GranularBallsToString(balls);
  const StatusOr<GranularBallSet> loaded = GranularBallsFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualBallSets(balls, *loaded);
}

TEST(GbIoTest, FileRoundTrip) {
  const GranularBallSet balls = MakeBalls(2);
  const std::string path = ::testing::TempDir() + "/gbx_balls.gb";
  ASSERT_TRUE(SaveGranularBalls(balls, path).ok());
  const StatusOr<GranularBallSet> loaded = LoadGranularBalls(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEqualBallSets(balls, *loaded);
  std::remove(path.c_str());
}

TEST(GbIoTest, LoadedSetStillSatisfiesInvariants) {
  const GranularBallSet balls = MakeBalls(3);
  const StatusOr<GranularBallSet> loaded =
      GranularBallsFromString(GranularBallsToString(balls));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->CheckContainment());
  EXPECT_TRUE(loaded->CheckNonOverlap());
  EXPECT_TRUE(
      loaded->CheckDisjointMembership(loaded->scaled_features().rows()));
}

TEST(GbIoTest, RejectsBadMagic) {
  EXPECT_FALSE(GranularBallsFromString("not-a-ball-file\n").ok());
  EXPECT_FALSE(GranularBallsFromString("").ok());
}

TEST(GbIoTest, RejectsTruncatedInput) {
  const std::string text = GranularBallsToString(MakeBalls(4));
  // Chop the feature section off.
  const std::string truncated = text.substr(0, text.size() / 2);
  EXPECT_FALSE(GranularBallsFromString(truncated).ok());
}

TEST(GbIoTest, RejectsOutOfRangeMembers) {
  const std::string text =
      "gbx-granular-balls v1\n"
      "dims 1 classes 2 balls 1 samples 2\n"
      "ball 0 0.5 0 0.5 members 1 7\n"  // member 7 >= samples 2
      "features\n0.0\n1.0\n";
  const StatusOr<GranularBallSet> loaded = GranularBallsFromString(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

TEST(GbIoTest, RejectsNegativeRadius) {
  const std::string text =
      "gbx-granular-balls v1\n"
      "dims 1 classes 2 balls 1 samples 2\n"
      "ball 0 -0.25 0 0.5 members 1 0\n"
      "features\n0.0\n1.0\n";
  const StatusOr<GranularBallSet> loaded = GranularBallsFromString(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("radius"), std::string::npos);
}

TEST(GbIoTest, RejectsNonFiniteRadiusAndCenter) {
  EXPECT_FALSE(GranularBallsFromString(
                   "gbx-granular-balls v1\n"
                   "dims 1 classes 2 balls 1 samples 2\n"
                   "ball 0 nan 0 0.5 members 1 0\n"
                   "features\n0.0\n1.0\n")
                   .ok());
  EXPECT_FALSE(GranularBallsFromString(
                   "gbx-granular-balls v1\n"
                   "dims 1 classes 2 balls 1 samples 2\n"
                   "ball 0 0.5 0 nan members 1 0\n"
                   "features\n0.0\n1.0\n")
                   .ok());
  EXPECT_FALSE(GranularBallsFromString(
                   "gbx-granular-balls v1\n"
                   "dims 1 classes 2 balls 1 samples 2\n"
                   "ball 0 0.5 0 inf members 1 0\n"
                   "features\n0.0\n1.0\n")
                   .ok());
}

TEST(GbIoTest, RejectsCenterIndexOutOfRange) {
  const std::string text =
      "gbx-granular-balls v1\n"
      "dims 1 classes 2 balls 1 samples 2\n"
      "ball 0 0.5 9 0.5 members 1 0\n"  // center index 9 >= samples 2
      "features\n0.0\n1.0\n";
  EXPECT_EQ(GranularBallsFromString(text).status().code(),
            StatusCode::kOutOfRange);
}

TEST(GbIoTest, RejectsNonFiniteFeature) {
  const std::string text =
      "gbx-granular-balls v1\n"
      "dims 1 classes 2 balls 1 samples 2\n"
      "ball 0 0.0 0 0.5 members 1 0\n"
      "features\nnan\n1.0\n";
  EXPECT_FALSE(GranularBallsFromString(text).ok());
}

TEST(GbIoTest, RejectsHugeDeclaredSizesWithoutAllocating) {
  // A header promising more values than the input could hold must fail
  // before any allocation sized from it.
  EXPECT_FALSE(GranularBallsFromString(
                   "gbx-granular-balls v1\n"
                   "dims 1000000 classes 2 balls 1 samples 1000000000\n")
                   .ok());
  EXPECT_FALSE(GranularBallsFromString(
                   "gbx-granular-balls v1\n"
                   "dims 1 classes 2 balls 1 samples 2\n"
                   "ball 0 0.5 0 0.5 members 99999999999 0\n"
                   "features\n0.0\n1.0\n")
                   .ok());
}

TEST(GbIoTest, RejectsTrailingData) {
  const std::string text = GranularBallsToString(MakeBalls(5)) + "extra\n";
  const StatusOr<GranularBallSet> loaded = GranularBallsFromString(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST(GbIoTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadGranularBalls("/no/such/file.gb").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gbx
