#include "ml/gb_knn.h"

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "ml/knn.h"
#include "ml/metrics.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, std::uint64_t seed, double spread = 6.0,
              double std_dev = 0.8) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 3;
  cfg.center_spread = spread;
  cfg.cluster_std = std_dev;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(GbKnnTest, GeneralizesOnSeparableBlobs) {
  const Dataset all = Blobs(600, 3, 1);
  Pcg32 split_rng(2);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  GbKnnClassifier gbknn;
  Pcg32 rng(3);
  gbknn.Fit(split.train, &rng);
  EXPECT_GT(Accuracy(split.test.y(), gbknn.PredictBatch(split.test.x())),
            0.93);
}

TEST(GbKnnTest, ModelIsSmallerThanTrainingSet) {
  const Dataset ds = Blobs(800, 2, 4, /*spread=*/10.0, /*std_dev=*/0.5);
  GbKnnClassifier gbknn;
  Pcg32 rng(5);
  gbknn.Fit(ds, &rng);
  // Compact granulation: far fewer balls than samples on separable data.
  EXPECT_LT(gbknn.num_balls(), ds.size() / 3);
  EXPECT_GT(gbknn.num_balls(), 0);
}

TEST(GbKnnTest, MoreRobustThanOneNnUnderLabelNoise) {
  // 1-NN memorizes noise; GB-kNN's granulation removes much of it.
  const Dataset all = Blobs(900, 2, 6, /*spread=*/8.0, /*std_dev=*/0.7);
  Pcg32 split_rng(7);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  Dataset noisy_train = split.train;
  Pcg32 noise_rng(8);
  InjectClassNoise(&noisy_train, 0.25, &noise_rng);

  GbKnnClassifier gbknn;
  KnnClassifier one_nn(1);
  Pcg32 rng_a(9);
  Pcg32 rng_b(9);
  gbknn.Fit(noisy_train, &rng_a);
  one_nn.Fit(noisy_train, &rng_b);
  const double gb_acc =
      Accuracy(split.test.y(), gbknn.PredictBatch(split.test.x()));
  const double nn_acc =
      Accuracy(split.test.y(), one_nn.PredictBatch(split.test.x()));
  EXPECT_GT(gb_acc, nn_acc);
}

TEST(GbKnnTest, KBallVoting) {
  const Dataset ds = Blobs(300, 2, 10);
  GbKnnClassifier gbknn(RdGbgConfig{}, /*k=*/3);
  Pcg32 rng(11);
  gbknn.Fit(ds, &rng);
  for (int pred : gbknn.PredictBatch(ds.x())) {
    EXPECT_GE(pred, 0);
    EXPECT_LT(pred, 2);
  }
}

TEST(GbKnnTest, DeterministicGivenRngState) {
  const Dataset ds = Blobs(400, 3, 12);
  GbKnnClassifier a;
  GbKnnClassifier b;
  Pcg32 rng_a(13);
  Pcg32 rng_b(13);
  a.Fit(ds, &rng_a);
  b.Fit(ds, &rng_b);
  EXPECT_EQ(a.PredictBatch(ds.x()), b.PredictBatch(ds.x()));
  EXPECT_EQ(a.num_balls(), b.num_balls());
}

TEST(GbKnnTest, TrainAccuracyHighOnCleanData) {
  const Dataset ds = Blobs(500, 3, 14, /*spread=*/8.0, /*std_dev=*/0.6);
  GbKnnClassifier gbknn;
  Pcg32 rng(15);
  gbknn.Fit(ds, &rng);
  EXPECT_GT(Accuracy(ds.y(), gbknn.PredictBatch(ds.x())), 0.97);
}

}  // namespace
}  // namespace gbx
