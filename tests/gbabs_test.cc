#include "core/gbabs.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, std::uint64_t seed, double spread = 5.0,
              double std_dev = 0.8) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 2;
  cfg.center_spread = spread;
  cfg.cluster_std = std_dev;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

Dataset MakeGaussianBlobsForScanTest() {
  BlobsConfig cfg;
  cfg.num_samples = 400;
  cfg.num_classes = 3;
  cfg.num_features = 12;
  cfg.center_spread = 6.0;
  cfg.cluster_std = 0.9;
  Pcg32 rng(77);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(GbabsTest, SampledIsSubsetWithoutDuplicates) {
  const Dataset ds = Blobs(400, 3, 1);
  const GbabsResult result = RunGbabs(ds, GbabsConfig{});
  EXPECT_FALSE(result.sampled_indices.empty());
  std::set<int> unique(result.sampled_indices.begin(),
                       result.sampled_indices.end());
  EXPECT_EQ(unique.size(), result.sampled_indices.size());
  for (int idx : result.sampled_indices) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, ds.size());
  }
  EXPECT_EQ(result.sampled.size(),
            static_cast<int>(result.sampled_indices.size()));
  EXPECT_TRUE(std::is_sorted(result.sampled_indices.begin(),
                             result.sampled_indices.end()));
}

TEST(GbabsTest, SampledFeaturesAreOriginalUnscaled) {
  const Dataset ds = Blobs(200, 2, 2);
  const GbabsResult result = RunGbabs(ds, GbabsConfig{});
  for (std::size_t i = 0; i < result.sampled_indices.size(); ++i) {
    const int src = result.sampled_indices[i];
    for (int j = 0; j < ds.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(result.sampled.feature(static_cast<int>(i), j),
                       ds.feature(src, j));
    }
    EXPECT_EQ(result.sampled.label(static_cast<int>(i)), ds.label(src));
  }
}

TEST(GbabsTest, SamplingRatioBelowOneOnSeparableData) {
  const Dataset ds = Blobs(600, 2, 3, /*spread=*/10.0, /*std_dev=*/0.5);
  const GbabsResult result = RunGbabs(ds, GbabsConfig{});
  EXPECT_GT(result.sampling_ratio, 0.0);
  EXPECT_LT(result.sampling_ratio, 0.7);
}

TEST(GbabsTest, BorderlineBallsAreFlaggedBallsOnly) {
  const Dataset ds = Blobs(300, 3, 4);
  const GbabsResult result = RunGbabs(ds, GbabsConfig{});
  EXPECT_FALSE(result.borderline_ball_ids.empty());
  for (int id : result.borderline_ball_ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, result.gbg.balls.size());
  }
  // Every sampled point belongs to some borderline ball.
  std::set<int> borderline_members;
  for (int id : result.borderline_ball_ids) {
    const GranularBall& ball = result.gbg.balls.ball(id);
    borderline_members.insert(ball.members.begin(), ball.members.end());
  }
  for (int idx : result.sampled_indices) {
    EXPECT_EQ(borderline_members.count(idx), 1u) << idx;
  }
}

TEST(GbabsTest, OneDimensionalBoundaryPicksFacingSamples) {
  // Two 1-D clusters: class 0 at {0, 0.1, ..., 0.5}, class 1 at
  // {2.0, ..., 2.5}. The boundary samples are 0.5 (max of the left ball)
  // and 2.0 (min of the right ball).
  Matrix x(12, 1);
  std::vector<int> y(12);
  for (int i = 0; i < 6; ++i) {
    x.At(i, 0) = 0.1 * i;
    y[i] = 0;
    x.At(6 + i, 0) = 2.0 + 0.1 * i;
    y[6 + i] = 1;
  }
  const Dataset ds(std::move(x), std::move(y));
  GbabsConfig cfg;
  cfg.gbg.density_tolerance = 3;
  const GbabsResult result = RunGbabs(ds, cfg);
  // The facing extremes (indices 5 and 6) must be sampled.
  EXPECT_TRUE(std::binary_search(result.sampled_indices.begin(),
                                 result.sampled_indices.end(), 5));
  EXPECT_TRUE(std::binary_search(result.sampled_indices.begin(),
                                 result.sampled_indices.end(), 6));
  // Deep-interior points (0 and 11) may only appear via singleton orphan
  // balls; on this clean geometry they should not be sampled.
  EXPECT_FALSE(std::binary_search(result.sampled_indices.begin(),
                                  result.sampled_indices.end(), 0));
  EXPECT_FALSE(std::binary_search(result.sampled_indices.begin(),
                                  result.sampled_indices.end(), 11));
}

TEST(GbabsTest, SingleClassFallsBackToCenters) {
  BlobsConfig cfg;
  cfg.num_samples = 80;
  cfg.num_classes = 1;
  Pcg32 rng(5);
  const Dataset ds = MakeGaussianBlobs(cfg, &rng);
  const GbabsResult result = RunGbabs(ds, GbabsConfig{});
  EXPECT_FALSE(result.sampled_indices.empty());
  EXPECT_TRUE(result.borderline_ball_ids.empty());
}

TEST(GbabsTest, Deterministic) {
  const Dataset ds = Blobs(250, 2, 6);
  GbabsConfig cfg;
  cfg.gbg.seed = 123;
  const GbabsResult a = RunGbabs(ds, cfg);
  const GbabsResult b = RunGbabs(ds, cfg);
  EXPECT_EQ(a.sampled_indices, b.sampled_indices);
  EXPECT_EQ(a.borderline_ball_ids, b.borderline_ball_ids);
}

class GbabsRhoTest : public ::testing::TestWithParam<int> {};

TEST_P(GbabsRhoTest, ValidAcrossDensityTolerances) {
  GbabsConfig cfg;
  cfg.gbg.density_tolerance = GetParam();
  const Dataset ds = Blobs(300, 3, 7);
  const GbabsResult result = RunGbabs(ds, cfg);
  EXPECT_GT(result.sampled.size(), 0);
  EXPECT_LE(result.sampled.size(), ds.size());
  EXPECT_TRUE(result.gbg.balls.CheckPurity(ds.y()));
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, GbabsRhoTest,
                         ::testing::Values(3, 5, 7, 9, 11, 13, 15, 17, 19));

TEST(GbabsScanDimsTest, ZeroMeansAllDimensions) {
  const Dataset ds = Blobs(200, 2, 20);
  const GbabsResult full = RunGbabs(ds, GbabsConfig{});
  const std::vector<int> dims =
      BorderlineScanDimensions(full.gbg.balls, 0);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 0);
  EXPECT_EQ(dims[1], 1);
}

TEST(GbabsScanDimsTest, PicksHighVarianceDimensions) {
  // Dimension 1 carries all the structure; dimension 0 is nearly constant.
  Pcg32 gen(21);
  Matrix x(200, 3);
  std::vector<int> y(200);
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 2;
    x.At(i, 0) = gen.NextGaussian() * 0.01;
    x.At(i, 1) = cls * 10.0 + gen.NextGaussian();
    x.At(i, 2) = gen.NextGaussian() * 0.01;
    y[i] = cls;
  }
  const Dataset ds(std::move(x), std::move(y));
  const RdGbgResult gbg = GenerateRdGbg(ds, RdGbgConfig{});
  const std::vector<int> dims = BorderlineScanDimensions(gbg.balls, 1);
  ASSERT_EQ(dims.size(), 1u);
  EXPECT_EQ(dims[0], 1);
}

TEST(GbabsScanDimsTest, SubsetScanSamplesSubsetOfFullScan) {
  const Dataset ds = MakeGaussianBlobsForScanTest();
  GbabsConfig full_cfg;
  GbabsConfig subset_cfg;
  subset_cfg.max_scan_dimensions = 3;
  subset_cfg.gbg = full_cfg.gbg;
  const GbabsResult full = RunGbabs(ds, full_cfg);
  const GbabsResult subset = RunGbabs(ds, subset_cfg);
  // Same granulation (same seed), fewer scan dimensions: the subset's
  // samples are contained in the full scan's samples.
  EXPECT_LE(subset.sampled_indices.size(), full.sampled_indices.size());
  for (int idx : subset.sampled_indices) {
    EXPECT_TRUE(std::binary_search(full.sampled_indices.begin(),
                                   full.sampled_indices.end(), idx));
  }
  EXPECT_FALSE(subset.sampled_indices.empty());
}

TEST(GbabsScanDimsTest, SubsetScanKeepsAccuracyOnHighDim) {
  const Dataset ds = MakeGaussianBlobsForScanTest();
  GbabsConfig subset_cfg;
  subset_cfg.max_scan_dimensions = 4;
  const GbabsResult subset = RunGbabs(ds, subset_cfg);
  Pcg32 rng(22);
  DecisionTreeClassifier dt;
  dt.Fit(subset.sampled, &rng);
  EXPECT_GT(Accuracy(ds.y(), dt.PredictBatch(ds.x())), 0.85);
}

TEST(GbabsTest, PreservesDecisionTreeAccuracyOnSeparableData) {
  // Lossless-compression sanity check (§V-C): training a DT on the GBABS
  // sample should roughly match training on the full data for clean,
  // separable blobs.
  const Dataset all = Blobs(900, 3, 8, /*spread=*/8.0, /*std_dev=*/0.8);
  Pcg32 split_rng(80);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.33, &split_rng);
  const Dataset& train = split.train;
  const Dataset& test = split.test;
  const GbabsResult sampled = RunGbabs(train, GbabsConfig{});

  Pcg32 rng(9);
  DecisionTreeClassifier full_dt;
  full_dt.Fit(train, &rng);
  DecisionTreeClassifier sampled_dt;
  sampled_dt.Fit(sampled.sampled, &rng);

  const double full_acc = Accuracy(test.y(), full_dt.PredictBatch(test.x()));
  const double sampled_acc =
      Accuracy(test.y(), sampled_dt.PredictBatch(test.x()));
  EXPECT_GT(sampled_acc, full_acc - 0.08);
}

}  // namespace
}  // namespace gbx
