#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/gbdt_common.h"
#include "ml/lgbm.h"
#include "ml/metrics.h"
#include "ml/xgb.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, int features, std::uint64_t seed,
              double spread = 6.0, double std_dev = 1.0) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = features;
  cfg.center_spread = spread;
  cfg.cluster_std = std_dev;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(HistogramBinnerTest, FewDistinctValuesGetOwnBins) {
  const Matrix x = Matrix::FromRows({{1.0}, {2.0}, {2.0}, {3.0}});
  HistogramBinner binner;
  binner.Fit(x, 64);
  EXPECT_EQ(binner.num_bins(0), 3);
  const std::vector<std::uint16_t> binned = binner.Transform(x);
  EXPECT_EQ(binned[0], 0);
  EXPECT_EQ(binned[1], 1);
  EXPECT_EQ(binned[2], 1);
  EXPECT_EQ(binned[3], 2);
}

TEST(HistogramBinnerTest, CapsBinCount) {
  Pcg32 rng(1);
  Matrix x(1000, 1);
  for (int i = 0; i < 1000; ++i) x.At(i, 0) = rng.NextGaussian();
  HistogramBinner binner;
  binner.Fit(x, 16);
  EXPECT_LE(binner.num_bins(0), 16);
  EXPECT_GE(binner.num_bins(0), 8);  // roughly equal-mass buckets
}

TEST(HistogramBinnerTest, MonotoneBinning) {
  Pcg32 rng(2);
  Matrix x(500, 1);
  for (int i = 0; i < 500; ++i) x.At(i, 0) = rng.NextGaussian();
  HistogramBinner binner;
  binner.Fit(x, 32);
  const std::vector<std::uint16_t> binned = binner.Transform(x);
  for (int i = 0; i < 500; ++i) {
    for (int j = 0; j < 500; ++j) {
      if (x.At(i, 0) < x.At(j, 0)) {
        ASSERT_LE(binned[i], binned[j]);
      }
    }
  }
}

TEST(RegressionTreeTest, PredictFollowsSplits) {
  RegressionTree tree;
  tree.nodes.resize(3);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 0.5;
  tree.nodes[0].left = 1;
  tree.nodes[0].right = 2;
  tree.nodes[1].value = -1.0;
  tree.nodes[2].value = 2.0;
  const double lo[] = {0.3};
  const double hi[] = {0.7};
  EXPECT_DOUBLE_EQ(tree.Predict(lo), -1.0);
  EXPECT_DOUBLE_EQ(tree.Predict(hi), 2.0);
  EXPECT_EQ(tree.num_leaves(), 2);
}

TEST(SoftmaxTest, NormalizesAndOrders) {
  double scores[3] = {1.0, 2.0, 0.5};
  Softmax(scores, 3);
  EXPECT_NEAR(scores[0] + scores[1] + scores[2], 1.0, 1e-12);
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_GT(scores[0], scores[2]);
}

TEST(SoftmaxTest, StableForLargeScores) {
  double scores[2] = {1000.0, 999.0};
  Softmax(scores, 2);
  EXPECT_NEAR(scores[0] + scores[1], 1.0, 1e-12);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(BuildHistTreeTest, FitsSimpleStep) {
  // Gradients encode y = sign step at x = 0: the tree should split there
  // and emit opposite-signed leaf values.
  Matrix x(100, 1);
  std::vector<double> grad(100);
  std::vector<double> hess(100, 1.0);
  for (int i = 0; i < 100; ++i) {
    x.At(i, 0) = i < 50 ? -1.0 - i * 0.01 : 1.0 + i * 0.01;
    grad[i] = i < 50 ? 1.0 : -1.0;
  }
  HistogramBinner binner;
  binner.Fit(x, 32);
  const std::vector<std::uint16_t> binned = binner.Transform(x);
  std::vector<int> rows(100);
  for (int i = 0; i < 100; ++i) rows[i] = i;
  GbdtTreeConfig cfg;
  cfg.max_depth = 2;
  cfg.learning_rate = 1.0;
  const RegressionTree tree =
      BuildHistTree(binner, binned, 1, grad, hess, rows, cfg);
  const double lo[] = {-2.0};
  const double hi[] = {2.0};
  EXPECT_LT(tree.Predict(lo), 0.0);
  EXPECT_GT(tree.Predict(hi), 0.0);
}

TEST(BuildHistTreeTest, LeafWiseRespectsLeafBudget) {
  Pcg32 rng(3);
  Matrix x(400, 3);
  std::vector<double> grad(400);
  std::vector<double> hess(400, 1.0);
  for (int i = 0; i < 400; ++i) {
    for (int j = 0; j < 3; ++j) x.At(i, j) = rng.NextGaussian();
    grad[i] = rng.NextGaussian();
  }
  HistogramBinner binner;
  binner.Fit(x, 32);
  const std::vector<std::uint16_t> binned = binner.Transform(x);
  std::vector<int> rows(400);
  for (int i = 0; i < 400; ++i) rows[i] = i;
  GbdtTreeConfig cfg;
  cfg.max_leaves = 7;
  cfg.min_child_samples = 5;
  const RegressionTree tree =
      BuildHistTree(binner, binned, 3, grad, hess, rows, cfg);
  EXPECT_LE(tree.num_leaves(), 7);
  EXPECT_GE(tree.num_leaves(), 2);
}

template <typename Clf>
double TrainTestAccuracy(Clf* clf, int classes, std::uint64_t seed) {
  const Dataset all = Blobs(600, classes, 5, seed);
  Pcg32 split_rng(seed + 1);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  Pcg32 rng(seed + 2);
  clf->Fit(split.train, &rng);
  return Accuracy(split.test.y(), clf->PredictBatch(split.test.x()));
}

TEST(XgBoostTest, BinaryBlobs) {
  XgBoostConfig cfg;
  cfg.num_rounds = 30;
  XgBoostClassifier xgb(cfg);
  EXPECT_GT(TrainTestAccuracy(&xgb, 2, 10), 0.95);
}

TEST(XgBoostTest, MultiClassBlobs) {
  XgBoostConfig cfg;
  cfg.num_rounds = 30;
  XgBoostClassifier xgb(cfg);
  EXPECT_GT(TrainTestAccuracy(&xgb, 4, 11), 0.9);
}

TEST(XgBoostTest, MarginsSumPerClass) {
  const Dataset ds = Blobs(200, 3, 4, 12);
  XgBoostConfig cfg;
  cfg.num_rounds = 5;
  XgBoostClassifier xgb(cfg);
  Pcg32 rng(13);
  xgb.Fit(ds, &rng);
  const std::vector<double> margin = xgb.PredictMargin(ds.row(0));
  EXPECT_EQ(margin.size(), 3u);
  const int pred = xgb.Predict(ds.row(0));
  for (double m : margin) EXPECT_GE(margin[pred], m);
}

TEST(XgBoostTest, ColumnSubsamplingStillLearns) {
  XgBoostConfig cfg;
  cfg.num_rounds = 40;
  cfg.colsample_bytree = 0.4;
  XgBoostClassifier xgb(cfg);
  EXPECT_GT(TrainTestAccuracy(&xgb, 2, 14), 0.9);
}

TEST(LightGbmTest, BinaryBlobs) {
  LightGbmConfig cfg;
  cfg.num_rounds = 30;
  LightGbmClassifier lgbm(cfg);
  EXPECT_GT(TrainTestAccuracy(&lgbm, 2, 15), 0.95);
}

TEST(LightGbmTest, MultiClassBlobs) {
  LightGbmConfig cfg;
  cfg.num_rounds = 30;
  LightGbmClassifier lgbm(cfg);
  EXPECT_GT(TrainTestAccuracy(&lgbm, 4, 16), 0.9);
}

TEST(GbdtDeterminismTest, SameSeedSamePredictions) {
  const Dataset ds = Blobs(250, 2, 4, 17);
  XgBoostConfig xcfg;
  xcfg.num_rounds = 10;
  XgBoostClassifier a(xcfg);
  XgBoostClassifier b(xcfg);
  Pcg32 rng_a(18);
  Pcg32 rng_b(18);
  a.Fit(ds, &rng_a);
  b.Fit(ds, &rng_b);
  EXPECT_EQ(a.PredictBatch(ds.x()), b.PredictBatch(ds.x()));

  LightGbmConfig lcfg;
  lcfg.num_rounds = 10;
  LightGbmClassifier c(lcfg);
  LightGbmClassifier d(lcfg);
  Pcg32 rng_c(19);
  Pcg32 rng_d(19);
  c.Fit(ds, &rng_c);
  d.Fit(ds, &rng_d);
  EXPECT_EQ(c.PredictBatch(ds.x()), d.PredictBatch(ds.x()));
}

}  // namespace
}  // namespace gbx
