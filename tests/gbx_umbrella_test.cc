// Includes ONLY the public umbrella header and instantiates one type per
// subsystem, so breakage anywhere in the include/gbx/gbx.h closure (a
// missing transitive include, an ODR clash, a renamed public type) fails
// fast in a single dedicated test instead of surfacing randomly elsewhere.
#include "gbx/gbx.h"

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(GbxUmbrellaTest, OneTypePerSubsystem) {
  // common
  Matrix matrix(2, 2, 0.0);
  EXPECT_EQ(matrix.rows(), 2);
  Pcg32 rng(7);
  (void)rng.NextU32();

  // data
  Dataset dataset;
  EXPECT_TRUE(dataset.empty());

  // index
  const Matrix points = Matrix::FromRows({{0.0, 0.0}, {1.0, 1.0}});
  KdTree kd(&points);
  BruteForceIndex brute(&points);
  EXPECT_EQ(kd.KNearest(points.Row(0), 1).size(),
            brute.KNearest(points.Row(0), 1).size());

  // core
  GranularBallSet balls;
  EXPECT_EQ(balls.size(), 0);
  RdGbgConfig rd_cfg;
  GbabsConfig gbabs_cfg;
  EXPECT_GT(rd_cfg.density_tolerance, 0);
  EXPECT_GT(gbabs_cfg.gbg.density_tolerance, 0);

  // sampling
  SrsSampler srs;
  EXPECT_FALSE(srs.name().empty());

  // ml
  KnnClassifier knn;
  EXPECT_FALSE(knn.name().empty());

  // stats
  WilcoxonResult wilcoxon{};
  (void)wilcoxon;

  // viz
  PcaResult pca;
  EXPECT_EQ(pca.components.rows(), 0);

  // cluster
  DpcConfig dpc_cfg;
  (void)dpc_cfg;

  // exp
  ExperimentConfig exp_cfg;
  (void)exp_cfg;
}

}  // namespace
}  // namespace gbx
