#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sampling/ggbs.h"
#include "sampling/igbs.h"

#include "data/synthetic.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, std::uint64_t seed,
              std::vector<double> weights = {}) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 2;
  cfg.center_spread = 5.0;
  cfg.cluster_std = 0.8;
  cfg.class_weights = std::move(weights);
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(GgbsTest, SampleIsSubset) {
  const Dataset ds = Blobs(400, 2, 1);
  GgbsSampler sampler;
  Pcg32 rng(2);
  const std::vector<int> idx = sampler.SampleIndices(ds, &rng);
  EXPECT_FALSE(idx.empty());
  EXPECT_LE(static_cast<int>(idx.size()), ds.size());
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), idx.size());
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, ds.size());
  }
}

TEST(GgbsTest, CompressesCleanSeparableData) {
  const Dataset ds = Blobs(600, 2, 3);
  GgbsSampler sampler;
  Pcg32 rng(4);
  const std::vector<int> idx = sampler.SampleIndices(ds, &rng);
  EXPECT_LT(static_cast<int>(idx.size()), ds.size());
}

TEST(GgbsTest, LargeBallContributesAtMostTwoPSamples) {
  const Dataset ds = Blobs(500, 2, 5);
  PurityGbgConfig cfg;
  cfg.seed = 6;
  const PurityGbgResult gbg = GeneratePurityGbg(ds, cfg);
  for (const GranularBall& ball : gbg.balls.balls()) {
    if (IsSmallBall(ball, ds.num_features())) continue;
    const std::vector<int> axis =
        LargeBallAxisSamples(ball, gbg.balls.scaled_features(), ds.y());
    EXPECT_LE(static_cast<int>(axis.size()), 2 * ds.num_features());
    EXPECT_FALSE(axis.empty());
    for (int idx : axis) {
      EXPECT_EQ(ds.label(idx), ball.label);  // homogeneous rule
      EXPECT_TRUE(std::binary_search(ball.members.begin(),
                                     ball.members.end(), idx));
    }
  }
}

TEST(GgbsTest, SmallBallsFullyIncluded) {
  const Dataset ds = Blobs(300, 3, 7);
  PurityGbgConfig cfg;
  const PurityGbgResult gbg = GeneratePurityGbg(ds, cfg);
  // Re-run GGBS with the same seeded config via the sampler's internals:
  // here we simply verify the rule directly on the granulation.
  GgbsSampler sampler(cfg);
  Pcg32 rng(8);
  const std::vector<int> sampled = sampler.SampleIndices(ds, &rng);
  (void)sampled;
  // The invariant we can check robustly: every index selected exists and
  // the output is non-empty (detailed per-ball assertions above).
  EXPECT_FALSE(sampled.empty());
}

TEST(IgbsTest, ReducesImbalance) {
  const Dataset ds = Blobs(600, 2, 9, {10, 1});
  IgbsSampler sampler;
  Pcg32 rng(10);
  const Dataset sampled = sampler.Sample(ds, &rng);
  EXPECT_GT(sampled.size(), 0);
  EXPECT_LE(sampled.ImbalanceRatio(), ds.ImbalanceRatio());
}

TEST(IgbsTest, KeepsAllMinoritySamplesOfLargeMinorityBalls) {
  const Dataset ds = Blobs(500, 2, 11, {5, 1});
  IgbsSampler sampler;
  Pcg32 rng(12);
  const std::vector<int> idx = sampler.SampleIndices(ds, &rng);
  std::set<int> sampled(idx.begin(), idx.end());
  // Every minority sample that is "safe" should tend to be kept; at
  // minimum the minority class must not be *less* represented than its
  // share of the original data.
  int minority_kept = 0;
  for (int i : idx) {
    if (ds.label(i) == ds.MinorityClass()) ++minority_kept;
  }
  const int minority_total =
      static_cast<int>(ds.IndicesOfClass(ds.MinorityClass()).size());
  EXPECT_GE(minority_kept, minority_total / 2);
}

TEST(IgbsTest, SampleIsSubsetWithoutDuplicates) {
  const Dataset ds = Blobs(400, 3, 13, {6, 2, 1});
  IgbsSampler sampler;
  Pcg32 rng(14);
  const std::vector<int> idx = sampler.SampleIndices(ds, &rng);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), idx.size());
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, ds.size());
  }
}

TEST(SamplerDeterminismTest, GgbsAndIgbsDeterministicGivenRng) {
  const Dataset ds = Blobs(300, 2, 15, {3, 1});
  GgbsSampler ggbs;
  IgbsSampler igbs;
  Pcg32 rng_a(16);
  Pcg32 rng_b(16);
  EXPECT_EQ(ggbs.SampleIndices(ds, &rng_a), ggbs.SampleIndices(ds, &rng_b));
  Pcg32 rng_c(17);
  Pcg32 rng_d(17);
  EXPECT_EQ(igbs.SampleIndices(ds, &rng_c), igbs.SampleIndices(ds, &rng_d));
}

}  // namespace
}  // namespace gbx
