#include "core/granular_ball.h"

#include <gtest/gtest.h>

namespace gbx {
namespace {

GranularBall MakeBall(std::vector<int> members, std::vector<double> center,
                      double radius, int label, int center_index = -1) {
  GranularBall ball;
  ball.members = std::move(members);
  ball.center = std::move(center);
  ball.radius = radius;
  ball.label = label;
  ball.center_index = center_index;
  return ball;
}

TEST(GranularBallTest, Contains) {
  const GranularBall ball = MakeBall({0}, {0.0, 0.0}, 1.0, 0);
  const double inside[] = {0.5, 0.5};
  const double surface[] = {1.0, 0.0};
  const double outside[] = {1.5, 0.0};
  EXPECT_TRUE(ball.Contains(inside, 2));
  EXPECT_TRUE(ball.Contains(surface, 2));
  EXPECT_FALSE(ball.Contains(outside, 2));
}

TEST(GranularBallSetTest, ContainmentCheck) {
  const Matrix x = Matrix::FromRows({{0, 0}, {0.5, 0}, {3, 3}});
  std::vector<GranularBall> balls;
  balls.push_back(MakeBall({0, 1}, {0, 0}, 0.6, 0, 0));
  balls.push_back(MakeBall({2}, {3, 3}, 0.0, 1, 2));
  GranularBallSet set(std::move(balls), x, 2);
  EXPECT_TRUE(set.CheckContainment());

  std::vector<GranularBall> bad;
  bad.push_back(MakeBall({0, 2}, {0, 0}, 0.6, 0, 0));  // member 2 outside
  GranularBallSet bad_set(std::move(bad), x, 2);
  EXPECT_FALSE(bad_set.CheckContainment());
}

TEST(GranularBallSetTest, PurityCheck) {
  const Matrix x = Matrix::FromRows({{0, 0}, {0.1, 0}, {0.2, 0}});
  std::vector<GranularBall> balls;
  balls.push_back(MakeBall({0, 1, 2}, {0.1, 0}, 0.3, 0));
  GranularBallSet set(std::move(balls), x, 2);
  EXPECT_TRUE(set.CheckPurity({0, 0, 0}));
  EXPECT_FALSE(set.CheckPurity({0, 1, 0}));
}

TEST(GranularBallSetTest, NonOverlapCheck) {
  const Matrix x = Matrix::FromRows({{0, 0}, {10, 0}});
  {
    std::vector<GranularBall> balls;
    balls.push_back(MakeBall({0}, {0, 0}, 1.0, 0));
    balls.push_back(MakeBall({1}, {10, 0}, 1.0, 1));
    GranularBallSet set(std::move(balls), x, 2);
    EXPECT_TRUE(set.CheckNonOverlap());
  }
  {
    std::vector<GranularBall> balls;
    balls.push_back(MakeBall({0}, {0, 0}, 6.0, 0));
    balls.push_back(MakeBall({1}, {10, 0}, 6.0, 1));
    GranularBallSet set(std::move(balls), x, 2);
    EXPECT_FALSE(set.CheckNonOverlap());
  }
}

TEST(GranularBallSetTest, RadiusZeroBallsNeverOverlap) {
  const Matrix x = Matrix::FromRows({{0, 0}, {0, 0}});
  std::vector<GranularBall> balls;
  balls.push_back(MakeBall({0}, {0, 0}, 0.0, 0));
  balls.push_back(MakeBall({1}, {0, 0}, 0.0, 1));
  GranularBallSet set(std::move(balls), x, 2);
  EXPECT_TRUE(set.CheckNonOverlap());
}

TEST(GranularBallSetTest, DisjointMembershipCheck) {
  const Matrix x = Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  {
    std::vector<GranularBall> balls;
    balls.push_back(MakeBall({0, 1}, {0.5}, 0.6, 0));
    balls.push_back(MakeBall({2}, {2.0}, 0.0, 1));
    GranularBallSet set(std::move(balls), x, 2);
    EXPECT_TRUE(set.CheckDisjointMembership(3));
  }
  {
    std::vector<GranularBall> balls;
    balls.push_back(MakeBall({0, 1}, {0.5}, 0.6, 0));
    balls.push_back(MakeBall({1, 2}, {1.5}, 0.6, 1));  // 1 shared
    GranularBallSet set(std::move(balls), x, 2);
    EXPECT_FALSE(set.CheckDisjointMembership(3));
  }
}

TEST(GranularBallSetTest, HeterogeneousOverlapDepth) {
  const Matrix x = Matrix::FromRows({{0.0}, {1.0}});
  std::vector<GranularBall> balls;
  balls.push_back(MakeBall({0}, {0.0}, 1.0, 0));
  balls.push_back(MakeBall({1}, {1.0}, 1.0, 1));
  GranularBallSet set(std::move(balls), x, 2);
  // Overlap depth = r0 + r1 - dist = 1 + 1 - 1 = 1 over one pair.
  EXPECT_NEAR(set.HeterogeneousOverlapDepth(), 1.0, 1e-12);
}

TEST(GranularBallSetTest, HomogeneousPairsExcludedFromOverlapDepth) {
  const Matrix x = Matrix::FromRows({{0.0}, {1.0}});
  std::vector<GranularBall> balls;
  balls.push_back(MakeBall({0}, {0.0}, 1.0, 0));
  balls.push_back(MakeBall({1}, {1.0}, 1.0, 0));  // same label
  GranularBallSet set(std::move(balls), x, 1);
  EXPECT_DOUBLE_EQ(set.HeterogeneousOverlapDepth(), 0.0);
}

TEST(GranularBallSetTest, Totals) {
  const Matrix x = Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  std::vector<GranularBall> balls;
  balls.push_back(MakeBall({0, 1}, {0.5}, 0.6, 0));
  balls.push_back(MakeBall({2}, {2.0}, 0.0, 1));
  GranularBallSet set(std::move(balls), x, 2);
  EXPECT_EQ(set.size(), 2);
  EXPECT_EQ(set.TotalCoveredSamples(), 3);
  EXPECT_EQ(set.NonSingletonCount(), 1);
}

}  // namespace
}  // namespace gbx
