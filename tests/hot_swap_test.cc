// Atomic hot-swap under load — the model-lifecycle guarantee of the
// serving front-end. N caller threads stream predictions while the
// model behind one registry name is swapped K times; no request may be
// dropped, and every response must be self-consistent with exactly one
// model version (the label must match what THAT version — identified by
// the artifact checksum tagged on the response — predicts for the
// query). Covers both the in-process ModelRegistry contract and the
// full socket path driven through the "!swap" admin command. Thread
// counts honor GBX_THREADS via the shared servetest fixture.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/registry.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace gbx {
namespace {

using servetest::CallerThreads;
using servetest::MakeGbKnnBundle;
using servetest::ModelBundle;
using servetest::ParsePredictReply;
using servetest::PredictReply;
using servetest::SmallBatchOptions;
using servetest::TestClient;

/// Two models on the SAME split that disagree on some holdout queries:
/// k=1 vs k=5 with different granulation seeds. Disagreement is what
/// lets the battery detect a version-mixed response.
struct SwapPair {
  ModelBundle a;
  ModelBundle b;
  /// checksum -> that version's ground-truth predictions.
  std::map<std::uint64_t, const std::vector<int>*> expected;
};

SwapPair MakeSwapPair() {
  SwapPair pair;
  pair.a = MakeGbKnnBundle("S5", /*k=*/1, /*gbg_seed=*/17);
  pair.b = MakeGbKnnBundle("S5", /*k=*/5, /*gbg_seed=*/99);
  GBX_CHECK_MSG(pair.a.checksum != pair.b.checksum,
                "swap pair artifacts must differ");
  // Without disagreement the version-consistency assertions are vacuous
  // (verified: the pair disagrees on ~10% of the S5 holdout).
  GBX_CHECK_MSG(pair.a.expected != pair.b.expected,
                "swap pair models must disagree on some queries");
  pair.expected[pair.a.checksum] = &pair.a.expected;
  pair.expected[pair.b.checksum] = &pair.b.expected;
  return pair;
}

using HotSwapTest = servetest::ServeTestBase;

// --- registry-level: the shared_ptr-snapshot contract ---

TEST_F(HotSwapTest, RegistryVersioningAndValidation) {
  const ModelBundle bundle = MakeGbKnnBundle("S1");
  ModelRegistry registry(SmallBatchOptions());
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.Get("m"), nullptr);

  StatusOr<std::shared_ptr<const ServedModel>> published =
      registry.Publish("m", servetest::LoadBundle(bundle));
  ASSERT_TRUE(published.ok());
  EXPECT_EQ((*published)->version, 1);
  EXPECT_EQ((*published)->checksum, bundle.checksum);

  published = registry.Publish("m", servetest::LoadBundle(bundle));
  ASSERT_TRUE(published.ok());
  EXPECT_EQ((*published)->version, 2);

  // Version counters survive Remove + re-Publish: a client that pinned
  // "m v2" can never be confused by a later, different "m v2".
  ASSERT_TRUE(registry.Remove("m").ok());
  EXPECT_EQ(registry.Get("m"), nullptr);
  EXPECT_EQ(registry.Remove("m").code(), StatusCode::kNotFound);
  published = registry.Publish("m", servetest::LoadBundle(bundle));
  ASSERT_TRUE(published.ok());
  EXPECT_EQ((*published)->version, 3);

  // Names are wire routing tokens: reject anything unspeakable.
  for (const std::string bad : {"", "a b", "a@b", "a\nb", "a/b"}) {
    EXPECT_FALSE(registry.Publish(bad, servetest::LoadBundle(bundle)).ok())
        << "'" << bad << "' accepted";
  }
  EXPECT_EQ(registry.size(), 1);
}

TEST_F(HotSwapTest, SnapshotsPinExactlyOneVersionUnderConcurrentSwaps) {
  const SwapPair pair = MakeSwapPair();
  const Dataset& test = pair.a.split.test;
  const int n = test.size();

  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(registry->Publish("m", servetest::LoadBundle(pair.a)).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> served{0};
  const int callers = CallerThreads();
  std::vector<std::thread> threads;
  threads.reserve(callers);
  for (int t = 0; t < callers; ++t) {
    threads.emplace_back([&, t] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        // One Get() per request: the snapshot pins one version for the
        // whole prediction, swap or no swap.
        const std::shared_ptr<const ServedModel> snap = registry->Get("m");
        ASSERT_NE(snap, nullptr);
        const auto it = pair.expected.find(snap->checksum);
        ASSERT_NE(it, pair.expected.end())
            << "response tagged with an unknown version";
        const StatusOr<int> label =
            snap->engine->Predict(test.row(i), test.num_features());
        ASSERT_TRUE(label.ok()) << label.status().ToString();
        EXPECT_EQ(*label, (*it->second)[i])
            << "query " << i << " answered inconsistently with version v"
            << snap->version;
        served.fetch_add(1, std::memory_order_relaxed);
        i = (i + 1) % n;
      }
    });
  }

  // Swap A <-> B under load, collecting a weak_ptr to every replaced
  // version to prove drain-then-release afterwards.
  const int kSwaps = 25;
  std::vector<std::weak_ptr<const ServedModel>> retired;
  for (int k = 0; k < kSwaps; ++k) {
    retired.push_back(registry->Get("m"));
    const ModelBundle& next = (k % 2 == 0) ? pair.b : pair.a;
    const StatusOr<std::shared_ptr<const ServedModel>> published =
        registry->Publish("m", servetest::LoadBundle(next));
    ASSERT_TRUE(published.ok()) << published.status().ToString();
    EXPECT_EQ((*published)->version, k + 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& th : threads) th.join();

  EXPECT_GT(served.load(), kSwaps) << "load never overlapped the swaps";

  // Drain-before-release: with all snapshots dropped, every replaced
  // version must be gone — the registry keeps no ghosts.
  for (std::size_t k = 0; k < retired.size(); ++k) {
    EXPECT_TRUE(retired[k].expired()) << "retired version " << k + 1
                                      << " still alive after drain";
  }
  const std::shared_ptr<const ServedModel> current = registry->Get("m");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, kSwaps + 1);
}

// --- rollback oracle: a bad publish must never disturb the current
// version — not the entry, not the snapshot, not the version counter ---

TEST_F(HotSwapTest, FailedPublishRollsBackAtomically) {
  const ModelBundle bundle = MakeGbKnnBundle("S1");
  ModelRegistry registry(SmallBatchOptions());
  ASSERT_TRUE(registry.Publish("m", servetest::LoadBundle(bundle)).ok());
  const std::shared_ptr<const ServedModel> before = registry.Get("m");
  ASSERT_NE(before, nullptr);

  // A model with no classifier.
  EXPECT_EQ(registry.Publish("m", LoadedModel{}).status().code(),
            StatusCode::kInvalidArgument);

  // A classifier whose declared geometry is nonsense (would GBX_CHECK
  // inside engine construction if it were not pre-validated).
  {
    LoadedModel broken = servetest::LoadBundle(bundle);
    broken.dims = 0;
    EXPECT_EQ(registry.Publish("m", std::move(broken)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    LoadedModel broken = servetest::LoadBundle(bundle);
    broken.num_classes = 0;
    EXPECT_EQ(registry.Publish("m", std::move(broken)).status().code(),
              StatusCode::kInvalidArgument);
  }

  // The rollback oracle: the surviving entry is the *same* published
  // object, still serving, and the version counter did not advance.
  const std::shared_ptr<const ServedModel> after = registry.Get("m");
  EXPECT_EQ(after.get(), before.get())
      << "failed publishes must not replace the entry";
  EXPECT_EQ(after->version, 1);
  const StatusOr<int> label =
      after->engine->Predict(bundle.split.test.row(0),
                             bundle.split.test.num_features());
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, bundle.expected[0]);

  // The next *good* publish gets version 2, not 5: failed attempts
  // never burn version numbers a client could have pinned.
  const StatusOr<std::shared_ptr<const ServedModel>> republished =
      registry.Publish("m", servetest::LoadBundle(bundle));
  ASSERT_TRUE(republished.ok());
  EXPECT_EQ((*republished)->version, 2);
}

TEST_F(HotSwapTest, CorruptArtifactSwapIsRejectedWithoutDisturbingService) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::string good_path =
      ::testing::TempDir() + "/gbx_rollback_good.gbx";
  const std::string corrupt_path =
      ::testing::TempDir() + "/gbx_rollback_corrupt.gbx";
  const std::string truncated_path =
      ::testing::TempDir() + "/gbx_rollback_truncated.gbx";
  { std::ofstream(good_path) << bundle.artifact; }
  {
    // One flipped byte in the middle of the body: checksum mismatch.
    std::string corrupt = bundle.artifact;
    corrupt[corrupt.size() / 2] ^= 0x20;
    std::ofstream(corrupt_path) << corrupt;
  }
  {
    // A torn write: the first half of the artifact only.
    std::ofstream(truncated_path)
        << bundle.artifact.substr(0, bundle.artifact.size() / 2);
  }

  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(
      registry->Publish("default", servetest::LoadBundle(bundle)).ok());
  Server server(registry);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());

  // Corrupt and truncated artifacts are rejected with the typed
  // DATA_LOSS code; a missing file with NOT_FOUND.
  StatusOr<std::string> reply =
      client.Call("!swap default " + corrupt_path);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("error DATA_LOSS", 0), 0) << *reply;
  reply = client.Call("!swap default " + truncated_path);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("error DATA_LOSS", 0), 0) << *reply;
  reply = client.Call("!swap default /no/such/artifact.gbx");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("error NOT_FOUND", 0), 0) << *reply;

  // The original version is still serving, bit-identically.
  const Dataset& test = bundle.split.test;
  reply = client.Call(
      FormatPredictPayload("", test.row(0), test.num_features()));
  ASSERT_TRUE(reply.ok());
  const StatusOr<PredictReply> predict = ParsePredictReply(*reply);
  ASSERT_TRUE(predict.ok()) << *reply;
  EXPECT_EQ(predict->label, bundle.expected[0]);
  EXPECT_EQ(predict->checksum, bundle.checksum);

  // And a good swap still goes through at version 2.
  reply = client.Call("!swap default " + good_path);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("ok swapped default v2", 0), 0) << *reply;

  server.Stop();
  std::remove(good_path.c_str());
  std::remove(corrupt_path.c_str());
  std::remove(truncated_path.c_str());
}

// --- socket-level: "!swap" under streaming clients ---

TEST_F(HotSwapTest, SocketClientsSurviveAdminSwapsWithConsistentAnswers) {
  const SwapPair pair = MakeSwapPair();
  const Dataset& test = pair.a.split.test;
  const int n = test.size();

  // The admin swap path loads artifacts from disk.
  const std::string path_a = ::testing::TempDir() + "/gbx_hot_swap_a.gbx";
  const std::string path_b = ::testing::TempDir() + "/gbx_hot_swap_b.gbx";
  { std::ofstream(path_a) << pair.a.artifact; }
  { std::ofstream(path_b) << pair.b.artifact; }

  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(registry->Publish("default", servetest::LoadBundle(pair.a)).ok());
  Server server(registry);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> served{0};
  const int clients = CallerThreads();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(server.port());
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const StatusOr<std::string> payload = client.Call(
            FormatPredictPayload("", test.row(i), test.num_features()));
        // No dropped requests: every call sent before stop is answered.
        ASSERT_TRUE(payload.ok()) << payload.status().ToString();
        const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        const auto it = pair.expected.find(reply->checksum);
        ASSERT_NE(it, pair.expected.end())
            << "response tagged with an unknown version";
        EXPECT_EQ(reply->label, (*it->second)[i])
            << "query " << i << " inconsistent with its version tag";
        served.fetch_add(1, std::memory_order_relaxed);
        i = (i + 1) % n;
      }
    });
  }

  TestClient admin(server.port());
  const int kSwaps = 12;
  for (int k = 0; k < kSwaps; ++k) {
    const bool to_b = (k % 2 == 0);
    const StatusOr<std::string> payload =
        admin.Call("!swap default " + (to_b ? path_b : path_a));
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    char expect[128];
    std::snprintf(expect, sizeof(expect), "ok swapped default v%d fnv1a %016llx",
                  k + 2,
                  static_cast<unsigned long long>(
                      to_b ? pair.b.checksum : pair.a.checksum));
    EXPECT_EQ(*payload, expect);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& th : threads) th.join();

  EXPECT_GT(served.load(), kSwaps) << "load never overlapped the swaps";
  const StatusOr<std::string> stat = admin.Call("!stat default");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->rfind("ok stats default v" + std::to_string(kSwaps + 1), 0),
            0)
      << *stat;

  server.Stop();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace gbx
