// Property battery for DynamicKdTree: randomized interleavings of
// Remove and all three query families, cross-checked against a
// live-filtered brute-force oracle over an n × d × leaf_size sweep, plus
// the adversarial corners — duplicate rows, every point removed, the
// amortized-rebuild boundary at exactly the 50% tombstone threshold, and
// the oversized-k guard ("more neighbors than live points" returns all
// live points, never asserts).
#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/dynamic_kd_tree.h"

namespace gbx {
namespace {

Matrix RandomPoints(int n, int d, std::uint64_t seed) {
  Pcg32 rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m.At(i, j) = rng.NextGaussian();
  }
  return m;
}

// The oracles filter by liveness and realize the exact total orders the
// tree promises — BruteForceIndex's for the NeighborIndex queries
// (ranked/included in squared space, sqrt applied to the results),
// (squared distance, index) for KNearestSquared.

std::vector<Neighbor> OracleKnn(const Matrix& pts,
                                const std::vector<char>& alive,
                                const double* q, int k) {
  std::vector<Neighbor> all;
  for (int i = 0; i < pts.rows(); ++i) {
    if (!alive[i]) continue;
    all.push_back(Neighbor{i, SquaredDistance(q, pts.Row(i), pts.cols())});
  }
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) > k) all.resize(k);
  for (Neighbor& nb : all) nb.distance = std::sqrt(nb.distance);
  return all;
}

std::vector<SquaredNeighbor> OracleKnnSquared(const Matrix& pts,
                                              const std::vector<char>& alive,
                                              const double* q, int k,
                                              int exclude) {
  std::vector<SquaredNeighbor> all;
  for (int i = 0; i < pts.rows(); ++i) {
    if (!alive[i] || i == exclude) continue;
    all.push_back(
        SquaredNeighbor{SquaredDistance(q, pts.Row(i), pts.cols()), i});
  }
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<Neighbor> OracleRadius(const Matrix& pts,
                                   const std::vector<char>& alive,
                                   const double* q, double radius) {
  std::vector<Neighbor> all;
  const double r2 = radius * radius;
  for (int i = 0; i < pts.rows(); ++i) {
    if (!alive[i]) continue;
    const double d2 = SquaredDistance(q, pts.Row(i), pts.cols());
    if (d2 <= r2) all.push_back(Neighbor{i, std::sqrt(d2)});
  }
  std::sort(all.begin(), all.end());
  return all;
}

void ExpectNeighborsEqual(const std::vector<Neighbor>& actual,
                          const std::vector<Neighbor>& expected,
                          const char* what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].index, expected[i].index) << what << " at " << i;
    // Identical arithmetic on identical inputs: exact, not approximate.
    ASSERT_EQ(actual[i].distance, expected[i].distance) << what << " at " << i;
  }
}

void ExpectSquaredEqual(const std::vector<SquaredNeighbor>& actual,
                        const std::vector<SquaredNeighbor>& expected,
                        const char* what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].index, expected[i].index) << what << " at " << i;
    ASSERT_EQ(actual[i].dist2, expected[i].dist2) << what << " at " << i;
  }
}

// Randomized Remove/query interleavings across the structural sweep: the
// tree must agree with the filtered oracle at every point of the drain,
// through every automatic rebuild, down to the empty tree.
class DynamicKdTreeOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DynamicKdTreeOracleTest, AgreesWithOracleUnderInterleavedRemovals) {
  const auto [n, d, leaf_size] = GetParam();
  const Matrix pts = RandomPoints(n, d, 900 + n * 7 + d);
  DynamicKdTree tree(&pts, leaf_size);
  std::vector<char> alive(n, 1);
  std::vector<int> live_ids(n);
  for (int i = 0; i < n; ++i) live_ids[i] = i;
  Pcg32 rng(17 * n + d + leaf_size);

  const auto check_all = [&](const char* when) {
    ASSERT_EQ(tree.size(), static_cast<int>(live_ids.size())) << when;
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<double> q(d);
      for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
      // Query at a stored (sometimes removed) point half the time:
      // distance-0 hits and tombstone positions are the hard cases.
      if (n > 0 && trial % 2 == 1) {
        const int at = static_cast<int>(rng.NextBounded(n));
        for (int j = 0; j < d; ++j) q[j] = pts.At(at, j);
      }
      const int k = 1 + static_cast<int>(rng.NextBounded(12));
      ExpectNeighborsEqual(tree.KNearest(q.data(), k),
                           OracleKnn(pts, alive, q.data(), k), when);
      const int exclude =
          trial % 2 == 0 ? -1 : static_cast<int>(rng.NextBounded(n));
      ExpectSquaredEqual(
          tree.KNearestSquared(q.data(), k, exclude),
          OracleKnnSquared(pts, alive, q.data(), k, exclude), when);
      const double radius = 0.25 + rng.NextDouble() * 2.0;
      ExpectNeighborsEqual(tree.RadiusSearch(q.data(), radius),
                           OracleRadius(pts, alive, q.data(), radius), when);
    }
  };

  check_all("before removals");
  while (!live_ids.empty()) {
    // Remove a random batch, then re-check every query family.
    const int batch = 1 + static_cast<int>(rng.NextBounded(
                              static_cast<std::uint32_t>(
                                  std::max<std::size_t>(live_ids.size() / 6,
                                                        1))));
    for (int b = 0; b < batch && !live_ids.empty(); ++b) {
      const std::size_t pick = rng.NextBounded(
          static_cast<std::uint32_t>(live_ids.size()));
      const int id = live_ids[pick];
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
      ASSERT_TRUE(tree.alive(id));
      tree.Remove(id);
      alive[id] = 0;
      ASSERT_FALSE(tree.alive(id));
    }
    check_all("after removal batch");
  }
  // Fully drained: every query family must come back empty.
  ASSERT_EQ(tree.size(), 0);
  std::vector<double> q(d, 0.0);
  EXPECT_TRUE(tree.KNearest(q.data(), 5).empty());
  EXPECT_TRUE(tree.KNearestSquared(q.data(), 5).empty());
  EXPECT_TRUE(tree.RadiusSearch(q.data(), 100.0).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicKdTreeOracleTest,
    ::testing::Combine(::testing::Values(1, 5, 64, 257, 800),
                       ::testing::Values(1, 2, 8, 16),
                       ::testing::Values(1, 16, 64)));

// Duplicate rows stress the index tie-breaks and the zero-spread leaf
// path; removing individual duplicates must surface the remaining ones
// in index order.
TEST(DynamicKdTreeTest, DuplicateRowsRemoveOneAtATime) {
  Matrix pts(12, 2);
  for (int i = 0; i < 12; ++i) {
    pts.At(i, 0) = i < 8 ? 1.0 : 2.0;  // ids 0..7 identical, 8..11 identical
    pts.At(i, 1) = i < 8 ? -3.0 : 4.0;
  }
  DynamicKdTree tree(&pts, /*leaf_size=*/2);
  const double q[] = {1.0, -3.0};

  std::vector<char> alive(12, 1);
  for (int removed = 0; removed < 8; ++removed) {
    const std::vector<Neighbor> nns = tree.KNearest(q, 3);
    ExpectNeighborsEqual(nns, OracleKnn(pts, alive, q, 3), "duplicates");
    // The nearest duplicates must come out in ascending index order.
    ASSERT_GE(nns.size(), 1u);
    EXPECT_EQ(nns[0].index, removed);
    EXPECT_EQ(nns[0].distance, 0.0);
    tree.Remove(removed);
    alive[removed] = 0;
  }
  // All the distance-0 duplicates are gone; the far block remains.
  const std::vector<Neighbor> rest = tree.KNearest(q, 100);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0].index, 8);
}

// The amortized rebuild must fire exactly when tombstones first exceed
// half of the indexed points — not at exactly 50% — and must reset the
// tombstone accounting to the survivors.
TEST(DynamicKdTreeTest, RebuildBoundaryAtExactlyHalf) {
  const Matrix pts = RandomPoints(8, 3, 42);
  DynamicKdTree tree(&pts, /*leaf_size=*/2);
  ASSERT_EQ(tree.indexed_points(), 8);

  for (int i = 0; i < 4; ++i) tree.Remove(i);
  // Exactly 50% tombstoned: still the original structure.
  EXPECT_EQ(tree.rebuilds(), 0);
  EXPECT_EQ(tree.tombstones(), 4);
  EXPECT_EQ(tree.indexed_points(), 8);
  EXPECT_EQ(tree.size(), 4);

  tree.Remove(4);
  // One past the boundary: compacted to the 3 survivors.
  EXPECT_EQ(tree.rebuilds(), 1);
  EXPECT_EQ(tree.tombstones(), 0);
  EXPECT_EQ(tree.indexed_points(), 3);
  EXPECT_EQ(tree.size(), 3);

  // The rebuilt tree still answers exactly.
  std::vector<char> alive(8, 0);
  alive[5] = alive[6] = alive[7] = 1;
  const double q[] = {0.0, 0.0, 0.0};
  ExpectNeighborsEqual(tree.KNearest(q, 8), OracleKnn(pts, alive, q, 8),
                       "post-rebuild");

  // Draining the survivors cascades through smaller and smaller rebuilds
  // down to an empty (but queryable) tree.
  tree.Remove(5);
  tree.Remove(6);
  tree.Remove(7);
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.KNearest(q, 3).empty());
  EXPECT_TRUE(tree.RadiusSearch(q, 10.0).empty());
}

// k beyond the live count degrades to "all live points", in order — the
// guard the static KdTree shares (see index_test.cc).
TEST(DynamicKdTreeTest, OversizedKReturnsAllLivePoints) {
  const Matrix pts = RandomPoints(10, 2, 7);
  DynamicKdTree tree(&pts, /*leaf_size=*/4);
  const double q[] = {0.3, -0.1};

  ASSERT_EQ(tree.KNearest(q, 1000).size(), 10u);
  for (int i = 0; i < 7; ++i) tree.Remove(i);
  const std::vector<Neighbor> live = tree.KNearest(q, 1000);
  ASSERT_EQ(live.size(), 3u);
  std::vector<char> alive(10, 0);
  alive[7] = alive[8] = alive[9] = 1;
  ExpectNeighborsEqual(live, OracleKnn(pts, alive, q, 1000), "oversized k");

  // The squared family clamps against the exclusion too.
  EXPECT_EQ(tree.KNearestSquared(q, 1000, /*exclude=*/8).size(), 2u);
  EXPECT_EQ(tree.KNearestSquared(q, 1000, /*exclude=*/0).size(), 3u)
      << "excluding an already-removed point must not shrink the result";
  EXPECT_TRUE(tree.KNearest(q, 0).empty());
}

// The weighted surface query (GB-kNN's ranking: score = dist - w inside
// the ball, dist outside) must match the exhaustive scan exactly through
// removals and rebuilds, including zero weights, oversized weights that
// swallow the whole cloud, and duplicate centers.
TEST(DynamicKdTreeTest, SurfaceQueryAgreesWithOracleUnderRemovals) {
  for (const int n : {1, 7, 120, 600}) {
    const int d = 1 + n % 5;
    Matrix pts = RandomPoints(n, d, 3000 + n);
    // A block of duplicate rows keeps the tie-breaks honest.
    for (int i = 0; i < std::min(n, 10); ++i) {
      for (int j = 0; j < d; ++j) pts.At(n - 1 - i, j) = pts.At(i, j);
    }
    Pcg32 rng(31 + n);
    std::vector<double> weights(n);
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.NextBounded(4));
      weights[i] = kind == 0   ? 0.0                       // orphan ball
                   : kind == 1 ? 10.0 + rng.NextDouble()   // swallows all
                               : rng.NextDouble() * 1.5;   // typical
    }
    DynamicKdTree tree(&pts, weights.data(), /*leaf_size=*/4);
    std::vector<char> alive(n, 1);

    const auto oracle = [&](const double* q, int k) {
      std::vector<Neighbor> all;
      for (int i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        const double dist = std::sqrt(SquaredDistance(q, pts.Row(i), d));
        all.push_back(Neighbor{
            i, dist <= weights[i] ? dist - weights[i] : dist});
      }
      std::sort(all.begin(), all.end());
      if (static_cast<int>(all.size()) > k) all.resize(k);
      return all;
    };

    int live = n;
    while (live > 0) {
      for (int trial = 0; trial < 3; ++trial) {
        std::vector<double> q(d);
        for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
        const int k = 1 + static_cast<int>(rng.NextBounded(8));
        ExpectNeighborsEqual(tree.KNearestSurface(q.data(), k),
                             oracle(q.data(), k), "surface");
      }
      // Remove a random live point and go again.
      int id;
      do {
        id = static_cast<int>(rng.NextBounded(n));
      } while (!alive[id]);
      tree.Remove(id);
      alive[id] = 0;
      --live;
    }
    EXPECT_TRUE(tree.KNearestSurface(pts.Row(0), 5).empty());
  }
}

// Without weights the surface query is a contract violation.
TEST(DynamicKdTreeDeathTest, SurfaceQueryWithoutWeightsAsserts) {
  const Matrix pts = RandomPoints(4, 2, 5);
  DynamicKdTree tree(&pts);
  EXPECT_DEATH(tree.KNearestSurface(pts.Row(0), 1), "requires point weights");
}

TEST(DynamicKdTreeTest, EmptyMatrix) {
  const Matrix empty(0, 3);
  DynamicKdTree tree(&empty);
  const double q[] = {0.0, 0.0, 0.0};
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.KNearest(q, 5).empty());
  EXPECT_TRUE(tree.KNearestSquared(q, 5).empty());
  EXPECT_TRUE(tree.RadiusSearch(q, 1.0).empty());
}

// Removing a removed point is a contract violation, not UB.
TEST(DynamicKdTreeDeathTest, DoubleRemoveAsserts) {
  const Matrix pts = RandomPoints(4, 2, 3);
  DynamicKdTree tree(&pts);
  tree.Remove(2);
  EXPECT_DEATH(tree.Remove(2), "already removed");
}

}  // namespace
}  // namespace gbx
