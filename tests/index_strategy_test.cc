// The IndexStrategy resolution machinery: name/parse round-trips for
// all four strategies, the EffectiveDimension participation-ratio
// estimator (isotropic clouds read as ~d, embedded low-dimensional
// subspaces read as ~their dimension regardless of ambient d or
// orientation), and the kAuto tier semantics — size gates, thread
// scaling, and the d_eff structure gate that separates "distance
// concentration, stay flat" from "real structure, keep the tree".
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "index/index_strategy.h"

namespace gbx {
namespace {

TEST(IndexStrategyTest, NameParseRoundTrip) {
  for (IndexStrategy s :
       {IndexStrategy::kAuto, IndexStrategy::kFlat, IndexStrategy::kTree,
        IndexStrategy::kBallTree}) {
    IndexStrategy parsed = IndexStrategy::kAuto;
    ASSERT_TRUE(ParseIndexStrategy(IndexStrategyName(s), &parsed))
        << IndexStrategyName(s);
    EXPECT_EQ(parsed, s);
  }
  IndexStrategy out = IndexStrategy::kTree;
  EXPECT_FALSE(ParseIndexStrategy("ball-tree", &out));
  EXPECT_FALSE(ParseIndexStrategy("Tree", &out));
  EXPECT_FALSE(ParseIndexStrategy("", &out));
  EXPECT_EQ(out, IndexStrategy::kTree) << "failed parse must not write";
}

Matrix IsotropicCloud(int n, int d, std::uint64_t seed) {
  Pcg32 rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m.At(i, j) = rng.NextGaussian();
  }
  return m;
}

// Points near a k-dimensional subspace of R^d, then rotated so the
// subspace is not axis-aligned — the participation ratio must still
// read ~k.
Matrix EmbeddedSubspace(int n, int d, int k, double noise,
                        std::uint64_t seed) {
  Pcg32 rng(seed);
  Matrix m(n, d, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) m.At(i, j) = rng.NextGaussian() * 2.0;
    for (int j = k; j < d; ++j) m.At(i, j) = rng.NextGaussian() * noise;
  }
  RotateFeatures(&m, &rng);
  return m;
}

TEST(EffectiveDimensionTest, IsotropicCloudReadsAmbientDimension) {
  for (int d : {2, 8, 24}) {
    const double d_eff = EffectiveDimension(IsotropicCloud(4000, d, 11 + d));
    EXPECT_GT(d_eff, 0.8 * d) << "d=" << d;
    EXPECT_LE(d_eff, 1.05 * d) << "d=" << d;
  }
}

TEST(EffectiveDimensionTest, EmbeddedSubspaceReadsIntrinsicDimension) {
  for (int d : {12, 24, 48}) {
    const double d_eff =
        EffectiveDimension(EmbeddedSubspace(4000, d, 3, 0.05, 17 + d));
    EXPECT_GT(d_eff, 1.5) << "d=" << d;
    EXPECT_LT(d_eff, 5.0) << "ambient d=" << d
                          << " must not leak into the estimate";
  }
}

TEST(EffectiveDimensionTest, DegenerateInputs) {
  // Fewer than two rows, or zero variance: fall back to the ambient d.
  EXPECT_EQ(EffectiveDimension(Matrix(0, 5)), 5.0);
  EXPECT_EQ(EffectiveDimension(Matrix(1, 5)), 5.0);
  EXPECT_EQ(EffectiveDimension(Matrix(100, 3, /*fill=*/2.5)), 3.0);
  // A single spread dimension is effectively one-dimensional.
  Matrix line(500, 4, 0.0);
  for (int i = 0; i < 500; ++i) line.At(i, 2) = i;
  EXPECT_NEAR(EffectiveDimension(line), 1.0, 1e-9);
}

TEST(ResolveRdGbgTest, ExplicitRequestsPassThrough) {
  for (IndexStrategy s : {IndexStrategy::kFlat, IndexStrategy::kTree,
                          IndexStrategy::kBallTree}) {
    EXPECT_EQ(ResolveRdGbgIndexStrategy(s, 1, 1000, 64), s);
  }
}

TEST(ResolveRdGbgTest, UnconditionalKdTiersMatchPr4) {
  // d<=2 from 4096 points at any thread count.
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 4096, 2, 64),
            IndexStrategy::kTree);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 4095, 2, 1),
            IndexStrategy::kFlat);
  // d<=4 from 16384 points, up to 4 workers.
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 16384, 4, 4),
            IndexStrategy::kTree);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 16384, 4, 5),
            IndexStrategy::kFlat);
}

TEST(ResolveRdGbgTest, StructureGateEngagesOnlyOnLowEffectiveDimension) {
  const Matrix structured = EmbeddedSubspace(20000, 8, 3, 0.05, 3);
  const Matrix isotropic = IsotropicCloud(20000, 8, 4);
  // Structured moderate-d data flips the tree on, out to d=16 ...
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 20000, 8, 1,
                                      &structured),
            IndexStrategy::kTree);
  const Matrix structured16 = EmbeddedSubspace(20000, 16, 3, 0.05, 9);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 20000, 16, 1,
                                      &structured16),
            IndexStrategy::kTree);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 20000, 17, 1,
                                      &structured16),
            IndexStrategy::kFlat);
  // ... isotropic data, a big pool, a small n, or no matrix keep it off.
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 20000, 8, 1,
                                      &isotropic),
            IndexStrategy::kFlat);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 20000, 8, 8,
                                      &structured),
            IndexStrategy::kFlat);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 8000, 8, 1,
                                      &structured),
            IndexStrategy::kFlat);
  EXPECT_EQ(ResolveRdGbgIndexStrategy(IndexStrategy::kAuto, 20000, 8, 1),
            IndexStrategy::kFlat);
}

TEST(ResolveSurfaceThresholdTest, PerStrategySemantics) {
  // kFlat never switches, explicit tree strategies switch immediately —
  // that is what routes the bit-identity suites through the index.
  EXPECT_EQ(ResolveRdGbgSurfaceThreshold(IndexStrategy::kFlat, 10, 1),
            kSurfaceIndexNever);
  EXPECT_EQ(ResolveRdGbgSurfaceThreshold(IndexStrategy::kTree, 10, 8), 0);
  EXPECT_EQ(ResolveRdGbgSurfaceThreshold(IndexStrategy::kBallTree, 10, 8), 0);
  // kAuto scales with the worker count (the flat scan parallelizes, an
  // index query is serial) and never disables entirely.
  const int serial = ResolveRdGbgSurfaceThreshold(IndexStrategy::kAuto, 10, 1);
  const int pool = ResolveRdGbgSurfaceThreshold(IndexStrategy::kAuto, 10, 8);
  EXPECT_GT(serial, 0);
  EXPECT_GE(pool, serial);
  EXPECT_LT(pool, kSurfaceIndexNever);
}

TEST(ResolveCenterTest, SizeGateIsThreadInvariant) {
  // Tree from 4096 balls (d<=16) — and, unlike the RD-GBG resolver, at
  // ANY worker count: batch prediction parallelizes over queries for
  // every strategy, so the measured crossover does not move with
  // GBX_THREADS (a ×threads bar was measured to hand kAuto a 2× loss
  // at 4 workers; see index_strategy.cc).
  for (int threads : {1, 4, 8}) {
    EXPECT_EQ(
        ResolveCenterIndexStrategy(IndexStrategy::kAuto, 4096, 10, threads),
        IndexStrategy::kTree)
        << "threads=" << threads;
    EXPECT_EQ(
        ResolveCenterIndexStrategy(IndexStrategy::kAuto, 4095, 10, threads),
        IndexStrategy::kFlat)
        << "threads=" << threads;
  }
}

TEST(ResolveCenterTest, BallTreeTierNeedsStructure) {
  const Matrix structured = EmbeddedSubspace(8000, 24, 3, 0.05, 5);
  const Matrix isotropic = IsotropicCloud(8000, 24, 6);
  EXPECT_EQ(ResolveCenterIndexStrategy(IndexStrategy::kAuto, 8000, 24, 1,
                                       &structured),
            IndexStrategy::kBallTree);
  EXPECT_EQ(ResolveCenterIndexStrategy(IndexStrategy::kAuto, 8000, 24, 1,
                                       &isotropic),
            IndexStrategy::kFlat);
  EXPECT_EQ(ResolveCenterIndexStrategy(IndexStrategy::kAuto, 8000, 24, 1),
            IndexStrategy::kFlat);
  // Past d=32 even structure does not rescue tree pruning.
  const Matrix deep = EmbeddedSubspace(8000, 40, 3, 0.05, 7);
  EXPECT_EQ(
      ResolveCenterIndexStrategy(IndexStrategy::kAuto, 8000, 40, 1, &deep),
      IndexStrategy::kFlat);
  // Explicit requests pass through untouched.
  EXPECT_EQ(ResolveCenterIndexStrategy(IndexStrategy::kBallTree, 1, 1000, 64),
            IndexStrategy::kBallTree);
}

}  // namespace
}  // namespace gbx
