#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/brute_force.h"
#include "index/kd_tree.h"

namespace gbx {
namespace {

Matrix RandomPoints(int n, int d, std::uint64_t seed) {
  Pcg32 rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m.At(i, j) = rng.NextGaussian();
  }
  return m;
}

TEST(BruteForceTest, KnnOnCraftedLine) {
  const Matrix pts = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {10.0}});
  BruteForceIndex index(&pts);
  const double q[] = {1.2};
  const std::vector<Neighbor> nns = index.KNearest(q, 2);
  ASSERT_EQ(nns.size(), 2u);
  EXPECT_EQ(nns[0].index, 1);
  EXPECT_NEAR(nns[0].distance, 0.2, 1e-12);
  EXPECT_EQ(nns[1].index, 2);
}

TEST(BruteForceTest, KLargerThanNReturnsAll) {
  const Matrix pts = Matrix::FromRows({{0.0}, {1.0}});
  BruteForceIndex index(&pts);
  const double q[] = {0.0};
  EXPECT_EQ(index.KNearest(q, 10).size(), 2u);
  EXPECT_TRUE(index.KNearest(q, 0).empty());
}

TEST(BruteForceTest, RadiusSearchInclusive) {
  const Matrix pts = Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  BruteForceIndex index(&pts);
  const double q[] = {0.0};
  const std::vector<Neighbor> res = index.RadiusSearch(q, 1.0);
  ASSERT_EQ(res.size(), 2u);  // 0 and 1 (distance exactly 1 included)
  EXPECT_EQ(res[0].index, 0);
  EXPECT_EQ(res[1].index, 1);
}

TEST(KdTreeTest, HandlesDuplicatePoints) {
  const Matrix pts =
      Matrix::FromRows({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}});
  KdTree tree(&pts, /*leaf_size=*/1);
  const double q[] = {1.0, 1.0};
  const std::vector<Neighbor> nns = tree.KNearest(q, 3);
  ASSERT_EQ(nns.size(), 3u);
  EXPECT_EQ(nns[0].index, 0);
  EXPECT_EQ(nns[1].index, 1);
  EXPECT_EQ(nns[2].index, 2);
}

TEST(KdTreeTest, EmptyAndSinglePoint) {
  const Matrix empty(0, 3);
  KdTree tree(&empty);
  const double q[] = {0.0, 0.0, 0.0};
  EXPECT_TRUE(tree.KNearest(q, 5).empty());
  EXPECT_TRUE(tree.RadiusSearch(q, 1.0).empty());

  const Matrix one = Matrix::FromRows({{1.0, 2.0, 3.0}});
  KdTree tree1(&one);
  const std::vector<Neighbor> nns = tree1.KNearest(q, 5);
  ASSERT_EQ(nns.size(), 1u);
  EXPECT_EQ(nns[0].index, 0);
}

// Property: KD-tree results must equal brute force exactly (indices and
// distances) across sizes, dimensionalities and leaf sizes.
class KdTreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KdTreeEquivalenceTest, MatchesBruteForceKnn) {
  const auto [n, d, leaf_size] = GetParam();
  const Matrix pts = RandomPoints(n, d, 100 + n + d);
  BruteForceIndex brute(&pts);
  KdTree tree(&pts, leaf_size);
  Pcg32 rng(n * 31 + d);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(d);
    for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
    const int k = 1 + static_cast<int>(rng.NextBounded(10));
    const std::vector<Neighbor> expected = brute.KNearest(q.data(), k);
    const std::vector<Neighbor> actual = tree.KNearest(q.data(), k);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index) << "trial " << trial;
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST_P(KdTreeEquivalenceTest, MatchesBruteForceRadius) {
  const auto [n, d, leaf_size] = GetParam();
  const Matrix pts = RandomPoints(n, d, 200 + n + d);
  BruteForceIndex brute(&pts);
  KdTree tree(&pts, leaf_size);
  Pcg32 rng(n * 37 + d);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(d);
    for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
    const double radius = 0.5 + rng.NextDouble() * 2.0;
    const std::vector<Neighbor> expected = brute.RadiusSearch(q.data(), radius);
    const std::vector<Neighbor> actual = tree.RadiusSearch(q.data(), radius);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 5, 64, 257, 1500),
                       ::testing::Values(1, 2, 8, 16),
                       ::testing::Values(1, 16, 64)));

// Queries at the stored points themselves (distance-0 hits and heavy ties
// on duplicated rows) must also agree exactly with brute force.
TEST(KdTreeEquivalenceTest, MatchesBruteForceOnDataPointQueries) {
  Matrix pts = RandomPoints(400, 3, 17);
  // Duplicate a block of rows so ties-by-index are exercised. (Copy out
  // first: AppendRow from a pointer into pts itself could reallocate.)
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> row(pts.Row(i), pts.Row(i) + pts.cols());
    pts.AppendRow(row.data(), pts.cols());
  }
  BruteForceIndex brute(&pts);
  KdTree tree(&pts, /*leaf_size=*/8);
  for (int i = 0; i < pts.rows(); i += 7) {
    const std::vector<Neighbor> expected = brute.KNearest(pts.Row(i), 12);
    const std::vector<Neighbor> actual = tree.KNearest(pts.Row(i), 12);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
      ASSERT_EQ(actual[j].index, expected[j].index) << "query " << i;
      ASSERT_NEAR(actual[j].distance, expected[j].distance, 1e-12);
    }
    const std::vector<Neighbor> rad_expected =
        brute.RadiusSearch(pts.Row(i), 0.75);
    const std::vector<Neighbor> rad_actual =
        tree.RadiusSearch(pts.Row(i), 0.75);
    ASSERT_EQ(rad_actual.size(), rad_expected.size()) << "query " << i;
    for (std::size_t j = 0; j < rad_expected.size(); ++j) {
      ASSERT_EQ(rad_actual[j].index, rad_expected[j].index);
    }
  }
}

// Regression for the oversized-k guard (shared with DynamicKdTree): k
// beyond the stored point count must degrade to "all points, in order" —
// never an assertion — including on deep single-point-leaf trees and on
// the empty tree.
TEST(KdTreeTest, OversizedKReturnsAllPoints) {
  const Matrix pts = RandomPoints(37, 3, 23);
  BruteForceIndex brute(&pts);
  KdTree tree(&pts, /*leaf_size=*/1);
  const double q[] = {0.1, -0.4, 0.7};
  const std::vector<Neighbor> expected = brute.KNearest(q, 37);
  for (int k : {37, 38, 100, 1 << 20}) {
    const std::vector<Neighbor> all = tree.KNearest(q, k);
    ASSERT_EQ(all.size(), 37u) << "k=" << k;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(all[i].index, expected[i].index) << "k=" << k;
    }
  }

  const Matrix empty(0, 3);
  KdTree none(&empty);
  EXPECT_TRUE(none.KNearest(q, 1 << 20).empty());
}

TEST(KdTreeTest, SelfQueryReturnsSelfFirst) {
  const Matrix pts = RandomPoints(64, 4, 11);
  KdTree tree(&pts);
  for (int i = 0; i < pts.rows(); ++i) {
    const std::vector<Neighbor> nns = tree.KNearest(pts.Row(i), 1);
    ASSERT_EQ(nns.size(), 1u);
    EXPECT_EQ(nns[0].index, i);
    EXPECT_NEAR(nns[0].distance, 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace gbx
