// End-to-end pipeline tests mirroring the paper's claims at small scale:
// sampling + classification across methods, noise robustness, and the
// GBABS vs GGBS compression ordering.
#include <gtest/gtest.h>

#include "core/gbabs.h"
#include "data/csv.h"
#include "data/noise.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "sampling/gbabs_sampler.h"
#include "sampling/ggbs.h"
#include "sampling/sampler.h"

namespace gbx {
namespace {

TEST(IntegrationTest, EverySamplerProducesUsableTrainingData) {
  const Dataset ds = MakePaperDataset("S5", 400, 21);
  for (SamplerKind kind :
       {SamplerKind::kNone, SamplerKind::kGbabs, SamplerKind::kGgbs,
        SamplerKind::kIgbs, SamplerKind::kSrs, SamplerKind::kSmote,
        SamplerKind::kBorderlineSmote, SamplerKind::kSmotenc,
        SamplerKind::kTomek}) {
    const std::unique_ptr<Sampler> sampler = MakeSampler(kind);
    Pcg32 rng(22);
    const Dataset sampled = sampler->Sample(ds, &rng);
    EXPECT_GT(sampled.size(), 0) << sampler->name();
    EXPECT_EQ(sampled.num_features(), ds.num_features()) << sampler->name();

    DecisionTreeClassifier dt;
    Pcg32 fit_rng(23);
    dt.Fit(sampled, &fit_rng);
    const std::vector<int> pred = dt.PredictBatch(ds.x());
    EXPECT_GT(Accuracy(ds.y(), pred), 0.5) << sampler->name();
  }
}

TEST(IntegrationTest, SamplerKindNamesRoundTrip) {
  EXPECT_EQ(MakeSampler(SamplerKind::kGbabs)->name(), "GBABS");
  EXPECT_EQ(MakeSampler(SamplerKind::kTomek)->name(), "Tomek");
  EXPECT_EQ(SamplerKindName(SamplerKind::kBorderlineSmote), "BSM");
}

TEST(IntegrationTest, ClassifierFactoryProducesAllFive) {
  const Dataset ds = MakePaperDataset("S5", 200, 24);
  for (ClassifierKind kind : AllClassifierKinds()) {
    const std::unique_ptr<Classifier> clf = MakeClassifier(kind, true);
    Pcg32 rng(25);
    clf->Fit(ds, &rng);
    const std::vector<int> pred = clf->PredictBatch(ds.x());
    EXPECT_GT(Accuracy(ds.y(), pred), 0.6) << clf->name();
  }
}

TEST(IntegrationTest, GbabsCompressesMoreThanGgbsUnderHeavyNoise) {
  // The headline Fig. 6 shape: under class noise GGBS degenerates toward
  // ratio 1.0 while GBABS keeps compressing.
  Dataset ds = MakePaperDataset("S8", 500, 26);
  Pcg32 noise_rng(27);
  InjectClassNoise(&ds, 0.2, &noise_rng);

  GbabsSampler gbabs;
  GgbsSampler ggbs;
  Pcg32 rng_a(28);
  Pcg32 rng_b(28);
  const double gbabs_ratio =
      static_cast<double>(gbabs.Sample(ds, &rng_a).size()) / ds.size();
  const double ggbs_ratio =
      static_cast<double>(ggbs.Sample(ds, &rng_b).size()) / ds.size();
  EXPECT_LT(gbabs_ratio, ggbs_ratio);
}

TEST(IntegrationTest, GbabsNoiseRobustnessOnCompactBlobs) {
  // Under 30% class noise, DT trained on the GBABS sample should beat DT
  // trained on the raw noisy data when evaluated on clean labels. Compact
  // well-separated blobs make the effect deterministic: RD-GBG eliminates
  // interior label noise before sampling.
  BlobsConfig blob_cfg;
  blob_cfg.num_samples = 700;
  blob_cfg.num_classes = 3;
  blob_cfg.num_features = 3;
  blob_cfg.center_spread = 8.0;
  blob_cfg.cluster_std = 0.7;
  Pcg32 gen_rng(29);
  const Dataset clean = MakeGaussianBlobs(blob_cfg, &gen_rng);
  Pcg32 split_rng(30);
  const TrainTestSplitResult split = TrainTestSplit(clean, 0.3, &split_rng);
  Dataset noisy_train = split.train;
  Pcg32 noise_rng(31);
  InjectClassNoise(&noisy_train, 0.3, &noise_rng);

  Pcg32 rng(32);
  const Dataset sampled = GbabsSampler().Sample(noisy_train, &rng);

  DecisionTreeClassifier dt_raw;
  DecisionTreeClassifier dt_gbabs;
  Pcg32 fit_rng(33);
  dt_raw.Fit(noisy_train, &fit_rng);
  dt_gbabs.Fit(sampled, &fit_rng);
  const double raw_acc =
      Accuracy(split.test.y(), dt_raw.PredictBatch(split.test.x()));
  const double gbabs_acc =
      Accuracy(split.test.y(), dt_gbabs.PredictBatch(split.test.x()));
  EXPECT_GT(gbabs_acc, raw_acc - 0.02);  // at least comparable; usually better
}

TEST(IntegrationTest, RdGbgNoiseRemovalFeedsCleanerBalls) {
  Dataset ds = MakePaperDataset("S5", 500, 34);
  Pcg32 noise_rng(35);
  const std::vector<int> flipped = InjectClassNoise(&ds, 0.2, &noise_rng);
  const RdGbgResult result = GenerateRdGbg(ds, RdGbgConfig{});
  EXPECT_FALSE(result.noise_indices.empty());
  // Purity invariant holds even on noisy input.
  EXPECT_TRUE(result.balls.CheckPurity(ds.y()));
}

TEST(IntegrationTest, CsvPipeline) {
  // Save a paper dataset, reload it, sample it, train on it.
  const Dataset ds = MakePaperDataset("S2", 300, 36);
  const std::string path = ::testing::TempDir() + "/gbx_integration.csv";
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  const StatusOr<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  const GbabsResult sampled = RunGbabs(*loaded, GbabsConfig{});
  EXPECT_GT(sampled.sampled.size(), 0);
  EXPECT_LE(sampled.sampled.size(), loaded->size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gbx
