#include "sampling/kmeans.h"

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(KMeansTest, SeparatesTwoObviousClusters) {
  Matrix pts = Matrix::FromRows({{0.0, 0.0},
                                 {0.1, 0.1},
                                 {-0.1, 0.0},
                                 {10.0, 10.0},
                                 {10.1, 9.9},
                                 {9.9, 10.0}});
  KMeansConfig cfg;
  cfg.num_clusters = 2;
  Pcg32 rng(1);
  const KMeansResult result = RunKMeans(pts, cfg, &rng);
  // First three rows share a cluster, last three share the other.
  EXPECT_EQ(result.assignments[0], result.assignments[1]);
  EXPECT_EQ(result.assignments[1], result.assignments[2]);
  EXPECT_EQ(result.assignments[3], result.assignments[4]);
  EXPECT_EQ(result.assignments[4], result.assignments[5]);
  EXPECT_NE(result.assignments[0], result.assignments[3]);
}

TEST(KMeansTest, RespectsInitialCenters) {
  Matrix pts = Matrix::FromRows({{0.0}, {1.0}, {9.0}, {10.0}});
  Matrix init = Matrix::FromRows({{0.5}, {9.5}});
  KMeansConfig cfg;
  cfg.num_clusters = 2;
  Pcg32 rng(2);
  const KMeansResult result = RunKMeans(pts, cfg, &rng, &init);
  EXPECT_EQ(result.assignments[0], 0);
  EXPECT_EQ(result.assignments[1], 0);
  EXPECT_EQ(result.assignments[2], 1);
  EXPECT_EQ(result.assignments[3], 1);
  EXPECT_NEAR(result.centers.At(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(result.centers.At(1, 0), 9.5, 1e-9);
}

TEST(KMeansTest, SingleCluster) {
  Matrix pts = Matrix::FromRows({{1.0}, {2.0}, {3.0}});
  KMeansConfig cfg;
  cfg.num_clusters = 1;
  Pcg32 rng(3);
  const KMeansResult result = RunKMeans(pts, cfg, &rng);
  for (int a : result.assignments) EXPECT_EQ(a, 0);
  EXPECT_NEAR(result.centers.At(0, 0), 2.0, 1e-9);
}

TEST(KMeansTest, CentersAreClusterMeans) {
  Pcg32 data_rng(4);
  Matrix pts(60, 3);
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 3; ++j) pts.At(i, j) = data_rng.NextGaussian();
  }
  KMeansConfig cfg;
  cfg.num_clusters = 4;
  cfg.max_iterations = 50;
  Pcg32 rng(5);
  const KMeansResult result = RunKMeans(pts, cfg, &rng);
  for (int c = 0; c < 4; ++c) {
    std::vector<double> mean(3, 0.0);
    int count = 0;
    for (int i = 0; i < 60; ++i) {
      if (result.assignments[i] != c) continue;
      ++count;
      for (int j = 0; j < 3; ++j) mean[j] += pts.At(i, j);
    }
    if (count == 0) continue;
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(result.centers.At(c, j), mean[j] / count, 1e-6);
    }
  }
}

TEST(KMeansTest, Deterministic) {
  Pcg32 data_rng(6);
  Matrix pts(40, 2);
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 2; ++j) pts.At(i, j) = data_rng.NextGaussian();
  }
  KMeansConfig cfg;
  cfg.num_clusters = 3;
  Pcg32 rng1(7);
  Pcg32 rng2(7);
  EXPECT_EQ(RunKMeans(pts, cfg, &rng1).assignments,
            RunKMeans(pts, cfg, &rng2).assignments);
}

TEST(KMeansTest, MoreClustersThanPointsIsDefined) {
  Matrix pts = Matrix::FromRows({{0.0}, {5.0}});
  KMeansConfig cfg;
  cfg.num_clusters = 4;
  Pcg32 rng(8);
  const KMeansResult result = RunKMeans(pts, cfg, &rng);
  EXPECT_EQ(result.assignments.size(), 2u);
  for (int a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

}  // namespace
}  // namespace gbx
