#include "ml/knn.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

namespace gbx {
namespace {

TEST(KnnTest, OneNearestNeighborMemorizes) {
  BlobsConfig cfg;
  cfg.num_samples = 100;
  cfg.num_classes = 3;
  Pcg32 gen(1);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  KnnClassifier knn(1);
  Pcg32 rng(2);
  knn.Fit(ds, &rng);
  const std::vector<int> pred = knn.PredictBatch(ds.x());
  EXPECT_DOUBLE_EQ(Accuracy(ds.y(), pred), 1.0);
}

TEST(KnnTest, MajorityVote) {
  // k=3: query near two class-1 points and one class-0 point.
  Matrix x = Matrix::FromRows({{0.0}, {1.0}, {1.1}, {10.0}});
  const Dataset ds(std::move(x), {0, 1, 1, 0});
  KnnClassifier knn(3);
  Pcg32 rng(3);
  knn.Fit(ds, &rng);
  const double q[] = {0.9};
  EXPECT_EQ(knn.Predict(q), 1);
}

TEST(KnnTest, TieBreaksTowardNearestClass) {
  // k=2 with one vote each: the nearer neighbor's class wins.
  Matrix x = Matrix::FromRows({{1.0}, {2.0}});
  const Dataset ds(std::move(x), {0, 1});
  KnnClassifier knn(2);
  Pcg32 rng(4);
  knn.Fit(ds, &rng);
  const double q0[] = {1.1};
  EXPECT_EQ(knn.Predict(q0), 0);
  const double q1[] = {1.9};
  EXPECT_EQ(knn.Predict(q1), 1);
}

TEST(KnnTest, GeneralizesOnSeparableBlobs) {
  BlobsConfig cfg;
  cfg.num_samples = 600;
  cfg.num_classes = 3;
  cfg.num_features = 4;
  cfg.center_spread = 8.0;
  cfg.cluster_std = 1.0;
  Pcg32 gen(5);
  const Dataset all = MakeGaussianBlobs(cfg, &gen);
  Pcg32 split_rng(6);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  KnnClassifier knn;
  Pcg32 rng(7);
  knn.Fit(split.train, &rng);
  const double acc =
      Accuracy(split.test.y(), knn.PredictBatch(split.test.x()));
  EXPECT_GT(acc, 0.95);
}

TEST(KnnTest, KLargerThanTrainingSet) {
  Matrix x = Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  const Dataset ds(std::move(x), {0, 0, 1});
  KnnClassifier knn(10);
  Pcg32 rng(8);
  knn.Fit(ds, &rng);
  const double q[] = {0.5};
  EXPECT_EQ(knn.Predict(q), 0);  // majority of all three
}

TEST(KnnTest, DefaultKIsFive) { EXPECT_EQ(KnnClassifier().k(), 5); }

}  // namespace
}  // namespace gbx
