#include "ml/linear_svm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

namespace gbx {
namespace {

TEST(LinearSvmTest, SeparatesLinearlySeparableData) {
  // y = sign(x0 + x1 - 1) with a comfortable margin.
  Pcg32 gen(1);
  Matrix x(300, 2);
  std::vector<int> y(300);
  int row = 0;
  while (row < 300) {
    const double a = gen.NextDouble() * 4 - 2;
    const double b = gen.NextDouble() * 4 - 2;
    const double margin = a + b - 1.0;
    if (std::fabs(margin) < 0.2) continue;  // enforce a margin band
    x.At(row, 0) = a;
    x.At(row, 1) = b;
    y[row] = margin > 0 ? 1 : 0;
    ++row;
  }
  const Dataset ds(std::move(x), std::move(y));
  LinearSvmClassifier svm;
  Pcg32 rng(2);
  svm.Fit(ds, &rng);
  EXPECT_GT(Accuracy(ds.y(), svm.PredictBatch(ds.x())), 0.97);
}

TEST(LinearSvmTest, MultiClassBlobs) {
  BlobsConfig cfg;
  cfg.num_samples = 600;
  cfg.num_classes = 4;
  cfg.num_features = 5;
  cfg.center_spread = 8.0;
  cfg.cluster_std = 1.0;
  Pcg32 gen(3);
  const Dataset all = MakeGaussianBlobs(cfg, &gen);
  Pcg32 split_rng(4);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  LinearSvmClassifier svm;
  Pcg32 rng(5);
  svm.Fit(split.train, &rng);
  EXPECT_GT(Accuracy(split.test.y(), svm.PredictBatch(split.test.x())),
            0.9);
}

TEST(LinearSvmTest, DecisionValueOrdersWithPrediction) {
  BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 3;
  Pcg32 gen(6);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  LinearSvmClassifier svm;
  Pcg32 rng(7);
  svm.Fit(ds, &rng);
  for (int i = 0; i < 20; ++i) {
    const int pred = svm.Predict(ds.row(i));
    for (int c = 0; c < ds.num_classes(); ++c) {
      EXPECT_GE(svm.DecisionValue(ds.row(i), pred),
                svm.DecisionValue(ds.row(i), c));
    }
  }
}

TEST(LinearSvmTest, StandardizationHandlesScaleMismatch) {
  // Feature 1 is 1000x larger in scale; without standardization Pegasos
  // with a common learning rate struggles.
  Pcg32 gen(8);
  Matrix x(300, 2);
  std::vector<int> y(300);
  for (int i = 0; i < 300; ++i) {
    const int cls = i % 2;
    x.At(i, 0) = gen.NextGaussian() * 0.001 + (cls ? 0.004 : -0.004);
    x.At(i, 1) = gen.NextGaussian() * 1000.0;
    y[i] = cls;
  }
  const Dataset ds(std::move(x), std::move(y));
  LinearSvmClassifier svm;
  Pcg32 rng(9);
  svm.Fit(ds, &rng);
  EXPECT_GT(Accuracy(ds.y(), svm.PredictBatch(ds.x())), 0.95);
}

TEST(LinearSvmTest, Deterministic) {
  BlobsConfig cfg;
  cfg.num_samples = 150;
  cfg.num_classes = 2;
  Pcg32 gen(10);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  LinearSvmClassifier a;
  LinearSvmClassifier b;
  Pcg32 rng_a(11);
  Pcg32 rng_b(11);
  a.Fit(ds, &rng_a);
  b.Fit(ds, &rng_b);
  EXPECT_EQ(a.PredictBatch(ds.x()), b.PredictBatch(ds.x()));
}

}  // namespace
}  // namespace gbx
