#include "common/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(MatrixTest, ConstructAndFill) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_FALSE(m.empty());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(m.At(i, j), 1.5);
  }
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6);
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const double* row1 = m.Row(1);
  EXPECT_DOUBLE_EQ(row1[0], 3);
  EXPECT_DOUBLE_EQ(row1[1], 4);
  m.Row(0)[1] = 9;
  EXPECT_DOUBLE_EQ(m.At(0, 1), 9);
}

TEST(MatrixTest, SelectRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix sel = m.SelectRows({2, 0, 2});
  EXPECT_EQ(sel.rows(), 3);
  EXPECT_DOUBLE_EQ(sel.At(0, 0), 5);
  EXPECT_DOUBLE_EQ(sel.At(1, 0), 1);
  EXPECT_DOUBLE_EQ(sel.At(2, 1), 6);
}

TEST(MatrixTest, SelectRowsEmpty) {
  const Matrix m = Matrix::FromRows({{1, 2}});
  const Matrix sel = m.SelectRows({});
  EXPECT_EQ(sel.rows(), 0);
  EXPECT_EQ(sel.cols(), 2);
}

TEST(MatrixTest, AppendRows) {
  Matrix a = Matrix::FromRows({{1, 2}});
  const Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  a.AppendRows(b);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_DOUBLE_EQ(a.At(2, 1), 6);
}

TEST(MatrixTest, AppendRowsToEmpty) {
  Matrix a;
  a.AppendRows(Matrix::FromRows({{7, 8, 9}}));
  EXPECT_EQ(a.rows(), 1);
  EXPECT_EQ(a.cols(), 3);
}

TEST(MatrixTest, AppendRow) {
  Matrix a;
  const double row0[] = {1.0, 2.0};
  const double row1[] = {3.0, 4.0};
  a.AppendRow(row0, 2);
  a.AppendRow(row1, 2);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 3.0);
}

TEST(DistanceTest, SquaredAndEuclidean) {
  const double a[] = {0.0, 0.0, 0.0};
  const double b[] = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 3), 9.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b, 3), 3.0);
}

TEST(DistanceTest, ZeroDistance) {
  const double a[] = {1.5, -2.5};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a, 2), 0.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a, 2), 0.0);
}

TEST(DistanceTest, SymmetricAndTriangle) {
  const double a[] = {0.0, 1.0};
  const double b[] = {2.0, 3.0};
  const double c[] = {-1.0, 0.5};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b, 2), EuclideanDistance(b, a, 2));
  EXPECT_LE(EuclideanDistance(a, b, 2),
            EuclideanDistance(a, c, 2) + EuclideanDistance(c, b, 2) + 1e-12);
}

}  // namespace
}  // namespace gbx
