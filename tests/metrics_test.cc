#include "ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {0, 0}), 0.0);
}

TEST(ConfusionMatrixTest, EntriesLandInRightCells) {
  const Matrix cm = ConfusionMatrix({0, 0, 1, 1, 2}, {0, 1, 1, 1, 0}, 3);
  EXPECT_DOUBLE_EQ(cm.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(cm.At(0, 1), 1);
  EXPECT_DOUBLE_EQ(cm.At(1, 1), 2);
  EXPECT_DOUBLE_EQ(cm.At(2, 0), 1);
  EXPECT_DOUBLE_EQ(cm.At(2, 2), 0);
}

TEST(PerClassRecallTest, Values) {
  const std::vector<double> recall =
      PerClassRecall({0, 0, 1, 1, 1, 2}, {0, 1, 1, 1, 0, 0}, 3);
  EXPECT_DOUBLE_EQ(recall[0], 0.5);
  EXPECT_NEAR(recall[1], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(recall[2], 0.0);
}

TEST(PerClassRecallTest, AbsentClassIsNaN) {
  const std::vector<double> recall = PerClassRecall({0, 0}, {0, 0}, 3);
  EXPECT_TRUE(std::isnan(recall[1]));
  EXPECT_TRUE(std::isnan(recall[2]));
}

TEST(GMeanTest, PerfectPredictionIsOne) {
  EXPECT_DOUBLE_EQ(GMean({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
}

TEST(GMeanTest, ZeroRecallClassZeroesGMean) {
  EXPECT_DOUBLE_EQ(GMean({0, 0, 1, 1}, {0, 0, 0, 0}, 2), 0.0);
}

TEST(GMeanTest, GeometricMeanOfRecalls) {
  // recall(0) = 1.0, recall(1) = 0.5 -> gmean = sqrt(0.5).
  EXPECT_NEAR(GMean({0, 0, 1, 1}, {0, 0, 1, 0}, 2), std::sqrt(0.5), 1e-12);
}

TEST(GMeanTest, SkipsAbsentClasses) {
  // Class 2 never appears in y_true: gmean over classes 0 and 1 only.
  EXPECT_NEAR(GMean({0, 0, 1, 1}, {0, 0, 1, 0}, 3), std::sqrt(0.5), 1e-12);
}

TEST(MacroF1Test, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
}

TEST(MacroF1Test, KnownValue) {
  // y_true = {0,0,1,1}, y_pred = {0,1,1,1}:
  // class 0: precision 1, recall .5 -> F1 = 2/3
  // class 1: precision 2/3, recall 1 -> F1 = 0.8
  EXPECT_NEAR(MacroF1({0, 0, 1, 1}, {0, 1, 1, 1}, 2), (2.0 / 3 + 0.8) / 2,
              1e-12);
}

TEST(BalancedAccuracyTest, MeanOfRecalls) {
  // recall(0) = 1.0, recall(1) = 0.5 -> balanced = 0.75.
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 0, 1, 1}, {0, 0, 1, 0}, 2), 0.75);
}

TEST(BalancedAccuracyTest, IgnoresAbsentClasses) {
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 0, 1, 1}, {0, 0, 1, 0}, 4), 0.75);
}

TEST(BinaryAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(
      BinaryAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(BinaryAucTest, ReversedRankingIsZero) {
  EXPECT_DOUBLE_EQ(
      BinaryAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(BinaryAucTest, RandomScoresGiveHalfOnTies) {
  EXPECT_DOUBLE_EQ(BinaryAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(BinaryAucTest, KnownMixedCase) {
  // positives at scores {0.8, 0.3}, negatives at {0.5, 0.1}:
  // pairs won: (0.8>0.5), (0.8>0.1), (0.3<0.5 lost), (0.3>0.1) -> 3/4.
  EXPECT_DOUBLE_EQ(BinaryAuc({1, 0, 1, 0}, {0.8, 0.5, 0.3, 0.1}), 0.75);
}

TEST(BinaryAucTest, CustomPositiveClass) {
  EXPECT_DOUBLE_EQ(
      BinaryAuc({2, 2, 7, 7}, {0.1, 0.2, 0.8, 0.9}, /*positive_class=*/7),
      1.0);
}

TEST(MetricsDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(Accuracy({0, 1}, {0}), "GBX_CHECK");
}

TEST(MetricsDeathTest, AucNeedsBothClasses) {
  EXPECT_DEATH(BinaryAuc({1, 1}, {0.5, 0.6}), "GBX_CHECK");
}

}  // namespace
}  // namespace gbx
